//! The text statement language the server speaks.
//!
//! One statement per request frame. Keywords are case-insensitive,
//! identifiers are case-sensitive, string literals use single quotes:
//!
//! ```text
//! ping | epoch | flush | shutdown
//! create table L (SHIPDATE date, PRICE decimal, DISCOUNT decimal)
//! define sma l_min select min(PRICE) from L
//! insert into L values ('1994-03-15', 17.25, 0.05)
//! select count(*), sum(PRICE) from L where SHIPDATE >= '1994-01-01'
//!     and DISCOUNT <= 0.07 group by RETURNFLAG
//! ```
//!
//! Parsing is pure: column names and literals stay textual here and are
//! bound against the relation's schema by the server, under the same
//! lock as execution — the parser cannot race a concurrent `create
//! table`. A parse failure is an `Err(String)` that becomes a
//! structured `Error` response; nothing panics.

use sma_core::CmpOp;
use sma_types::DataType;

/// One comparison in a `where` conjunction, unbound: `column op literal`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredAst {
    /// Column name.
    pub column: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Raw literal text (quotes stripped).
    pub literal: String,
}

/// One aggregate in a `select` list, unbound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggAst {
    /// `count(*)`
    CountStar,
    /// `min(column)`
    Min(String),
    /// `max(column)`
    Max(String),
    /// `sum(column)`
    Sum(String),
    /// `avg(column)`
    Avg(String),
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// Liveness probe.
    Ping,
    /// Report the catalog epoch.
    Epoch,
    /// Fold the memtable into the sealed generation now.
    Flush,
    /// Begin graceful shutdown: drain, commit, flush, stop accepting.
    Shutdown,
    /// Register a new relation.
    CreateTable {
        /// Relation name.
        name: String,
        /// Column name/type pairs, in declaration order.
        columns: Vec<(String, DataType)>,
    },
    /// `define sma …` — passed through verbatim to the warehouse, which
    /// owns that grammar.
    DefineSma {
        /// The full statement text.
        raw: String,
    },
    /// Append one tuple.
    Insert {
        /// Target relation.
        relation: String,
        /// Raw literal texts, in column order.
        values: Vec<String>,
    },
    /// An aggregate query.
    Select {
        /// Aggregate list.
        aggs: Vec<AggAst>,
        /// Source relation.
        relation: String,
        /// `where` conjunction (empty = all rows).
        predicates: Vec<PredAst>,
        /// `group by` column names.
        group_by: Vec<String>,
    },
}

impl Statement {
    /// Parses one statement or returns a human-readable error.
    pub fn parse(text: &str) -> Result<Statement, String> {
        let toks = tokenize(text)?;
        let mut p = Parser { toks, pos: 0 };
        let stmt = p.statement(text)?;
        if !p.at_end() {
            return Err(format!("unexpected `{}` after statement", p.peek_text()));
        }
        Ok(stmt)
    }
}

// ------------------------------------------------------------- tokenizer

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    /// Identifier, keyword, or unquoted literal (`1994-01-01`, `17.25`).
    Word(String),
    /// Single-quoted string, quotes stripped.
    Quoted(String),
    /// `( ) , *` and comparison operators.
    Punct(String),
}

impl Tok {
    fn text(&self) -> &str {
        match self {
            Tok::Word(s) | Tok::Quoted(s) | Tok::Punct(s) => s,
        }
    }
}

fn tokenize(text: &str) -> Result<Vec<Tok>, String> {
    let mut toks = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '\'' {
            chars.next();
            let mut s = String::new();
            loop {
                match chars.next() {
                    Some('\'') => break,
                    Some(ch) => s.push(ch),
                    None => return Err("unterminated string literal".into()),
                }
            }
            toks.push(Tok::Quoted(s));
        } else if matches!(c, '(' | ')' | ',' | '*') {
            chars.next();
            toks.push(Tok::Punct(c.to_string()));
        } else if matches!(c, '<' | '>' | '=' | '!') {
            chars.next();
            let mut op = c.to_string();
            if chars.peek() == Some(&'=') {
                chars.next();
                op.push('=');
            }
            toks.push(Tok::Punct(op));
        } else if c.is_alphanumeric() || matches!(c, '_' | '.' | '-' | '+') {
            let mut s = String::new();
            while let Some(&ch) = chars.peek() {
                if ch.is_alphanumeric() || matches!(ch, '_' | '.' | '-' | '+') {
                    s.push(ch);
                    chars.next();
                } else {
                    break;
                }
            }
            toks.push(Tok::Word(s));
        } else {
            return Err(format!("unexpected character `{c}`"));
        }
    }
    Ok(toks)
}

// ---------------------------------------------------------------- parser

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek_text(&self) -> &str {
        self.toks.get(self.pos).map_or("end of input", Tok::text)
    }

    /// Peeks a keyword (case-insensitive word match).
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.toks.get(self.pos), Some(Tok::Word(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), String> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(format!("expected `{kw}`, found `{}`", self.peek_text()))
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), String> {
        match self.toks.get(self.pos) {
            Some(Tok::Punct(s)) if s == p => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(format!("expected `{p}`, found `{}`", self.peek_text())),
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        match self.toks.get(self.pos) {
            Some(Tok::Punct(s)) if s == p => {
                self.pos += 1;
                true
            }
            _ => false,
        }
    }

    /// Any word token (identifier position).
    fn ident(&mut self) -> Result<String, String> {
        match self.toks.get(self.pos) {
            Some(Tok::Word(w)) => {
                let w = w.clone();
                self.pos += 1;
                Ok(w)
            }
            _ => Err(format!("expected identifier, found `{}`", self.peek_text())),
        }
    }

    /// A literal: quoted string or bare word.
    fn literal(&mut self) -> Result<String, String> {
        match self.toks.get(self.pos) {
            Some(Tok::Word(w)) => {
                let w = w.clone();
                self.pos += 1;
                Ok(w)
            }
            Some(Tok::Quoted(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(format!("expected literal, found `{}`", self.peek_text())),
        }
    }

    fn statement(&mut self, raw: &str) -> Result<Statement, String> {
        if self.eat_kw("ping") {
            Ok(Statement::Ping)
        } else if self.eat_kw("epoch") {
            Ok(Statement::Epoch)
        } else if self.eat_kw("flush") {
            Ok(Statement::Flush)
        } else if self.eat_kw("shutdown") {
            Ok(Statement::Shutdown)
        } else if self.peek_kw("create") {
            self.create_table()
        } else if self.peek_kw("define") {
            // The warehouse owns the `define sma` grammar; validate the
            // head here, pass the text through untouched.
            self.pos = self.toks.len();
            Ok(Statement::DefineSma {
                raw: raw.trim().to_string(),
            })
        } else if self.peek_kw("insert") {
            self.insert()
        } else if self.peek_kw("select") {
            self.select()
        } else {
            Err(format!("unknown statement `{}`", self.peek_text()))
        }
    }

    fn create_table(&mut self) -> Result<Statement, String> {
        self.expect_kw("create")?;
        self.expect_kw("table")?;
        let name = self.ident()?;
        self.expect_punct("(")?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty = self.data_type()?;
            columns.push((col, ty));
            if self.eat_punct(",") {
                continue;
            }
            self.expect_punct(")")?;
            break;
        }
        if columns.is_empty() {
            return Err("a table needs at least one column".into());
        }
        Ok(Statement::CreateTable { name, columns })
    }

    fn data_type(&mut self) -> Result<DataType, String> {
        let w = self.ident()?;
        match w.to_ascii_lowercase().as_str() {
            "int" | "integer" => Ok(DataType::Int),
            "decimal" => Ok(DataType::Decimal),
            "date" => Ok(DataType::Date),
            "char" => Ok(DataType::Char),
            "str" | "text" | "varchar" => Ok(DataType::Str),
            other => Err(format!(
                "unknown type `{other}` (expected int, decimal, date, char, or str)"
            )),
        }
    }

    fn insert(&mut self) -> Result<Statement, String> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let relation = self.ident()?;
        self.expect_kw("values")?;
        self.expect_punct("(")?;
        let mut values = Vec::new();
        loop {
            values.push(self.literal()?);
            if self.eat_punct(",") {
                continue;
            }
            self.expect_punct(")")?;
            break;
        }
        Ok(Statement::Insert { relation, values })
    }

    fn select(&mut self) -> Result<Statement, String> {
        self.expect_kw("select")?;
        let mut aggs = Vec::new();
        loop {
            aggs.push(self.aggregate()?);
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_kw("from")?;
        let relation = self.ident()?;
        let mut predicates = Vec::new();
        if self.eat_kw("where") {
            loop {
                predicates.push(self.predicate()?);
                if !self.eat_kw("and") {
                    break;
                }
            }
        }
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.ident()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        Ok(Statement::Select {
            aggs,
            relation,
            predicates,
            group_by,
        })
    }

    fn aggregate(&mut self) -> Result<AggAst, String> {
        let f = self.ident()?;
        self.expect_punct("(")?;
        let agg = match f.to_ascii_lowercase().as_str() {
            "count" => {
                self.expect_punct("*")?;
                self.expect_punct(")")?;
                return Ok(AggAst::CountStar);
            }
            "min" => AggAst::Min(self.ident()?),
            "max" => AggAst::Max(self.ident()?),
            "sum" => AggAst::Sum(self.ident()?),
            "avg" => AggAst::Avg(self.ident()?),
            other => return Err(format!("unknown aggregate `{other}`")),
        };
        self.expect_punct(")")?;
        Ok(agg)
    }

    fn predicate(&mut self) -> Result<PredAst, String> {
        let column = self.ident()?;
        let op = match self.toks.get(self.pos) {
            Some(Tok::Punct(p)) => match p.as_str() {
                "=" => CmpOp::Eq,
                "<" => CmpOp::Lt,
                "<=" => CmpOp::Le,
                ">" => CmpOp::Gt,
                ">=" => CmpOp::Ge,
                other => return Err(format!("unknown operator `{other}`")),
            },
            _ => return Err(format!("expected operator, found `{}`", self.peek_text())),
        };
        self.pos += 1;
        let literal = self.literal()?;
        Ok(PredAst {
            column,
            op,
            literal,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_statements_parse() {
        assert_eq!(Statement::parse("ping").unwrap(), Statement::Ping);
        assert_eq!(Statement::parse("  EPOCH ").unwrap(), Statement::Epoch);
        assert_eq!(Statement::parse("flush").unwrap(), Statement::Flush);
        assert_eq!(Statement::parse("Shutdown").unwrap(), Statement::Shutdown);
    }

    #[test]
    fn create_table_parses_all_types() {
        let s =
            Statement::parse("create table L (A int, B decimal, C date, D char, E str)").unwrap();
        assert_eq!(
            s,
            Statement::CreateTable {
                name: "L".into(),
                columns: vec![
                    ("A".into(), DataType::Int),
                    ("B".into(), DataType::Decimal),
                    ("C".into(), DataType::Date),
                    ("D".into(), DataType::Char),
                    ("E".into(), DataType::Str),
                ],
            }
        );
    }

    #[test]
    fn define_sma_is_passed_through_verbatim() {
        let raw = "define sma l_min select min(PRICE) from L";
        assert_eq!(
            Statement::parse(raw).unwrap(),
            Statement::DefineSma { raw: raw.into() }
        );
    }

    #[test]
    fn insert_parses_quoted_and_bare_literals() {
        let s = Statement::parse("insert into L values ('1994-03-15', 17.25, -3, 'x y')").unwrap();
        assert_eq!(
            s,
            Statement::Insert {
                relation: "L".into(),
                values: vec![
                    "1994-03-15".into(),
                    "17.25".into(),
                    "-3".into(),
                    "x y".into()
                ],
            }
        );
    }

    #[test]
    fn select_parses_full_query() {
        let s = Statement::parse(
            "select count(*), sum(PRICE), avg(PRICE) from L \
             where SHIPDATE >= '1994-01-01' and DISCOUNT <= 0.07 group by FLAG, STATUS",
        )
        .unwrap();
        assert_eq!(
            s,
            Statement::Select {
                aggs: vec![
                    AggAst::CountStar,
                    AggAst::Sum("PRICE".into()),
                    AggAst::Avg("PRICE".into()),
                ],
                relation: "L".into(),
                predicates: vec![
                    PredAst {
                        column: "SHIPDATE".into(),
                        op: CmpOp::Ge,
                        literal: "1994-01-01".into(),
                    },
                    PredAst {
                        column: "DISCOUNT".into(),
                        op: CmpOp::Le,
                        literal: "0.07".into(),
                    },
                ],
                group_by: vec!["FLAG".into(), "STATUS".into()],
            }
        );
    }

    #[test]
    fn garbage_is_an_error_never_a_panic() {
        for bad in [
            "",
            "explode",
            "select from L",
            "select count(* from L",
            "create table X ()",
            "create table X (A blob)",
            "insert into L values (",
            "select count(*) from L where A ! 3",
            "ping ping",
            "'unterminated",
        ] {
            assert!(Statement::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }
}
