//! Bounded admission: a fixed-capacity counting gate.
//!
//! The server takes one [`Permit`] per connection (session gate) and one
//! per executing query (inflight gate). `try_acquire` either succeeds
//! immediately or fails immediately — there is no wait queue at all, so
//! overload degrades into explicit `Busy` responses instead of unbounded
//! memory growth or creeping latency. The permit releases its slot on
//! `Drop`, which makes leak-freedom structural: a panicking session
//! thread still unwinds its permit.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A fixed-capacity counting gate (a semaphore that never blocks).
#[derive(Debug)]
pub struct Admission {
    limit: usize,
    active: AtomicUsize,
}

impl Admission {
    /// A gate admitting at most `limit` concurrent holders. `limit == 0`
    /// means "admit nothing" — useful for tests and maintenance mode.
    pub fn new(limit: usize) -> Arc<Admission> {
        Arc::new(Admission {
            limit,
            active: AtomicUsize::new(0),
        })
    }

    /// Attempts to take a slot; `None` means the caller must shed load.
    pub fn try_acquire(self: &Arc<Admission>) -> Option<Permit> {
        let mut current = self.active.load(Ordering::Relaxed);
        loop {
            if current >= self.limit {
                return None;
            }
            match self.active.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Some(Permit {
                        gate: Arc::clone(self),
                    })
                }
                Err(seen) => current = seen,
            }
        }
    }

    /// Currently admitted holders.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// The configured capacity.
    pub fn limit(&self) -> usize {
        self.limit
    }
}

/// An admitted slot; releases on drop.
#[derive(Debug)]
pub struct Permit {
    gate: Arc<Admission>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.gate.active.fetch_sub(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_enforced_and_released() {
        let gate = Admission::new(2);
        let a = gate.try_acquire().unwrap();
        let _b = gate.try_acquire().unwrap();
        assert!(gate.try_acquire().is_none(), "the gate is full");
        assert_eq!(gate.active(), 2);
        drop(a);
        assert_eq!(gate.active(), 1);
        assert!(gate.try_acquire().is_some(), "the slot came back");
    }

    #[test]
    fn zero_capacity_admits_nothing() {
        let gate = Admission::new(0);
        assert!(gate.try_acquire().is_none());
    }

    #[test]
    fn concurrent_acquire_never_oversubscribes() {
        let gate = Admission::new(3);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..500 {
                        if let Some(_p) = gate.try_acquire() {
                            let seen = gate.active();
                            peak.fetch_max(seen, Ordering::Relaxed);
                            assert!(seen <= 3, "oversubscribed: {seen}");
                        }
                    }
                });
            }
        });
        assert_eq!(gate.active(), 0, "every permit was returned");
        assert!(peak.load(Ordering::Relaxed) >= 1);
    }
}
