//! A minimal blocking client: one statement out, one response in.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::proto::{read_frame, write_frame, ProtoError, Response, MAX_FRAME_BYTES};

/// A blocking connection to an `sma-server`.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ProtoError> {
        let stream = TcpStream::connect(addr).map_err(ProtoError::Io)?;
        stream.set_nodelay(true).map_err(ProtoError::Io)?;
        Ok(Client { stream })
    }

    /// Bounds how long [`Client::request`] waits for a reply (`None` =
    /// wait forever). The chaos tests use this as their no-hang proof.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ProtoError> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(ProtoError::Io)
    }

    /// Sends one statement and blocks for its response.
    pub fn request(&mut self, statement: &str) -> Result<Response, ProtoError> {
        if statement.len() > MAX_FRAME_BYTES {
            return Err(ProtoError::FrameTooLarge {
                len: statement.len(),
                max: MAX_FRAME_BYTES,
            });
        }
        write_frame(&mut self.stream, statement.as_bytes())?;
        let payload = read_frame(&mut self.stream).map_err(|e| match e {
            ProtoError::Io(io_err) if io_err.kind() == io::ErrorKind::WouldBlock => ProtoError::Io(
                io::Error::new(io::ErrorKind::TimedOut, "timed out waiting for a response"),
            ),
            other => other,
        })?;
        Response::decode(&payload)
    }
}
