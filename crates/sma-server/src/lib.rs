//! Concurrent TCP query server over one shared [`smadb`] warehouse.
//!
//! The robustness contract, bottom-up:
//!
//! * [`proto`] — length-prefixed frames with a hard size bound, a status
//!   byte per response (`Ok`/`Degraded`/`Busy`/`Error`/`ShuttingDown`),
//!   and a deterministic payload (epoch + plan + rows) so replies can be
//!   compared byte-for-byte across runs.
//! * [`statement`] — a tiny text statement language (`create table`,
//!   `define sma`, `insert`, `select` aggregates, `ping`/`epoch`/
//!   `flush`/`shutdown`). Parse errors are responses, never panics.
//! * [`admission`] — a fixed-capacity counting gate. Load past the limit
//!   is *shed* with an explicit `Busy` response; nothing ever queues
//!   unboundedly.
//! * [`server`] — the session loop: per-query budgets (deadline +
//!   logical-page cap via [`sma_storage::QueryBudget`]) cut heavy scans
//!   off with a structured error so they cannot starve point
//!   aggregates; queries run under a read lock against one catalog
//!   epoch (flush/compaction takes the write lock, so a query never
//!   observes a half-installed SMA generation); graceful shutdown
//!   drains in-flight requests, commits the open WAL group, flushes,
//!   and refuses new connections.
//! * [`client`] — a minimal blocking client for tests, benches, and the
//!   README quickstart.
//!
//! Everything is `std`-only: threads + nonblocking accept + short read
//! timeouts, no async runtime.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod admission;
pub mod client;
pub mod proto;
pub mod server;
pub mod statement;

pub use admission::{Admission, Permit};
pub use client::Client;
pub use proto::{Response, Status, MAX_FRAME_BYTES};
pub use server::{Server, ServerConfig, ServerError, ServerHandle};
pub use statement::Statement;
