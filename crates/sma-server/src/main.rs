//! The `sma-server` binary: open (or create) a streaming warehouse in
//! `--dir`, serve it over TCP, run until a client sends `shutdown`.
//!
//! ```text
//! sma-server --dir /var/lib/smadb [--addr 127.0.0.1:4480]
//!            [--max-sessions 64] [--max-inflight 16]
//!            [--deadline-ms N] [--page-budget N]
//!            [--flush-threshold ROWS] [--batch-rows N]
//! ```
//!
//! Prints `listening <addr>` on stdout once the socket is live (tests
//! use this to discover the ephemeral port), and recovery statistics to
//! stderr when the directory held a previous incarnation's state.

use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

use sma_server::{Server, ServerConfig};
use smadb::ingest::{CommitPolicy, StreamingWarehouse};
use smadb::warehouse::MANIFEST_FILE;
use smadb::Warehouse;

struct Args {
    dir: String,
    config: ServerConfig,
    flush_threshold: usize,
    batch_rows: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        dir: String::new(),
        config: ServerConfig::default(),
        flush_threshold: 10_000,
        batch_rows: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--dir" => args.dir = value("--dir")?,
            "--addr" => args.config.addr = value("--addr")?,
            "--max-sessions" => args.config.max_sessions = parse_num(&value("--max-sessions")?)?,
            "--max-inflight" => args.config.max_inflight = parse_num(&value("--max-inflight")?)?,
            "--deadline-ms" => {
                args.config.deadline =
                    Some(Duration::from_millis(parse_num(&value("--deadline-ms")?)?))
            }
            "--page-budget" => args.config.page_budget = Some(parse_num(&value("--page-budget")?)?),
            "--flush-threshold" => args.flush_threshold = parse_num(&value("--flush-threshold")?)?,
            "--batch-rows" => args.batch_rows = parse_num(&value("--batch-rows")?)?,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.dir.is_empty() {
        return Err("--dir is required".into());
    }
    Ok(args)
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("`{s}` is not a number"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sma-server: {e}");
            return ExitCode::FAILURE;
        }
    };

    let dir = Path::new(&args.dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("sma-server: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let warehouse = if dir.join(MANIFEST_FILE).exists() {
        match StreamingWarehouse::open_with_recovery(dir, args.flush_threshold) {
            Ok((sw, report)) => {
                eprintln!(
                    "recovered: {} replayed, {} skipped, torn_tail={}",
                    report.replayed, report.skipped, report.torn_tail
                );
                sw
            }
            Err(e) => {
                eprintln!("sma-server: recovery failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match StreamingWarehouse::create(dir, Warehouse::new(), args.flush_threshold) {
            Ok(sw) => sw,
            Err(e) => {
                eprintln!("sma-server: cannot create warehouse: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let mut warehouse = warehouse;
    warehouse.set_commit_policy(CommitPolicy {
        batch_rows: args.batch_rows,
        max_delay: Duration::from_millis(5),
    });

    let handle = match Server::spawn(args.config, warehouse) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("sma-server: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening {}", handle.addr());
    match handle.wait() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sma-server: {e}");
            ExitCode::FAILURE
        }
    }
}
