//! The server proper: accept loop, session threads, request execution.
//!
//! One [`smadb::ingest::StreamingWarehouse`] sits behind an `RwLock`.
//! Queries run under the read lock, so any number execute concurrently
//! against one catalog epoch — a flush or compaction (write lock) can
//! never swap the SMA generation out from under an in-flight query, and
//! the epoch each response carries names the snapshot it observed.
//! Writes (insert/DDL/flush) take the write lock and serialize.
//!
//! Robustness decisions, and where they live:
//!
//! * **Admission** ([`crate::admission`]): a session gate bounds live
//!   connections, an inflight gate bounds concurrently executing
//!   queries. Both shed with `Busy` — there is no queue to grow.
//! * **Budgets**: every query gets a [`QueryBudget`] built from
//!   [`ServerConfig`] (deadline + logical-page cap). The executor
//!   checks it at bucket/page boundaries, so a runaway scan ends in a
//!   structured `Error` response, not a hung session or a starved
//!   neighbour.
//! * **Shutdown**: the `shutdown` statement (or
//!   [`ServerHandle::shutdown`]) flips one flag. The accept loop stops
//!   accepting, sessions finish the request they are on and close, and
//!   the accept thread then commits the open WAL group and flushes —
//!   the drain is complete before [`ServerHandle::shutdown`] returns.
//! * **No request left hanging**: session reads use a short timeout
//!   purely to poll the shutdown flag; a complete request frame is
//!   always answered (with `Busy`/`Error` in the worst case) before the
//!   connection closes.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use sma_core::{col, BucketPred};
use sma_exec::{AggSpec, AggregateQuery};
use sma_storage::{QueryBudget, Table};
use sma_types::{Column, DataType, Date, Decimal, Schema, Value};
use smadb::ingest::{IngestError, StreamingWarehouse};

use crate::admission::Admission;
use crate::proto::{take_frame, write_frame, ProtoError, Response, Status};
use crate::statement::{AggAst, PredAst, Statement};

/// How long a session blocks in `read` before re-checking the shutdown
/// flag. Short enough that drain latency is invisible, long enough that
/// an idle session costs ~20 wakeups a second.
const POLL_READ_TIMEOUT: Duration = Duration::from_millis(50);

/// Accept-loop poll interval while no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(1);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Maximum live sessions; connections past it get `Busy` and close.
    pub max_sessions: usize,
    /// Maximum queries executing at once; past it, `Busy`.
    pub max_inflight: usize,
    /// Per-query wall-clock deadline (`None` = unlimited).
    pub deadline: Option<Duration>,
    /// Per-query logical-page budget (`None` = unlimited).
    pub page_budget: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_sessions: 64,
            max_inflight: 16,
            deadline: None,
            page_budget: None,
        }
    }
}

/// Server-side failure (distinct from per-request errors, which become
/// `Error` responses).
#[derive(Debug)]
pub enum ServerError {
    /// Binding or accepting failed.
    Io(io::Error),
    /// The final drain (commit + flush) failed.
    Ingest(IngestError),
    /// The accept thread panicked.
    AcceptThreadPanicked,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "server i/o: {e}"),
            ServerError::Ingest(e) => write!(f, "shutdown drain: {e}"),
            ServerError::AcceptThreadPanicked => write!(f, "accept thread panicked"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Ingest(e) => Some(e),
            ServerError::AcceptThreadPanicked => None,
        }
    }
}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> ServerError {
        ServerError::Io(e)
    }
}

/// State shared by the accept loop and every session thread.
struct Shared {
    warehouse: RwLock<StreamingWarehouse>,
    sessions: Arc<Admission>,
    inflight: Arc<Admission>,
    shutdown: AtomicBool,
    deadline: Option<Duration>,
    page_budget: Option<u64>,
}

impl Shared {
    fn read_warehouse(&self) -> std::sync::RwLockReadGuard<'_, StreamingWarehouse> {
        self.warehouse.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_warehouse(&self) -> std::sync::RwLockWriteGuard<'_, StreamingWarehouse> {
        self.warehouse.write().unwrap_or_else(|e| e.into_inner())
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

/// The server entry point; see [`Server::spawn`].
pub struct Server;

/// A handle to a running server.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<Result<(), ServerError>>>,
}

impl Server {
    /// Binds `config.addr`, takes ownership of `warehouse`, and spawns
    /// the accept thread. Returns once the listener is live.
    pub fn spawn(
        config: ServerConfig,
        warehouse: StreamingWarehouse,
    ) -> Result<ServerHandle, ServerError> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            warehouse: RwLock::new(warehouse),
            sessions: Admission::new(config.max_sessions),
            inflight: Admission::new(config.max_inflight),
            shutdown: AtomicBool::new(false),
            deadline: config.deadline,
            page_budget: config.page_budget,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether shutdown has been initiated (by this handle or by a
    /// client's `shutdown` statement).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Initiates graceful shutdown and blocks until the drain finishes:
    /// sessions complete their in-flight request, the open WAL group is
    /// committed, the memtable is flushed, and the listener is closed.
    pub fn shutdown(mut self) -> Result<(), ServerError> {
        self.shared.shutdown.store(true, Ordering::Release);
        self.join_accept()
    }

    /// Blocks until the server stops on its own (a client sends
    /// `shutdown`), without initiating anything.
    pub fn wait(mut self) -> Result<(), ServerError> {
        self.join_accept()
    }

    fn join_accept(&mut self) -> Result<(), ServerError> {
        match self.accept.take() {
            Some(h) => h.join().map_err(|_| ServerError::AcceptThreadPanicked)?,
            None => Ok(()),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // A dropped handle still shuts the server down (best effort) so
        // tests and callers cannot leak the accept thread.
        self.shared.shutdown.store(true, Ordering::Release);
        // sma-lint: allow(A3-error-swallowing) -- Drop cannot propagate; explicit shutdown() reports the join error
        let _ = self.join_accept();
    }
}

// ------------------------------------------------------------ accept loop

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) -> Result<(), ServerError> {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                sessions.retain(|h| !h.is_finished());
                let Some(permit) = shared.sessions.try_acquire() else {
                    // Session cap: answer Busy and close — never queue.
                    // sma-lint: allow(A3-error-swallowing) -- best-effort refusal to a peer that may already be gone
                    let _ = reply_and_close(stream, Status::Busy, "session limit reached");
                    continue;
                };
                let shared = Arc::clone(&shared);
                sessions.push(thread::spawn(move || {
                    let _permit = permit; // released when the session ends
                    session_loop(stream, &shared);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            // sma-lint: allow(A3-error-swallowing) -- transient accept errors (EMFILE, ECONNABORTED) must not kill the accept loop; back off and retry
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
    // Refuse new connections from here on (listener drops at return),
    // drain the sessions, then seal the warehouse.
    drop(listener);
    for h in sessions {
        let _ = h.join();
    }
    let mut sw = shared.write_warehouse();
    sw.commit().map_err(ServerError::Ingest)?;
    sw.flush().map_err(ServerError::Ingest)?;
    if let Some(e) = sw.take_flush_error() {
        return Err(ServerError::Ingest(e));
    }
    Ok(())
}

fn reply_and_close(mut stream: TcpStream, status: Status, info: &str) -> Result<(), ProtoError> {
    let resp = Response::status_only(status, 0, info);
    write_frame(&mut stream, &resp.encode())
}

// ----------------------------------------------------------- session loop

fn session_loop(mut stream: TcpStream, shared: &Shared) {
    if stream.set_read_timeout(Some(POLL_READ_TIMEOUT)).is_err() {
        return;
    }
    // Responses are single small writes on a request/response socket:
    // without this, Nagle against the peer's delayed ACK stalls every
    // round trip by ~40 ms.
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Answer every complete frame already buffered.
        loop {
            match take_frame(&mut buf) {
                Ok(Some(frame)) => {
                    let text = String::from_utf8_lossy(&frame).into_owned();
                    let (resp, action) = handle_statement(shared, &text);
                    if write_frame(&mut stream, &resp.encode()).is_err() {
                        return;
                    }
                    match action {
                        Action::None => {}
                        Action::Shutdown => {
                            shared.shutdown.store(true, Ordering::Release);
                            return;
                        }
                        Action::Close => return,
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Oversized frame: structured refusal, then close —
                    // the stream offset is unrecoverable.
                    let resp = Response::error(0, format!("protocol: {e}"));
                    // sma-lint: allow(A3-error-swallowing) -- best-effort refusal on a connection being torn down
                    let _ = write_frame(&mut stream, &resp.encode());
                    return;
                }
            }
        }
        if shared.shutting_down() {
            // Drain point: nothing in flight, nothing buffered.
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            // sma-lint: allow(A3-error-swallowing) -- peer I/O failure ends the session; there is nobody left to report to
            Err(_) => return,
        }
    }
}

enum Action {
    None,
    Shutdown,
    Close,
}

// ------------------------------------------------------ request execution

fn handle_statement(shared: &Shared, text: &str) -> (Response, Action) {
    if shared.shutting_down() {
        return (
            Response::status_only(Status::ShuttingDown, 0, "server is draining"),
            Action::Close,
        );
    }
    let stmt = match Statement::parse(text) {
        Ok(s) => s,
        Err(e) => {
            return (
                Response::error(0, format!("parse error: {e}")),
                Action::None,
            )
        }
    };
    match stmt {
        Statement::Ping => {
            let epoch = shared.read_warehouse().epoch();
            (
                Response::status_only(Status::Ok, epoch, "pong"),
                Action::None,
            )
        }
        Statement::Epoch => {
            let epoch = shared.read_warehouse().epoch();
            (Response::status_only(Status::Ok, epoch, ""), Action::None)
        }
        Statement::Flush => {
            let mut sw = shared.write_warehouse();
            match sw.flush() {
                Ok(()) => (
                    Response::status_only(Status::Ok, sw.epoch(), "flushed"),
                    Action::None,
                ),
                Err(e) => (
                    Response::error(sw.epoch(), format!("flush: {e}")),
                    Action::None,
                ),
            }
        }
        Statement::Shutdown => {
            let epoch = shared.read_warehouse().epoch();
            (
                Response::status_only(Status::Ok, epoch, "shutting down"),
                Action::Shutdown,
            )
        }
        Statement::CreateTable { name, columns } => {
            let schema = Arc::new(Schema::new(
                columns
                    .into_iter()
                    .map(|(n, ty)| Column::new(n, ty))
                    .collect(),
            ));
            let mut sw = shared.write_warehouse();
            match sw.register(Table::in_memory(name.clone(), schema, 1)) {
                Ok(()) => (
                    Response::status_only(Status::Ok, sw.epoch(), format!("created {name}")),
                    Action::None,
                ),
                Err(e) => (
                    Response::error(sw.epoch(), format!("create table: {e}")),
                    Action::None,
                ),
            }
        }
        Statement::DefineSma { raw } => {
            let mut sw = shared.write_warehouse();
            match sw.define_sma(&raw) {
                Ok(()) => (
                    Response::status_only(Status::Ok, sw.epoch(), "sma defined"),
                    Action::None,
                ),
                Err(e) => (
                    Response::error(sw.epoch(), format!("define sma: {e}")),
                    Action::None,
                ),
            }
        }
        Statement::Insert { relation, values } => {
            let mut sw = shared.write_warehouse();
            let epoch = sw.epoch();
            let tuple = {
                let Some(table) = sw.warehouse().table(&relation) else {
                    return (
                        Response::error(epoch, format!("unknown relation `{relation}`")),
                        Action::None,
                    );
                };
                match bind_tuple(table.schema(), &values) {
                    Ok(t) => t,
                    Err(e) => return (Response::error(epoch, e), Action::None),
                }
            };
            match sw.insert(&relation, &tuple) {
                Ok(seq) => (
                    Response::status_only(Status::Ok, epoch, format!("acked seq {seq}")),
                    Action::None,
                ),
                Err(e) => (Response::error(epoch, format!("insert: {e}")), Action::None),
            }
        }
        Statement::Select {
            aggs,
            relation,
            predicates,
            group_by,
        } => {
            // Admission: bounded concurrent execution, shed with Busy.
            let Some(_permit) = shared.inflight.try_acquire() else {
                return (
                    Response::status_only(Status::Busy, 0, "query admission limit reached"),
                    Action::None,
                );
            };
            let mut budget = QueryBudget::unbounded();
            if let Some(d) = shared.deadline {
                budget = budget.with_deadline(d);
            }
            if let Some(p) = shared.page_budget {
                budget = budget.with_page_cap(p);
            }
            let sw = shared.read_warehouse();
            let epoch = sw.epoch();
            let query = {
                let Some(table) = sw.warehouse().table(&relation) else {
                    return (
                        Response::error(epoch, format!("unknown relation `{relation}`")),
                        Action::None,
                    );
                };
                match bind_query(table.schema(), &aggs, &predicates, &group_by) {
                    Ok(q) => q,
                    Err(e) => return (Response::error(epoch, e), Action::None),
                }
            };
            match sw.query_with_budget(&relation, query, &budget) {
                Ok(result) => {
                    let status = if result.degradation.is_empty() {
                        Status::Ok
                    } else {
                        Status::Degraded
                    };
                    let rows = result
                        .rows
                        .iter()
                        .map(|row| row.iter().map(|v| v.to_string()).collect())
                        .collect();
                    (
                        Response {
                            status,
                            epoch,
                            info: format!("{:?}", result.plan_kind),
                            rows,
                        },
                        Action::None,
                    )
                }
                Err(e) => (Response::error(epoch, format!("query: {e}")), Action::None),
            }
        }
    }
}

/// Binds raw literal texts to a tuple, typed by the relation's schema.
fn bind_tuple(schema: &Arc<Schema>, values: &[String]) -> Result<Vec<Value>, String> {
    if values.len() != schema.len() {
        return Err(format!(
            "expected {} values, got {}",
            schema.len(),
            values.len()
        ));
    }
    values
        .iter()
        .zip(schema.columns())
        .map(|(raw, c)| bind_value(raw, c.ty, &c.name))
        .collect()
}

fn bind_value(raw: &str, ty: DataType, col_name: &str) -> Result<Value, String> {
    match ty {
        DataType::Int => raw
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| format!("`{raw}` is not an int (column {col_name})")),
        DataType::Decimal => Decimal::parse(raw)
            .map(Value::Decimal)
            .map_err(|e| format!("`{raw}` is not a decimal (column {col_name}): {e}")),
        DataType::Date => Date::parse(raw)
            .map(Value::Date)
            .map_err(|e| format!("`{raw}` is not a date (column {col_name}): {e}")),
        DataType::Char => {
            let mut bytes = raw.bytes();
            match (bytes.next(), bytes.next()) {
                (Some(b), None) => Ok(Value::Char(b)),
                _ => Err(format!(
                    "`{raw}` is not a single-byte char (column {col_name})"
                )),
            }
        }
        DataType::Str => Ok(Value::Str(raw.to_string())),
    }
}

/// Binds a parsed `select` to an executable [`AggregateQuery`].
fn bind_query(
    schema: &Arc<Schema>,
    aggs: &[AggAst],
    predicates: &[PredAst],
    group_by: &[String],
) -> Result<AggregateQuery, String> {
    let col_idx = |name: &str| -> Result<usize, String> {
        schema
            .index_of(name)
            .ok_or_else(|| format!("unknown column `{name}`"))
    };
    let specs = aggs
        .iter()
        .map(|a| {
            Ok(match a {
                AggAst::CountStar => AggSpec::CountStar,
                AggAst::Min(c) => AggSpec::Min(col(col_idx(c)?)),
                AggAst::Max(c) => AggSpec::Max(col(col_idx(c)?)),
                AggAst::Sum(c) => AggSpec::Sum(col(col_idx(c)?)),
                AggAst::Avg(c) => AggSpec::Avg(col(col_idx(c)?)),
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let mut atoms = Vec::new();
    for p in predicates {
        let idx = col_idx(&p.column)?;
        let ty = schema.column(idx).ty;
        let value = bind_value(&p.literal, ty, &p.column)?;
        atoms.push(BucketPred::Cmp {
            col: idx,
            op: p.op,
            value,
        });
    }
    let pred = match atoms.len() {
        0 => BucketPred::And(Vec::new()), // vacuously true
        1 => atoms.swap_remove(0),
        _ => BucketPred::And(atoms),
    };
    let group_by = group_by
        .iter()
        .map(|c| col_idx(c))
        .collect::<Result<Vec<_>, String>>()?;
    Ok(AggregateQuery {
        pred,
        group_by,
        specs,
    })
}
