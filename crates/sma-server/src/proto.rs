//! The wire protocol: length-prefixed frames and the response codec.
//!
//! A frame is `u32` little-endian payload length followed by the
//! payload, capped at [`MAX_FRAME_BYTES`] in both directions — an
//! oversized length is a protocol error, not an allocation. Requests
//! carry a UTF-8 statement; responses carry:
//!
//! ```text
//! status   u8                  Ok | Degraded | Busy | Error | ShuttingDown
//! epoch    u64 LE              catalog epoch the request observed
//! info     u32 LE + bytes      plan name, message, or error text
//! rows     u32 LE row count, then per row:
//!            u32 LE column count, then per column: u32 LE + UTF-8 text
//! ```
//!
//! The payload of a successful query (`epoch` + `info` + `rows`) is
//! deterministic — no timings, no retry counters — so the chaos tests
//! can demand byte-identical replies between a concurrent run and a
//! single-client replay. Degradation is reported in the status byte
//! alone.

use std::fmt;
use std::io::{self, Read, Write};

use sma_types::bytes::{get_u32_le, get_u64_le, put_u32_le, put_u64_le};

/// Hard bound on a frame payload, both directions.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Response status byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The request succeeded on the healthy fast path.
    Ok,
    /// The request succeeded but the resilience layer degraded (bucket
    /// demotions or transient-I/O retries along the way).
    Degraded,
    /// Admission control shed the request; retry later.
    Busy,
    /// The request failed with the structured message in `info`.
    Error,
    /// The server is draining; the connection closes after this reply.
    ShuttingDown,
}

impl Status {
    fn code(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::Degraded => 1,
            Status::Busy => 2,
            Status::Error => 3,
            Status::ShuttingDown => 4,
        }
    }

    fn from_code(c: u8) -> Option<Status> {
        match c {
            0 => Some(Status::Ok),
            1 => Some(Status::Degraded),
            2 => Some(Status::Busy),
            3 => Some(Status::Error),
            4 => Some(Status::ShuttingDown),
            _ => None,
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One decoded response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Outcome class.
    pub status: Status,
    /// Catalog epoch the request observed (0 when not applicable).
    pub epoch: u64,
    /// Plan name, informational message, or error text.
    pub info: String,
    /// Result rows, every value rendered as text.
    pub rows: Vec<Vec<String>>,
}

impl Response {
    /// A result-less reply.
    pub fn status_only(status: Status, epoch: u64, info: impl Into<String>) -> Response {
        Response {
            status,
            epoch,
            info: info.into(),
            rows: Vec::new(),
        }
    }

    /// An [`Status::Error`] reply carrying a structured message.
    pub fn error(epoch: u64, info: impl Into<String>) -> Response {
        Response::status_only(Status::Error, epoch, info)
    }

    /// Encodes the response payload (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(self.status.code());
        put_u64_le(&mut out, self.epoch);
        put_str(&mut out, &self.info);
        put_u32_le(&mut out, clamp_u32(self.rows.len()));
        for row in &self.rows {
            put_u32_le(&mut out, clamp_u32(row.len()));
            for v in row {
                put_str(&mut out, v);
            }
        }
        out
    }

    /// Decodes a response payload (no frame header).
    pub fn decode(buf: &[u8]) -> Result<Response, ProtoError> {
        let mut off = 0usize;
        let status = Status::from_code(take_u8(buf, &mut off)?)
            .ok_or(ProtoError::Malformed("unknown status byte"))?;
        let epoch = take_u64(buf, &mut off)?;
        let info = take_str(buf, &mut off)?;
        let nrows = take_u32(buf, &mut off)? as usize;
        if nrows > MAX_FRAME_BYTES {
            return Err(ProtoError::Malformed("row count exceeds frame bound"));
        }
        let mut rows = Vec::with_capacity(nrows.min(1024));
        for _ in 0..nrows {
            let ncols = take_u32(buf, &mut off)? as usize;
            if ncols > MAX_FRAME_BYTES {
                return Err(ProtoError::Malformed("column count exceeds frame bound"));
            }
            let mut row = Vec::with_capacity(ncols.min(64));
            for _ in 0..ncols {
                row.push(take_str(buf, &mut off)?);
            }
            rows.push(row);
        }
        if off != buf.len() {
            return Err(ProtoError::Malformed("trailing bytes after response"));
        }
        Ok(Response {
            status,
            epoch,
            info,
            rows,
        })
    }
}

/// Protocol-layer failure.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying socket failed.
    Io(io::Error),
    /// A frame announced a payload larger than [`MAX_FRAME_BYTES`].
    FrameTooLarge {
        /// Announced payload length.
        len: usize,
        /// The bound it violated.
        max: usize,
    },
    /// The payload did not decode.
    Malformed(&'static str),
    /// The peer closed the connection mid-frame.
    ConnectionClosed,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "socket: {e}"),
            ProtoError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte bound")
            }
            ProtoError::Malformed(what) => write!(f, "malformed payload: {what}"),
            ProtoError::ConnectionClosed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> ProtoError {
        ProtoError::Io(e)
    }
}

/// Writes one frame (header + payload) to `w`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ProtoError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(ProtoError::FrameTooLarge {
            len: payload.len(),
            max: MAX_FRAME_BYTES,
        });
    }
    let mut header = Vec::with_capacity(4);
    put_u32_le(&mut header, clamp_u32(payload.len()));
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Blocking read of one full frame from `r` (client side).
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, ProtoError> {
    let mut header = [0u8; 4];
    read_exact_or_closed(r, &mut header)?;
    let len = get_u32_le(&header, 0).ok_or(ProtoError::Malformed("short header"))? as usize;
    if len > MAX_FRAME_BYTES {
        return Err(ProtoError::FrameTooLarge {
            len,
            max: MAX_FRAME_BYTES,
        });
    }
    let mut payload = vec![0u8; len];
    read_exact_or_closed(r, &mut payload)?;
    Ok(payload)
}

/// Pops one complete frame off an accumulation buffer (server side —
/// the session loop appends whatever the socket yields and drains
/// complete frames here). `Ok(None)` means "not enough bytes yet".
pub fn take_frame(buf: &mut Vec<u8>) -> Result<Option<Vec<u8>>, ProtoError> {
    let Some(len) = get_u32_le(buf, 0) else {
        return Ok(None);
    };
    let len = len as usize;
    if len > MAX_FRAME_BYTES {
        return Err(ProtoError::FrameTooLarge {
            len,
            max: MAX_FRAME_BYTES,
        });
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let payload = buf[4..4 + len].to_vec();
    buf.drain(..4 + len);
    Ok(Some(payload))
}

fn read_exact_or_closed(r: &mut impl Read, out: &mut [u8]) -> Result<(), ProtoError> {
    r.read_exact(out).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtoError::ConnectionClosed
        } else {
            ProtoError::Io(e)
        }
    })
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32_le(out, clamp_u32(s.len()));
    out.extend_from_slice(s.as_bytes());
}

fn take_u8(buf: &[u8], off: &mut usize) -> Result<u8, ProtoError> {
    let b = *buf
        .get(*off)
        .ok_or(ProtoError::Malformed("short payload"))?;
    *off += 1;
    Ok(b)
}

fn take_u32(buf: &[u8], off: &mut usize) -> Result<u32, ProtoError> {
    let v = get_u32_le(buf, *off).ok_or(ProtoError::Malformed("short payload"))?;
    *off += 4;
    Ok(v)
}

fn take_u64(buf: &[u8], off: &mut usize) -> Result<u64, ProtoError> {
    let v = get_u64_le(buf, *off).ok_or(ProtoError::Malformed("short payload"))?;
    *off += 8;
    Ok(v)
}

fn take_str(buf: &[u8], off: &mut usize) -> Result<String, ProtoError> {
    let len = take_u32(buf, off)? as usize;
    let end = off
        .checked_add(len)
        .filter(|&e| e <= buf.len())
        .ok_or(ProtoError::Malformed("string runs past payload"))?;
    let s = String::from_utf8(buf[*off..end].to_vec())
        .map_err(|_| ProtoError::Malformed("non-UTF-8 string"))?;
    *off = end;
    Ok(s)
}

/// Saturating length clamp — frame bounds keep real values far below.
fn clamp_u32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_roundtrips() {
        let r = Response {
            status: Status::Degraded,
            epoch: 42,
            info: "SmaGAggr".into(),
            rows: vec![vec!["A".into(), "7".into()], vec!["B".into(), "9".into()]],
        };
        let bytes = r.encode();
        assert_eq!(Response::decode(&bytes).unwrap(), r);
    }

    #[test]
    fn every_status_roundtrips() {
        for s in [
            Status::Ok,
            Status::Degraded,
            Status::Busy,
            Status::Error,
            Status::ShuttingDown,
        ] {
            let r = Response::status_only(s, 1, "x");
            assert_eq!(Response::decode(&r.encode()).unwrap().status, s);
        }
    }

    #[test]
    fn truncated_and_trailing_payloads_are_rejected() {
        let r = Response::status_only(Status::Ok, 3, "hello");
        let bytes = r.encode();
        for cut in 0..bytes.len() {
            assert!(
                Response::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(Response::decode(&extended).is_err());
    }

    #[test]
    fn take_frame_handles_partial_and_multiple_frames() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"first").unwrap();
        write_frame(&mut wire, b"second").unwrap();

        let mut buf = Vec::new();
        // Feed byte-by-byte: take_frame must never yield a torn frame.
        let mut got = Vec::new();
        for b in wire {
            buf.push(b);
            while let Some(frame) = take_frame(&mut buf).unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(got, vec![b"first".to_vec(), b"second".to_vec()]);
        assert!(buf.is_empty());
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocating() {
        let mut buf = Vec::new();
        put_u32_le(&mut buf, u32::MAX);
        assert!(matches!(
            take_frame(&mut buf),
            Err(ProtoError::FrameTooLarge { .. })
        ));
        let huge = vec![0u8; MAX_FRAME_BYTES + 1];
        let mut sink = Vec::new();
        assert!(matches!(
            write_frame(&mut sink, &huge),
            Err(ProtoError::FrameTooLarge { .. })
        ));
    }
}
