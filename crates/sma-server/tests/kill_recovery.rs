//! `kill -9` the server mid-ingest; restart; count the survivors.
//!
//! The acceptance bar: **zero acked-row loss**. Every insert the client
//! saw an `Ok` for must be present after an uncoordinated process kill
//! and a recovery restart — the WAL ack contract, end to end through
//! the real binary, the real socket, and the real filesystem.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use sma_server::proto::Status;
use sma_server::Client;

struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    /// Spawns the real binary on an ephemeral port and waits for its
    /// `listening <addr>` line.
    fn spawn(dir: &std::path::Path) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_sma-server"))
            .args([
                "--dir",
                dir.to_str().unwrap(),
                "--addr",
                "127.0.0.1:0",
                "--batch-rows",
                "1",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn sma-server");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read listening line");
        let addr = line
            .strip_prefix("listening ")
            .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
            .trim()
            .to_string();
        ServerProc { child, addr }
    }

    fn client(&self) -> Client {
        let mut c = Client::connect(self.addr.as_str()).expect("connect");
        c.set_timeout(Some(Duration::from_secs(30))).unwrap();
        c
    }

    fn kill9(mut self) {
        self.child.kill().expect("kill -9");
        self.child.wait().expect("reap");
    }

    fn wait(mut self) {
        let status = self.child.wait().expect("reap");
        assert!(status.success(), "server exited with {status}");
    }
}

#[test]
fn kill_nine_mid_ingest_loses_no_acked_row() {
    let dir = std::env::temp_dir().join(format!("sma-server-kill9-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // First incarnation: create a relation, ack 40 rows, die hard.
    let server = ServerProc::spawn(&dir);
    let mut c = server.client();
    let r = c.request("create table T (X int)").unwrap();
    assert_eq!(r.status, Status::Ok, "{}", r.info);
    let r = c
        .request("define sma t_cnt select count(*) from T")
        .unwrap();
    assert_eq!(r.status, Status::Ok, "{}", r.info);
    let acked = 40i64;
    for i in 0..acked {
        let r = c.request(&format!("insert into T values ({i})")).unwrap();
        assert_eq!(r.status, Status::Ok, "insert {i}: {}", r.info);
    }
    server.kill9();

    // Second incarnation over the same directory: recovery must
    // resurrect every acknowledged row — and stay fully operational.
    let server = ServerProc::spawn(&dir);
    let mut c = server.client();
    let r = c.request("select count(*), min(X), max(X) from T").unwrap();
    assert!(
        matches!(r.status, Status::Ok | Status::Degraded),
        "{:?} {}",
        r.status,
        r.info
    );
    assert_eq!(
        r.rows,
        vec![vec![
            acked.to_string(),
            "0".to_string(),
            (acked - 1).to_string()
        ]],
        "acked rows lost across kill -9"
    );
    // Still writable after recovery.
    let r = c
        .request(&format!("insert into T values ({acked})"))
        .unwrap();
    assert_eq!(r.status, Status::Ok, "{}", r.info);
    let r = c.request("select count(*) from T").unwrap();
    assert_eq!(r.rows, vec![vec![(acked + 1).to_string()]]);

    // Graceful exit this time.
    assert_eq!(c.request("shutdown").unwrap().status, Status::Ok);
    server.wait();

    // Third incarnation: the graceful drain left nothing to replay and
    // the post-recovery insert survived too.
    let server = ServerProc::spawn(&dir);
    let mut c = server.client();
    let r = c.request("select count(*) from T").unwrap();
    assert_eq!(r.rows, vec![vec![(acked + 1).to_string()]]);
    assert_eq!(c.request("shutdown").unwrap().status, Status::Ok);
    server.wait();

    std::fs::remove_dir_all(&dir).unwrap();
}
