//! Calendar dates stored as days since the Unix epoch (1970-01-01).
//!
//! TPC-D dates span 1992-01-01 … 1998-12-31; the paper's data-cube
//! arithmetic uses a 7-year / 2556-day range (§2.4). We implement a full
//! proleptic Gregorian calendar so date arithmetic (`DATE '1998-12-01' -
//! INTERVAL delta DAY` in Query 1) is exact.
//!
//! The civil-from-days / days-from-civil algorithms are the classic
//! branchless era-based conversions (Hinnant), valid for all i32 day counts
//! we use.

use std::fmt;

/// A calendar date, internally the number of days since 1970-01-01.
///
/// `Date` is `Copy`, 4 bytes, totally ordered, and supports day-level
/// arithmetic — matching the paper's assumption that a date fits in 32 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date(i32);

/// Error produced when parsing or constructing an invalid date.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DateError(pub String);

impl fmt::Display for DateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid date: {}", self.0)
    }
}

impl std::error::Error for DateError {}

/// Days from civil date to epoch offset (Hinnant's `days_from_civil`).
fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u32; // [0, 399]
    let mp = (m + 9) % 12; // Mar=0 … Feb=11
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe as i32 - 719468
}

/// Civil date from epoch offset (Hinnant's `civil_from_days`).
fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = (z - era * 146097) as u32; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe as i32 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// True iff `y` is a Gregorian leap year.
pub fn is_leap_year(y: i32) -> bool {
    y % 4 == 0 && (y % 100 != 0 || y % 400 == 0)
}

/// Number of days in month `m` of year `y`.
pub fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(y) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

impl Date {
    /// First day TPC-D generates (start of the benchmark's 7-year window).
    pub const TPCD_MIN: Date = Date::from_days(days_from_civil_const(1992, 1, 1));
    /// Last day TPC-D generates.
    pub const TPCD_MAX: Date = Date::from_days(days_from_civil_const(1998, 12, 31));

    /// Builds a date from a raw day count since 1970-01-01.
    pub const fn from_days(days: i32) -> Date {
        Date(days)
    }

    /// Day count since 1970-01-01.
    pub const fn days(self) -> i32 {
        self.0
    }

    /// Builds a date from year/month/day, validating the calendar.
    pub fn from_ymd(y: i32, m: u32, d: u32) -> Result<Date, DateError> {
        if !(1..=12).contains(&m) || d == 0 || d > days_in_month(y, m) {
            return Err(DateError(format!("{y:04}-{m:02}-{d:02}")));
        }
        Ok(Date(days_from_civil(y, m, d)))
    }

    /// Year/month/day triple of this date.
    pub fn ymd(self) -> (i32, u32, u32) {
        civil_from_days(self.0)
    }

    /// This date plus `n` days (negative `n` subtracts).
    #[must_use]
    pub fn add_days(self, n: i32) -> Date {
        Date(self.0 + n)
    }

    /// Signed distance `self - other` in days.
    pub fn days_between(self, other: Date) -> i32 {
        self.0 - other.0
    }

    /// Parses `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Result<Date, DateError> {
        let mut it = s.split('-');
        let (Some(y), Some(m), Some(d), None) = (it.next(), it.next(), it.next(), it.next()) else {
            return Err(DateError(s.to_string()));
        };
        let y: i32 = y.parse().map_err(|_| DateError(s.to_string()))?;
        let m: u32 = m.parse().map_err(|_| DateError(s.to_string()))?;
        let d: u32 = d.parse().map_err(|_| DateError(s.to_string()))?;
        Date::from_ymd(y, m, d)
    }
}

/// `const`-evaluable copy of [`days_from_civil`] for use in constants.
const fn days_from_civil_const(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u32;
    let mp = (m + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146097 + doe as i32 - 719468
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StdRng;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(Date::from_ymd(1970, 1, 1).unwrap().days(), 0);
    }

    #[test]
    fn known_dates() {
        // Verified against an independent calendar.
        assert_eq!(Date::from_ymd(1992, 1, 1).unwrap().days(), 8035);
        assert_eq!(Date::from_ymd(1998, 12, 31).unwrap().days(), 10591);
        assert_eq!(Date::from_ymd(2000, 3, 1).unwrap().days(), 11017);
    }

    #[test]
    fn tpcd_window_is_seven_years() {
        // The paper's cube arithmetic uses a 2556-day range for 7 years.
        let span = Date::TPCD_MAX.days_between(Date::TPCD_MIN) + 1;
        assert_eq!(span, 2557); // 1992..=1998 includes two leap years
                                // The paper rounds to 2556; we keep the exact span and
                                // reproduce 2556 in the cube model (see sma-cube).
    }

    #[test]
    fn leap_years() {
        assert!(is_leap_year(1992));
        assert!(is_leap_year(1996));
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(1997));
        assert_eq!(days_in_month(1996, 2), 29);
        assert_eq!(days_in_month(1997, 2), 28);
    }

    #[test]
    fn rejects_invalid() {
        assert!(Date::from_ymd(1997, 2, 29).is_err());
        assert!(Date::from_ymd(1997, 13, 1).is_err());
        assert!(Date::from_ymd(1997, 0, 1).is_err());
        assert!(Date::from_ymd(1997, 4, 31).is_err());
        assert!(Date::from_ymd(1997, 4, 0).is_err());
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["1997-04-30", "1992-01-01", "1998-12-01", "1996-02-29"] {
            assert_eq!(Date::parse(s).unwrap().to_string(), s);
        }
        assert!(Date::parse("1997/04/30").is_err());
        assert!(Date::parse("1997-04").is_err());
        assert!(Date::parse("1997-04-30-1").is_err());
        assert!(Date::parse("abcd-ef-gh").is_err());
    }

    #[test]
    fn query1_date_arithmetic() {
        // WHERE L_SHIPDATE <= DATE '1998-12-01' - INTERVAL 90 DAY
        let cutoff = Date::parse("1998-12-01").unwrap().add_days(-90);
        assert_eq!(cutoff.to_string(), "1998-09-02");
    }

    #[test]
    fn ordering_matches_day_count() {
        let a = Date::parse("1997-04-30").unwrap();
        let b = Date::parse("1997-05-01").unwrap();
        assert!(a < b);
        assert_eq!(b.days_between(a), 1);
    }

    #[test]
    fn ymd_roundtrip_random() {
        let mut rng = StdRng::seed_from_u64(0xDA7E1);
        for _ in 0..1024 {
            let d = Date::from_days(rng.random_range(-200_000i32..200_000));
            let (y, m, dd) = d.ymd();
            assert_eq!(Date::from_ymd(y, m, dd).unwrap(), d);
        }
    }

    #[test]
    fn add_days_is_consistent_random() {
        let mut rng = StdRng::seed_from_u64(0xDA7E2);
        for _ in 0..1024 {
            let d = Date::from_days(rng.random_range(-100_000i32..100_000));
            let n = rng.random_range(-5_000i32..5_000);
            assert_eq!(d.add_days(n).days_between(d), n);
        }
    }

    #[test]
    fn display_parse_roundtrip_random() {
        let mut rng = StdRng::seed_from_u64(0xDA7E3);
        for _ in 0..1024 {
            let d = Date::from_days(rng.random_range(-100_000i32..100_000));
            assert_eq!(Date::parse(&d.to_string()).unwrap(), d);
        }
    }
}
