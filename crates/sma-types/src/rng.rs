//! Deterministic pseudo-random numbers for data generation and tests.
//!
//! The workspace builds offline, so instead of the `rand` crate this module
//! provides a small, seedable generator with the handful of operations the
//! TPC-D generator and the property tests need: uniform ranges, floats in
//! `[0, 1)`, and Fisher–Yates shuffles. The core is SplitMix64 (Steele,
//! Lea & Flood, *Fast Splittable Pseudorandom Number Generators*), which
//! passes BigCrush and is more than adequate for benchmark data.
//!
//! Determinism is a feature: the same seed always produces the same table,
//! which the paper's experiments (and our regression tests) rely on.

use std::ops::{Range, RangeInclusive};

/// A seedable SplitMix64 generator.
///
/// The name mirrors `rand::rngs::StdRng` so call sites read naturally; the
/// algorithm is fixed forever, making generated datasets reproducible
/// across versions.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> StdRng {
        StdRng { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` (53 bits of precision).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform value in `range`, which may be half-open (`a..b`) or
    /// inclusive (`a..=b`) over the integer types used in this workspace,
    /// or half-open over `f64`. Panics on an empty range.
    pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A uniform boolean.
    pub fn random_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fisher–Yates shuffle of `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.random_range(0..=i);
            items.swap(i, j);
        }
    }
}

/// Range types [`StdRng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from `self`.
    fn sample(self, rng: &mut StdRng) -> T;
}

/// Uniform integer in `[lo, hi]` via 128-bit span arithmetic, so spans
/// like `i64::MIN..=i64::MAX` cannot overflow. Uses modulo reduction: the
/// bias is below 2⁻⁶⁴·span, invisible at the sample counts we draw.
fn sample_inclusive(rng: &mut StdRng, lo: i128, hi: i128) -> i128 {
    assert!(lo <= hi, "cannot sample from empty range");
    let span = (hi - lo) as u128 + 1;
    if span == 0 {
        // Full 2^128 span is unreachable from the integer types below.
        return rng.next_u64() as i128;
    }
    lo + (rng.next_u64() as u128 % span) as i128
}

macro_rules! impl_int_sample {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                sample_inclusive(rng, self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                sample_inclusive(rng, *self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

impl_int_sample!(i32, i64, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let v = rng.random_range(0usize..=3);
            assert!(v <= 3);
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 4 values drawn: {seen:?}");
    }

    #[test]
    fn extreme_spans_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let _ = rng.random_range(i64::MIN..=i64::MAX);
            let _ = rng.random_range(u64::MIN..=u64::MAX);
            let _ = rng.random_range(i32::MIN..=i32::MAX);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut items: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // And with overwhelming probability not the identity.
        assert_ne!(items, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        StdRng::seed_from_u64(0).random_range(3i64..3);
    }
}
