//! Zero-copy tuple views and projection pushdown.
//!
//! A [`RowView`] reads individual columns straight out of an encoded
//! tuple image (the [`crate::row`] layout) without materializing a
//! [`crate::Tuple`]: fixed-width slots are read at offsets computed once
//! per schema by [`RowLayout`], and string payloads are borrowed from the
//! var section of the image. A [`Projection`] names the column subset an
//! operator actually needs, so scan kernels can prove up front that a hot
//! loop touches only fixed-width slots and therefore never allocates.
//!
//! Borrowing rules: a `RowView` borrows both its layout and the page
//! frame holding the image, so it lives only inside the storage layer's
//! lending visitors (`Table::for_each_in_bucket`). Anything that must
//! outlive the visit is materialized into an owned `Tuple` via
//! [`RowView::materialize`].

use std::cmp::Ordering;

use crate::bytes;
use crate::date::Date;
use crate::decimal::Decimal;
use crate::row::CodecError;
use crate::schema::{DataType, Schema};
use crate::value::Value;

/// Schema-derived byte offsets of the row codec, computed once per scan
/// and shared by every [`RowView`] of that scan.
#[derive(Debug, Clone)]
pub struct RowLayout {
    /// Bytes of null bitmap at the head of the image.
    bitmap_len: usize,
    /// Per column: data type and byte offset of its fixed slot.
    cols: Vec<(DataType, usize)>,
    /// Offset of the var section (= bitmap + all fixed slots).
    var_start: usize,
}

impl RowLayout {
    /// Computes the layout of tuples encoded under `schema`.
    pub fn new(schema: &Schema) -> RowLayout {
        let bitmap_len = schema.len().div_ceil(8);
        let mut off = bitmap_len;
        let cols = schema
            .columns()
            .iter()
            .map(|c| {
                let slot = off;
                off += c.ty.fixed_width();
                (c.ty, slot)
            })
            .collect();
        RowLayout {
            bitmap_len,
            cols,
            var_start: off,
        }
    }

    /// Number of columns in the underlying schema.
    pub fn columns(&self) -> usize {
        self.cols.len()
    }

    /// Bytes of null bitmap at the head of every image.
    pub fn bitmap_len(&self) -> usize {
        self.bitmap_len
    }

    /// Byte offset of the var section (bitmap plus all fixed slots) —
    /// also the minimum valid image length.
    pub fn var_start(&self) -> usize {
        self.var_start
    }

    /// The declared type of column `col`.
    pub fn data_type(&self, col: usize) -> DataType {
        self.cols[col].0
    }

    /// Wraps `image` in a view. Errors if the image is shorter than the
    /// bitmap plus fixed sections (the same bound [`crate::row::decode`]
    /// enforces); var-section bounds are checked lazily on access.
    pub fn view<'a>(&'a self, image: &'a [u8]) -> Result<RowView<'a>, CodecError> {
        if image.len() < self.var_start {
            return Err(CodecError(format!(
                "image too short: {} bytes, need at least {}",
                image.len(),
                self.var_start
            )));
        }
        Ok(RowView {
            layout: self,
            image,
        })
    }
}

/// A borrowed, column-at-a-time view of one encoded tuple image.
///
/// Every accessor is allocation-free except [`RowView::get`] on a `Str`
/// column (which must produce an owned [`Value::Str`]).
#[derive(Clone, Copy)]
pub struct RowView<'a> {
    layout: &'a RowLayout,
    image: &'a [u8],
}

impl<'a> RowView<'a> {
    /// Number of columns.
    pub fn columns(&self) -> usize {
        self.layout.columns()
    }

    /// Whether column `col` is SQL `NULL` (null-bitmap bit set).
    pub fn is_null(&self, col: usize) -> bool {
        self.image[col / 8] & (1 << (col % 8)) != 0
    }

    fn slot(&self, col: usize) -> &'a [u8] {
        let (ty, off) = self.layout.cols[col];
        &self.image[off..off + ty.fixed_width()]
    }

    /// The `i64` at an `Int` column; `None` when null.
    pub fn int_at(&self, col: usize) -> Option<i64> {
        debug_assert_eq!(self.layout.data_type(col), DataType::Int);
        if self.is_null(col) {
            return None;
        }
        bytes::get_i64_le(self.slot(col), 0)
    }

    /// The [`Decimal`] at a `Decimal` column; `None` when null.
    pub fn decimal_at(&self, col: usize) -> Option<Decimal> {
        debug_assert_eq!(self.layout.data_type(col), DataType::Decimal);
        if self.is_null(col) {
            return None;
        }
        bytes::get_i64_le(self.slot(col), 0).map(Decimal::from_cents)
    }

    /// The [`Date`] at a `Date` column; `None` when null.
    pub fn date_at(&self, col: usize) -> Option<Date> {
        debug_assert_eq!(self.layout.data_type(col), DataType::Date);
        if self.is_null(col) {
            return None;
        }
        bytes::get_i32_le(self.slot(col), 0).map(Date::from_days)
    }

    /// The flag byte at a `Char` column; `None` when null.
    pub fn char_at(&self, col: usize) -> Option<u8> {
        debug_assert_eq!(self.layout.data_type(col), DataType::Char);
        if self.is_null(col) {
            return None;
        }
        self.slot(col).first().copied()
    }

    /// The borrowed payload of a `Str` column; `Ok(None)` when null.
    ///
    /// Walks the length slots of the preceding non-null `Str` columns to
    /// locate the payload, exactly mirroring [`crate::row::decode`]'s var
    /// cursor (null strings contribute no var bytes).
    pub fn str_at(&self, col: usize) -> Result<Option<&'a str>, CodecError> {
        debug_assert_eq!(self.layout.data_type(col), DataType::Str);
        if self.is_null(col) {
            return Ok(None);
        }
        let too_short = |what: &str| CodecError(format!("string column {what} slot out of bounds"));
        let mut var_pos = self.layout.var_start;
        for (i, &(ty, off)) in self
            .layout
            .cols
            .get(..col)
            .unwrap_or(&[])
            .iter()
            .enumerate()
        {
            if ty == DataType::Str && !self.is_null(i) {
                let len = bytes::get_u16_le(self.image, off).ok_or_else(|| too_short("length"))?;
                var_pos += usize::from(len);
            }
        }
        let len =
            usize::from(bytes::get_u16_le(self.slot(col), 0).ok_or_else(|| too_short("payload"))?);
        let end = var_pos + len;
        if end > self.image.len() {
            return Err(CodecError(format!(
                "string column {col} overruns image ({} > {})",
                end,
                self.image.len()
            )));
        }
        std::str::from_utf8(&self.image[var_pos..end])
            .map(Some)
            .map_err(|e| CodecError(format!("invalid utf-8 in column {col}: {e}")))
    }

    /// The column as an owned [`Value`] — allocates only for `Str`.
    pub fn get(&self, col: usize) -> Result<Value, CodecError> {
        if self.is_null(col) {
            return Ok(Value::Null);
        }
        // The accessors return `None` only for null columns, which the
        // check above already routed to `Value::Null`; mapping a residual
        // `None` back to `Null` keeps every path total without a panic.
        Ok(match self.layout.data_type(col) {
            DataType::Int => self.int_at(col).map(Value::Int).unwrap_or(Value::Null),
            DataType::Decimal => self
                .decimal_at(col)
                .map(Value::Decimal)
                .unwrap_or(Value::Null),
            DataType::Date => self.date_at(col).map(Value::Date).unwrap_or(Value::Null),
            DataType::Char => self.char_at(col).map(Value::Char).unwrap_or(Value::Null),
            DataType::Str => self
                .str_at(col)?
                .map(|s| Value::Str(s.to_string()))
                .unwrap_or(Value::Null),
        })
    }

    /// Compares column `col` against a constant with the semantics of
    /// [`Value::partial_cmp_typed`]: `None` when the column is null, the
    /// constant is `Null`, the types differ, or `col` is out of range.
    /// No allocation for any type (strings compare borrowed).
    pub fn cmp_value(&self, col: usize, other: &Value) -> Result<Option<Ordering>, CodecError> {
        if col >= self.columns() || self.is_null(col) {
            return Ok(None);
        }
        Ok(match (self.layout.data_type(col), other) {
            (DataType::Int, Value::Int(b)) => self.int_at(col).map(|v| v.cmp(b)),
            (DataType::Decimal, Value::Decimal(b)) => self.decimal_at(col).map(|v| v.cmp(b)),
            (DataType::Date, Value::Date(b)) => self.date_at(col).map(|v| v.cmp(b)),
            (DataType::Char, Value::Char(b)) => self.char_at(col).map(|v| v.cmp(b)),
            (DataType::Str, Value::Str(b)) => self.str_at(col)?.map(|v| v.cmp(b.as_str())),
            _ => None,
        })
    }

    /// Compares two columns of this row under the same typed semantics.
    pub fn cmp_cols(&self, left: usize, right: usize) -> Result<Option<Ordering>, CodecError> {
        if left >= self.columns() || right >= self.columns() {
            return Ok(None);
        }
        if self.is_null(left) || self.is_null(right) {
            return Ok(None);
        }
        fn both<T: Ord>(a: Option<T>, b: Option<T>) -> Option<Ordering> {
            match (a, b) {
                (Some(a), Some(b)) => Some(a.cmp(&b)),
                _ => None,
            }
        }
        Ok(
            match (self.layout.data_type(left), self.layout.data_type(right)) {
                (DataType::Int, DataType::Int) => both(self.int_at(left), self.int_at(right)),
                (DataType::Decimal, DataType::Decimal) => {
                    both(self.decimal_at(left), self.decimal_at(right))
                }
                (DataType::Date, DataType::Date) => both(self.date_at(left), self.date_at(right)),
                (DataType::Char, DataType::Char) => both(self.char_at(left), self.char_at(right)),
                (DataType::Str, DataType::Str) => both(self.str_at(left)?, self.str_at(right)?),
                _ => None,
            },
        )
    }

    /// Decodes the full row into an owned tuple (the operator-boundary
    /// materialization). Equivalent to [`crate::row::decode`].
    pub fn materialize(&self) -> Result<Vec<Value>, CodecError> {
        (0..self.columns()).map(|c| self.get(c)).collect()
    }
}

/// The set of columns an operator needs from each tuple, in ascending
/// order without duplicates — the unit of projection pushdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Projection {
    cols: Vec<usize>,
}

impl Projection {
    /// A projection over exactly `cols` (sorted, deduplicated here).
    pub fn new(mut cols: Vec<usize>) -> Projection {
        cols.sort_unstable();
        cols.dedup();
        Projection { cols }
    }

    /// Every column of `schema`.
    pub fn all(schema: &Schema) -> Projection {
        Projection {
            cols: (0..schema.len()).collect(),
        }
    }

    /// The projected column indexes, ascending.
    pub fn columns(&self) -> &[usize] {
        &self.cols
    }

    /// Whether `col` is projected.
    pub fn contains(&self, col: usize) -> bool {
        self.cols.binary_search(&col).is_ok()
    }

    /// True when every projected column of `schema` has a fixed-width
    /// type — the precondition for a fully allocation-free scan kernel
    /// (no `Str` payloads, so no owned `String` ever needs to exist).
    pub fn is_fixed_width_only(&self, schema: &Schema) -> bool {
        self.cols
            .iter()
            .all(|&c| c < schema.len() && schema.column(c).ty != DataType::Str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::encode;
    use crate::schema::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("K", DataType::Int),
            Column::new("P", DataType::Decimal),
            Column::new("D", DataType::Date),
            Column::new("F", DataType::Char),
            Column::new("S", DataType::Str),
            Column::new("T", DataType::Str),
        ])
    }

    #[test]
    fn typed_accessors_read_the_encoded_values() {
        let s = schema();
        let t = vec![
            Value::Int(-42),
            Value::Decimal(Decimal::from_cents(123456)),
            Value::Date(Date::parse("1997-04-30").unwrap()),
            Value::Char(b'N'),
            Value::Str("hello".into()),
            Value::Str("".into()),
        ];
        let mut buf = Vec::new();
        encode(&s, &t, &mut buf).unwrap();
        let layout = RowLayout::new(&s);
        let row = layout.view(&buf).unwrap();
        assert_eq!(row.int_at(0), Some(-42));
        assert_eq!(row.decimal_at(1), Some(Decimal::from_cents(123456)));
        assert_eq!(row.date_at(2), Some(Date::parse("1997-04-30").unwrap()));
        assert_eq!(row.char_at(3), Some(b'N'));
        assert_eq!(row.str_at(4).unwrap(), Some("hello"));
        assert_eq!(row.str_at(5).unwrap(), Some(""));
        assert_eq!(row.materialize().unwrap(), t);
    }

    #[test]
    fn null_str_columns_shift_no_var_bytes() {
        let s = schema();
        let t = vec![
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Str("tail".into()),
        ];
        let mut buf = Vec::new();
        encode(&s, &t, &mut buf).unwrap();
        let layout = RowLayout::new(&s);
        let row = layout.view(&buf).unwrap();
        assert!(row.is_null(0) && row.is_null(4));
        assert_eq!(row.str_at(4).unwrap(), None);
        assert_eq!(row.str_at(5).unwrap(), Some("tail"));
        assert_eq!(row.int_at(0), None);
    }

    #[test]
    fn short_images_are_rejected() {
        let s = schema();
        let layout = RowLayout::new(&s);
        assert!(layout.view(&[]).is_err());
        let mut buf = Vec::new();
        encode(
            &s,
            &[
                Value::Int(1),
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
            ],
            &mut buf,
        )
        .unwrap();
        assert!(layout.view(&buf[..buf.len() - 1]).is_err());
        // Truncating only the var section passes construction but fails
        // the lazy bounds check on access.
        let t = vec![
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Str("long enough".into()),
            Value::Null,
        ];
        let mut buf = Vec::new();
        encode(&s, &t, &mut buf).unwrap();
        let short = &buf[..buf.len() - 3];
        let row = layout.view(short).unwrap();
        assert!(row.str_at(4).is_err());
        assert!(row.get(4).is_err());
        assert!(row.materialize().is_err());
    }

    #[test]
    fn cmp_value_mirrors_partial_cmp_typed() {
        let s = schema();
        let t = vec![
            Value::Int(7),
            Value::Decimal(Decimal::from_cents(250)),
            Value::Null,
            Value::Char(b'A'),
            Value::Str("mm".into()),
            Value::Null,
        ];
        let mut buf = Vec::new();
        encode(&s, &t, &mut buf).unwrap();
        let layout = RowLayout::new(&s);
        let row = layout.view(&buf).unwrap();
        for (col, probe) in [
            (0, Value::Int(8)),
            (0, Value::Decimal(Decimal::from_cents(8))), // type mismatch
            (1, Value::Decimal(Decimal::from_cents(250))),
            (2, Value::Date(Date::from_days(0))), // null column
            (3, Value::Char(b'A')),
            (4, Value::Str("zz".into())),
            (4, Value::Null),
        ] {
            assert_eq!(
                row.cmp_value(col, &probe).unwrap(),
                t[col].partial_cmp_typed(&probe),
                "col {col} vs {probe:?}"
            );
        }
        // Out of range is None, matching `tuple.get(col)` semantics.
        assert_eq!(row.cmp_value(99, &Value::Int(1)).unwrap(), None);
        assert_eq!(row.cmp_cols(0, 99).unwrap(), None);
        assert_eq!(row.cmp_cols(0, 1).unwrap(), None); // Int vs Decimal
        assert_eq!(row.cmp_cols(4, 4).unwrap(), Some(Ordering::Equal));
    }

    #[test]
    fn projection_normalizes_and_classifies() {
        let s = schema();
        let p = Projection::new(vec![3, 0, 3, 2]);
        assert_eq!(p.columns(), &[0, 2, 3]);
        assert!(p.contains(2) && !p.contains(1));
        assert!(p.is_fixed_width_only(&s));
        assert!(!Projection::new(vec![0, 4]).is_fixed_width_only(&s));
        assert_eq!(Projection::all(&s).columns().len(), s.len());
        assert!(!Projection::all(&s).is_fixed_width_only(&s));
    }
}
