//! Columnar (PAX) bucket blocks — the sealed-data layout.
//!
//! A [`ColumnarBucket`] holds every live tuple of one table bucket with
//! the values rearranged column-by-column: fixed-width columns become
//! contiguous typed arrays, `Str` columns become an offset array plus a
//! byte heap, and every column carries a validity bitmap for `Null`s.
//! The paper computes per-bucket `min`/`max` columnwise (§2.4); this is
//! the storage layout that makes the scan side columnwise too.
//!
//! The block is a *logical* unit: `sma-storage` chunks the encoded blob
//! across the bucket's existing page range (each chunk page CRC-footered
//! like any other page), so buckets keep their physical extent and SMA
//! files keep their positional alignment. Blocks are immutable — the
//! row store handles ingest, and the flush/compaction paths convert
//! sealed buckets (see `Table::convert_bucket_to_columnar`).
//!
//! Wire format (all little-endian, self-describing, CRC covered by the
//! page footers of the chunks that carry it):
//!
//! ```text
//! "SMCB" | version u8 | n_cols u16 | n_rows u32
//! then per column:
//!   dtype tag u8
//!   validity bitmap  ceil(n_rows / 8) bytes (bit i set = row i non-null)
//!   data:
//!     Int / Decimal   n_rows x i64   (decimal = scaled cents)
//!     Date            n_rows x i32   (days)
//!     Char            n_rows x u8
//!     Str             offset-width u8 (2 or 4), then (n_rows + 1)
//!                     offsets of that width, then the UTF-8 heap
//! ```
//!
//! `Str` offsets shrink to `u16` whenever the column's heap fits — on
//! narrow-string schemas that is the difference between a bucket's block
//! fitting its own page range and not converting at all.
//!
//! Null slots store zero in the data array (and zero-length heap slices),
//! so encoding is deterministic: equal blocks encode to equal bytes.

use std::fmt;

use crate::bytes::{get_u16_le, get_u32_le, lo16, lo32, u32_bits};
use crate::date::Date;
use crate::decimal::Decimal;
use crate::schema::{DataType, Schema};
use crate::value::Value;
use crate::Tuple;

/// Magic prefix of an encoded columnar block.
pub const COLBLOCK_MAGIC: [u8; 4] = *b"SMCB";

/// Current wire-format version.
pub const COLBLOCK_VERSION: u8 = 1;

/// Error from encoding or decoding a columnar block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColBlockError(pub String);

impl fmt::Display for ColBlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "columnar block: {}", self.0)
    }
}

impl std::error::Error for ColBlockError {}

/// Whether bit `i` of a validity bitmap is set (row `i` is non-null).
/// Out-of-range bits read as unset (null) — decode checks lengths, so
/// this is belt-and-braces, not a load-bearing default.
pub fn validity_bit(valid: &[u8], i: usize) -> bool {
    match valid.get(i / 8) {
        Some(byte) => (byte >> (i % 8)) & 1 == 1,
        None => false,
    }
}

fn set_validity_bit(valid: &mut [u8], i: usize) {
    if let Some(byte) = valid.get_mut(i / 8) {
        *byte |= match i % 8 {
            0 => 1,
            1 => 2,
            2 => 4,
            3 => 8,
            4 => 16,
            5 => 32,
            6 => 64,
            _ => 128,
        };
    }
}

fn bitmap_len(n_rows: usize) -> usize {
    n_rows.div_ceil(8)
}

/// One column of a block: a validity bitmap plus the typed value array.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnArray {
    /// `Int` column: two's-complement `i64`s.
    Int {
        /// Validity bitmap (bit set = non-null).
        valid: Vec<u8>,
        /// Raw values; null slots hold `0`.
        data: Vec<i64>,
    },
    /// `Decimal` column: scaled cents.
    Decimal {
        /// Validity bitmap (bit set = non-null).
        valid: Vec<u8>,
        /// Raw cents; null slots hold `0`.
        data: Vec<i64>,
    },
    /// `Date` column: days since the epoch.
    Date {
        /// Validity bitmap (bit set = non-null).
        valid: Vec<u8>,
        /// Raw day counts; null slots hold `0`.
        data: Vec<i32>,
    },
    /// `Char` column: single bytes.
    Char {
        /// Validity bitmap (bit set = non-null).
        valid: Vec<u8>,
        /// Raw bytes; null slots hold `0`.
        data: Vec<u8>,
    },
    /// `Str` column: offsets into a shared UTF-8 heap.
    Str {
        /// Validity bitmap (bit set = non-null).
        valid: Vec<u8>,
        /// `n_rows + 1` byte offsets; row `i` spans `offsets[i]..offsets[i+1]`.
        offsets: Vec<u32>,
        /// Concatenated UTF-8 payloads.
        heap: Vec<u8>,
    },
}

impl ColumnArray {
    /// The data type this array materializes.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnArray::Int { .. } => DataType::Int,
            ColumnArray::Decimal { .. } => DataType::Decimal,
            ColumnArray::Date { .. } => DataType::Date,
            ColumnArray::Char { .. } => DataType::Char,
            ColumnArray::Str { .. } => DataType::Str,
        }
    }

    /// The validity bitmap.
    pub fn validity(&self) -> &[u8] {
        match self {
            ColumnArray::Int { valid, .. }
            | ColumnArray::Decimal { valid, .. }
            | ColumnArray::Date { valid, .. }
            | ColumnArray::Char { valid, .. }
            | ColumnArray::Str { valid, .. } => valid,
        }
    }

    /// Whether row `i` is non-null.
    pub fn is_valid(&self, i: usize) -> bool {
        validity_bit(self.validity(), i)
    }

    /// The string payload of row `i`, `None` for nulls, non-`Str` columns
    /// and out-of-range rows.
    pub fn str_at(&self, i: usize) -> Option<&str> {
        let ColumnArray::Str {
            valid,
            offsets,
            heap,
        } = self
        else {
            return None;
        };
        if !validity_bit(valid, i) {
            return None;
        }
        let start = *offsets.get(i)? as usize;
        let end = *offsets.get(i.checked_add(1)?)? as usize;
        std::str::from_utf8(heap.get(start..end)?).ok()
    }

    /// The value of row `i`, or `None` if the row is out of range.
    pub fn value(&self, i: usize, n_rows: usize) -> Option<Value> {
        if i >= n_rows {
            return None;
        }
        if !self.is_valid(i) {
            return Some(Value::Null);
        }
        match self {
            ColumnArray::Int { data, .. } => data.get(i).map(|v| Value::Int(*v)),
            ColumnArray::Decimal { data, .. } => {
                data.get(i).map(|v| Value::Decimal(Decimal::from_cents(*v)))
            }
            ColumnArray::Date { data, .. } => data.get(i).map(|v| Value::Date(Date::from_days(*v))),
            ColumnArray::Char { data, .. } => data.get(i).map(|v| Value::Char(*v)),
            ColumnArray::Str { .. } => self.str_at(i).map(|s| Value::Str(s.to_string())),
        }
    }
}

fn dtype_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Int => 0,
        DataType::Decimal => 1,
        DataType::Date => 2,
        DataType::Char => 3,
        DataType::Str => 4,
    }
}

fn tag_dtype(tag: u8) -> Option<DataType> {
    match tag {
        0 => Some(DataType::Int),
        1 => Some(DataType::Decimal),
        2 => Some(DataType::Date),
        3 => Some(DataType::Char),
        4 => Some(DataType::Str),
        _ => None,
    }
}

/// All live tuples of one bucket, column-major.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarBucket {
    n_rows: usize,
    cols: Vec<ColumnArray>,
}

impl ColumnarBucket {
    /// Builds a block from row-major tuples (the bucket's live rows in
    /// physical order). Values must match `schema` — the converter feeds
    /// this from tuples that already passed schema validation, and any
    /// mismatch is reported, never mis-encoded.
    pub fn from_rows(schema: &Schema, rows: &[Tuple]) -> Result<ColumnarBucket, ColBlockError> {
        let n = rows.len();
        if u32::try_from(n).is_err() {
            return Err(ColBlockError(format!("{n} rows exceed the u32 row limit")));
        }
        let bm = bitmap_len(n);
        let mut cols = Vec::with_capacity(schema.len());
        for (c, column) in schema.columns().iter().enumerate() {
            let mut valid = vec![0u8; bm];
            let array = match column.ty {
                DataType::Int => {
                    let mut data = vec![0i64; n];
                    for (i, row) in rows.iter().enumerate() {
                        match row.get(c) {
                            Some(Value::Int(v)) => {
                                set_validity_bit(&mut valid, i);
                                if let Some(slot) = data.get_mut(i) {
                                    *slot = *v;
                                }
                            }
                            Some(Value::Null) => {}
                            other => return Err(type_mismatch(c, column.ty, other)),
                        }
                    }
                    ColumnArray::Int { valid, data }
                }
                DataType::Decimal => {
                    let mut data = vec![0i64; n];
                    for (i, row) in rows.iter().enumerate() {
                        match row.get(c) {
                            Some(Value::Decimal(v)) => {
                                set_validity_bit(&mut valid, i);
                                if let Some(slot) = data.get_mut(i) {
                                    *slot = v.cents();
                                }
                            }
                            Some(Value::Null) => {}
                            other => return Err(type_mismatch(c, column.ty, other)),
                        }
                    }
                    ColumnArray::Decimal { valid, data }
                }
                DataType::Date => {
                    let mut data = vec![0i32; n];
                    for (i, row) in rows.iter().enumerate() {
                        match row.get(c) {
                            Some(Value::Date(v)) => {
                                set_validity_bit(&mut valid, i);
                                if let Some(slot) = data.get_mut(i) {
                                    *slot = v.days();
                                }
                            }
                            Some(Value::Null) => {}
                            other => return Err(type_mismatch(c, column.ty, other)),
                        }
                    }
                    ColumnArray::Date { valid, data }
                }
                DataType::Char => {
                    let mut data = vec![0u8; n];
                    for (i, row) in rows.iter().enumerate() {
                        match row.get(c) {
                            Some(Value::Char(v)) => {
                                set_validity_bit(&mut valid, i);
                                if let Some(slot) = data.get_mut(i) {
                                    *slot = *v;
                                }
                            }
                            Some(Value::Null) => {}
                            other => return Err(type_mismatch(c, column.ty, other)),
                        }
                    }
                    ColumnArray::Char { valid, data }
                }
                DataType::Str => {
                    let mut offsets = Vec::with_capacity(n.saturating_add(1));
                    let mut heap = Vec::new();
                    offsets.push(0u32);
                    for (i, row) in rows.iter().enumerate() {
                        match row.get(c) {
                            Some(Value::Str(s)) => {
                                set_validity_bit(&mut valid, i);
                                heap.extend_from_slice(s.as_bytes());
                            }
                            Some(Value::Null) => {}
                            other => return Err(type_mismatch(c, column.ty, other)),
                        }
                        let end = u32::try_from(heap.len()).map_err(|_| {
                            ColBlockError(format!("column {c}: string heap exceeds u32 bytes"))
                        })?;
                        offsets.push(end);
                    }
                    ColumnArray::Str {
                        valid,
                        offsets,
                        heap,
                    }
                }
            };
            cols.push(array);
        }
        Ok(ColumnarBucket { n_rows: n, cols })
    }

    /// Rows in the block.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Columns in the block.
    pub fn n_cols(&self) -> usize {
        self.cols.len()
    }

    /// The array for column `c`.
    pub fn col(&self, c: usize) -> Option<&ColumnArray> {
        self.cols.get(c)
    }

    /// The value at (`c`, `row`); `None` only when out of range.
    pub fn value(&self, c: usize, row: usize) -> Option<Value> {
        self.cols.get(c)?.value(row, self.n_rows)
    }

    /// Materializes row `row` as an owned tuple, `None` if out of range.
    pub fn row(&self, row: usize) -> Option<Tuple> {
        if row >= self.n_rows {
            return None;
        }
        let mut out = Vec::with_capacity(self.cols.len());
        for col in &self.cols {
            out.push(col.value(row, self.n_rows)?);
        }
        Some(out)
    }

    /// Serializes the block (see the module docs for the layout).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&COLBLOCK_MAGIC);
        out.push(COLBLOCK_VERSION);
        crate::bytes::put_u16_le(&mut out, lo16(lo32(self.cols.len() as u64)));
        crate::bytes::put_u32_le(&mut out, lo32(self.n_rows as u64));
        for col in &self.cols {
            out.push(dtype_tag(col.data_type()));
            out.extend_from_slice(col.validity());
            match col {
                ColumnArray::Int { data, .. } | ColumnArray::Decimal { data, .. } => {
                    for v in data {
                        crate::bytes::put_i64_le(&mut out, *v);
                    }
                }
                ColumnArray::Date { data, .. } => {
                    for v in data {
                        crate::bytes::put_u32_le(&mut out, u32_bits(*v));
                    }
                }
                ColumnArray::Char { data, .. } => out.extend_from_slice(data),
                ColumnArray::Str { offsets, heap, .. } => {
                    // Offsets never exceed the heap length, so the heap
                    // length alone decides whether `u16` offsets suffice.
                    if heap.len() <= u16::MAX as usize {
                        out.push(2);
                        for v in offsets {
                            crate::bytes::put_u16_le(&mut out, lo16(*v));
                        }
                    } else {
                        out.push(4);
                        for v in offsets {
                            crate::bytes::put_u32_le(&mut out, *v);
                        }
                    }
                    out.extend_from_slice(heap);
                }
            }
        }
        out
    }

    /// Decodes a block, cross-checking the column count and types against
    /// `schema`. Any structural lie — short buffer, bad tag, offsets out
    /// of order, trailing bytes — is an error, never a partial block.
    pub fn decode(schema: &Schema, buf: &[u8]) -> Result<ColumnarBucket, ColBlockError> {
        let mut pos = 0usize;
        let magic = buf
            .get(pos..pos + COLBLOCK_MAGIC.len())
            .ok_or_else(|| ColBlockError("short header".into()))?;
        if magic != COLBLOCK_MAGIC {
            return Err(ColBlockError("bad magic".into()));
        }
        pos += COLBLOCK_MAGIC.len();
        let version = buf
            .get(pos)
            .copied()
            .ok_or_else(|| ColBlockError("short header".into()))?;
        if version != COLBLOCK_VERSION {
            return Err(ColBlockError(format!("unsupported version {version}")));
        }
        pos += 1;
        let n_cols = get_u16_le(buf, pos).ok_or_else(|| ColBlockError("short header".into()))?;
        pos += 2;
        let n_rows = get_u32_le(buf, pos).ok_or_else(|| ColBlockError("short header".into()))?;
        pos += 4;
        let n = n_rows as usize;
        if n_cols as usize != schema.len() {
            return Err(ColBlockError(format!(
                "block has {n_cols} columns, schema expects {}",
                schema.len()
            )));
        }
        let bm = bitmap_len(n);
        let mut cols = Vec::with_capacity(n_cols as usize);
        for (c, column) in schema.columns().iter().enumerate() {
            let tag = buf
                .get(pos)
                .copied()
                .ok_or_else(|| ColBlockError(format!("column {c}: short tag")))?;
            pos += 1;
            let ty = tag_dtype(tag)
                .ok_or_else(|| ColBlockError(format!("column {c}: bad tag {tag}")))?;
            if ty != column.ty {
                return Err(ColBlockError(format!(
                    "column {c}: block says {ty}, schema says {}",
                    column.ty
                )));
            }
            let valid = buf
                .get(pos..pos + bm)
                .ok_or_else(|| ColBlockError(format!("column {c}: short bitmap")))?
                .to_vec();
            pos += bm;
            let short = |what: &str| ColBlockError(format!("column {c}: short {what}"));
            let array = match ty {
                DataType::Int | DataType::Decimal => {
                    // Bulk-convert the whole array slice: one bounds check
                    // up front, then branch-free 8-byte chunks.
                    let bytes = buf
                        .get(pos..pos.saturating_add(8 * n))
                        .ok_or_else(|| short("i64 array"))?;
                    let mut data = Vec::with_capacity(n);
                    data.extend(
                        bytes
                            .chunks_exact(8)
                            .filter_map(|c| c.try_into().ok().map(i64::from_le_bytes)),
                    );
                    if data.len() != n {
                        return Err(short("i64 array"));
                    }
                    pos += 8 * n;
                    if ty == DataType::Int {
                        ColumnArray::Int { valid, data }
                    } else {
                        ColumnArray::Decimal { valid, data }
                    }
                }
                DataType::Date => {
                    let bytes = buf
                        .get(pos..pos.saturating_add(4 * n))
                        .ok_or_else(|| short("i32 array"))?;
                    let mut data = Vec::with_capacity(n);
                    data.extend(
                        bytes
                            .chunks_exact(4)
                            .filter_map(|c| c.try_into().ok().map(i32::from_le_bytes)),
                    );
                    if data.len() != n {
                        return Err(short("i32 array"));
                    }
                    pos += 4 * n;
                    ColumnArray::Date { valid, data }
                }
                DataType::Char => {
                    let data = buf
                        .get(pos..pos + n)
                        .ok_or_else(|| short("byte array"))?
                        .to_vec();
                    pos += n;
                    ColumnArray::Char { valid, data }
                }
                DataType::Str => {
                    let width = buf.get(pos).copied().ok_or_else(|| short("offset width"))?;
                    pos += 1;
                    if width != 2 && width != 4 {
                        return Err(ColBlockError(format!(
                            "column {c}: bad offset width {width}"
                        )));
                    }
                    let n_offsets = n.saturating_add(1);
                    let bytes = buf
                        .get(pos..pos.saturating_add(usize::from(width) * n_offsets))
                        .ok_or_else(|| short("offsets"))?;
                    let mut offsets = Vec::with_capacity(n_offsets);
                    if width == 2 {
                        offsets.extend(bytes.chunks_exact(2).filter_map(|c| {
                            c.try_into().ok().map(|a| u32::from(u16::from_le_bytes(a)))
                        }));
                    } else {
                        offsets.extend(
                            bytes
                                .chunks_exact(4)
                                .filter_map(|c| c.try_into().ok().map(u32::from_le_bytes)),
                        );
                    }
                    if offsets.len() != n_offsets {
                        return Err(short("offsets"));
                    }
                    pos += usize::from(width) * n_offsets;
                    if offsets.first().copied().unwrap_or(1) != 0 {
                        return Err(ColBlockError(format!(
                            "column {c}: offsets do not start at 0"
                        )));
                    }
                    if offsets.windows(2).any(|w| match w {
                        [a, b] => a > b,
                        _ => false,
                    }) {
                        return Err(ColBlockError(format!("column {c}: offsets out of order")));
                    }
                    let heap_len = offsets.last().copied().unwrap_or(0) as usize;
                    let heap = buf
                        .get(pos..pos + heap_len)
                        .ok_or_else(|| short("heap"))?
                        .to_vec();
                    pos += heap_len;
                    if std::str::from_utf8(&heap).is_err() {
                        return Err(ColBlockError(format!("column {c}: heap is not UTF-8")));
                    }
                    ColumnArray::Str {
                        valid,
                        offsets,
                        heap,
                    }
                }
            };
            cols.push(array);
        }
        if pos != buf.len() {
            return Err(ColBlockError(format!(
                "{} trailing bytes after the last column",
                buf.len().saturating_sub(pos)
            )));
        }
        Ok(ColumnarBucket { n_rows: n, cols })
    }
}

fn type_mismatch(c: usize, want: DataType, got: Option<&Value>) -> ColBlockError {
    ColBlockError(format!(
        "column {c}: expected {want}, row holds {}",
        got.map(|v| v.to_string())
            .unwrap_or_else(|| "nothing".into())
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("I", DataType::Int),
            Column::new("D", DataType::Decimal),
            Column::new("T", DataType::Date),
            Column::new("C", DataType::Char),
            Column::new("S", DataType::Str),
        ])
    }

    fn rows() -> Vec<Tuple> {
        vec![
            vec![
                Value::Int(7),
                Value::Decimal(Decimal::from_cents(125)),
                Value::Date(Date::from_days(10_000)),
                Value::Char(b'A'),
                Value::Str("hello".into()),
            ],
            vec![
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
            ],
            vec![
                Value::Int(-9),
                Value::Decimal(Decimal::from_cents(-50)),
                Value::Date(Date::from_days(3)),
                Value::Char(b'z'),
                Value::Str("".into()),
            ],
        ]
    }

    #[test]
    fn roundtrip_preserves_every_value() {
        let s = schema();
        let rows = rows();
        let block = ColumnarBucket::from_rows(&s, &rows).unwrap();
        assert_eq!(block.n_rows(), 3);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(block.row(i).as_ref(), Some(row), "row {i}");
            for (c, v) in row.iter().enumerate() {
                assert_eq!(block.value(c, i).as_ref(), Some(v), "col {c} row {i}");
            }
        }
        assert_eq!(block.row(3), None);
        let bytes = block.encode();
        let back = ColumnarBucket::decode(&s, &bytes).unwrap();
        assert_eq!(back, block);
        assert_eq!(back.encode(), bytes, "deterministic re-encode");
    }

    #[test]
    fn empty_block_roundtrips() {
        let s = schema();
        let block = ColumnarBucket::from_rows(&s, &[]).unwrap();
        assert_eq!(block.n_rows(), 0);
        let back = ColumnarBucket::decode(&s, &block.encode()).unwrap();
        assert_eq!(back, block);
    }

    #[test]
    fn str_access_without_allocation() {
        let s = schema();
        let block = ColumnarBucket::from_rows(&s, &rows()).unwrap();
        let col = block.col(4).unwrap();
        assert_eq!(col.str_at(0), Some("hello"));
        assert_eq!(col.str_at(1), None, "null row");
        assert_eq!(col.str_at(2), Some(""));
        assert_eq!(col.str_at(3), None, "out of range");
    }

    #[test]
    fn type_mismatch_is_reported() {
        let s = schema();
        let bad = vec![vec![
            Value::Str("not an int".into()),
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
        ]];
        assert!(ColumnarBucket::from_rows(&s, &bad).is_err());
    }

    #[test]
    fn decode_rejects_structural_lies() {
        let s = schema();
        let good = ColumnarBucket::from_rows(&s, &rows()).unwrap().encode();
        assert!(ColumnarBucket::decode(&s, &[]).is_err(), "empty");
        let mut bad_magic = good.clone();
        if let Some(b) = bad_magic.first_mut() {
            *b = b'X';
        }
        assert!(ColumnarBucket::decode(&s, &bad_magic).is_err());
        let mut truncated = good.clone();
        truncated.pop();
        assert!(ColumnarBucket::decode(&s, &truncated).is_err());
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(ColumnarBucket::decode(&s, &trailing).is_err());
        // Wrong schema arity.
        let short_schema = Schema::new(vec![Column::new("I", DataType::Int)]);
        assert!(ColumnarBucket::decode(&short_schema, &good).is_err());
    }

    #[test]
    fn wide_heaps_use_u32_offsets_and_roundtrip() {
        let s = Schema::new(vec![Column::new("S", DataType::Str)]);
        let rows: Vec<Tuple> = (0..2)
            .map(|i| vec![Value::Str("x".repeat(40_000 + i))])
            .collect();
        let block = ColumnarBucket::from_rows(&s, &rows).unwrap();
        let bytes = block.encode();
        // Header (11) + tag + bitmap + width byte, then 4-byte offsets.
        assert_eq!(bytes[11 + 1 + 1], 4, "heap past u16::MAX needs u32 offsets");
        let back = ColumnarBucket::decode(&s, &bytes).unwrap();
        assert_eq!(back, block);
        assert_eq!(back.encode(), bytes, "deterministic re-encode");
    }

    #[test]
    fn validity_bits() {
        let mut v = vec![0u8; 2];
        for i in [0usize, 3, 7, 8, 12] {
            set_validity_bit(&mut v, i);
        }
        for i in 0..16 {
            assert_eq!(
                validity_bit(&v, i),
                matches!(i, 0 | 3 | 7 | 8 | 12),
                "bit {i}"
            );
        }
        assert!(!validity_bit(&v, 99), "out of range reads unset");
    }
}
