//! Write-ahead-log record codec.
//!
//! One WAL record describes one acknowledged insert: which relation it
//! targets and the row-codec image of the tuple, tagged with the log
//! *epoch* it was written under and a warehouse-wide *sequence number*.
//! The storage layer frames these bytes with a length + CRC32 header (see
//! `sma-storage`'s WAL); this module only defines the payload layout, so
//! the type layer stays ignorant of pages and files:
//!
//! ```text
//! payload := epoch u64 | seq u64 | rel_len u32 | relation utf-8 |
//!            row_len u32 | row-codec bytes
//! ```
//!
//! The epoch lets replay reject frames left over from a previous log
//! generation after an in-place truncation (stale bytes are never zeroed);
//! the sequence number lets replay skip records already folded into the
//! sealed warehouse state (the manifest's watermark), which is what makes
//! replay idempotent. The row bytes are opaque here — they are exactly
//! what [`crate::row::encode`] produced for the target relation's schema,
//! so decoding them requires that schema and happens in the ingest layer.

use crate::bytes;
use crate::row::CodecError;

/// Fixed-width prefix of every record: epoch, seq, and two length fields.
const FIXED: usize = 8 + 8 + 4 + 4;

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Log generation the record was appended under.
    pub epoch: u64,
    /// Warehouse-wide monotonically increasing sequence number.
    pub seq: u64,
    /// Target relation name.
    pub relation: String,
    /// Row-codec image of the inserted tuple (schema lives with the
    /// relation, not the record).
    pub row: Vec<u8>,
}

/// Serializes `rec` into the payload layout above.
pub fn encode_wal_record(rec: &WalRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(FIXED + rec.relation.len() + rec.row.len());
    bytes::put_u64_le(&mut out, rec.epoch);
    bytes::put_u64_le(&mut out, rec.seq);
    bytes::put_u32_le(&mut out, saturate_len(rec.relation.len()));
    out.extend_from_slice(rec.relation.as_bytes());
    bytes::put_u32_le(&mut out, saturate_len(rec.row.len()));
    out.extend_from_slice(&rec.row);
    out
}

/// Encode-side length narrowing: relation names and row images are far
/// below `u32::MAX`; a saturated length fails the decoder's structural
/// checks instead of silently wrapping.
fn saturate_len(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// Inverse of [`encode_wal_record`]. The whole buffer must be exactly one
/// record; truncation, trailing bytes, and bad UTF-8 all surface as
/// [`CodecError`] — a torn or stale frame must never decode into a
/// plausible record.
pub fn decode_wal_record(buf: &[u8]) -> Result<WalRecord, CodecError> {
    let short = || CodecError("wal record truncated".into());
    let epoch = bytes::get_u64_le(buf, 0).ok_or_else(short)?;
    let seq = bytes::get_u64_le(buf, 8).ok_or_else(short)?;
    let rel_len = bytes::get_u32_le(buf, 16).ok_or_else(short)? as usize;
    let rel_end = 20usize.checked_add(rel_len).ok_or_else(short)?;
    let rel_bytes = buf.get(20..rel_end).ok_or_else(short)?;
    let relation = std::str::from_utf8(rel_bytes)
        .map_err(|e| CodecError(format!("wal record relation not utf-8: {e}")))?
        .to_string();
    let row_len = bytes::get_u32_le(buf, rel_end).ok_or_else(short)? as usize;
    let row_start = rel_end + 4;
    let row_end = row_start.checked_add(row_len).ok_or_else(short)?;
    let row = buf.get(row_start..row_end).ok_or_else(short)?.to_vec();
    if row_end != buf.len() {
        return Err(CodecError(format!(
            "{} trailing bytes after wal record",
            buf.len() - row_end
        )));
    }
    Ok(WalRecord {
        epoch,
        seq,
        relation,
        row,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WalRecord {
        WalRecord {
            epoch: 3,
            seq: 42,
            relation: "LINEITEM".into(),
            row: vec![1, 2, 3, 4, 5],
        }
    }

    #[test]
    fn roundtrip() {
        let rec = sample();
        assert_eq!(decode_wal_record(&encode_wal_record(&rec)).unwrap(), rec);
    }

    #[test]
    fn empty_row_and_relation_roundtrip() {
        let rec = WalRecord {
            epoch: 0,
            seq: 0,
            relation: String::new(),
            row: Vec::new(),
        };
        assert_eq!(decode_wal_record(&encode_wal_record(&rec)).unwrap(), rec);
    }

    #[test]
    fn every_truncation_fails() {
        let full = encode_wal_record(&sample());
        for cut in 0..full.len() {
            assert!(
                decode_wal_record(&full[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn trailing_bytes_fail() {
        let mut b = encode_wal_record(&sample());
        b.push(0);
        assert!(decode_wal_record(&b).is_err());
    }

    #[test]
    fn bad_utf8_fails() {
        let mut b = encode_wal_record(&sample());
        // First relation byte lives at offset 20.
        b[20] = 0xFF;
        assert!(decode_wal_record(&b).is_err());
    }
}
