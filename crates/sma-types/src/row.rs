//! Binary tuple codec.
//!
//! Layout per tuple:
//!
//! ```text
//! [ null bitmap: ceil(ncols/8) bytes ]
//! [ fixed section: one fixed-width slot per column, schema order ]
//! [ var section: string payloads, schema order ]
//! ```
//!
//! Fixed slots are little-endian: `Int`/`Decimal` 8 bytes, `Date` 4 bytes,
//! `Char` 1 byte; a `Str` slot holds the payload length as `u16`. Null
//! columns keep a zeroed slot so offsets stay schema-computable.

use crate::bytes;
use crate::date::Date;
use crate::decimal::Decimal;
use crate::schema::{DataType, Schema};
use crate::value::Value;
use std::fmt;

/// A materialized tuple: one [`Value`] per schema column.
pub type Tuple = Vec<Value>;

/// Error produced when decoding a malformed tuple image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tuple codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// Number of bytes `tuple` occupies when encoded under `schema`.
pub fn encoded_len(schema: &Schema, tuple: &[Value]) -> usize {
    let bitmap = schema.len().div_ceil(8);
    let fixed: usize = schema.columns().iter().map(|c| c.ty.fixed_width()).sum();
    let var: usize = tuple.iter().filter_map(|v| v.as_str().map(str::len)).sum();
    bitmap + fixed + var
}

/// Encodes `tuple` (which must validate against `schema`) into `out`.
///
/// Fails — leaving `out` untouched — when a string payload exceeds the
/// `u16` length slot of the fixed section.
pub fn encode(schema: &Schema, tuple: &[Value], out: &mut Vec<u8>) -> Result<(), CodecError> {
    debug_assert!(schema.validate(tuple).is_ok());
    for (v, c) in tuple.iter().zip(schema.columns()) {
        if let Value::Str(s) = v {
            if s.len() > u16::MAX as usize {
                return Err(CodecError(format!(
                    "string column {:?} is {} bytes, exceeding the u16 length slot",
                    c.name,
                    s.len()
                )));
            }
        }
    }
    let bitmap_len = schema.len().div_ceil(8);
    let bitmap_start = out.len();
    out.resize(bitmap_start + bitmap_len, 0);
    for (i, v) in tuple.iter().enumerate() {
        if v.is_null() {
            out[bitmap_start + i / 8] |= 1 << (i % 8);
        }
    }
    let mut strings: Vec<&str> = Vec::new();
    for (v, c) in tuple.iter().zip(schema.columns()) {
        match (c.ty, v) {
            (DataType::Int, Value::Int(n)) => out.extend_from_slice(&n.to_le_bytes()),
            (DataType::Decimal, Value::Decimal(d)) => {
                out.extend_from_slice(&d.cents().to_le_bytes())
            }
            (DataType::Date, Value::Date(d)) => out.extend_from_slice(&d.days().to_le_bytes()),
            (DataType::Char, Value::Char(ch)) => out.push(*ch),
            (DataType::Str, Value::Str(s)) => {
                // Re-checked here so the narrowing stays locally provable
                // (the loop above already rejected oversized payloads).
                let len = u16::try_from(s.len()).map_err(|_| {
                    CodecError(format!(
                        "string column {:?} exceeds u16 length slot",
                        c.name
                    ))
                })?;
                out.extend_from_slice(&len.to_le_bytes());
                strings.push(s);
            }
            (ty, Value::Null) => out.extend_from_slice(&vec![0u8; ty.fixed_width()]),
            (ty, v) => unreachable!("validated tuple: column {ty} vs value {v}"),
        }
    }
    for s in strings {
        out.extend_from_slice(s.as_bytes());
    }
    Ok(())
}

/// Decodes one tuple image produced by [`encode`].
pub fn decode(schema: &Schema, buf: &[u8]) -> Result<Tuple, CodecError> {
    let bitmap_len = schema.len().div_ceil(8);
    let fixed_len: usize = schema.columns().iter().map(|c| c.ty.fixed_width()).sum();
    if buf.len() < bitmap_len + fixed_len {
        return Err(CodecError(format!(
            "image too short: {} bytes, need at least {}",
            buf.len(),
            bitmap_len + fixed_len
        )));
    }
    let bitmap = &buf[..bitmap_len];
    let mut pos = bitmap_len;
    let mut var_pos = bitmap_len + fixed_len;
    let mut tuple = Vec::with_capacity(schema.len());
    for (i, c) in schema.columns().iter().enumerate() {
        let null = bitmap[i / 8] & (1 << (i % 8)) != 0;
        let width = c.ty.fixed_width();
        let slot = &buf[pos..pos + width];
        pos += width;
        if null {
            // Strings still consumed their length slot (zeroed), nothing in var section.
            tuple.push(Value::Null);
            continue;
        }
        let short = || CodecError(format!("column {:?} slot out of bounds", c.name));
        let v = match c.ty {
            DataType::Int => Value::Int(bytes::get_i64_le(slot, 0).ok_or_else(short)?),
            DataType::Decimal => Value::Decimal(Decimal::from_cents(
                bytes::get_i64_le(slot, 0).ok_or_else(short)?,
            )),
            DataType::Date => Value::Date(Date::from_days(
                bytes::get_i32_le(slot, 0).ok_or_else(short)?,
            )),
            DataType::Char => Value::Char(slot.first().copied().ok_or_else(short)?),
            DataType::Str => {
                let len = usize::from(bytes::get_u16_le(slot, 0).ok_or_else(short)?);
                let end = var_pos + len;
                if end > buf.len() {
                    return Err(CodecError(format!(
                        "string column {:?} overruns image ({} > {})",
                        c.name,
                        end,
                        buf.len()
                    )));
                }
                let s = std::str::from_utf8(&buf[var_pos..end])
                    .map_err(|e| CodecError(format!("invalid utf-8 in {:?}: {e}", c.name)))?;
                var_pos = end;
                Value::Str(s.to_string())
            }
        };
        tuple.push(v);
    }
    Ok(tuple)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StdRng;
    use crate::schema::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("K", DataType::Int),
            Column::new("P", DataType::Decimal),
            Column::new("D", DataType::Date),
            Column::new("F", DataType::Char),
            Column::new("S", DataType::Str),
            Column::new("T", DataType::Str),
        ])
    }

    fn tuple() -> Tuple {
        vec![
            Value::Int(-42),
            Value::Decimal(Decimal::from_cents(123456)),
            Value::Date(Date::parse("1997-04-30").unwrap()),
            Value::Char(b'N'),
            Value::Str("hello".into()),
            Value::Str("".into()),
        ]
    }

    #[test]
    fn roundtrip() {
        let s = schema();
        let t = tuple();
        let mut buf = Vec::new();
        encode(&s, &t, &mut buf).unwrap();
        assert_eq!(buf.len(), encoded_len(&s, &t));
        assert_eq!(decode(&s, &buf).unwrap(), t);
    }

    #[test]
    fn roundtrip_with_nulls() {
        let s = schema();
        let t = vec![
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Str("tail".into()),
        ];
        let mut buf = Vec::new();
        encode(&s, &t, &mut buf).unwrap();
        assert_eq!(decode(&s, &buf).unwrap(), t);
    }

    #[test]
    fn rejects_truncated() {
        let s = schema();
        let mut buf = Vec::new();
        encode(&s, &tuple(), &mut buf).unwrap();
        assert!(decode(&s, &buf[..buf.len() - 3]).is_err());
        assert!(decode(&s, &[]).is_err());
    }

    #[test]
    fn appended_encodings_share_buffer() {
        let s = schema();
        let t = tuple();
        let mut buf = Vec::new();
        encode(&s, &t, &mut buf).unwrap();
        let first_len = buf.len();
        encode(&s, &t, &mut buf).unwrap();
        assert_eq!(decode(&s, &buf[..first_len]).unwrap(), t);
        assert_eq!(decode(&s, &buf[first_len..]).unwrap(), t);
    }

    #[test]
    fn oversized_string_is_an_error_not_a_panic() {
        let s = schema();
        let mut t = tuple();
        t[4] = Value::Str("x".repeat(u16::MAX as usize + 1));
        let mut buf = Vec::new();
        let err = encode(&s, &t, &mut buf).unwrap_err();
        assert!(err.0.contains("u16"), "{err}");
        assert!(buf.is_empty(), "failed encode must leave the buffer clean");
        // One byte under the limit still round-trips.
        t[4] = Value::Str("x".repeat(u16::MAX as usize));
        encode(&s, &t, &mut buf).unwrap();
        assert_eq!(decode(&s, &buf).unwrap(), t);
    }

    /// A random value of `ty`, `Null` with probability 1/10 — mirrors the
    /// distribution the old property test used.
    fn random_value(rng: &mut StdRng, ty: DataType) -> Value {
        if rng.random_range(0u32..10) == 0 {
            return Value::Null;
        }
        const CHARSET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ";
        match ty {
            DataType::Int => Value::Int(rng.random_range(i64::MIN..=i64::MAX)),
            DataType::Decimal => {
                Value::Decimal(Decimal::from_cents(rng.random_range(i64::MIN..=i64::MAX)))
            }
            DataType::Date => Value::Date(Date::from_days(rng.random_range(-100_000i32..100_000))),
            DataType::Char => Value::Char(rng.random_range(0u8..=u8::MAX)),
            DataType::Str => {
                let len = rng.random_range(0usize..=40);
                let s: String = (0..len)
                    .map(|_| CHARSET[rng.random_range(0usize..CHARSET.len())] as char)
                    .collect();
                Value::Str(s)
            }
        }
    }

    #[test]
    fn codec_roundtrip_any_tuple() {
        let mut rng = StdRng::seed_from_u64(0xC0DEC);
        let s = schema();
        for _ in 0..512 {
            let t: Tuple = s
                .columns()
                .iter()
                .map(|c| random_value(&mut rng, c.ty))
                .collect();
            let mut buf = Vec::new();
            encode(&s, &t, &mut buf).unwrap();
            assert_eq!(buf.len(), encoded_len(&s, &t));
            assert_eq!(decode(&s, &buf).unwrap(), t);
        }
    }
}
