//! Dynamically-typed values flowing through the storage and query layers.

use std::cmp::Ordering;
use std::fmt;

use crate::date::Date;
use crate::decimal::Decimal;
use crate::schema::DataType;

/// A single column value.
///
/// `Null` exists because the paper's grading rules explicitly cover the
/// case where min/max aggregates "are not defined" (empty buckets, empty
/// groups): such entries grade as *ambivalent*.
///
/// The derived `Ord` is a **storage order** (variant rank, then value) used
/// for group keys and sorted directories; SQL-style comparison — which is
/// undefined across types and for `Null` — is [`Value::partial_cmp_typed`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Absent / undefined value.
    Null,
    /// 64-bit integer (keys, counts, quantities in some schemas).
    Int(i64),
    /// Fixed-point decimal with two fractional digits (money, rates).
    Decimal(Decimal),
    /// Calendar date.
    Date(Date),
    /// Single-character flag (e.g. `L_RETURNFLAG`).
    Char(u8),
    /// Variable-length string.
    Str(String),
}

impl Value {
    /// The value's data type, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Decimal(_) => Some(DataType::Decimal),
            Value::Date(_) => Some(DataType::Date),
            Value::Char(_) => Some(DataType::Char),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// True iff this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Compares two values of the same type. Returns `None` when types
    /// differ or either side is `Null` (SQL-style unknown).
    pub fn partial_cmp_typed(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Decimal(a), Value::Decimal(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            (Value::Char(a), Value::Char(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Extracts an `i64`, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Extracts a `Decimal`, if this is a `Decimal`.
    pub fn as_decimal(&self) -> Option<Decimal> {
        match self {
            Value::Decimal(d) => Some(*d),
            _ => None,
        }
    }

    /// Extracts a `Date`, if this is a `Date`.
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// Extracts a `char` flag, if this is a `Char`.
    pub fn as_char(&self) -> Option<u8> {
        match self {
            Value::Char(c) => Some(*c),
            _ => None,
        }
    }

    /// Extracts a string slice, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric addition for aggregation: Int+Int and Decimal+Decimal.
    /// Returns `None` on type mismatch; `Null` absorbs into the other side
    /// (SUM ignores NULLs).
    pub fn checked_add(&self, other: &Value) -> Option<Value> {
        match (self, other) {
            (Value::Null, v) | (v, Value::Null) => Some(v.clone()),
            (Value::Int(a), Value::Int(b)) => Some(Value::Int(a.checked_add(*b)?)),
            (Value::Decimal(a), Value::Decimal(b)) => Some(Value::Decimal(*a + *b)),
            _ => None,
        }
    }

    /// Minimum of two values under [`Value::partial_cmp_typed`]; `Null` loses.
    pub fn min_value(&self, other: &Value) -> Value {
        match (self.is_null(), other.is_null()) {
            (true, _) => other.clone(),
            (_, true) => self.clone(),
            _ => match self.partial_cmp_typed(other) {
                Some(Ordering::Greater) => other.clone(),
                _ => self.clone(),
            },
        }
    }

    /// Maximum of two values under [`Value::partial_cmp_typed`]; `Null` loses.
    pub fn max_value(&self, other: &Value) -> Value {
        match (self.is_null(), other.is_null()) {
            (true, _) => other.clone(),
            (_, true) => self.clone(),
            _ => match self.partial_cmp_typed(other) {
                Some(Ordering::Less) => other.clone(),
                _ => self.clone(),
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Decimal(d) => write!(f, "{d}"),
            Value::Date(d) => write!(f, "{d}"),
            Value::Char(c) => write!(f, "{}", *c as char),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Int(n)
    }
}

impl From<Decimal> for Value {
    fn from(d: Decimal) -> Value {
        Value::Decimal(d)
    }
}

impl From<Date> for Value {
    fn from(d: Date) -> Value {
        Value::Date(d)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dec(s: &str) -> Value {
        Value::Decimal(Decimal::parse(s).unwrap())
    }

    #[test]
    fn typed_comparison() {
        assert_eq!(
            Value::Int(1).partial_cmp_typed(&Value::Int(2)),
            Some(Ordering::Less)
        );
        assert_eq!(
            dec("1.50").partial_cmp_typed(&dec("1.50")),
            Some(Ordering::Equal)
        );
        assert_eq!(Value::Int(1).partial_cmp_typed(&dec("1.00")), None);
        assert_eq!(Value::Null.partial_cmp_typed(&Value::Int(1)), None);
        assert_eq!(
            Value::Char(b'A').partial_cmp_typed(&Value::Char(b'N')),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Str("abc".into()).partial_cmp_typed(&Value::Str("abd".into())),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn min_max_ignore_null() {
        assert_eq!(Value::Null.min_value(&Value::Int(3)), Value::Int(3));
        assert_eq!(Value::Int(3).max_value(&Value::Null), Value::Int(3));
        assert_eq!(Value::Int(3).min_value(&Value::Int(5)), Value::Int(3));
        assert_eq!(Value::Int(3).max_value(&Value::Int(5)), Value::Int(5));
    }

    #[test]
    fn checked_add_behaviour() {
        assert_eq!(
            Value::Int(2).checked_add(&Value::Int(3)),
            Some(Value::Int(5))
        );
        assert_eq!(dec("1.10").checked_add(&dec("2.20")), Some(dec("3.30")));
        assert_eq!(Value::Null.checked_add(&Value::Int(3)), Some(Value::Int(3)));
        assert_eq!(Value::Int(1).checked_add(&dec("1.00")), None);
        assert_eq!(Value::Int(i64::MAX).checked_add(&Value::Int(1)), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Char(b'R').to_string(), "R");
        assert_eq!(dec("12.34").to_string(), "12.34");
    }

    #[test]
    fn data_types() {
        assert_eq!(Value::Int(0).data_type(), Some(DataType::Int));
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Str("x".into()).data_type(), Some(DataType::Str));
    }
}
