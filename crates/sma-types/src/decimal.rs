//! Fixed-point decimals with two fractional digits.
//!
//! TPC-D money columns (`L_EXTENDEDPRICE`, `L_DISCOUNT`, `L_TAX`, …) are
//! `DECIMAL` with two digits after the point. We store cents in an `i64`,
//! which holds every TPC-D value and every Query 1 per-group sum with a
//! large margin, and is exactly the 8-byte aggregate width the paper's
//! space accounting assumes (§2.4: "for all other aggregate values we used
//! 8 bytes").

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Scale factor: two fractional digits.
const SCALE: i64 = 100;

/// A fixed-point decimal number with two fractional digits, stored as
/// scaled integer ("cents").
///
/// Arithmetic is exact for addition/subtraction; multiplication and
/// division round half away from zero on the last retained digit, matching
/// typical DECIMAL(15,2) engine behaviour closely enough for the paper's
/// aggregates (all cross-checked against f64 oracles in tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Decimal(i64);

impl Decimal {
    /// Zero.
    pub const ZERO: Decimal = Decimal(0);
    /// One.
    pub const ONE: Decimal = Decimal(SCALE);

    /// Builds a decimal from a raw scaled value (`cents`), i.e. `cents/100`.
    pub const fn from_cents(cents: i64) -> Decimal {
        Decimal(cents)
    }

    /// Builds a decimal from a whole number.
    pub const fn from_int(n: i64) -> Decimal {
        Decimal(n * SCALE)
    }

    /// The raw scaled value (`self * 100`).
    pub const fn cents(self) -> i64 {
        self.0
    }

    /// Approximate `f64` value (for display/statistics only — never used
    /// in aggregate computation).
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / SCALE as f64
    }

    /// Builds the nearest decimal to an `f64` (rounds half away from zero).
    pub fn from_f64_round(x: f64) -> Decimal {
        Decimal((x * SCALE as f64).round() as i64)
    }

    /// Exact product of two decimals, rounded half away from zero to two
    /// fractional digits. Uses `i128` internally so TPC-D magnitudes never
    /// overflow.
    #[must_use]
    pub fn mul_round(self, other: Decimal) -> Decimal {
        let wide = self.0 as i128 * other.0 as i128;
        Decimal(div_round_half_away(wide, SCALE as i128) as i64)
    }

    /// Quotient `self / other` rounded half away from zero to two
    /// fractional digits. Panics on division by zero, like integer division.
    #[must_use]
    pub fn div_round(self, other: Decimal) -> Decimal {
        let num = self.0 as i128 * SCALE as i128;
        Decimal(div_round_half_away(num, other.0 as i128) as i64)
    }

    /// `self / count` for computing averages from a sum and a count.
    #[must_use]
    pub fn div_count(self, count: i64) -> Decimal {
        Decimal(div_round_half_away(self.0 as i128, count as i128) as i64)
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(self) -> Decimal {
        Decimal(self.0.abs())
    }

    /// Parses strings like `1.23`, `-0.07`, `42`, `42.5`.
    ///
    /// The only accepted sign is a single leading `-`; both parts must be
    /// non-empty runs of ASCII digits. Relying on `i64::from_str` for the
    /// parts would silently accept an embedded sign (`"1.-5"` → `0.95`,
    /// `"1.+5"` → `1.05`), so digits are validated explicitly.
    pub fn parse(s: &str) -> Result<Decimal, DecimalError> {
        let err = || DecimalError(s.to_string());
        let (neg, body) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s),
        };
        let (int_part, frac_part) = match body.split_once('.') {
            Some((i, f)) => (i, f),
            None => (body, ""),
        };
        let all_digits = |p: &str| !p.is_empty() && p.bytes().all(|b| b.is_ascii_digit());
        if !all_digits(int_part) || frac_part.len() > 2 {
            return Err(err());
        }
        if body.contains('.') && !all_digits(frac_part) {
            return Err(err());
        }
        let int: i64 = int_part.parse().map_err(|_| err())?;
        let frac: i64 = if frac_part.is_empty() {
            0
        } else {
            let parsed: i64 = frac_part.parse().map_err(|_| err())?;
            if frac_part.len() == 1 {
                parsed * 10
            } else {
                parsed
            }
        };
        let cents = int * SCALE + frac;
        Ok(Decimal(if neg { -cents } else { cents }))
    }
}

/// Integer division rounding half away from zero.
fn div_round_half_away(num: i128, den: i128) -> i128 {
    assert!(den != 0, "decimal division by zero");
    let q = num / den;
    let r = num % den;
    if 2 * r.abs() >= den.abs() {
        q + num.signum() * den.signum()
    } else {
        q
    }
}

/// Error produced when parsing an invalid decimal literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecimalError(pub String);

impl fmt::Display for DecimalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid decimal: {}", self.0)
    }
}

impl std::error::Error for DecimalError {}

impl Add for Decimal {
    type Output = Decimal;
    fn add(self, rhs: Decimal) -> Decimal {
        Decimal(self.0 + rhs.0)
    }
}

impl AddAssign for Decimal {
    fn add_assign(&mut self, rhs: Decimal) {
        self.0 += rhs.0;
    }
}

impl Sub for Decimal {
    type Output = Decimal;
    fn sub(self, rhs: Decimal) -> Decimal {
        Decimal(self.0 - rhs.0)
    }
}

impl SubAssign for Decimal {
    fn sub_assign(&mut self, rhs: Decimal) {
        self.0 -= rhs.0;
    }
}

impl Neg for Decimal {
    type Output = Decimal;
    fn neg(self) -> Decimal {
        Decimal(-self.0)
    }
}

impl Mul for Decimal {
    type Output = Decimal;
    fn mul(self, rhs: Decimal) -> Decimal {
        self.mul_round(rhs)
    }
}

impl Div for Decimal {
    type Output = Decimal;
    fn div(self, rhs: Decimal) -> Decimal {
        self.div_round(rhs)
    }
}

impl Sum for Decimal {
    fn sum<I: Iterator<Item = Decimal>>(iter: I) -> Decimal {
        iter.fold(Decimal::ZERO, Add::add)
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        write!(f, "{sign}{}.{:02}", abs / SCALE as u64, abs % SCALE as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StdRng;

    #[test]
    fn basic_arithmetic() {
        let a = Decimal::parse("1.50").unwrap();
        let b = Decimal::parse("0.25").unwrap();
        assert_eq!((a + b).to_string(), "1.75");
        assert_eq!((a - b).to_string(), "1.25");
        assert_eq!((a * b).to_string(), "0.38"); // 0.375 rounds away from zero
        assert_eq!((a / b).to_string(), "6.00");
    }

    #[test]
    fn query1_style_expression() {
        // extprice * (1 - disc) * (1 + tax)
        let ext = Decimal::parse("1000.00").unwrap();
        let disc = Decimal::parse("0.05").unwrap();
        let tax = Decimal::parse("0.08").unwrap();
        let disc_price = ext * (Decimal::ONE - disc);
        assert_eq!(disc_price.to_string(), "950.00");
        let charge = disc_price * (Decimal::ONE + tax);
        assert_eq!(charge.to_string(), "1026.00");
    }

    #[test]
    fn parse_forms() {
        assert_eq!(Decimal::parse("42").unwrap(), Decimal::from_int(42));
        assert_eq!(Decimal::parse("42.5").unwrap().cents(), 4250);
        assert_eq!(Decimal::parse("-0.07").unwrap().cents(), -7);
        assert_eq!(Decimal::parse("0.00").unwrap(), Decimal::ZERO);
        assert!(Decimal::parse("").is_err());
        assert!(Decimal::parse("1.234").is_err());
        assert!(Decimal::parse(".5").is_err());
        assert!(Decimal::parse("1.x").is_err());
        assert!(Decimal::parse("-").is_err());
    }

    /// Regression: `i64::from_str` accepts a leading sign, so the old
    /// parser read `"1.-5"` as 1 + (-5/10) = 0.95 and `"1.+5"` as 1.05.
    /// Signs anywhere but a single leading `-` must be rejected, as must
    /// an empty fractional part after an explicit point.
    #[test]
    fn parse_rejects_embedded_signs_and_trailing_point() {
        assert!(Decimal::parse("1.-5").is_err());
        assert!(Decimal::parse("1.+5").is_err());
        assert!(Decimal::parse("+3").is_err());
        assert!(Decimal::parse("1.").is_err());
        assert!(Decimal::parse("-1.-5").is_err());
        assert!(Decimal::parse("--1").is_err());
        // The legitimate forms still parse.
        assert_eq!(Decimal::parse("-1.5").unwrap().cents(), -150);
        assert_eq!(Decimal::parse("1.05").unwrap().cents(), 105);
    }

    #[test]
    fn display_negative() {
        assert_eq!(Decimal::from_cents(-7).to_string(), "-0.07");
        assert_eq!(Decimal::from_cents(-12345).to_string(), "-123.45");
    }

    #[test]
    fn rounding_half_away() {
        assert_eq!(div_round_half_away(5, 2), 3);
        assert_eq!(div_round_half_away(-5, 2), -3);
        assert_eq!(div_round_half_away(4, 2), 2);
        assert_eq!(div_round_half_away(1, 3), 0);
        assert_eq!(div_round_half_away(2, 3), 1);
    }

    #[test]
    fn avg_via_div_count() {
        let sum = Decimal::parse("10.00").unwrap();
        assert_eq!(sum.div_count(4).to_string(), "2.50");
        assert_eq!(sum.div_count(3).to_string(), "3.33");
    }

    #[test]
    #[should_panic(expected = "decimal division by zero")]
    fn div_by_zero_panics() {
        let _ = Decimal::ONE / Decimal::ZERO;
    }

    #[test]
    fn add_sub_roundtrip_random() {
        let mut rng = StdRng::seed_from_u64(0xDEC1);
        for _ in 0..512 {
            let a = Decimal::from_cents(rng.random_range(-100_000_000i64..100_000_000));
            let b = Decimal::from_cents(rng.random_range(-100_000_000i64..100_000_000));
            assert_eq!(a + b - b, a);
        }
    }

    #[test]
    fn display_parse_roundtrip_random() {
        let mut rng = StdRng::seed_from_u64(0xDEC2);
        for _ in 0..512 {
            let d = Decimal::from_cents(rng.random_range(-10_000_000i64..10_000_000));
            assert_eq!(Decimal::parse(&d.to_string()).unwrap(), d);
        }
    }

    #[test]
    fn mul_close_to_f64_random() {
        let mut rng = StdRng::seed_from_u64(0xDEC3);
        for _ in 0..512 {
            let da = Decimal::from_cents(rng.random_range(-100_000i64..100_000));
            let db = Decimal::from_cents(rng.random_range(-10_000i64..10_000));
            let exact = da.to_f64() * db.to_f64();
            assert!((da.mul_round(db).to_f64() - exact).abs() <= 0.005 + 1e-9);
        }
    }

    #[test]
    fn sum_matches_fold_random() {
        let mut rng = StdRng::seed_from_u64(0xDEC4);
        for _ in 0..64 {
            let n = rng.random_range(0usize..50);
            let cents: Vec<i64> = (0..n)
                .map(|_| rng.random_range(-10_000i64..10_000))
                .collect();
            let total: Decimal = cents.iter().map(|&c| Decimal::from_cents(c)).sum();
            assert_eq!(total.cents(), cents.iter().sum::<i64>());
        }
    }
}
