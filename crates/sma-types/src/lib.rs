//! Type system for the SMA data warehouse reproduction.
//!
//! This crate provides the primitives every other layer builds on:
//!
//! * [`Date`] — calendar dates as 4-byte day counts (proleptic Gregorian),
//! * [`Decimal`] — exact fixed-point money with two fractional digits,
//! * [`Value`] — the dynamically-typed value flowing through operators,
//! * [`Schema`] / [`DataType`] — relation schemas,
//! * [`row`] — the binary tuple codec used by slotted pages.
//!
//! Widths deliberately match the paper's accounting (§2.4): dates and
//! counts take 4 bytes, all other aggregate values 8 bytes.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bytes;
pub mod colblock;
pub mod date;
pub mod decimal;
pub mod rng;
pub mod row;
pub mod schema;
pub mod value;
pub mod view;
pub mod walrec;

pub use colblock::{ColBlockError, ColumnArray, ColumnarBucket};
pub use date::{Date, DateError};
pub use decimal::{Decimal, DecimalError};
pub use rng::StdRng;
pub use row::{CodecError, Tuple};
pub use schema::{Column, DataType, Schema, SchemaError, SchemaRef};
pub use value::Value;
pub use view::{Projection, RowLayout, RowView};
pub use walrec::{decode_wal_record, encode_wal_record, WalRecord};
