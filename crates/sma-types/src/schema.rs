//! Relation schemas: ordered, named, typed columns.

use std::fmt;
use std::sync::Arc;

use crate::value::Value;

/// The storable data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// Fixed-point decimal, two fractional digits, 8 bytes.
    Decimal,
    /// Calendar date, 4 bytes (the paper's "32 bits for a date field").
    Date,
    /// Single byte character flag.
    Char,
    /// Variable-length UTF-8 string.
    Str,
}

impl DataType {
    /// On-disk width of the fixed-size portion, in bytes. `Str` stores a
    /// 2-byte length prefix inline and the bytes after the fixed section.
    pub fn fixed_width(self) -> usize {
        match self {
            DataType::Int | DataType::Decimal => 8,
            DataType::Date => 4,
            DataType::Char => 1,
            DataType::Str => 2,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Decimal => "DECIMAL",
            DataType::Date => "DATE",
            DataType::Char => "CHAR",
            DataType::Str => "STR",
        };
        f.write_str(s)
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (upper-case by TPC-D convention, e.g. `L_SHIPDATE`).
    pub name: String,
    /// Column type.
    pub ty: DataType,
}

impl Column {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: DataType) -> Column {
        Column {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered list of columns describing a relation.
///
/// Schemas are shared (`Arc`) between heap files, SMA definitions and
/// operators; cloning a [`SchemaRef`] is cheap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
}

/// Shared handle to a schema.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Builds a schema from columns. Panics on duplicate column names —
    /// schemas are static program data, so this is a programming error.
    pub fn new(columns: Vec<Column>) -> Schema {
        for (i, c) in columns.iter().enumerate() {
            assert!(
                !columns[..i].iter().any(|d| d.name == c.name),
                "duplicate column name {:?}",
                c.name
            );
        }
        Schema { columns }
    }

    /// The columns, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True iff the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of the column named `name`, if any.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The column at `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Checks a tuple against this schema: arity and per-column types
    /// (`Null` is accepted for any type).
    pub fn validate(&self, tuple: &[Value]) -> Result<(), SchemaError> {
        if tuple.len() != self.columns.len() {
            return Err(SchemaError(format!(
                "arity mismatch: tuple has {} values, schema has {} columns",
                tuple.len(),
                self.columns.len()
            )));
        }
        for (v, c) in tuple.iter().zip(&self.columns) {
            if let Some(ty) = v.data_type() {
                if ty != c.ty {
                    return Err(SchemaError(format!(
                        "type mismatch in column {:?}: expected {}, got {}",
                        c.name, c.ty, ty
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Error produced by schema validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError(pub String);

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schema error: {}", self.0)
    }
}

impl std::error::Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decimal::Decimal;

    fn sample() -> Schema {
        Schema::new(vec![
            Column::new("ID", DataType::Int),
            Column::new("PRICE", DataType::Decimal),
            Column::new("NAME", DataType::Str),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let s = sample();
        assert_eq!(s.index_of("PRICE"), Some(1));
        assert_eq!(s.index_of("MISSING"), None);
        assert_eq!(s.column(0).name, "ID");
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn rejects_duplicates() {
        Schema::new(vec![
            Column::new("A", DataType::Int),
            Column::new("A", DataType::Date),
        ]);
    }

    #[test]
    fn validate_accepts_well_typed() {
        let s = sample();
        let t = vec![
            Value::Int(1),
            Value::Decimal(Decimal::from_int(2)),
            Value::Str("x".into()),
        ];
        assert!(s.validate(&t).is_ok());
    }

    #[test]
    fn validate_accepts_null_anywhere() {
        let s = sample();
        let t = vec![Value::Null, Value::Null, Value::Null];
        assert!(s.validate(&t).is_ok());
    }

    #[test]
    fn validate_rejects_arity_and_type() {
        let s = sample();
        assert!(s.validate(&[Value::Int(1)]).is_err());
        let t = vec![Value::Int(1), Value::Int(2), Value::Str("x".into())];
        assert!(s.validate(&t).is_err());
    }

    #[test]
    fn fixed_widths() {
        assert_eq!(DataType::Int.fixed_width(), 8);
        assert_eq!(DataType::Decimal.fixed_width(), 8);
        assert_eq!(DataType::Date.fixed_width(), 4);
        assert_eq!(DataType::Char.fixed_width(), 1);
        assert_eq!(DataType::Str.fixed_width(), 2);
    }
}
