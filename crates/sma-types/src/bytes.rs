//! Checked little-endian byte helpers — the blessed home for raw codec
//! byte access.
//!
//! Every reader returns `Option` (out-of-bounds reads are `None`, never a
//! panic) and every truncation is explicit, so modules that decode
//! untrusted bytes (`row`, `view`, the page codec, SMA images, the
//! warehouse manifest) never index by literal, never `as`-narrow, and
//! never `unwrap`. The `sma-lint` rules `L2-codec-bytes`, `P4-literal-index`
//! and `U3-narrowing-cast` push all such code here.

/// Reads a `u16` at byte offset `off`; `None` if out of bounds.
pub fn get_u16_le(b: &[u8], off: usize) -> Option<u16> {
    let s = b.get(off..off.checked_add(2)?)?;
    Some(u16::from_le_bytes(s.try_into().ok()?))
}

/// Reads a `u32` at byte offset `off`; `None` if out of bounds.
pub fn get_u32_le(b: &[u8], off: usize) -> Option<u32> {
    let s = b.get(off..off.checked_add(4)?)?;
    Some(u32::from_le_bytes(s.try_into().ok()?))
}

/// Reads an `i32` at byte offset `off`; `None` if out of bounds.
pub fn get_i32_le(b: &[u8], off: usize) -> Option<i32> {
    let s = b.get(off..off.checked_add(4)?)?;
    Some(i32::from_le_bytes(s.try_into().ok()?))
}

/// Reads a `u64` at byte offset `off`; `None` if out of bounds.
pub fn get_u64_le(b: &[u8], off: usize) -> Option<u64> {
    let s = b.get(off..off.checked_add(8)?)?;
    Some(u64::from_le_bytes(s.try_into().ok()?))
}

/// Reads an `i64` at byte offset `off`; `None` if out of bounds.
pub fn get_i64_le(b: &[u8], off: usize) -> Option<i64> {
    let s = b.get(off..off.checked_add(8)?)?;
    Some(i64::from_le_bytes(s.try_into().ok()?))
}

/// Appends a `u16` in little-endian order.
pub fn put_u16_le(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` in little-endian order.
pub fn put_u32_le(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `i64` in little-endian order.
pub fn put_i64_le(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
pub fn put_u64_le(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Writes a `u16` into `b` at `off`. Returns `false` (writing nothing)
/// if the destination range is out of bounds.
pub fn write_u16_le(b: &mut [u8], off: usize, v: u16) -> bool {
    let Some(end) = off.checked_add(2) else {
        return false;
    };
    match b.get_mut(off..end) {
        Some(dst) => {
            dst.copy_from_slice(&v.to_le_bytes());
            true
        }
        None => false,
    }
}

/// Writes a `u32` into `b` at `off`. Returns `false` (writing nothing)
/// if the destination range is out of bounds.
pub fn write_u32_le(b: &mut [u8], off: usize, v: u32) -> bool {
    let Some(end) = off.checked_add(4) else {
        return false;
    };
    match b.get_mut(off..end) {
        Some(dst) => {
            dst.copy_from_slice(&v.to_le_bytes());
            true
        }
        None => false,
    }
}

/// Reinterprets an `i32` as its two's-complement bit pattern.
pub fn u32_bits(v: i32) -> u32 {
    u32::from_le_bytes(v.to_le_bytes())
}

/// Inverse of [`u32_bits`].
pub fn i32_bits(v: u32) -> i32 {
    i32::from_le_bytes(v.to_le_bytes())
}

/// Reinterprets an `i64` as its two's-complement bit pattern.
pub fn u64_bits(v: i64) -> u64 {
    u64::from_le_bytes(v.to_le_bytes())
}

/// Inverse of [`u64_bits`].
pub fn i64_bits(v: u64) -> i64 {
    i64::from_le_bytes(v.to_le_bytes())
}

/// The low byte of `v` — explicit, checked truncation (no `as` cast).
pub fn lo8(v: u32) -> u8 {
    v.to_le_bytes().first().copied().unwrap_or(0)
}

/// The low 16 bits of `v` — explicit, checked truncation.
pub fn lo16(v: u32) -> u16 {
    get_u16_le(&v.to_le_bytes(), 0).unwrap_or(0)
}

/// The low 32 bits of `v` — explicit, checked truncation.
pub fn lo32(v: u64) -> u32 {
    get_u32_le(&v.to_le_bytes(), 0).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readers_roundtrip_and_bounds_check() {
        let mut buf = Vec::new();
        put_u16_le(&mut buf, 0xBEEF);
        put_u32_le(&mut buf, 0xDEAD_BEEF);
        put_i64_le(&mut buf, -42);
        assert_eq!(get_u16_le(&buf, 0), Some(0xBEEF));
        assert_eq!(get_u32_le(&buf, 2), Some(0xDEAD_BEEF));
        assert_eq!(get_i64_le(&buf, 6), Some(-42));
        // Out of bounds is None, not a panic.
        assert_eq!(get_u16_le(&buf, buf.len() - 1), None);
        assert_eq!(get_u32_le(&buf, usize::MAX - 1), None);
        assert_eq!(get_i64_le(&[], 0), None);
        assert_eq!(
            get_u64_le(&buf, 6),
            Some(get_i64_le(&buf, 6).unwrap() as u64)
        );
        assert_eq!(
            get_i32_le(&buf, 2),
            Some(i32::from_le_bytes(0xDEAD_BEEFu32.to_le_bytes()))
        );
    }

    #[test]
    fn writers_bounds_check() {
        let mut b = [0u8; 4];
        assert!(write_u16_le(&mut b, 2, 0x0102));
        assert_eq!(b, [0, 0, 2, 1]);
        assert!(!write_u16_le(&mut b, 3, 7));
        assert!(write_u32_le(&mut b, 0, u32::MAX));
        assert!(!write_u32_le(&mut b, 1, 7));
        assert!(!write_u32_le(&mut b, usize::MAX, 7));
    }

    #[test]
    fn truncations_take_low_bits() {
        assert_eq!(lo8(0x1234_56AB), 0xAB);
        assert_eq!(lo16(0x1234_56AB), 0x56AB);
        assert_eq!(lo32(0x1_0000_0002), 2);
    }
}
