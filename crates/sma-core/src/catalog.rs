//! The SMA catalog: named SMAs per relation, driven by `define sma`.
//!
//! The paper's workflow is declarative — the DBA issues `define sma …`
//! statements and the system builds and maintains the files. The catalog
//! is that registry: it parses definitions, bulkloads them over the
//! registered relation, routes maintenance, and serves each relation's
//! [`SmaSet`] to the planner.

use std::collections::BTreeMap;
use std::fmt;

use sma_storage::{BucketNo, Table};
use sma_types::Tuple;

use crate::parse::{parse_define_sma, ParseError};
use crate::set::SmaSet;
use crate::sma::{Sma, SmaError};

/// Errors from catalog operations.
#[derive(Debug)]
pub enum CatalogError {
    /// The statement failed to parse.
    Parse(ParseError),
    /// Building or maintaining the SMA failed.
    Sma(SmaError),
    /// The statement referenced an unknown relation.
    UnknownRelation(String),
    /// A SMA with this name already exists on the relation.
    DuplicateSma {
        /// Relation name.
        relation: String,
        /// SMA name.
        sma: String,
    },
    /// No SMA with this name exists on the relation.
    UnknownSma {
        /// Relation name.
        relation: String,
        /// SMA name.
        sma: String,
    },
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::Parse(e) => write!(f, "{e}"),
            CatalogError::Sma(e) => write!(f, "{e}"),
            CatalogError::UnknownRelation(r) => write!(f, "unknown relation {r:?}"),
            CatalogError::DuplicateSma { relation, sma } => {
                write!(f, "sma {sma:?} already defined on {relation:?}")
            }
            CatalogError::UnknownSma { relation, sma } => {
                write!(f, "no sma {sma:?} on {relation:?}")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<ParseError> for CatalogError {
    fn from(e: ParseError) -> CatalogError {
        CatalogError::Parse(e)
    }
}

impl From<SmaError> for CatalogError {
    fn from(e: SmaError) -> CatalogError {
        CatalogError::Sma(e)
    }
}

/// Registry of SMA sets, one per relation name.
#[derive(Debug, Default)]
pub struct SmaCatalog {
    sets: BTreeMap<String, SmaSet>,
    /// Flush generation of the sealed state this catalog describes.
    /// Bumped by every committed streaming flush; persisted in the
    /// warehouse manifest and stamped into the WAL header so replay can
    /// reject frames from older generations.
    epoch: u64,
}

impl SmaCatalog {
    /// An empty catalog.
    pub fn new() -> SmaCatalog {
        SmaCatalog::default()
    }

    /// The flush generation of the sealed state (0 until a streaming
    /// flush commits or a manifest carrying an epoch is recovered).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Sets the flush generation — recovery installs the manifest's
    /// committed epoch here.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Bumps the flush generation, returning the new value. Called once
    /// per committed flush.
    pub fn advance_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Executes a `define sma` statement against `table`, bulkloading the
    /// SMA and registering it under the statement's `from` relation. The
    /// relation name in the statement must match `table.name()`.
    pub fn execute_define(&mut self, statement: &str, table: &Table) -> Result<&Sma, CatalogError> {
        let (def, relation) = parse_define_sma(statement, table.schema())?;
        if !relation.eq_ignore_ascii_case(table.name()) {
            return Err(CatalogError::UnknownRelation(relation));
        }
        let rel_key = table.name().to_string();
        let set = self.sets.entry(rel_key.clone()).or_default();
        if set.by_name(&def.name).is_some() {
            return Err(CatalogError::DuplicateSma {
                relation: rel_key,
                sma: def.name,
            });
        }
        let name = def.name.clone();
        let sma = Sma::build(table, def)?;
        set.push(sma);
        // Just pushed under this name; `UnknownSma` here is unreachable but
        // reported rather than assumed.
        set.by_name(&name).ok_or(CatalogError::UnknownSma {
            relation: rel_key,
            sma: name,
        })
    }

    /// The SMA set for `relation`, if any SMAs are defined on it.
    pub fn set_for(&self, relation: &str) -> Option<&SmaSet> {
        self.sets.get(relation)
    }

    /// Mutable access to the SMA set for `relation` — the entry point for
    /// quarantine marking and bucket-level healing.
    pub fn set_for_mut(&mut self, relation: &str) -> Option<&mut SmaSet> {
        self.sets.get_mut(relation)
    }

    /// Installs an already-built SMA on `relation`, replacing any existing
    /// SMA of the same name.
    ///
    /// This is the recovery entry point: restart and scrub paths register
    /// SMAs loaded from disk — or rebuilt from the base table after a
    /// checksum failure — without re-parsing a `define sma` statement.
    pub fn install(&mut self, relation: &str, sma: Sma) {
        let set = self.sets.entry(relation.to_string()).or_default();
        if set.by_name(&sma.def().name).is_some() {
            let mut kept = SmaSet::new();
            for s in set.smas() {
                if s.def().name != sma.def().name {
                    kept.push(s.clone());
                }
            }
            *set = kept;
        }
        set.push(sma);
    }

    /// Drops the SMA named `sma` from `relation` — the cheap operation the
    /// paper contrasts with a data cube's all-or-nothing rigidity.
    pub fn drop_sma(&mut self, relation: &str, sma: &str) -> Result<(), CatalogError> {
        let set = self
            .sets
            .get_mut(relation)
            .ok_or_else(|| CatalogError::UnknownRelation(relation.to_string()))?;
        let mut kept = SmaSet::new();
        let mut found = false;
        for s in set.smas() {
            if s.def().name == sma {
                found = true;
            } else {
                kept.push(s.clone());
            }
        }
        if !found {
            return Err(CatalogError::UnknownSma {
                relation: relation.to_string(),
                sma: sma.to_string(),
            });
        }
        *set = kept;
        Ok(())
    }

    /// Relations with at least one SMA.
    pub fn relations(&self) -> impl Iterator<Item = &str> {
        self.sets.keys().map(String::as_str)
    }

    /// Routes a table insert to the relation's SMAs (no-op when none).
    pub fn note_insert(
        &mut self,
        relation: &str,
        bucket: BucketNo,
        tuple: &Tuple,
    ) -> Result<(), CatalogError> {
        if let Some(set) = self.sets.get_mut(relation) {
            set.note_insert(bucket, tuple)?;
        }
        Ok(())
    }

    /// Routes a table delete to the relation's SMAs (no-op when none).
    pub fn note_delete(
        &mut self,
        relation: &str,
        bucket: BucketNo,
        tuple: &Tuple,
    ) -> Result<(), CatalogError> {
        if let Some(set) = self.sets.get_mut(relation) {
            set.note_delete(bucket, tuple)?;
        }
        Ok(())
    }

    /// Refreshes stale min/max buckets on every SMA of `relation` that
    /// reports staleness, reading each affected bucket once.
    pub fn refresh_stale(&mut self, relation: &str, table: &Table) -> Result<usize, CatalogError> {
        let Some(set) = self.sets.get_mut(relation) else {
            return Ok(0);
        };
        let mut refreshed = 0;
        for b in 0..table.bucket_count() {
            if set.smas().iter().any(|s| s.is_stale(b)) {
                set.refresh_bucket(table, b)?;
                refreshed += 1;
            }
        }
        Ok(refreshed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sma_types::{Column, DataType, Date, Schema, Value};
    use std::sync::Arc;

    fn lineitem_like() -> Table {
        let schema = Arc::new(Schema::new(vec![
            Column::new("L_SHIPDATE", DataType::Date),
            Column::new("L_RETURNFLAG", DataType::Char),
        ]));
        let mut t = Table::in_memory("LINEITEM", schema, 1);
        for i in 0..20i64 {
            t.append(&vec![
                Value::Date(Date::from_days(9000 + i as i32)),
                Value::Char(b'A' + (i % 2) as u8),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn define_builds_and_registers() {
        let t = lineitem_like();
        let mut cat = SmaCatalog::new();
        let sma = cat
            .execute_define("define sma min select min(L_SHIPDATE) from LINEITEM", &t)
            .unwrap();
        assert_eq!(sma.def().name, "min");
        assert!(cat.set_for("LINEITEM").unwrap().by_name("min").is_some());
        assert_eq!(cat.relations().collect::<Vec<_>>(), vec!["LINEITEM"]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let t = lineitem_like();
        let mut cat = SmaCatalog::new();
        cat.execute_define("define sma m select min(L_SHIPDATE) from LINEITEM", &t)
            .unwrap();
        let err = cat
            .execute_define("define sma m select max(L_SHIPDATE) from LINEITEM", &t)
            .unwrap_err();
        assert!(matches!(err, CatalogError::DuplicateSma { .. }));
    }

    #[test]
    fn relation_must_match() {
        let t = lineitem_like();
        let mut cat = SmaCatalog::new();
        let err = cat
            .execute_define("define sma m select min(L_SHIPDATE) from ORDERS", &t)
            .unwrap_err();
        assert!(matches!(err, CatalogError::UnknownRelation(_)));
    }

    #[test]
    fn drop_sma_removes_only_the_named_one() {
        let t = lineitem_like();
        let mut cat = SmaCatalog::new();
        cat.execute_define("define sma a select min(L_SHIPDATE) from LINEITEM", &t)
            .unwrap();
        cat.execute_define("define sma b select max(L_SHIPDATE) from LINEITEM", &t)
            .unwrap();
        cat.drop_sma("LINEITEM", "a").unwrap();
        let set = cat.set_for("LINEITEM").unwrap();
        assert!(set.by_name("a").is_none());
        assert!(set.by_name("b").is_some());
        assert!(matches!(
            cat.drop_sma("LINEITEM", "a"),
            Err(CatalogError::UnknownSma { .. })
        ));
        assert!(matches!(
            cat.drop_sma("NOPE", "a"),
            Err(CatalogError::UnknownRelation(_))
        ));
    }

    #[test]
    fn install_replaces_same_named_sma() {
        use crate::agg::AggFn;
        use crate::def::SmaDefinition;
        use crate::expr::col;
        let t = lineitem_like();
        let mut cat = SmaCatalog::new();
        cat.execute_define("define sma m select min(L_SHIPDATE) from LINEITEM", &t)
            .unwrap();
        cat.execute_define("define sma keep select max(L_SHIPDATE) from LINEITEM", &t)
            .unwrap();
        // A rebuilt SMA under an existing name replaces it in place…
        let rebuilt = Sma::build(&t, SmaDefinition::new("m", AggFn::Max, col(0))).unwrap();
        cat.install("LINEITEM", rebuilt);
        let set = cat.set_for("LINEITEM").unwrap();
        assert_eq!(set.smas().len(), 2, "replaced, not appended");
        assert_eq!(set.by_name("m").unwrap().def().agg, AggFn::Max);
        assert!(set.by_name("keep").is_some());
        // …and installing on a fresh relation creates its set.
        let other = Sma::build(&t, SmaDefinition::count("c")).unwrap();
        cat.install("OTHER", other);
        assert!(cat.set_for("OTHER").unwrap().by_name("c").is_some());
    }

    #[test]
    fn maintenance_routes_and_refreshes() {
        let mut t = lineitem_like();
        let mut cat = SmaCatalog::new();
        cat.execute_define("define sma mx select max(L_SHIPDATE) from LINEITEM", &t)
            .unwrap();
        // Delete the global max; the SMA goes stale but stays sound.
        let rows = t.scan().unwrap();
        let (tid, tuple) = rows.last().unwrap().clone();
        let bucket = t.bucket_of_page(tid.page);
        t.delete(tid).unwrap();
        cat.note_delete("LINEITEM", bucket, &tuple).unwrap();
        assert!(cat.set_for("LINEITEM").unwrap().smas()[0].is_stale(bucket));
        let refreshed = cat.refresh_stale("LINEITEM", &t).unwrap();
        assert_eq!(refreshed, 1);
        assert!(!cat.set_for("LINEITEM").unwrap().smas()[0].is_stale(bucket));
        // Inserts route too (and unknown relations are no-ops).
        cat.note_insert("LINEITEM", bucket, &tuple).unwrap();
        cat.note_insert("ELSEWHERE", 0, &tuple).unwrap();
        assert_eq!(cat.refresh_stale("ELSEWHERE", &t).unwrap(), 0);
    }
}
