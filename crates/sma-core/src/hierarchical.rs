//! Hierarchical (two-level) SMAs — §4.
//!
//! "Every SMA-file is again partitioned into buckets and for each bucket a
//! second level SMA is computed. […] If a second level bucket qualifies or
//! disqualifies, the first level SMA-file need not be accessed, which
//! saves some I/O."
//!
//! We implement exactly the two levels the paper recommends ("since second
//! level SMA-files will be very small we do not think that higher levels
//! are useful"): a level-2 entry covers `fanout` consecutive level-1
//! (per-data-bucket) min/max entries.

use sma_storage::BucketNo;
use sma_types::Value;

use crate::grade::{BucketPred, Grade, StatsProvider};
use crate::sma::Sma;

/// Two-level min/max index over one column.
#[derive(Debug, Clone)]
pub struct HierarchicalMinMax {
    column: usize,
    fanout: u32,
    /// Level-1 bounds per data bucket; `None` for undefined entries.
    l1: Vec<Option<(Value, Value)>>,
    /// Per data bucket: whether a `Null` input was seen.
    l1_null: Vec<bool>,
    /// Level-2 bounds per super-bucket of `fanout` level-1 entries.
    l2: Vec<Option<(Value, Value)>>,
    /// Per super-bucket: whether any covered bucket saw `Null`.
    l2_null: Vec<bool>,
}

/// Classification produced by a hierarchical prune, with the I/O
/// accounting the §4 trade-off discussion is about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchicalPrune {
    /// Grade per data bucket.
    pub grades: Vec<Grade>,
    /// Level-2 entries inspected (always all of them).
    pub l2_inspected: usize,
    /// Level-1 entries inspected (only inside ambivalent super-buckets).
    pub l1_inspected: usize,
    /// Level-1 entries skipped thanks to level 2.
    pub l1_skipped: usize,
}

impl HierarchicalMinMax {
    /// Builds the two-level structure from built `min` and `max` SMAs over
    /// the same bare column. `fanout` is the number of level-1 entries one
    /// level-2 entry covers.
    ///
    /// Returns `None` when the inputs do not form a usable pair: a fanout
    /// below 2 (a level without pruning), SMAs that are not min/max over a
    /// bare column, or min and max covering different columns.
    pub fn from_smas(min_sma: &Sma, max_sma: &Sma, fanout: u32) -> Option<HierarchicalMinMax> {
        if fanout < 2 {
            return None;
        }
        let (min_agg, col) = min_sma.def().minmax_column()?;
        let (max_agg, col2) = max_sma.def().minmax_column()?;
        if col != col2 || min_agg != crate::agg::AggFn::Min || max_agg != crate::agg::AggFn::Max {
            return None;
        }
        let n = min_sma.n_buckets().max(max_sma.n_buckets());
        let mut l1 = Vec::with_capacity(n as usize);
        let mut l1_null = Vec::with_capacity(n as usize);
        for b in 0..n {
            let lo = min_sma.bucket_value_across_groups(b);
            let hi = max_sma.bucket_value_across_groups(b);
            l1.push(match (lo, hi) {
                (Value::Null, _) | (_, Value::Null) => None,
                (lo, hi) => Some((lo, hi)),
            });
            l1_null.push(min_sma.saw_null(b) || max_sma.saw_null(b));
        }
        let mut out = HierarchicalMinMax {
            column: col,
            fanout,
            l1,
            l1_null,
            l2: Vec::new(),
            l2_null: Vec::new(),
        };
        out.rebuild_l2();
        Some(out)
    }

    fn rebuild_l2(&mut self) {
        self.l2.clear();
        self.l2_null.clear();
        for chunk in self.l1.chunks(self.fanout as usize) {
            let mut bounds: Option<(Value, Value)> = None;
            for entry in chunk.iter().flatten() {
                bounds = Some(match bounds {
                    None => entry.clone(),
                    Some((lo, hi)) => (lo.min_value(&entry.0), hi.max_value(&entry.1)),
                });
            }
            self.l2.push(bounds);
        }
        for (chunk, _) in self
            .l1_null
            .chunks(self.fanout as usize)
            .zip(self.l2.iter())
        {
            self.l2_null.push(chunk.iter().any(|&b| b));
        }
    }

    /// The indexed column.
    pub fn column(&self) -> usize {
        self.column
    }

    /// Level-1 entries covered per level-2 entry.
    pub fn fanout(&self) -> u32 {
        self.fanout
    }

    /// Number of level-2 entries.
    pub fn l2_len(&self) -> usize {
        self.l2.len()
    }

    /// Grades all data buckets against `pred`, touching level-1 entries
    /// only inside ambivalent super-buckets.
    ///
    /// `pred` must reference only this structure's column; predicates over
    /// other columns grade everything ambivalent (sound).
    pub fn prune(&self, pred: &BucketPred) -> HierarchicalPrune {
        let mut grades = vec![Grade::Ambivalent; self.l1.len()];
        let mut l1_inspected = 0;
        let mut l1_skipped = 0;
        for (sb, bounds) in self.l2.iter().enumerate() {
            let start = sb * self.fanout as usize;
            let end = ((sb + 1) * self.fanout as usize).min(self.l1.len());
            let l2_stats = SingleBucketStats {
                column: self.column,
                bounds: bounds.clone(),
                null_free: !self.l2_null[sb],
            };
            let l2_grade = pred.grade(0, &l2_stats);
            match l2_grade {
                Grade::Qualifies | Grade::Disqualifies => {
                    // The whole super-bucket resolves; level 1 not touched.
                    for g in &mut grades[start..end] {
                        *g = l2_grade;
                    }
                    l1_skipped += end - start;
                }
                Grade::Ambivalent => {
                    for (i, g) in grades[start..end].iter_mut().enumerate() {
                        let b = start + i;
                        l1_inspected += 1;
                        let l1_stats = SingleBucketStats {
                            column: self.column,
                            bounds: self.l1[b].clone(),
                            null_free: !self.l1_null[b],
                        };
                        *g = pred.grade(0, &l1_stats);
                    }
                }
            }
        }
        HierarchicalPrune {
            grades,
            l2_inspected: self.l2.len(),
            l1_inspected,
            l1_skipped,
        }
    }
}

/// Adapter presenting one bounds pair as a [`StatsProvider`] for an
/// arbitrary bucket number (the grader always asks about bucket 0 here).
struct SingleBucketStats {
    column: usize,
    bounds: Option<(Value, Value)>,
    null_free: bool,
}

impl StatsProvider for SingleBucketStats {
    fn min_of(&self, col: usize, _: BucketNo) -> Option<Value> {
        (col == self.column)
            .then(|| self.bounds.as_ref().map(|(lo, _)| lo.clone()))
            .flatten()
    }
    fn max_of(&self, col: usize, _: BucketNo) -> Option<Value> {
        (col == self.column)
            .then(|| self.bounds.as_ref().map(|(_, hi)| hi.clone()))
            .flatten()
    }
    fn null_free(&self, col: usize, _: BucketNo) -> bool {
        col == self.column && self.null_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggFn;
    use crate::def::SmaDefinition;
    use crate::expr::col;
    use crate::grade::CmpOp;
    use sma_storage::Table;
    use sma_types::{Column, DataType, Schema};
    use std::sync::Arc;

    /// A sorted integer table: value = tuple index, 2 tuples per page.
    fn sorted_table(n: i64) -> Table {
        let schema = Arc::new(Schema::new(vec![
            Column::new("K", DataType::Int),
            Column::new("PAD", DataType::Str),
        ]));
        let mut t = Table::in_memory("t", schema, 1);
        let pad = "p".repeat(1800);
        for k in 0..n {
            t.append(&vec![Value::Int(k), Value::Str(pad.clone())])
                .unwrap();
        }
        t
    }

    fn hier(t: &Table, fanout: u32) -> HierarchicalMinMax {
        let min = Sma::build(t, SmaDefinition::new("min", AggFn::Min, col(0))).unwrap();
        let max = Sma::build(t, SmaDefinition::new("max", AggFn::Max, col(0))).unwrap();
        HierarchicalMinMax::from_smas(&min, &max, fanout).unwrap()
    }

    #[test]
    fn grades_match_flat_grading() {
        let t = sorted_table(64); // 32 buckets of 2
        let h = hier(&t, 4);
        let set = crate::set::SmaSet::build(
            &t,
            vec![
                SmaDefinition::new("min", AggFn::Min, col(0)),
                SmaDefinition::new("max", AggFn::Max, col(0)),
            ],
        )
        .unwrap();
        for c in [0i64, 10, 31, 32, 63, 100] {
            let pred = BucketPred::cmp(0, CmpOp::Le, c);
            let flat: Vec<Grade> = (0..t.bucket_count()).map(|b| pred.grade(b, &set)).collect();
            let pruned = h.prune(&pred);
            assert_eq!(pruned.grades, flat, "cutoff {c}");
        }
    }

    #[test]
    fn l2_skips_l1_on_clustered_data() {
        let t = sorted_table(128); // 64 buckets, fanout 8 → 8 super-buckets
        let h = hier(&t, 8);
        assert_eq!(h.l2_len(), 8);
        // Highly selective predicate: only the first super-bucket is
        // ambivalent-or-qualifying; the other 7 resolve at level 2.
        let pred = BucketPred::cmp(0, CmpOp::Le, 5i64);
        let p = h.prune(&pred);
        assert_eq!(p.l2_inspected, 8);
        assert!(
            p.l1_inspected <= 8,
            "only one super-bucket opened, saw {}",
            p.l1_inspected
        );
        assert!(p.l1_skipped >= 56);
        // Low selectivity mirror image.
        let pred = BucketPred::cmp(0, CmpOp::Ge, 120i64);
        let p = h.prune(&pred);
        assert!(p.l1_inspected <= 8);
    }

    #[test]
    fn unclustered_data_defeats_l2_but_stays_correct() {
        // Interleave small and large keys so every super-bucket spans the
        // whole domain: level 2 resolves nothing.
        let schema = Arc::new(Schema::new(vec![
            Column::new("K", DataType::Int),
            Column::new("PAD", DataType::Str),
        ]));
        let mut t = Table::in_memory("t", schema, 1);
        let pad = "p".repeat(1800);
        for k in 0..64i64 {
            let v = if k % 2 == 0 { k } else { 1000 + k };
            t.append(&vec![Value::Int(v), Value::Str(pad.clone())])
                .unwrap();
        }
        let h = hier(&t, 4);
        let pred = BucketPred::cmp(0, CmpOp::Le, 500i64);
        let p = h.prune(&pred);
        assert_eq!(p.l1_skipped, 0, "no super-bucket resolves");
        assert_eq!(p.l1_inspected, t.bucket_count() as usize);
        // Every bucket holds both a passing and a failing value.
        assert!(p.grades.iter().all(|&g| g == Grade::Ambivalent));
    }

    #[test]
    fn predicate_on_other_column_is_ambivalent() {
        let t = sorted_table(16);
        let h = hier(&t, 4);
        let p = h.prune(&BucketPred::cmp(1, CmpOp::Le, 0i64));
        assert!(p.grades.iter().all(|&g| g == Grade::Ambivalent));
    }

    #[test]
    fn partial_last_superbucket() {
        let t = sorted_table(18); // 9 buckets, fanout 4 → 3 super-buckets (4+4+1)
        let h = hier(&t, 4);
        assert_eq!(h.l2_len(), 3);
        let pred = BucketPred::cmp(0, CmpOp::Ge, 16i64);
        let p = h.prune(&pred);
        assert_eq!(p.grades.len(), 9);
        assert_eq!(*p.grades.last().unwrap(), Grade::Qualifies);
    }

    #[test]
    fn fanout_one_rejected() {
        let t = sorted_table(8);
        let min = Sma::build(&t, SmaDefinition::new("min", AggFn::Min, col(0))).unwrap();
        let max = Sma::build(&t, SmaDefinition::new("max", AggFn::Max, col(0))).unwrap();
        assert!(HierarchicalMinMax::from_smas(&min, &max, 1).is_none());
        // Mismatched aggregate pairing is also rejected, not a panic.
        assert!(HierarchicalMinMax::from_smas(&max, &min, 4).is_none());
    }
}
