//! SMA-files: the sequential per-bucket aggregate vectors of §2.1.
//!
//! "For all buckets, the resulting values are materialized in a separate
//! SMA-file. The SMA-file is sequentially organized: the value for the
//! first bucket is the first value in the SMA-file … a SMA-file does not
//! contain any other additional information."
//!
//! Entries live in memory as [`Value`]s; the *physical* footprint (what
//! the paper's space numbers measure) is tracked via the per-entry byte
//! width, and [`SmaFile::size_pages`] reports the file's size in 4 KiB
//! pages — the unit every experiment reports.

use sma_storage::PAGE_SIZE;
use sma_types::Value;

/// One sequentially-organized SMA-file: entry *i* summarizes bucket *i*.
#[derive(Debug, Clone, PartialEq)]
pub struct SmaFile {
    entries: Vec<Value>,
    entry_bytes: usize,
}

impl SmaFile {
    /// Creates an empty file whose entries occupy `entry_bytes` on disk.
    pub fn new(entry_bytes: usize) -> SmaFile {
        assert!(entry_bytes > 0, "entries must have positive width");
        SmaFile {
            entries: Vec::new(),
            entry_bytes,
        }
    }

    /// Creates a file pre-sized to `n` buckets of `fill`.
    pub fn filled(entry_bytes: usize, n: usize, fill: Value) -> SmaFile {
        SmaFile {
            entries: vec![fill; n],
            entry_bytes,
        }
    }

    /// Appends the entry for the next bucket.
    pub fn push(&mut self, v: Value) {
        self.entries.push(v);
    }

    /// The entry for bucket `i` (`None` past the end).
    pub fn get(&self, i: u32) -> Option<&Value> {
        self.entries.get(i as usize)
    }

    /// Overwrites the entry for bucket `i`, extending the file with `Null`
    /// if the table has grown.
    pub fn set(&mut self, i: u32, v: Value) {
        if i as usize >= self.entries.len() {
            self.entries.resize(i as usize + 1, Value::Null);
        }
        self.entries[i as usize] = v;
    }

    /// Number of bucket entries.
    pub fn len(&self) -> u32 {
        self.entries.len() as u32
    }

    /// True iff the file has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries in bucket order.
    pub fn entries(&self) -> &[Value] {
        &self.entries
    }

    /// Bytes per entry (the paper's 4/8-byte accounting).
    pub fn entry_bytes(&self) -> usize {
        self.entry_bytes
    }

    /// Physical size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.entries.len() * self.entry_bytes
    }

    /// Physical size in 4 KiB pages (what the paper's table reports).
    pub fn size_pages(&self) -> usize {
        self.size_bytes().div_ceil(PAGE_SIZE)
    }

    /// Entries per page — how many buckets one SMA page summarizes. The
    /// paper's headline ratio: 1000 date entries per 4 K page.
    pub fn entries_per_page(&self) -> usize {
        PAGE_SIZE / self.entry_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sma_types::Date;

    #[test]
    fn push_get_roundtrip() {
        let mut f = SmaFile::new(4);
        f.push(Value::Int(1));
        f.push(Value::Int(2));
        assert_eq!(f.get(0), Some(&Value::Int(1)));
        assert_eq!(f.get(1), Some(&Value::Int(2)));
        assert_eq!(f.get(2), None);
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
    }

    #[test]
    fn set_extends_with_null() {
        let mut f = SmaFile::new(4);
        f.set(3, Value::Int(9));
        assert_eq!(f.len(), 4);
        assert_eq!(f.get(0), Some(&Value::Null));
        assert_eq!(f.get(3), Some(&Value::Int(9)));
    }

    #[test]
    fn space_accounting_matches_paper_ratio() {
        // §2.1: a date-min SMA over 4 K pages with 4-byte entries is
        // 1/1000th of the data — 1024 entries per page.
        let mut f = SmaFile::new(4);
        for d in 0..1024 {
            f.push(Value::Date(Date::from_days(d)));
        }
        assert_eq!(f.entries_per_page(), 1024);
        assert_eq!(f.size_pages(), 1);
        f.push(Value::Date(Date::from_days(0)));
        assert_eq!(f.size_pages(), 2, "1025 entries spill to a second page");
    }

    #[test]
    fn eight_byte_entries() {
        let f = SmaFile::filled(8, 512, Value::Int(0));
        assert_eq!(f.size_bytes(), 4096);
        assert_eq!(f.size_pages(), 1);
        assert_eq!(f.entries_per_page(), 512);
    }

    #[test]
    #[should_panic(expected = "positive width")]
    fn zero_width_rejected() {
        SmaFile::new(0);
    }
}
