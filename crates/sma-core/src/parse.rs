//! Parser for the paper's `define sma` statement (§2.1 / §2.3):
//!
//! ```sql
//! define sma extdis
//! select sum(L_EXTENDEDPRICE * (1 - L_DISCOUNT))
//! from LINEITEM
//! group by L_RETURNFLAG, L_LINESTATUS
//! ```
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! stmt    := DEFINE SMA name SELECT agg '(' input ')' FROM table [GROUP BY cols]
//! agg     := MIN | MAX | SUM | COUNT
//! input   := '*' (count only) | expr
//! expr    := term (('+'|'-') term)*
//! term    := factor ('*' factor)*
//! factor  := column | number | date-literal | '(' expr ')'
//! ```
//!
//! Column names resolve against a provided [`Schema`]; numbers with a
//! decimal point become [`Decimal`] literals, bare integers become `Int`
//! literals, and single-quoted `'YYYY-MM-DD'` strings become dates. The
//! paper's single-entry select clause and single-relation from clause are
//! enforced.

use std::fmt;

use sma_types::{Date, Decimal, Schema, Value};

use crate::agg::AggFn;
use crate::def::SmaDefinition;
use crate::expr::ScalarExpr;

/// Error produced by the `define sma` parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sma parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(String),
    Quoted(String),
    Star,
    Plus,
    Minus,
    LParen,
    RParen,
    Comma,
}

fn lex(input: &str) -> Result<Vec<Tok>, ParseError> {
    let mut toks = Vec::new();
    let mut it = input.chars().peekable();
    while let Some(&ch) = it.peek() {
        match ch {
            c if c.is_whitespace() => {
                it.next();
            }
            '(' => {
                it.next();
                toks.push(Tok::LParen);
            }
            ')' => {
                it.next();
                toks.push(Tok::RParen);
            }
            ',' => {
                it.next();
                toks.push(Tok::Comma);
            }
            '*' => {
                it.next();
                toks.push(Tok::Star);
            }
            '+' => {
                it.next();
                toks.push(Tok::Plus);
            }
            '-' => {
                it.next();
                toks.push(Tok::Minus);
            }
            '\'' => {
                it.next();
                let mut s = String::new();
                loop {
                    match it.next() {
                        Some('\'') => break,
                        Some(c) => s.push(c),
                        None => return Err(ParseError("unterminated string literal".into())),
                    }
                }
                toks.push(Tok::Quoted(s));
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(&c) = it.peek() {
                    if c.is_ascii_digit() || c == '.' {
                        s.push(c);
                        it.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Number(s));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = it.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        s.push(c);
                        it.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(s));
            }
            other => return Err(ParseError(format!("unexpected character {other:?}"))),
        }
    }
    Ok(toks)
}

struct Parser<'a> {
    toks: Vec<Tok>,
    pos: usize,
    schema: &'a Schema,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(ParseError(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn keyword_is(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(ParseError(format!("expected {what}, found {other:?}"))),
        }
    }

    fn column(&mut self) -> Result<usize, ParseError> {
        let name = self.ident("column name")?;
        self.schema
            .index_of(&name)
            .or_else(|| {
                // Case-insensitive fallback, since SQL is.
                self.schema
                    .columns()
                    .iter()
                    .position(|c| c.name.eq_ignore_ascii_case(&name))
            })
            .ok_or_else(|| ParseError(format!("unknown column {name:?}")))
    }

    fn expr(&mut self) -> Result<ScalarExpr, ParseError> {
        let mut left = self.term()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.pos += 1;
                    left = left.add(self.term()?);
                }
                Some(Tok::Minus) => {
                    self.pos += 1;
                    left = left.sub(self.term()?);
                }
                _ => return Ok(left),
            }
        }
    }

    fn term(&mut self) -> Result<ScalarExpr, ParseError> {
        let mut left = self.factor()?;
        while matches!(self.peek(), Some(Tok::Star)) {
            self.pos += 1;
            left = left.mul(self.factor()?);
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<ScalarExpr, ParseError> {
        match self.next() {
            Some(Tok::LParen) => {
                let e = self.expr()?;
                match self.next() {
                    Some(Tok::RParen) => Ok(e),
                    other => Err(ParseError(format!("expected ')', found {other:?}"))),
                }
            }
            Some(Tok::Number(s)) => {
                if s.contains('.') {
                    let d = Decimal::parse(&s)
                        .map_err(|e| ParseError(format!("bad decimal literal: {e}")))?;
                    Ok(ScalarExpr::Literal(Value::Decimal(d)))
                } else {
                    let n: i64 = s
                        .parse()
                        .map_err(|_| ParseError(format!("bad integer literal {s:?}")))?;
                    // SQL arithmetic like `1 - L_DISCOUNT` mixes integer
                    // literals with DECIMAL columns; coerce bare integers
                    // to decimals so the common pattern type-checks.
                    Ok(ScalarExpr::Literal(Value::Decimal(Decimal::from_int(n))))
                }
            }
            Some(Tok::Quoted(s)) => {
                let d =
                    Date::parse(&s).map_err(|e| ParseError(format!("bad date literal: {e}")))?;
                Ok(ScalarExpr::Literal(Value::Date(d)))
            }
            Some(Tok::Ident(_)) => {
                self.pos -= 1;
                let c = self.column()?;
                Ok(ScalarExpr::Column(c))
            }
            other => Err(ParseError(format!("expected expression, found {other:?}"))),
        }
    }
}

/// Parses a `define sma` statement against `schema`, returning the
/// definition and the relation name from the `from` clause.
pub fn parse_define_sma(
    input: &str,
    schema: &Schema,
) -> Result<(SmaDefinition, String), ParseError> {
    let toks = lex(input)?;
    let mut p = Parser {
        toks,
        pos: 0,
        schema,
    };
    p.expect_keyword("define")?;
    p.expect_keyword("sma")?;
    let name = p.ident("sma name")?;
    p.expect_keyword("select")?;
    let agg_name = p.ident("aggregate function")?;
    let agg = match agg_name.to_ascii_lowercase().as_str() {
        "min" => AggFn::Min,
        "max" => AggFn::Max,
        "sum" => AggFn::Sum,
        "count" => AggFn::Count,
        other => {
            return Err(ParseError(format!(
                "unknown aggregate {other:?} (the paper allows min, max, sum, count)"
            )))
        }
    };
    match p.next() {
        Some(Tok::LParen) => {}
        other => return Err(ParseError(format!("expected '(', found {other:?}"))),
    }
    let input_expr = if matches!(p.peek(), Some(Tok::Star)) {
        p.pos += 1;
        None
    } else {
        Some(p.expr()?)
    };
    match p.next() {
        Some(Tok::RParen) => {}
        other => return Err(ParseError(format!("expected ')', found {other:?}"))),
    }
    // "The select clause may contain only a single entry."
    if matches!(p.peek(), Some(Tok::Comma)) {
        return Err(ParseError(
            "the select clause may contain only a single entry (§2.1)".into(),
        ));
    }
    p.expect_keyword("from")?;
    let relation = p.ident("relation name")?;
    // "We allow only for a single entry within the from clause."
    if matches!(p.peek(), Some(Tok::Comma)) {
        return Err(ParseError(
            "joins are not allowed in a SMA definition (§2.1; see §4 for join SMAs)".into(),
        ));
    }
    let mut group_by = Vec::new();
    if p.keyword_is("group") {
        p.pos += 1;
        p.expect_keyword("by")?;
        loop {
            group_by.push(p.column()?);
            if matches!(p.peek(), Some(Tok::Comma)) {
                p.pos += 1;
            } else {
                break;
            }
        }
    }
    if p.keyword_is("order") {
        return Err(ParseError(
            "order specifications are not allowed in a SMA definition (§2.1)".into(),
        ));
    }
    if let Some(t) = p.peek() {
        return Err(ParseError(format!("trailing input at {t:?}")));
    }
    let def = match (agg, input_expr) {
        (AggFn::Count, None) => SmaDefinition::count(name).group_by(group_by),
        (AggFn::Count, Some(_)) => {
            return Err(ParseError("count takes '*' in a SMA definition".into()))
        }
        (_, None) => return Err(ParseError(format!("{agg} requires an input expression"))),
        (agg, Some(e)) => SmaDefinition::new(name, agg, e).group_by(group_by),
    };
    Ok((def, relation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, dec_lit};
    use sma_types::{Column, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("L_SHIPDATE", DataType::Date),
            Column::new("L_RETURNFLAG", DataType::Char),
            Column::new("L_LINESTATUS", DataType::Char),
            Column::new("L_EXTENDEDPRICE", DataType::Decimal),
            Column::new("L_DISCOUNT", DataType::Decimal),
            Column::new("L_TAX", DataType::Decimal),
        ])
    }

    #[test]
    fn parses_the_papers_min_example() {
        // Verbatim from §2.1.
        let (def, rel) = parse_define_sma(
            "define sma min select min(L_SHIPDATE) from LINEITEM",
            &schema(),
        )
        .unwrap();
        assert_eq!(rel, "LINEITEM");
        assert_eq!(def, SmaDefinition::new("min", AggFn::Min, col(0)));
    }

    #[test]
    fn parses_grouped_count() {
        let (def, _) = parse_define_sma(
            "define sma count select count(*) from LINEITEM \
             group by L_RETURNFLAG, L_LINESTATUS",
            &schema(),
        )
        .unwrap();
        assert_eq!(def, SmaDefinition::count("count").group_by(vec![1, 2]));
    }

    #[test]
    fn parses_the_extdistax_expression() {
        // Fig. 4: sum(EXTPRICE * (1-DIS) * (1+TAX)).
        let (def, _) = parse_define_sma(
            "define sma extdistax \
             select sum(L_EXTENDEDPRICE * (1 - L_DISCOUNT) * (1 + L_TAX)) \
             from LINEITEM group by L_RETURNFLAG, L_LINESTATUS",
            &schema(),
        )
        .unwrap();
        let expected = SmaDefinition::new(
            "extdistax",
            AggFn::Sum,
            col(3)
                .mul(dec_lit("1.00").sub(col(4)))
                .mul(dec_lit("1.00").add(col(5))),
        )
        .group_by(vec![1, 2]);
        assert_eq!(def, expected);
        assert!(def.validate(&schema()).is_ok());
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let (def, _) = parse_define_sma(
            "DEFINE SMA m SELECT MAX(l_shipdate) FROM L GROUP BY l_returnflag",
            &schema(),
        )
        .unwrap();
        assert_eq!(def.agg, AggFn::Max);
        assert_eq!(def.group_by, vec![1]);
    }

    #[test]
    fn date_literals() {
        let (def, _) =
            parse_define_sma("define sma d select min(L_SHIPDATE - 90) from L", &schema()).unwrap();
        // 90 coerces to Decimal… which would be ill-typed for DATE - n.
        // Date arithmetic needs integer days; validate() rejects it, which
        // is the correct diagnosis for this odd definition.
        assert!(def.validate(&schema()).is_err());
        // Quoted dates parse as dates.
        let (def, _) =
            parse_define_sma("define sma d select max('1998-12-01') from L", &schema()).unwrap();
        assert_eq!(
            def.input,
            Some(ScalarExpr::Literal(Value::Date(
                Date::parse("1998-12-01").unwrap()
            )))
        );
    }

    #[test]
    fn rejects_the_papers_restrictions() {
        let s = schema();
        // Multiple select entries.
        assert!(parse_define_sma(
            "define sma x select min(L_SHIPDATE), max(L_SHIPDATE) from L",
            &s
        )
        .is_err());
        // Joins.
        assert!(parse_define_sma("define sma x select min(L_SHIPDATE) from L, O", &s).is_err());
        // Order specification.
        assert!(parse_define_sma(
            "define sma x select min(L_SHIPDATE) from L order by L_SHIPDATE",
            &s
        )
        .is_err());
        // Unsupported aggregate.
        assert!(parse_define_sma("define sma x select avg(L_TAX) from L", &s).is_err());
        // count with an expression.
        assert!(parse_define_sma("define sma x select count(L_TAX) from L", &s).is_err());
        // min without an expression.
        assert!(parse_define_sma("define sma x select min(*) from L", &s).is_err());
    }

    #[test]
    fn rejects_garbage() {
        let s = schema();
        assert!(parse_define_sma("", &s).is_err());
        assert!(parse_define_sma("define sma", &s).is_err());
        assert!(parse_define_sma("define sma x select min(NOPE) from L", &s).is_err());
        assert!(parse_define_sma("define sma x select min(L_SHIPDATE from L", &s).is_err());
        assert!(
            parse_define_sma("define sma x select min(L_SHIPDATE) from L trailing", &s).is_err()
        );
        assert!(parse_define_sma("define sma x select min('oops') from L", &s).is_err());
        assert!(parse_define_sma("define sma x select min('unterminated from L", &s).is_err());
        assert!(parse_define_sma("define sma x select min(1.2.3) from L", &s).is_err());
        assert!(parse_define_sma("define sma x select min(@) from L", &s).is_err());
    }

    #[test]
    fn parsed_definitions_build_and_answer() {
        use crate::set::SmaSet;
        use sma_storage::Table;
        use std::sync::Arc;
        let s = Arc::new(schema());
        let mut t = Table::in_memory("L", s.clone(), 1);
        for i in 0..10i64 {
            t.append(&vec![
                Value::Date(Date::from_days(100 + i as i32)),
                Value::Char(b'A' + (i % 2) as u8),
                Value::Char(b'F'),
                Value::Decimal(Decimal::from_int(100 * i)),
                Value::Decimal(Decimal::from_cents(5)),
                Value::Decimal(Decimal::from_cents(3)),
            ])
            .unwrap();
        }
        let (def, _) = parse_define_sma(
            "define sma ext select sum(L_EXTENDEDPRICE * (1 - L_DISCOUNT)) \
             from L group by L_RETURNFLAG",
            &s,
        )
        .unwrap();
        let set = SmaSet::build(&t, vec![def]).unwrap();
        assert_eq!(set.smas().len(), 1);
        assert_eq!(set.smas()[0].file_count(), 2);
    }
}
