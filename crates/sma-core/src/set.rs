//! SMA sets: "a single SMA is rarely useful, but in most situations a set
//! of SMAs is required to answer a query efficiently" (§1).
//!
//! [`SmaSet`] owns all SMAs built over one table, implements the grading
//! [`StatsProvider`] on top of whatever min/max/count SMAs exist, finds
//! aggregate SMAs matching a query's grouping (§2.3: the SMA "has to
//! reflect the grouping of the query or a finer grouping"), and carries
//! maintenance fan-out to every member.

use sma_storage::{BucketNo, Table};
use sma_types::{Tuple, Value};

use crate::agg::{Accumulator, AggFn};
use crate::def::SmaDefinition;
use crate::expr::{col, dec_lit, ScalarExpr};
use crate::grade::StatsProvider;
use crate::sma::{build_many, build_many_parallel, GroupKey, Sma, SmaError};

/// A collection of SMAs over one table.
#[derive(Debug, Clone, Default)]
pub struct SmaSet {
    smas: Vec<Sma>,
}

impl SmaSet {
    /// Builds all `defs` over `table` in one shared scan.
    pub fn build(table: &Table, defs: Vec<SmaDefinition>) -> Result<SmaSet, SmaError> {
        Ok(SmaSet {
            smas: build_many(table, defs)?,
        })
    }

    /// Builds all `defs` with `threads` parallel workers.
    pub fn build_parallel(
        table: &Table,
        defs: Vec<SmaDefinition>,
        threads: usize,
    ) -> Result<SmaSet, SmaError> {
        Ok(SmaSet {
            smas: build_many_parallel(table, defs, threads)?,
        })
    }

    /// An empty set (add members via [`SmaSet::push`]).
    pub fn new() -> SmaSet {
        SmaSet::default()
    }

    /// Adds a built SMA.
    pub fn push(&mut self, sma: Sma) {
        self.smas.push(sma);
    }

    /// All member SMAs.
    pub fn smas(&self) -> &[Sma] {
        &self.smas
    }

    /// The member named `name`.
    pub fn by_name(&self, name: &str) -> Option<&Sma> {
        self.smas.iter().find(|s| s.def().name == name)
    }

    /// The min SMA over bare column `c` (grouped or not), if any.
    pub fn min_sma_for(&self, c: usize) -> Option<&Sma> {
        self.smas
            .iter()
            .find(|s| s.def().minmax_column() == Some((AggFn::Min, c)))
    }

    /// The max SMA over bare column `c` (grouped or not), if any.
    pub fn max_sma_for(&self, c: usize) -> Option<&Sma> {
        self.smas
            .iter()
            .find(|s| s.def().minmax_column() == Some((AggFn::Max, c)))
    }

    /// The count SMA grouped *solely* by column `c`, if any — the shape
    /// §3.1's `count_{A,i}[x]` rules need.
    pub fn count_sma_grouped_by(&self, c: usize) -> Option<&Sma> {
        self.smas
            .iter()
            .find(|s| s.def().agg == AggFn::Count && s.def().group_by == [c])
    }

    /// Finds an aggregate SMA computing `agg(input)` whose grouping equals
    /// or refines (`⊇`) `query_group_by`. Finer groupings are usable
    /// because their entries re-aggregate to the coarser groups.
    pub fn find_aggregate(
        &self,
        agg: AggFn,
        input: Option<&ScalarExpr>,
        query_group_by: &[usize],
    ) -> Option<&Sma> {
        self.smas.iter().find(|s| {
            s.def().agg == agg
                && s.def().input.as_ref() == input
                && query_group_by.iter().all(|g| s.def().group_by.contains(g))
        })
    }

    /// Total physical size of every file in the set, in 4 KiB pages —
    /// the paper's headline space number (8444 pages for Query 1 at SF 1).
    pub fn total_pages(&self) -> usize {
        self.smas.iter().map(Sma::total_pages).sum()
    }

    /// Total number of SMA-files (the paper counts 26 for Query 1).
    pub fn file_count(&self) -> usize {
        self.smas.iter().map(Sma::file_count).sum()
    }

    /// Fans an insert out to every member SMA.
    pub fn note_insert(&mut self, bucket: BucketNo, tuple: &Tuple) -> Result<(), SmaError> {
        for s in &mut self.smas {
            s.note_insert(bucket, tuple)?;
        }
        Ok(())
    }

    /// Fans a delete out to every member SMA.
    pub fn note_delete(&mut self, bucket: BucketNo, tuple: &Tuple) -> Result<(), SmaError> {
        for s in &mut self.smas {
            s.note_delete(bucket, tuple)?;
        }
        Ok(())
    }

    /// Fans an in-place update out to every member SMA.
    pub fn note_update(
        &mut self,
        bucket: BucketNo,
        old: &Tuple,
        new: &Tuple,
    ) -> Result<(), SmaError> {
        for s in &mut self.smas {
            s.note_update(bucket, old, new)?;
        }
        Ok(())
    }

    /// Refreshes every member's entries for `bucket` from the table.
    /// Clears any quarantine on the bucket: the entries are authoritative
    /// again after a rescan.
    pub fn refresh_bucket(&mut self, table: &Table, bucket: BucketNo) -> Result<(), SmaError> {
        for s in &mut self.smas {
            s.refresh_bucket(table, bucket)?;
        }
        Ok(())
    }

    /// Marks `bucket` as quarantined in every member SMA: its entries may
    /// be garbage (corrupt page, inconsistent counts) and must not be
    /// trusted for grading until [`SmaSet::refresh_bucket`] rebuilds them.
    pub fn quarantine_bucket(&mut self, bucket: BucketNo) {
        for s in &mut self.smas {
            s.quarantine_bucket(bucket);
        }
    }

    /// Whether *any* member SMA has `bucket` quarantined. One damaged
    /// member poisons the whole bucket because query answers may draw on
    /// every SMA in the set.
    pub fn is_bucket_quarantined(&self, bucket: BucketNo) -> bool {
        self.smas.iter().any(|s| s.is_quarantined(bucket))
    }

    /// Sorted, deduplicated list of buckets quarantined in at least one
    /// member SMA.
    pub fn quarantined_buckets(&self) -> Vec<BucketNo> {
        let mut out: Vec<BucketNo> = Vec::new();
        for s in &self.smas {
            out.extend(s.quarantined_buckets());
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Whether any member SMA carries quarantined buckets.
    pub fn has_quarantine(&self) -> bool {
        self.smas.iter().any(Sma::has_quarantine)
    }

    /// The definitions of Fig. 4: the eight SMAs that answer TPC-D
    /// Query 1. Column indexes are resolved from `table`'s schema by the
    /// TPC-D names, so any LINEITEM-shaped table works.
    pub fn query1_definitions(table: &Table) -> Result<Vec<SmaDefinition>, SmaError> {
        let schema = table.schema();
        let need = |name: &str| -> Result<usize, SmaError> {
            schema.index_of(name).ok_or_else(|| {
                SmaError::Def(crate::def::DefError(format!(
                    "table {:?} lacks column {name}",
                    table.name()
                )))
            })
        };
        let shipdate = need("L_SHIPDATE")?;
        let retflag = need("L_RETURNFLAG")?;
        let linestat = need("L_LINESTATUS")?;
        let qty = need("L_QUANTITY")?;
        let ext = need("L_EXTENDEDPRICE")?;
        let dis = need("L_DISCOUNT")?;
        let tax = need("L_TAX")?;
        let groups = vec![retflag, linestat];
        let one_minus_dis = dec_lit("1.00").sub(col(dis));
        let one_plus_tax = dec_lit("1.00").add(col(tax));
        Ok(vec![
            SmaDefinition::new("max", AggFn::Max, col(shipdate)),
            SmaDefinition::new("min", AggFn::Min, col(shipdate)),
            SmaDefinition::count("count").group_by(groups.clone()),
            SmaDefinition::new("qty", AggFn::Sum, col(qty)).group_by(groups.clone()),
            SmaDefinition::new("dis", AggFn::Sum, col(dis)).group_by(groups.clone()),
            SmaDefinition::new("ext", AggFn::Sum, col(ext)).group_by(groups.clone()),
            SmaDefinition::new("extdis", AggFn::Sum, col(ext).mul(one_minus_dis.clone()))
                .group_by(groups.clone()),
            SmaDefinition::new(
                "extdistax",
                AggFn::Sum,
                col(ext).mul(one_minus_dis).mul(one_plus_tax),
            )
            .group_by(groups),
        ])
    }

    /// Builds the Fig. 4 set over a LINEITEM-shaped table.
    pub fn build_query1_set(table: &Table) -> Result<SmaSet, SmaError> {
        let defs = Self::query1_definitions(table)?;
        SmaSet::build(table, defs)
    }
}

impl StatsProvider for SmaSet {
    fn min_of(&self, c: usize, bucket: BucketNo) -> Option<Value> {
        let sma = self.min_sma_for(c)?;
        if sma.is_quarantined(bucket) {
            return None;
        }
        match sma.bucket_value_across_groups(bucket) {
            Value::Null => None,
            v => Some(v),
        }
    }

    fn max_of(&self, c: usize, bucket: BucketNo) -> Option<Value> {
        let sma = self.max_sma_for(c)?;
        if sma.is_quarantined(bucket) {
            return None;
        }
        match sma.bucket_value_across_groups(bucket) {
            Value::Null => None,
            v => Some(v),
        }
    }

    fn null_free(&self, c: usize, bucket: BucketNo) -> bool {
        // Known null-free iff a min or max SMA on the column was built and
        // never saw a Null in this bucket (tracked at build/maintenance).
        // Stale bounds are loose-but-sound, so they forfeit only the
        // null-free claim; quarantined entries are possibly garbage and
        // forfeit everything.
        self.min_sma_for(c)
            .or_else(|| self.max_sma_for(c))
            .map(|s| !s.saw_null(bucket) && !s.is_stale(bucket) && !s.is_quarantined(bucket))
            .unwrap_or(false)
    }

    fn distinct_counts(&self, c: usize, bucket: BucketNo) -> Option<Vec<(Value, i64)>> {
        let sma = self.count_sma_grouped_by(c)?;
        if sma.is_quarantined(bucket) {
            return None;
        }
        let mut out = Vec::new();
        for (key, file) in sma.groups() {
            let n = file.get(bucket)?.as_int().unwrap_or(0);
            out.push((key[0].clone(), n));
        }
        Some(out)
    }
}

/// Re-aggregates a grouped SMA's bucket entries to a coarser query
/// grouping: for each SMA group whose projection onto `query_cols` is
/// `target`, merge the entry for `bucket` into `acc`.
pub fn merge_bucket_into_group(
    sma: &Sma,
    bucket: BucketNo,
    query_cols: &[usize],
    target: &GroupKey,
    acc: &mut Accumulator,
) {
    let positions: Vec<usize> = query_cols
        .iter()
        .filter_map(|qc| sma.def().group_by.iter().position(|g| g == qc))
        .collect();
    if positions.len() != query_cols.len() {
        // Callers pre-check grouping compatibility (`covers_grouping`); an
        // incompatible SMA contributes nothing rather than panicking.
        return;
    }
    for (key, file) in sma.groups() {
        let projected: Vec<Value> = positions.iter().map(|&p| key[p].clone()).collect();
        if &projected == target {
            if let Some(v) = file.get(bucket) {
                acc.merge(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grade::{BucketPred, CmpOp, Grade};
    use sma_types::{Column, DataType, Date, Schema};
    use std::sync::Arc;

    fn date(s: &str) -> Value {
        Value::Date(Date::parse(s).unwrap())
    }

    /// Fig. 1-shaped table: 3 buckets × 3 tuples, DATE + CHAR flag.
    fn fig1_table() -> Table {
        let schema = Arc::new(Schema::new(vec![
            Column::new("SHIP", DataType::Date),
            Column::new("FLAG", DataType::Char),
            Column::new("PAD", DataType::Str),
        ]));
        let mut t = Table::in_memory("L", schema, 1);
        let dates = [
            "1997-03-11",
            "1997-04-22",
            "1997-02-02",
            "1997-04-01",
            "1997-05-07",
            "1997-04-28",
            "1997-05-02",
            "1997-05-20",
            "1997-06-03",
        ];
        let flags = [b'A', b'A', b'R', b'R', b'A', b'R', b'A', b'A', b'R'];
        let pad = "x".repeat(1200);
        for (d, f) in dates.iter().zip(flags) {
            t.append(&vec![date(d), Value::Char(f), Value::Str(pad.clone())])
                .unwrap();
        }
        t
    }

    fn fig1_set(t: &Table) -> SmaSet {
        SmaSet::build(
            t,
            vec![
                SmaDefinition::new("min", AggFn::Min, col(0)),
                SmaDefinition::new("max", AggFn::Max, col(0)),
                SmaDefinition::count("count"),
                SmaDefinition::count("per_flag").group_by(vec![1]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn section_2_2_grading_through_a_real_set() {
        let t = fig1_table();
        let set = fig1_set(&t);
        let pred = BucketPred::cmp(0, CmpOp::Lt, date("1997-04-30"));
        assert_eq!(pred.grade(0, &set), Grade::Qualifies);
        assert_eq!(pred.grade(1, &set), Grade::Ambivalent);
        assert_eq!(pred.grade(2, &set), Grade::Disqualifies);
    }

    #[test]
    fn provider_surfaces_minmax() {
        let t = fig1_table();
        let set = fig1_set(&t);
        assert_eq!(set.min_of(0, 0), Some(date("1997-02-02")));
        assert_eq!(set.max_of(0, 2), Some(date("1997-06-03")));
        assert_eq!(set.min_of(1, 0), None, "no SMA on FLAG min/max");
        assert!(set.null_free(0, 0));
        assert!(!set.null_free(1, 0));
    }

    #[test]
    fn provider_surfaces_distinct_counts() {
        let t = fig1_table();
        let set = fig1_set(&t);
        let counts = set.distinct_counts(1, 0).unwrap();
        assert!(counts.contains(&(Value::Char(b'A'), 2)));
        assert!(counts.contains(&(Value::Char(b'R'), 1)));
        assert_eq!(set.distinct_counts(0, 0), None, "no count SMA by SHIP");
    }

    #[test]
    fn lookup_helpers() {
        let t = fig1_table();
        let set = fig1_set(&t);
        assert!(set.by_name("min").is_some());
        assert!(set.by_name("nope").is_none());
        assert!(set.min_sma_for(0).is_some());
        assert!(set.max_sma_for(0).is_some());
        assert!(set.min_sma_for(1).is_none());
        assert!(set.count_sma_grouped_by(1).is_some());
        assert!(set.count_sma_grouped_by(0).is_none());
    }

    #[test]
    fn find_aggregate_respects_grouping_refinement() {
        let t = fig1_table();
        let set = SmaSet::build(&t, vec![SmaDefinition::count("c").group_by(vec![0, 1])]).unwrap();
        // Exact grouping: found.
        assert!(set.find_aggregate(AggFn::Count, None, &[0, 1]).is_some());
        // Coarser query grouping: the finer SMA still serves.
        assert!(set.find_aggregate(AggFn::Count, None, &[1]).is_some());
        assert!(set.find_aggregate(AggFn::Count, None, &[]).is_some());
        // A grouping the SMA lacks: not found.
        assert!(set.find_aggregate(AggFn::Count, None, &[2]).is_none());
        // Different aggregate/input: not found.
        assert!(set
            .find_aggregate(AggFn::Sum, Some(&col(0)), &[1])
            .is_none());
    }

    #[test]
    fn merge_bucket_reaggregates_finer_groups() {
        let t = fig1_table();
        let set = SmaSet::build(&t, vec![SmaDefinition::count("c").group_by(vec![1])]).unwrap();
        let sma = set.by_name("c").unwrap();
        // Coarsen to the empty grouping: total count of bucket 0.
        let mut acc = Accumulator::new(AggFn::Count);
        merge_bucket_into_group(sma, 0, &[], &vec![], &mut acc);
        assert_eq!(acc.finish(), Value::Int(3));
        // Project onto [1] itself: group A count.
        let mut acc = Accumulator::new(AggFn::Count);
        merge_bucket_into_group(sma, 0, &[1], &vec![Value::Char(b'A')], &mut acc);
        assert_eq!(acc.finish(), Value::Int(2));
    }

    #[test]
    fn maintenance_fans_out() {
        let t = fig1_table();
        let mut set = fig1_set(&t);
        let tuple = vec![
            date("1997-01-01"),
            Value::Char(b'Z'),
            Value::Str("p".into()),
        ];
        set.note_insert(0, &tuple).unwrap();
        assert_eq!(set.min_of(0, 0), Some(date("1997-01-01")));
        let counts = set.distinct_counts(1, 0).unwrap();
        assert!(counts.contains(&(Value::Char(b'Z'), 1)));
        set.note_delete(0, &tuple).unwrap();
        let counts = set.distinct_counts(1, 0).unwrap();
        assert!(counts.contains(&(Value::Char(b'Z'), 0)));
        // Min is now stale/loose; refresh retightens.
        assert!(!set.null_free(0, 0), "stale bucket loses null-free status");
        set.refresh_bucket(&t, 0).unwrap();
        assert_eq!(set.min_of(0, 0), Some(date("1997-02-02")));
        assert!(set.null_free(0, 0));
    }

    #[test]
    fn quarantine_downgrades_grading_until_refresh() {
        let t = fig1_table();
        let mut set = fig1_set(&t);
        let pred = BucketPred::cmp(0, CmpOp::Lt, date("1997-04-30"));
        assert_eq!(pred.grade(2, &set), Grade::Disqualifies);
        set.quarantine_bucket(2);
        assert!(set.is_bucket_quarantined(2));
        assert!(set.has_quarantine());
        assert_eq!(set.quarantined_buckets(), vec![2]);
        // Damaged entries must not disqualify (or qualify) anything: the
        // provider answers None/false, so grading lands on Ambivalent.
        assert_eq!(pred.grade(2, &set), Grade::Ambivalent);
        assert_eq!(set.min_of(0, 2), None);
        assert_eq!(set.max_of(0, 2), None);
        assert!(!set.null_free(0, 2));
        assert_eq!(set.distinct_counts(1, 2), None);
        // Untouched buckets are unaffected.
        assert_eq!(pred.grade(0, &set), Grade::Qualifies);
        // Rescanning the bucket restores trust and the original grade.
        set.refresh_bucket(&t, 2).unwrap();
        assert!(!set.has_quarantine());
        assert_eq!(pred.grade(2, &set), Grade::Disqualifies);
    }

    #[test]
    fn space_accounting_sums_members() {
        let t = fig1_table();
        let set = fig1_set(&t);
        assert_eq!(
            set.file_count(),
            1 + 1 + 1 + 2,
            "min+max+count+2 flag groups"
        );
        assert_eq!(
            set.total_pages(),
            5,
            "each tiny file still rounds to a page"
        );
    }
}
