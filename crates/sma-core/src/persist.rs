//! Persisting SMAs into page stores and plain files.
//!
//! The paper stores SMA-files as plain sequential disk files. This module
//! serializes a built [`Sma`] — its definition, group directory, per-group
//! SMA-files, and maintenance bitmaps — into any `PageStore`
//! implementation or an on-disk file, so benchmark runs that charge SMA
//! I/O can do so against *real* pages, and warehouses survive restarts.
//!
//! Stream format `SMA2` (little-endian):
//!
//! ```text
//! magic "SMA2" | payload_len u32 | crc32(payload) u32 | payload
//! payload := def | entry_bytes u32 | n_buckets u32 | null_seen bitmap |
//!            stale bitmap | n_groups u32 | { group key | entries } per group
//! ```
//!
//! Values carry a one-byte type tag; expressions serialize as a preorder
//! tree walk. In a page store the stream is chunked into pages (zero
//! padded); on disk it is written with the atomic write-temp → fsync →
//! rename recipe ([`save_sma_file`]), so a crash leaves either the old or
//! the new SMA image, never a torn one — and a torn or bit-flipped image
//! fails the CRC and surfaces as [`SmaError::Corrupt`], which recovery
//! answers by rebuilding from the base table (the paper's redundancy
//! argument, §3).
//!
//! The legacy seed format `SMA1` (`payload_len u32 | "SMA1" | payload`,
//! no checksum) is still decoded; writers always emit `SMA2`.

use std::path::Path;

use sma_storage::checksum::crc32;
use sma_storage::{atomic_write_file, PageStore, StoreError, PAGE_SIZE};
use sma_types::{bytes, Date, Decimal, Value};

use crate::agg::AggFn;
use crate::def::SmaDefinition;
use crate::expr::ScalarExpr;
use crate::file::SmaFile;
use crate::sma::{Sma, SmaError};

const MAGIC_V1: &[u8; 4] = b"SMA1";
const MAGIC_V2: &[u8; 4] = b"SMA2";

/// Bytes before the payload in an `SMA2` stream: magic, length, crc.
const V2_HEADER: usize = 12;

// ---------------------------------------------------------------- encode

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encode-side length narrowing. Every length written into an SMA image
/// (names, column indexes, bucket/group counts) is structurally far below
/// `u32::MAX`; saturating keeps the encoders total, and a saturated length
/// would fail the decoder's structural checks instead of silently
/// corrupting.
fn len_u32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, len_u32(s.len()));
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(n) => {
            out.push(1);
            put_u64(out, bytes::u64_bits(*n));
        }
        Value::Decimal(d) => {
            out.push(2);
            put_u64(out, bytes::u64_bits(d.cents()));
        }
        Value::Date(d) => {
            out.push(3);
            put_u32(out, bytes::u32_bits(d.days()));
        }
        Value::Char(c) => {
            out.push(4);
            out.push(*c);
        }
        Value::Str(s) => {
            out.push(5);
            put_str(out, s);
        }
    }
}

fn put_expr(out: &mut Vec<u8>, e: &ScalarExpr) {
    match e {
        ScalarExpr::Column(c) => {
            out.push(0);
            put_u32(out, len_u32(*c));
        }
        ScalarExpr::Literal(v) => {
            out.push(1);
            put_value(out, v);
        }
        ScalarExpr::Add(a, b) => {
            out.push(2);
            put_expr(out, a);
            put_expr(out, b);
        }
        ScalarExpr::Sub(a, b) => {
            out.push(3);
            put_expr(out, a);
            put_expr(out, b);
        }
        ScalarExpr::Mul(a, b) => {
            out.push(4);
            put_expr(out, a);
            put_expr(out, b);
        }
    }
}

fn put_bitmap(out: &mut Vec<u8>, bits: &[bool]) {
    put_u32(out, len_u32(bits.len()));
    let mut byte = 0u8;
    for (i, &b) in bits.iter().enumerate() {
        if b {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            out.push(byte);
            byte = 0;
        }
    }
    if !bits.len().is_multiple_of(8) {
        out.push(byte);
    }
}

/// Serializes a SMA definition (name, aggregate, input expression, group-by
/// columns). Public so the warehouse catalog manifest can embed definitions
/// and rebuild quarantined SMAs from them during recovery.
pub fn encode_definition(def: &SmaDefinition) -> Vec<u8> {
    let mut out = Vec::new();
    put_str(&mut out, &def.name);
    out.push(match def.agg {
        AggFn::Min => 0,
        AggFn::Max => 1,
        AggFn::Sum => 2,
        AggFn::Count => 3,
    });
    match &def.input {
        None => out.push(0),
        Some(e) => {
            out.push(1);
            put_expr(&mut out, e);
        }
    }
    put_u32(&mut out, len_u32(def.group_by.len()));
    for &g in &def.group_by {
        put_u32(&mut out, len_u32(g));
    }
    out
}

fn encode_payload(sma: &Sma) -> Vec<u8> {
    let mut out = encode_definition(&sma.def);
    // Entry width + buckets + bitmaps.
    put_u32(&mut out, len_u32(sma.entry_bytes));
    put_u32(&mut out, sma.n_buckets);
    put_bitmap(&mut out, &sma.null_seen);
    put_bitmap(&mut out, &sma.stale);
    // Groups.
    put_u32(&mut out, len_u32(sma.groups.len()));
    for (key, file) in &sma.groups {
        put_u32(&mut out, len_u32(key.len()));
        for v in key {
            put_value(&mut out, v);
        }
        put_u32(&mut out, len_u32(file.entries().len()));
        for v in file.entries() {
            put_value(&mut out, v);
        }
    }
    out
}

// ---------------------------------------------------------------- decode

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SmaError> {
        if self.pos + n > self.buf.len() {
            return Err(SmaError::Corrupt(format!(
                "truncated at offset {} (wanted {n} bytes)",
                self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn short(&self) -> SmaError {
        SmaError::Corrupt(format!("short read at offset {}", self.pos))
    }

    fn u8(&mut self) -> Result<u8, SmaError> {
        let s = self.take(1)?;
        s.first().copied().ok_or_else(|| self.short())
    }

    fn u32(&mut self) -> Result<u32, SmaError> {
        let s = self.take(4)?;
        bytes::get_u32_le(s, 0).ok_or_else(|| self.short())
    }

    fn u64(&mut self) -> Result<u64, SmaError> {
        let s = self.take(8)?;
        bytes::get_u64_le(s, 0).ok_or_else(|| self.short())
    }

    fn string(&mut self) -> Result<String, SmaError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| SmaError::Corrupt(format!("invalid utf-8: {e}")))
    }

    fn value(&mut self) -> Result<Value, SmaError> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Int(bytes::i64_bits(self.u64()?)),
            2 => Value::Decimal(Decimal::from_cents(bytes::i64_bits(self.u64()?))),
            3 => Value::Date(Date::from_days(bytes::i32_bits(self.u32()?))),
            4 => Value::Char(self.u8()?),
            5 => Value::Str(self.string()?),
            tag => return Err(SmaError::Corrupt(format!("unknown value tag {tag}"))),
        })
    }

    fn expr(&mut self, depth: usize) -> Result<ScalarExpr, SmaError> {
        if depth > 64 {
            return Err(SmaError::Corrupt("expression nesting too deep".into()));
        }
        Ok(match self.u8()? {
            0 => ScalarExpr::Column(self.u32()? as usize),
            1 => ScalarExpr::Literal(self.value()?),
            2 => {
                let a = self.expr(depth + 1)?;
                let b = self.expr(depth + 1)?;
                a.add(b)
            }
            3 => {
                let a = self.expr(depth + 1)?;
                let b = self.expr(depth + 1)?;
                a.sub(b)
            }
            4 => {
                let a = self.expr(depth + 1)?;
                let b = self.expr(depth + 1)?;
                a.mul(b)
            }
            tag => return Err(SmaError::Corrupt(format!("unknown expr tag {tag}"))),
        })
    }

    fn bitmap(&mut self) -> Result<Vec<bool>, SmaError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n.div_ceil(8))?;
        Ok((0..n).map(|i| bytes[i / 8] & (1 << (i % 8)) != 0).collect())
    }
}

fn read_definition(r: &mut Reader<'_>) -> Result<SmaDefinition, SmaError> {
    let name = r.string()?;
    let agg = match r.u8()? {
        0 => AggFn::Min,
        1 => AggFn::Max,
        2 => AggFn::Sum,
        3 => AggFn::Count,
        tag => return Err(SmaError::Corrupt(format!("unknown aggregate tag {tag}"))),
    };
    let input = match r.u8()? {
        0 => None,
        1 => Some(r.expr(0)?),
        tag => return Err(SmaError::Corrupt(format!("unknown input tag {tag}"))),
    };
    let n_group_cols = r.u32()? as usize;
    let mut group_by = Vec::with_capacity(n_group_cols.min(1024));
    for _ in 0..n_group_cols {
        group_by.push(r.u32()? as usize);
    }
    Ok(SmaDefinition {
        name,
        agg,
        input,
        group_by,
    })
}

/// Inverse of [`encode_definition`]; the whole buffer must be one
/// definition.
pub fn decode_definition(buf: &[u8]) -> Result<SmaDefinition, SmaError> {
    let mut r = Reader { buf, pos: 0 };
    let def = read_definition(&mut r)?;
    if r.pos != buf.len() {
        return Err(SmaError::Corrupt(format!(
            "{} trailing bytes after definition",
            buf.len() - r.pos
        )));
    }
    Ok(def)
}

fn decode_payload(buf: &[u8]) -> Result<Sma, SmaError> {
    let mut r = Reader { buf, pos: 0 };
    let def = read_definition(&mut r)?;
    let entry_bytes = r.u32()? as usize;
    if entry_bytes == 0 {
        return Err(SmaError::Corrupt("zero entry width".into()));
    }
    let n_buckets = r.u32()?;
    let null_seen = r.bitmap()?;
    let stale = r.bitmap()?;
    if null_seen.len() != n_buckets as usize || stale.len() != n_buckets as usize {
        return Err(SmaError::Corrupt("bitmap length mismatch".into()));
    }
    let n_groups = r.u32()? as usize;
    let mut groups = std::collections::BTreeMap::new();
    for _ in 0..n_groups {
        let key_len = r.u32()? as usize;
        let mut key = Vec::with_capacity(key_len.min(1024));
        for _ in 0..key_len {
            key.push(r.value()?);
        }
        let n_entries = r.u32()?;
        if n_entries != n_buckets {
            return Err(SmaError::Corrupt(format!(
                "group file has {n_entries} entries, table has {n_buckets} buckets"
            )));
        }
        let mut file = SmaFile::new(entry_bytes);
        for _ in 0..n_entries {
            file.push(r.value()?);
        }
        groups.insert(key, file);
    }
    if r.pos != buf.len() {
        return Err(SmaError::Corrupt(format!(
            "{} trailing bytes",
            buf.len() - r.pos
        )));
    }
    Ok(Sma {
        def,
        entry_bytes,
        n_buckets,
        groups,
        null_seen,
        stale,
        // Quarantine is runtime state: a freshly decoded image carries
        // none (damaged SMAs are never saved in the first place).
        quarantined: vec![false; n_buckets as usize],
    })
}

// ----------------------------------------------------------- stream layer

/// Serializes `sma` as a self-describing, checksummed `SMA2` byte stream:
/// `"SMA2" | payload_len u32 | crc32(payload) u32 | payload`.
pub fn encode_sma_stream(sma: &Sma) -> Vec<u8> {
    let payload = encode_payload(sma);
    let mut out = Vec::with_capacity(V2_HEADER + payload.len());
    out.extend_from_slice(MAGIC_V2);
    put_u32(&mut out, len_u32(payload.len()));
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

/// Decodes a byte stream produced by [`encode_sma_stream`] (or the legacy
/// seed format `payload_len u32 | "SMA1" | payload`, which carries no
/// checksum). Bytes past the declared length are ignored, so page-padded
/// images decode unchanged. Truncation, bit flips, and checksum mismatches
/// all surface as [`SmaError::Corrupt`] — never a panic and never a
/// silently wrong SMA.
pub fn decode_sma_stream(buf: &[u8]) -> Result<Sma, SmaError> {
    if buf.len() >= 4 && &buf[..4] == MAGIC_V2 {
        if buf.len() < V2_HEADER {
            return Err(SmaError::Corrupt("SMA2 header truncated".into()));
        }
        let header_short = || SmaError::Corrupt("SMA2 header truncated".into());
        let payload_len = bytes::get_u32_le(buf, 4).ok_or_else(header_short)? as usize;
        let want = bytes::get_u32_le(buf, 8).ok_or_else(header_short)?;
        let Some(payload) = buf[V2_HEADER..].get(..payload_len) else {
            return Err(SmaError::Corrupt(format!(
                "SMA2 stream truncated: header claims {payload_len} payload \
                 bytes, {} present",
                buf.len() - V2_HEADER
            )));
        };
        let got = crc32(payload);
        if got != want {
            return Err(SmaError::Corrupt(format!(
                "SMA2 checksum mismatch: stored {want:#010x}, computed {got:#010x}"
            )));
        }
        return decode_payload(payload);
    }
    // Legacy `SMA1`: length prefix, then magic inside the body. A real
    // length can never collide with `"SMA2"` read as an integer (~843 M —
    // far beyond any plausible body). No checksum to verify: the decoder's
    // structural checks are the only protection, which is why writers
    // always emit SMA2.
    if buf.len() < 8 {
        return Err(SmaError::Corrupt(
            "stream too short for any SMA format".into(),
        ));
    }
    let body_len = bytes::get_u32_le(buf, 0)
        .ok_or_else(|| SmaError::Corrupt("stream too short for any SMA format".into()))?
        as usize;
    let Some(body) = buf[4..].get(..body_len) else {
        return Err(SmaError::Corrupt(format!(
            "SMA1 stream truncated: header claims {body_len} body bytes, {} present",
            buf.len() - 4
        )));
    };
    if body.len() < 4 || &body[..4] != MAGIC_V1 {
        return Err(SmaError::Corrupt("bad magic".into()));
    }
    decode_payload(&body[4..])
}

// ------------------------------------------------------------- page layer

/// Writes `sma` into `store` starting at a freshly-allocated page run.
/// Returns `(first_page, page_count)`.
pub fn save_sma(sma: &Sma, store: &mut dyn PageStore) -> Result<(u32, u32), SmaError> {
    let stream = encode_sma_stream(sma);
    let pages = u32::try_from(stream.len().div_ceil(PAGE_SIZE))
        .map_err(|_| SmaError::Corrupt("SMA image exceeds the u32 page space".into()))?;
    let first = store.allocate()?;
    for p in 1..pages {
        let got = store.allocate()?;
        debug_assert_eq!(got, first + p, "contiguous allocation");
    }
    let mut page = [0u8; PAGE_SIZE];
    for (page_no, chunk) in (first..).zip(stream.chunks(PAGE_SIZE)) {
        page.fill(0);
        page.get_mut(..chunk.len())
            .ok_or_else(|| SmaError::Corrupt("chunk larger than a page".into()))?
            .copy_from_slice(chunk);
        // SMA images bypass the slotted-page pool by design: they are raw
        // chunked stream pages with a stream-level CRC, not tuple pages
        // with slot directories and per-page footers (DESIGN.md §5).
        // sma-lint: allow(L1-page-discipline) -- SMA image layer writes raw stream pages; integrity is the stream CRC, not the pool's page footer
        store.write_page(page_no, &page)?;
    }
    store.sync()?;
    Ok((first, pages))
}

/// Reads a SMA previously written with [`save_sma`] at `first_page`.
/// Accepts both `SMA2` and legacy `SMA1` images. A store that holds fewer
/// pages than the stream header claims (a crash truncated the tail) is
/// reported as [`SmaError::Corrupt`], not [`StoreError::OutOfRange`].
pub fn load_sma(store: &dyn PageStore, first_page: u32) -> Result<Sma, SmaError> {
    if first_page >= store.page_count() {
        return Err(SmaError::Corrupt(format!(
            "SMA image missing: starts at page {first_page}, store holds {}",
            store.page_count()
        )));
    }
    let mut head = [0u8; PAGE_SIZE];
    // sma-lint: allow(L1-page-discipline) -- SMA image layer reads raw stream pages; integrity is the stream CRC, not the pool's page footer
    store.read_page(first_page, &mut head)?;
    // Both formats put a u32 length in the first 8 bytes; over-reading a
    // few trailing zero-padded bytes is harmless, so derive a page count
    // from whichever header is present.
    let head_len = |off: usize| -> Result<usize, SmaError> {
        Ok(bytes::get_u32_le(&head, off)
            .ok_or_else(|| SmaError::Corrupt("SMA image header unreadable".into()))?
            as usize)
    };
    let total = if head.starts_with(MAGIC_V2) {
        V2_HEADER + head_len(4)?
    } else {
        4 + head_len(0)?
    };
    // `total` is bounded by u32::MAX + 12, so the page count always fits.
    let pages = u32::try_from(total.div_ceil(PAGE_SIZE))
        .map_err(|_| SmaError::Corrupt("SMA image header claims absurd size".into()))?;
    if (first_page as u64) + (pages as u64) > store.page_count() as u64 {
        return Err(SmaError::Corrupt(format!(
            "SMA image truncated: needs {pages} pages from page {first_page}, \
             store holds {}",
            store.page_count()
        )));
    }
    let mut stream = Vec::with_capacity(pages as usize * PAGE_SIZE);
    stream.extend_from_slice(&head);
    let mut page = [0u8; PAGE_SIZE];
    for p in 1..pages {
        // sma-lint: allow(L1-page-discipline) -- SMA image layer reads raw stream pages; integrity is the stream CRC, not the pool's page footer
        store.read_page(first_page + p, &mut page)?;
        stream.extend_from_slice(&page);
    }
    decode_sma_stream(&stream)
}

// ------------------------------------------------------------- file layer

fn io_err(e: std::io::Error) -> SmaError {
    SmaError::Store(StoreError::Io(e))
}

/// Persists `sma` to `path` atomically: the stream is written to a
/// temporary sibling, fsynced, renamed over `path`, and the directory is
/// fsynced. A crash at any point leaves either the previous image or the
/// complete new one — and anything in between fails the stream checksum on
/// load.
pub fn save_sma_file(sma: &Sma, path: &Path) -> Result<(), SmaError> {
    atomic_write_file(path, &encode_sma_stream(sma)).map_err(io_err)
}

/// Loads a SMA previously written with [`save_sma_file`]. Corrupt or
/// truncated images surface as [`SmaError::Corrupt`]; a missing file is an
/// I/O error (callers distinguish "never persisted" from "damaged").
pub fn load_sma_file(path: &Path) -> Result<Sma, SmaError> {
    let bytes = std::fs::read(path).map_err(io_err)?;
    decode_sma_stream(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, dec_lit};
    use crate::set::SmaSet;
    use sma_storage::{MemStore, Table};
    use sma_types::{Column, DataType, Schema};
    use std::sync::Arc;

    fn sample_table() -> Table {
        let schema = Arc::new(Schema::new(vec![
            Column::new("D", DataType::Date),
            Column::new("G", DataType::Char),
            Column::new("P", DataType::Decimal),
            Column::new("PAD", DataType::Str),
        ]));
        let mut t = Table::in_memory("t", schema, 1);
        let pad = "p".repeat(1200);
        for i in 0..30i64 {
            t.append(&vec![
                Value::Date(Date::from_days(9000 + i as i32)),
                Value::Char(b'A' + (i % 3) as u8),
                Value::Decimal(Decimal::from_cents(i * 7)),
                Value::Str(pad.clone()),
            ])
            .unwrap();
        }
        t
    }

    fn roundtrip(sma: &Sma) -> Sma {
        let mut store = MemStore::new();
        let (first, pages) = save_sma(sma, &mut store).unwrap();
        assert_eq!(store.page_count(), pages);
        load_sma(&store, first).unwrap()
    }

    #[test]
    fn roundtrip_ungrouped_minmax() {
        let t = sample_table();
        let sma = Sma::build(&t, SmaDefinition::new("min", AggFn::Min, col(0))).unwrap();
        let back = roundtrip(&sma);
        assert_eq!(back.def(), sma.def());
        assert_eq!(back.n_buckets(), sma.n_buckets());
        for b in 0..sma.n_buckets() {
            assert_eq!(back.entry_ungrouped(b), sma.entry_ungrouped(b));
            assert_eq!(back.saw_null(b), sma.saw_null(b));
            assert_eq!(back.is_stale(b), sma.is_stale(b));
        }
    }

    #[test]
    fn roundtrip_grouped_expression_sum() {
        let t = sample_table();
        let def = SmaDefinition::new(
            "expr",
            AggFn::Sum,
            col(2).mul(dec_lit("1.00").sub(dec_lit("0.05"))),
        )
        .group_by(vec![1]);
        let sma = Sma::build(&t, def).unwrap();
        let back = roundtrip(&sma);
        assert_eq!(back.def(), sma.def());
        assert_eq!(back.file_count(), sma.file_count());
        for (key, file) in sma.groups() {
            for b in 0..sma.n_buckets() {
                assert_eq!(back.entry(key, b), file.get(b));
            }
        }
    }

    #[test]
    fn roundtrip_preserves_maintenance_state() {
        let t = sample_table();
        let mut sma = Sma::build(&t, SmaDefinition::new("max", AggFn::Max, col(0))).unwrap();
        let victim = t.scan_bucket(1).unwrap()[0].1.clone();
        sma.note_delete(1, &victim).unwrap();
        assert!(sma.is_stale(1));
        let back = roundtrip(&sma);
        assert!(back.is_stale(1));
        assert!(!back.is_stale(0));
    }

    #[test]
    fn persisted_set_still_answers_queries() {
        use crate::grade::{BucketPred, CmpOp};
        let t = sample_table();
        let defs = vec![
            SmaDefinition::new("min", AggFn::Min, col(0)),
            SmaDefinition::new("max", AggFn::Max, col(0)),
            SmaDefinition::count("count").group_by(vec![1]),
        ];
        let set = SmaSet::build(&t, defs).unwrap();
        let mut store = MemStore::new();
        let mut locations = Vec::new();
        for sma in set.smas() {
            locations.push(save_sma(sma, &mut store).unwrap());
        }
        let mut reloaded = SmaSet::new();
        for (first, _) in &locations {
            reloaded.push(load_sma(&store, *first).unwrap());
        }
        let pred = BucketPred::cmp(0, CmpOp::Le, Value::Date(Date::from_days(9010)));
        for b in 0..t.bucket_count() {
            assert_eq!(pred.grade(b, &set), pred.grade(b, &reloaded));
        }
    }

    #[test]
    fn multi_page_smas_roundtrip() {
        // Enough buckets that one SMA-file spans multiple pages.
        let schema = Arc::new(Schema::new(vec![Column::new("K", DataType::Int)]));
        let mut t = Table::in_memory("big", schema, 1);
        for i in 0..2000i64 {
            t.append(&vec![Value::Int(i)]).unwrap();
        }
        // ~2000 tuples fit a handful of pages; force many buckets instead
        // by building then growing via maintenance.
        let mut sma = Sma::build(&t, SmaDefinition::new("m", AggFn::Min, col(0))).unwrap();
        for b in 0..3000u32 {
            sma.note_insert(b, &vec![Value::Int(b as i64)]).unwrap();
        }
        let back = roundtrip(&sma);
        assert_eq!(back.n_buckets(), sma.n_buckets());
        assert_eq!(back.entry_ungrouped(2999), sma.entry_ungrouped(2999));
    }

    #[test]
    fn corrupt_images_are_rejected() {
        let t = sample_table();
        let sma = Sma::build(&t, SmaDefinition::new("min", AggFn::Min, col(0))).unwrap();
        let mut store = MemStore::new();
        let (first, _) = save_sma(&sma, &mut store).unwrap();
        // Corrupt the magic.
        let mut page = [0u8; PAGE_SIZE];
        store.read_page(first, &mut page).unwrap();
        page[0] = b'X';
        store.write_page(first, &page).unwrap();
        assert!(matches!(load_sma(&store, first), Err(SmaError::Corrupt(_))));
        // Truncated store: claim a huge body.
        let mut page2 = [0u8; PAGE_SIZE];
        store.read_page(first, &mut page2).unwrap();
        page2[..4].copy_from_slice(&(10 * PAGE_SIZE as u32).to_le_bytes());
        store.write_page(first, &page2).unwrap();
        assert!(load_sma(&store, first).is_err());
    }

    #[test]
    fn checksum_catches_payload_bit_flips() {
        let t = sample_table();
        let sma = Sma::build(&t, SmaDefinition::new("min", AggFn::Min, col(0))).unwrap();
        let clean = encode_sma_stream(&sma);
        assert!(decode_sma_stream(&clean).is_ok());
        // Flip one bit somewhere in the payload: the CRC must object even
        // when the flip lands in a spot the structural decoder would accept
        // (e.g. the middle of an aggregate value).
        for &byte in &[V2_HEADER, V2_HEADER + 20, clean.len() - 1] {
            let mut evil = clean.clone();
            evil[byte] ^= 0x10;
            let err = decode_sma_stream(&evil).unwrap_err();
            assert!(matches!(err, SmaError::Corrupt(_)), "byte {byte}: {err}");
        }
    }

    #[test]
    fn trailing_zero_padding_is_tolerated() {
        let t = sample_table();
        let sma = Sma::build(&t, SmaDefinition::new("min", AggFn::Min, col(0))).unwrap();
        let mut padded = encode_sma_stream(&sma);
        padded.resize(padded.len().div_ceil(PAGE_SIZE) * PAGE_SIZE, 0);
        let back = decode_sma_stream(&padded).unwrap();
        assert_eq!(back.def(), sma.def());
    }

    /// A pre-checksum `SMA1` image (as the seed format wrote it) must still
    /// decode, so existing stores migrate by simply being re-saved.
    #[test]
    fn legacy_sma1_images_still_load() {
        let t = sample_table();
        let def = SmaDefinition::new("sum", AggFn::Sum, col(2)).group_by(vec![1]);
        let sma = Sma::build(&t, def).unwrap();
        // Reconstruct the legacy layout: `body_len u32 | "SMA1" | payload`.
        let payload = encode_payload(&sma);
        let mut legacy = Vec::new();
        put_u32(&mut legacy, 4 + payload.len() as u32);
        legacy.extend_from_slice(MAGIC_V1);
        legacy.extend_from_slice(&payload);
        let back = decode_sma_stream(&legacy).unwrap();
        assert_eq!(back.def(), sma.def());
        for (key, file) in sma.groups() {
            for b in 0..sma.n_buckets() {
                assert_eq!(back.entry(key, b), file.get(b));
            }
        }
        // And through the page layer, zero-padded like a real store image.
        let mut store = MemStore::new();
        let pages = legacy.len().div_ceil(PAGE_SIZE);
        let mut page = [0u8; PAGE_SIZE];
        for (i, chunk) in legacy.chunks(PAGE_SIZE).enumerate() {
            let no = store.allocate().unwrap();
            assert_eq!(no as usize, i);
            page.fill(0);
            page[..chunk.len()].copy_from_slice(chunk);
            store.write_page(no, &page).unwrap();
        }
        assert_eq!(store.page_count() as usize, pages);
        let via_pages = load_sma(&store, 0).unwrap();
        assert_eq!(via_pages.def(), sma.def());
    }

    #[test]
    fn value_codec_roundtrips_every_variant() {
        let values = vec![
            Value::Null,
            Value::Int(0),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Decimal(Decimal::from_cents(-12_345)),
            Value::Decimal(Decimal::from_cents(i64::MIN)),
            Value::Date(Date::from_days(-719_162)), // well before the epoch
            Value::Date(Date::from_days(0)),
            Value::Char(0xFF),
            Value::Str(String::new()),
            Value::Str("grüße, warehouse".into()),
        ];
        let mut buf = Vec::new();
        for v in &values {
            put_value(&mut buf, v);
        }
        let mut r = Reader { buf: &buf, pos: 0 };
        for v in &values {
            assert_eq!(&r.value().unwrap(), v);
        }
        assert_eq!(r.pos, buf.len());
    }

    #[test]
    fn definition_codec_roundtrips() {
        let defs = vec![
            SmaDefinition::new("plain", AggFn::Min, col(0)),
            SmaDefinition::count("rows").group_by(vec![1, 3]),
            SmaDefinition::new(
                "expr",
                AggFn::Sum,
                col(2).mul(dec_lit("1.00").sub(dec_lit("0.05"))),
            )
            .group_by(vec![1]),
        ];
        for def in defs {
            let bytes = encode_definition(&def);
            assert_eq!(decode_definition(&bytes).unwrap(), def);
        }
        assert!(decode_definition(&[]).is_err());
    }

    #[test]
    fn file_roundtrip_and_corrupt_file_detection() {
        use sma_storage::test_util::{flip_bit_in_file, scratch_path};
        let t = sample_table();
        let sma = Sma::build(&t, SmaDefinition::new("min", AggFn::Min, col(0))).unwrap();
        let path = scratch_path("sma-file");
        save_sma_file(&sma, &path).unwrap();
        let back = load_sma_file(&path).unwrap();
        assert_eq!(encode_sma_stream(&back), encode_sma_stream(&sma));
        flip_bit_in_file(&path, 40, 3).unwrap();
        assert!(matches!(load_sma_file(&path), Err(SmaError::Corrupt(_))));
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(load_sma_file(&path), Err(SmaError::Store(_))));
    }
}
