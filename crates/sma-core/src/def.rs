//! SMA definitions — the `define sma` statement of §2.1/§2.3.
//!
//! A definition names the SMA, gives the single aggregate in its select
//! clause (the paper: "the select clause may contain only a single
//! entry"), the input expression, and an optional `group by` column list.

use std::fmt;

use sma_types::{DataType, Schema, Value};

use crate::agg::AggFn;
use crate::expr::{ExprError, ScalarExpr};

/// A SMA definition, e.g. `define sma min select min(L_SHIPDATE) from
/// LINEITEM` or `define sma extdis select sum(EXTPRICE * (1-DIS)) …
/// group by L_RETFLAG, L_LINESTAT`.
#[derive(Debug, Clone, PartialEq)]
pub struct SmaDefinition {
    /// SMA name, unique within a catalog.
    pub name: String,
    /// The aggregate function.
    pub agg: AggFn,
    /// Input expression; `None` only for `count(*)`.
    pub input: Option<ScalarExpr>,
    /// Grouping columns (indexes into the table schema); empty = ungrouped.
    pub group_by: Vec<usize>,
}

impl SmaDefinition {
    /// `define sma <name> select <agg>(<input>) from R`.
    pub fn new(name: impl Into<String>, agg: AggFn, input: ScalarExpr) -> SmaDefinition {
        assert!(
            agg != AggFn::Count,
            "use SmaDefinition::count for count(*) SMAs"
        );
        SmaDefinition {
            name: name.into(),
            agg,
            input: Some(input),
            group_by: Vec::new(),
        }
    }

    /// `define sma <name> select count(*) from R`.
    pub fn count(name: impl Into<String>) -> SmaDefinition {
        SmaDefinition {
            name: name.into(),
            agg: AggFn::Count,
            input: None,
            group_by: Vec::new(),
        }
    }

    /// Adds a `group by` clause (builder style).
    #[must_use]
    pub fn group_by(mut self, cols: Vec<usize>) -> SmaDefinition {
        self.group_by = cols;
        self
    }

    /// Checks the definition against `schema` and returns the entry type.
    pub fn validate(&self, schema: &Schema) -> Result<DataType, DefError> {
        for &g in &self.group_by {
            if g >= schema.len() {
                return Err(DefError(format!(
                    "sma {:?}: group-by column {g} out of range",
                    self.name
                )));
            }
        }
        if self.group_by.len()
            != self
                .group_by
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len()
        {
            return Err(DefError(format!(
                "sma {:?}: duplicate group-by column",
                self.name
            )));
        }
        match (self.agg, &self.input) {
            (AggFn::Count, None) => Ok(DataType::Int),
            (AggFn::Count, Some(_)) => Err(DefError(format!(
                "sma {:?}: count(*) takes no input expression",
                self.name
            ))),
            (_, None) => Err(DefError(format!(
                "sma {:?}: {} requires an input expression",
                self.name, self.agg
            ))),
            (agg, Some(expr)) => {
                let ty = expr
                    .result_type(schema)
                    .map_err(|e| DefError(format!("sma {:?}: {e}", self.name)))?;
                if agg == AggFn::Sum && !matches!(ty, DataType::Int | DataType::Decimal) {
                    return Err(DefError(format!(
                        "sma {:?}: sum over non-numeric type {ty}",
                        self.name
                    )));
                }
                if matches!(ty, DataType::Str) && agg == AggFn::Sum {
                    unreachable!("covered above");
                }
                Ok(ty)
            }
        }
    }

    /// Bytes one entry occupies in a SMA-file (paper's 4/8-byte rule).
    pub fn entry_bytes(&self, schema: &Schema) -> Result<usize, DefError> {
        let ty = self.validate(schema)?;
        Ok(self.agg.entry_bytes(match self.agg {
            AggFn::Count => None,
            _ => Some(ty),
        }))
    }

    /// Evaluates the input expression on a tuple (`count(*)` yields a
    /// placeholder that the accumulator ignores).
    pub fn input_value(&self, tuple: &[Value]) -> Result<Value, ExprError> {
        match &self.input {
            Some(e) => e.eval(tuple),
            None => Ok(Value::Int(1)),
        }
    }

    /// The group key of a tuple under this definition's `group_by`.
    pub fn group_key(&self, tuple: &[Value]) -> Vec<Value> {
        self.group_by.iter().map(|&g| tuple[g].clone()).collect()
    }

    /// True iff this SMA is a plain (ungrouped) `min(col)` / `max(col)`
    /// over a bare column — the kind usable for selection grading.
    pub fn minmax_column(&self) -> Option<(AggFn, usize)> {
        match (self.agg, &self.input) {
            (AggFn::Min | AggFn::Max, Some(ScalarExpr::Column(c))) => Some((self.agg, *c)),
            _ => None,
        }
    }
}

impl fmt::Display for SmaDefinition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "define sma {} select {}(", self.name, self.agg)?;
        match &self.input {
            Some(e) => write!(f, "{e}")?,
            None => write!(f, "*")?,
        }
        write!(f, ")")?;
        if !self.group_by.is_empty() {
            write!(f, " group by ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "${g}")?;
            }
        }
        Ok(())
    }
}

/// Error produced by definition validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefError(pub String);

impl fmt::Display for DefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sma definition error: {}", self.0)
    }
}

impl std::error::Error for DefError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, dec_lit};
    use sma_types::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("FLAG", DataType::Char),
            Column::new("PRICE", DataType::Decimal),
            Column::new("SHIP", DataType::Date),
        ])
    }

    #[test]
    fn minmax_on_date_is_four_bytes() {
        let s = schema();
        let d = SmaDefinition::new("min", AggFn::Min, col(2));
        assert_eq!(d.validate(&s).unwrap(), DataType::Date);
        assert_eq!(d.entry_bytes(&s).unwrap(), 4);
        assert_eq!(d.minmax_column(), Some((AggFn::Min, 2)));
    }

    #[test]
    fn grouped_sum_expression() {
        let s = schema();
        let d = SmaDefinition::new(
            "extdis",
            AggFn::Sum,
            col(1).mul(dec_lit("1.00").sub(dec_lit("0.05"))),
        )
        .group_by(vec![0]);
        assert_eq!(d.validate(&s).unwrap(), DataType::Decimal);
        assert_eq!(d.entry_bytes(&s).unwrap(), 8);
        assert_eq!(d.minmax_column(), None);
    }

    #[test]
    fn count_star() {
        let s = schema();
        let d = SmaDefinition::count("count").group_by(vec![0]);
        assert_eq!(d.validate(&s).unwrap(), DataType::Int);
        assert_eq!(d.entry_bytes(&s).unwrap(), 4);
    }

    #[test]
    fn invalid_definitions() {
        let s = schema();
        assert!(SmaDefinition::new("x", AggFn::Sum, col(2))
            .validate(&s)
            .is_err()); // sum over DATE
        assert!(SmaDefinition::new("x", AggFn::Min, col(9))
            .validate(&s)
            .is_err()); // bad column
        assert!(SmaDefinition::count("x")
            .group_by(vec![0, 0])
            .validate(&s)
            .is_err()); // dup group col
        assert!(SmaDefinition::count("x")
            .group_by(vec![5])
            .validate(&s)
            .is_err()); // bad group col
        let mut bad = SmaDefinition::count("x");
        bad.input = Some(col(0));
        assert!(bad.validate(&s).is_err()); // count with input
        let mut bad2 = SmaDefinition::new("x", AggFn::Min, col(0));
        bad2.input = None;
        assert!(bad2.validate(&s).is_err()); // min without input
    }

    #[test]
    #[should_panic(expected = "use SmaDefinition::count")]
    fn new_rejects_count() {
        let _ = SmaDefinition::new("x", AggFn::Count, col(0));
    }

    #[test]
    fn group_key_extracts() {
        let d = SmaDefinition::count("c").group_by(vec![0, 2]);
        let t = vec![Value::Char(b'R'), Value::Int(5), Value::Char(b'F')];
        assert_eq!(d.group_key(&t), vec![Value::Char(b'R'), Value::Char(b'F')]);
    }

    #[test]
    fn display_reads_like_the_paper() {
        let d = SmaDefinition::new("min", AggFn::Min, col(2));
        assert_eq!(d.to_string(), "define sma min select min($2)");
        let g = SmaDefinition::count("count").group_by(vec![0, 1]);
        assert_eq!(
            g.to_string(),
            "define sma count select count(*) group by $0, $1"
        );
    }
}
