//! Debug-build invariant validation: recompute per-bucket ground truth
//! from the base table and check that every SMA entry *dominates* it
//! (`min`/`max`, which deletes may loosen but never invert) or *equals*
//! it (`sum`/`count`, which maintenance keeps exact).
//!
//! The checks here are the executable form of the paper's §2.1 soundness
//! argument: a `min` entry may be smaller than the true bucket minimum
//! (stale after deletes) but must never be larger, or pruning would skip
//! buckets that hold qualifying tuples. [`check_sma`] reports violations;
//! [`debug_check_sma`] turns them into a `debug_assert!` so every
//! `Sma::build` in a debug build self-verifies at zero release cost.

use sma_storage::Table;
use sma_types::Value;

use crate::agg::{Accumulator, AggFn};
use crate::set::SmaSet;
use crate::sma::{GroupKey, Sma, SmaError};

/// One invariant violation found by [`check_sma`].
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Bucket where the invariant broke.
    pub bucket: u32,
    /// Group key of the offending entry (empty for ungrouped SMAs).
    pub group: GroupKey,
    /// What held and what was expected.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bucket {} group {:?}: {}",
            self.bucket, self.group, self.detail
        )
    }
}

/// `true` iff `stored` dominates `actual` from below: taking the minimum
/// of the two gives `stored` back. A stale `min` bound may be *smaller*
/// than the true bucket minimum, never larger.
fn min_dominates(stored: &Value, actual: &Value) -> bool {
    let mut acc = Accumulator::new(AggFn::Min);
    acc.merge(stored);
    acc.merge(actual);
    acc.finish() == *stored
}

/// `true` iff `stored` dominates `actual` from above (dual of
/// [`min_dominates`]).
fn max_dominates(stored: &Value, actual: &Value) -> bool {
    let mut acc = Accumulator::new(AggFn::Max);
    acc.merge(stored);
    acc.merge(actual);
    acc.finish() == *stored
}

/// Validates `sma` against the current contents of `table`.
///
/// Per bucket and per group the checks are:
///
/// - **min/max**: the stored bound dominates every row's input value;
///   when the bucket is not stale the bound is *equal* to the recomputed
///   aggregate (inserts keep it tight).
/// - **sum/count**: the stored entry equals the recomputed aggregate
///   (maintenance is exact for these; staleness never applies).
/// - Rows whose group key has no SMA file at all are reported — an entry
///   the maintenance path failed to create.
///
/// Quarantined buckets are skipped (their entries are declared garbage by
/// contract). Scan errors propagate; they are I/O failures, not
/// invariant violations.
pub fn check_sma(table: &Table, sma: &Sma) -> Result<Vec<Violation>, SmaError> {
    let mut out = Vec::new();
    let def = sma.def();
    for bucket in 0..table.bucket_count() {
        if sma.is_quarantined(bucket) {
            continue;
        }
        let rows = table.scan_bucket(bucket)?;
        // Recompute per-group truth for this bucket.
        let mut truth: std::collections::BTreeMap<GroupKey, (Accumulator, i64)> =
            std::collections::BTreeMap::new();
        for (_, tuple) in &rows {
            let key = def.group_key(tuple);
            let v = def.input_value(tuple)?;
            let slot = truth
                .entry(key)
                .or_insert_with(|| (Accumulator::new(def.agg), 0));
            slot.0.update(&v);
            slot.1 += 1;
        }
        for (key, (acc, n_rows)) in truth {
            let actual = acc.finish();
            let Some(stored) = sma.entry(&key, bucket) else {
                out.push(Violation {
                    bucket,
                    group: key,
                    detail: format!("{} rows present but the SMA has no entry", n_rows),
                });
                continue;
            };
            let stale = sma.is_stale(bucket);
            match def.agg {
                AggFn::Min => {
                    if actual.is_null() {
                        continue; // all inputs null: nothing to dominate
                    }
                    if !min_dominates(stored, &actual) {
                        out.push(Violation {
                            bucket,
                            group: key,
                            detail: format!(
                                "stored min {stored:?} does not dominate bucket minimum {actual:?}"
                            ),
                        });
                    } else if !stale && *stored != actual {
                        out.push(Violation {
                            bucket,
                            group: key,
                            detail: format!(
                                "bucket not stale but stored min {stored:?} != recomputed {actual:?}"
                            ),
                        });
                    }
                }
                AggFn::Max => {
                    if actual.is_null() {
                        continue;
                    }
                    if !max_dominates(stored, &actual) {
                        out.push(Violation {
                            bucket,
                            group: key,
                            detail: format!(
                                "stored max {stored:?} does not dominate bucket maximum {actual:?}"
                            ),
                        });
                    } else if !stale && *stored != actual {
                        out.push(Violation {
                            bucket,
                            group: key,
                            detail: format!(
                                "bucket not stale but stored max {stored:?} != recomputed {actual:?}"
                            ),
                        });
                    }
                }
                AggFn::Sum => {
                    if *stored != actual {
                        out.push(Violation {
                            bucket,
                            group: key,
                            detail: format!(
                                "stored sum {stored:?} != recomputed {actual:?} (sum maintenance is exact)"
                            ),
                        });
                    }
                }
                AggFn::Count => {
                    if *stored != Value::Int(n_rows) {
                        out.push(Violation {
                            bucket,
                            group: key,
                            detail: format!(
                                "stored count {stored:?} != {n_rows} rows in the bucket"
                            ),
                        });
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Validates every SMA in `set`, concatenating violations.
pub fn check_set(table: &Table, set: &SmaSet) -> Result<Vec<Violation>, SmaError> {
    let mut out = Vec::new();
    for sma in set.smas() {
        out.extend(check_sma(table, sma)?);
    }
    Ok(out)
}

/// Debug-build hook: re-derives the invariants and `debug_assert!`s that
/// none are violated. Scan errors are ignored (they are the I/O layer's
/// problem); in release builds this compiles to nothing.
pub fn debug_check_sma(table: &Table, sma: &Sma) {
    if cfg!(debug_assertions) {
        if let Ok(violations) = check_sma(table, sma) {
            debug_assert!(
                violations.is_empty(),
                "SMA '{}' violates its bucket invariants:\n{}",
                sma.def().name,
                violations
                    .iter()
                    .map(Violation::to_string)
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::def::SmaDefinition;
    use crate::expr::col;
    use sma_storage::Table;
    use sma_types::{Column, DataType, Schema, Value};
    use std::sync::Arc;

    fn table(rows: &[i64]) -> Table {
        let schema = Arc::new(Schema::new(vec![
            Column::new("K", DataType::Int),
            Column::new("PAD", DataType::Str),
        ]));
        let mut t = Table::in_memory("t", schema, 1);
        let pad = "p".repeat(1500);
        for &k in rows {
            t.append(&vec![Value::Int(k), Value::Str(pad.clone())])
                .unwrap();
        }
        t
    }

    #[test]
    fn freshly_built_smas_validate_clean() {
        let t = table(&[5, 3, 9, 1, 7, 2, 8, 4]);
        for def in [
            SmaDefinition::new("min", AggFn::Min, col(0)),
            SmaDefinition::new("max", AggFn::Max, col(0)),
            SmaDefinition::new("sum", AggFn::Sum, col(0)),
            SmaDefinition::count("count"),
        ] {
            let sma = Sma::build(&t, def).unwrap();
            assert_eq!(check_sma(&t, &sma).unwrap(), vec![]);
        }
    }

    #[test]
    fn missed_maintenance_is_detected() {
        let mut t = table(&[5, 3, 9]);
        let min = Sma::build(&t, SmaDefinition::new("min", AggFn::Min, col(0))).unwrap();
        let count = Sma::build(&t, SmaDefinition::count("count")).unwrap();
        // Append a new minimum WITHOUT notifying the SMAs — the classic
        // missed-maintenance bug the validator exists to catch.
        t.append(&vec![Value::Int(-100), Value::Str("p".repeat(1500))])
            .unwrap();
        let min_violations = check_sma(&t, &min).unwrap();
        assert!(
            min_violations
                .iter()
                .any(|v| v.detail.contains("does not dominate")),
            "{min_violations:?}"
        );
        let count_violations = check_sma(&t, &count).unwrap();
        assert!(
            !count_violations.is_empty(),
            "stored count must disagree with the appended row"
        );
    }

    #[test]
    fn stale_min_bound_is_loose_but_legal() {
        let t = table(&[5, 3, 9, 1]);
        let mut min = Sma::build(&t, SmaDefinition::new("min", AggFn::Min, col(0))).unwrap();
        // Row 1 lives in the last bucket (two 1500-byte rows per page).
        // Deleting it marks that bucket stale; the old bound (1) still
        // dominates the remaining row (9), so no violation.
        let last = t.bucket_count() - 1;
        min.note_delete(last, &vec![Value::Int(1), Value::Str(String::new())])
            .unwrap();
        assert!(min.is_stale(last));
        // The table still holds row 1 here (we only told the SMA), so
        // simulate the delete's table side with a fresh table instead.
        let t2 = table(&[5, 3, 9]);
        assert_eq!(check_sma(&t2, &min).unwrap(), vec![]);
    }

    #[test]
    fn quarantined_buckets_are_skipped() {
        let mut t = table(&[5, 3, 9]);
        let mut min = Sma::build(&t, SmaDefinition::new("min", AggFn::Min, col(0))).unwrap();
        t.append(&vec![Value::Int(-100), Value::Str("p".repeat(1500))])
            .unwrap();
        min.quarantine_bucket(0);
        // The entry no longer dominates, but quarantine declares it
        // garbage — execution demotes the bucket to a table scan anyway.
        let quarantined: Vec<u32> = (0..t.bucket_count())
            .filter(|&b| min.is_quarantined(b))
            .collect();
        let violations = check_sma(&t, &min).unwrap();
        assert!(violations.iter().all(|v| !quarantined.contains(&v.bucket)));
    }
}
