//! Join SMAs: semi-join input reduction — §4.
//!
//! For query patterns `select R.* from R, S where R.A θ S.B`, the paper
//! proposes associating "a minimax value of the S.B values with each
//! bucket of R" to shrink the semi-join input. With existential (semi-join)
//! semantics a tuple `r` qualifies iff `∃ s : r.A θ s.B`, which for the
//! ordering operators depends only on `min(S.B)` / `max(S.B)`:
//!
//! * `r.A <  s.B` for some s  ⇔  `r.A <  max(S.B)`
//! * `r.A <= s.B` for some s  ⇔  `r.A <= max(S.B)`
//! * `r.A >  s.B` for some s  ⇔  `r.A >  min(S.B)`
//! * `r.A >= s.B` for some s  ⇔  `r.A >= min(S.B)`
//! * `r.A =  s.B` for some s  ⇒  `min(S.B) <= r.A <= max(S.B)` (necessary)
//!
//! So grading R's buckets reduces to the constant-comparison rules of
//! §3.1 against S's global minimax — which this module materializes.

use sma_storage::{BucketNo, Table, TableError};
use sma_types::Value;

use crate::grade::{BucketPred, Classification, CmpOp, Grade, StatsProvider};

/// Global min/max of one column of the inner relation `S`.
#[derive(Debug, Clone, PartialEq)]
pub struct MinimaxOf {
    /// Column of `S` this summarizes.
    pub column: usize,
    /// `min(S.B)`; `None` when S is empty or all-Null.
    pub min: Option<Value>,
    /// `max(S.B)`.
    pub max: Option<Value>,
}

impl MinimaxOf {
    /// Computes the minimax of `column` by scanning `s`.
    pub fn scan(s: &Table, column: usize) -> Result<MinimaxOf, TableError> {
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        let mut rows = Vec::new();
        for page in 0..s.page_count() {
            rows.clear();
            s.scan_page_into(page, &mut rows)?;
            for (_, t) in &rows {
                let v = &t[column];
                if v.is_null() {
                    continue;
                }
                min = Some(match min {
                    None => v.clone(),
                    Some(m) => m.min_value(v),
                });
                max = Some(match max {
                    None => v.clone(),
                    Some(m) => m.max_value(v),
                });
            }
        }
        Ok(MinimaxOf { column, min, max })
    }

    /// Derives the existential predicate on `R.A` equivalent to
    /// `∃ s : A θ S.B` (for `=`, a sound necessary range condition).
    /// Returns `None` when S's bounds are unknown (empty S: for the
    /// ordering operators and `=` the semi-join output is empty, which the
    /// caller handles via [`semijoin_prune`]).
    pub fn reduction_pred(&self, a_col: usize, theta: CmpOp) -> Option<BucketPred> {
        let min = self.min.clone();
        let max = self.max.clone();
        Some(match theta {
            CmpOp::Lt => BucketPred::cmp(a_col, CmpOp::Lt, max?),
            CmpOp::Le => BucketPred::cmp(a_col, CmpOp::Le, max?),
            CmpOp::Gt => BucketPred::cmp(a_col, CmpOp::Gt, min?),
            CmpOp::Ge => BucketPred::cmp(a_col, CmpOp::Ge, min?),
            CmpOp::Eq => BucketPred::And(vec![
                BucketPred::cmp(a_col, CmpOp::Ge, min?),
                BucketPred::cmp(a_col, CmpOp::Le, max?),
            ]),
        })
    }
}

/// Grades R's buckets for the semi-join `R.A θ S.B` using R's min/max SMAs
/// (via `stats`) and S's global minimax.
///
/// For `=` the *qualifying* grade is demoted to ambivalent: the range
/// condition is necessary but not sufficient (S need not contain every
/// value in the range), so only disqualification is exact.
pub fn semijoin_prune(
    a_col: usize,
    theta: CmpOp,
    s_minimax: &MinimaxOf,
    n_buckets: BucketNo,
    stats: &dyn StatsProvider,
) -> Classification {
    match s_minimax.reduction_pred(a_col, theta) {
        None => Classification {
            // Empty/unknown S: no tuple can have a partner.
            grades: vec![Grade::Disqualifies; n_buckets as usize],
        },
        Some(pred) => {
            let mut c = Classification::classify(&pred, n_buckets, stats);
            if theta == CmpOp::Eq {
                for g in &mut c.grades {
                    if *g == Grade::Qualifies {
                        *g = Grade::Ambivalent;
                    }
                }
            }
            c
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggFn;
    use crate::def::SmaDefinition;
    use crate::expr::col;
    use crate::set::SmaSet;
    use sma_storage::Table;
    use sma_types::{Column, DataType, Schema};
    use std::sync::Arc;

    fn int_table(name: &str, values: &[i64]) -> Table {
        let schema = Arc::new(Schema::new(vec![
            Column::new("K", DataType::Int),
            Column::new("PAD", DataType::Str),
        ]));
        let mut t = Table::in_memory(name, schema, 1);
        let pad = "p".repeat(1800); // 2 per page
        for &v in values {
            t.append(&vec![Value::Int(v), Value::Str(pad.clone())])
                .unwrap();
        }
        t
    }

    fn minmax_set(t: &Table) -> SmaSet {
        SmaSet::build(
            t,
            vec![
                SmaDefinition::new("min", AggFn::Min, col(0)),
                SmaDefinition::new("max", AggFn::Max, col(0)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn scan_computes_global_bounds() {
        let s = int_table("S", &[30, 10, 20]);
        let mm = MinimaxOf::scan(&s, 0).unwrap();
        assert_eq!(mm.min, Some(Value::Int(10)));
        assert_eq!(mm.max, Some(Value::Int(30)));
    }

    #[test]
    fn scan_skips_nulls_and_handles_empty() {
        let schema = Arc::new(Schema::new(vec![Column::new("K", DataType::Int)]));
        let mut s = Table::in_memory("S", schema.clone(), 1);
        s.append(&vec![Value::Null]).unwrap();
        s.append(&vec![Value::Int(5)]).unwrap();
        let mm = MinimaxOf::scan(&s, 0).unwrap();
        assert_eq!(mm.min, Some(Value::Int(5)));
        let empty = Table::in_memory("E", schema, 1);
        let mm = MinimaxOf::scan(&empty, 0).unwrap();
        assert_eq!(mm.min, None);
        assert_eq!(mm.max, None);
    }

    #[test]
    fn reduction_predicates_match_semantics() {
        let mm = MinimaxOf {
            column: 0,
            min: Some(Value::Int(10)),
            max: Some(Value::Int(30)),
        };
        // Brute-force oracle: r.A θ some s in {10..=30 endpoints only
        // matter for ordering ops}.
        let s_vals = [10i64, 30];
        for theta in [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let pred = mm.reduction_pred(0, theta).unwrap();
            for a in [5i64, 10, 20, 30, 35] {
                let expected = s_vals
                    .iter()
                    .any(|&s| theta.eval(&Value::Int(a), &Value::Int(s)));
                assert_eq!(
                    pred.eval_tuple(&[Value::Int(a)]),
                    expected,
                    "theta {theta:?} a {a}"
                );
            }
        }
        // Equality: range condition.
        let pred = mm.reduction_pred(0, CmpOp::Eq).unwrap();
        assert!(pred.eval_tuple(&[Value::Int(10)]));
        assert!(pred.eval_tuple(&[Value::Int(20)]));
        assert!(!pred.eval_tuple(&[Value::Int(9)]));
        assert!(!pred.eval_tuple(&[Value::Int(31)]));
    }

    #[test]
    fn prune_reduces_semijoin_input() {
        // R sorted 0..40 (20 buckets of 2); S.B spans [30, 35].
        let r = int_table("R", &(0..40).collect::<Vec<_>>());
        let set = minmax_set(&r);
        let s = int_table("S", &[30, 35]);
        let mm = MinimaxOf::scan(&s, 0).unwrap();
        // R.A > S.B (some): qualifies iff A > 30.
        let c = semijoin_prune(0, CmpOp::Gt, &mm, r.bucket_count(), &set);
        // Buckets are pairs (0,1), (2,3) … (38,39): bucket 15 = {30,31} is
        // ambivalent, buckets 16+ qualify, buckets < 15 disqualify.
        assert_eq!(c.grades[14], Grade::Disqualifies);
        assert_eq!(c.grades[15], Grade::Ambivalent);
        assert_eq!(c.grades[16], Grade::Qualifies);
        assert_eq!(c.grades[19], Grade::Qualifies);
        // Sanity against the tuple-level oracle.
        let pred = mm.reduction_pred(0, CmpOp::Gt).unwrap();
        for (b, grade) in c.grades.iter().enumerate() {
            let rows = r.scan_bucket(b as u32).unwrap();
            let passing = rows.iter().filter(|(_, t)| pred.eval_tuple(t)).count();
            match grade {
                Grade::Qualifies => assert_eq!(passing, rows.len()),
                Grade::Disqualifies => assert_eq!(passing, 0),
                Grade::Ambivalent => {}
            }
        }
    }

    #[test]
    fn equality_never_qualifies_wholesale() {
        let r = int_table("R", &(0..8).collect::<Vec<_>>());
        let set = minmax_set(&r);
        // S covers the whole R domain, so the range condition alone would
        // mark every bucket qualifying — which is unsound for `=`.
        let s = int_table("S", &[0, 7]);
        let mm = MinimaxOf::scan(&s, 0).unwrap();
        let c = semijoin_prune(0, CmpOp::Eq, &mm, r.bucket_count(), &set);
        assert!(c.grades.iter().all(|&g| g != Grade::Qualifies));
        assert!(c.grades.contains(&Grade::Ambivalent));
    }

    #[test]
    fn empty_s_disqualifies_everything() {
        let r = int_table("R", &(0..8).collect::<Vec<_>>());
        let set = minmax_set(&r);
        let mm = MinimaxOf {
            column: 0,
            min: None,
            max: None,
        };
        let c = semijoin_prune(0, CmpOp::Lt, &mm, r.bucket_count(), &set);
        assert!(c.grades.iter().all(|&g| g == Grade::Disqualifies));
    }
}
