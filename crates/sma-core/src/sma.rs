//! Built SMAs: bulkload, lookup, and incremental maintenance.
//!
//! A [`Sma`] is a definition materialized over one table: one [`SmaFile`]
//! per group (§2.3: "for every possible group, there will be a single
//! SMA-file"), all positionally aligned with the table's buckets.
//!
//! Maintenance follows the paper's cost contract (§2.1: "at most one
//! additional page access is needed for an updated tuple"): inserts update
//! the affected entry exactly; deletes update `sum`/`count` exactly and
//! leave `min`/`max` *conservatively loose* (the old bound still encloses
//! the bucket, so grading stays sound), marking the bucket stale so
//! [`Sma::refresh_bucket`] can retighten it from the data.

use std::collections::BTreeMap;
use std::fmt;

use sma_storage::{BucketNo, Table, TableError};
use sma_types::{ColumnarBucket, Tuple, Value};

use crate::agg::{Accumulator, AggFn};
use crate::def::{DefError, SmaDefinition};
use crate::expr::ExprError;
use crate::file::SmaFile;

/// Group key: the projected grouping-column values (empty if ungrouped).
pub type GroupKey = Vec<Value>;

/// Errors from building or maintaining SMAs.
#[derive(Debug)]
pub enum SmaError {
    /// Definition failed validation.
    Def(DefError),
    /// Input expression failed at runtime.
    Expr(ExprError),
    /// Storage failed.
    Table(TableError),
    /// A persisted SMA image failed to decode.
    Corrupt(String),
    /// The page store failed while saving or loading a SMA.
    Store(sma_storage::StoreError),
}

impl fmt::Display for SmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmaError::Def(e) => write!(f, "{e}"),
            SmaError::Expr(e) => write!(f, "{e}"),
            SmaError::Table(e) => write!(f, "{e}"),
            SmaError::Corrupt(what) => write!(f, "corrupt sma image: {what}"),
            SmaError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SmaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SmaError::Def(e) => Some(e),
            SmaError::Expr(e) => Some(e),
            SmaError::Table(e) => Some(e),
            SmaError::Store(e) => Some(e),
            SmaError::Corrupt(_) => None,
        }
    }
}

impl From<DefError> for SmaError {
    fn from(e: DefError) -> SmaError {
        SmaError::Def(e)
    }
}

impl From<ExprError> for SmaError {
    fn from(e: ExprError) -> SmaError {
        SmaError::Expr(e)
    }
}

impl From<TableError> for SmaError {
    fn from(e: TableError) -> SmaError {
        SmaError::Table(e)
    }
}

impl From<sma_storage::StoreError> for SmaError {
    fn from(e: sma_storage::StoreError) -> SmaError {
        SmaError::Store(e)
    }
}

/// A SMA definition materialized over a table.
#[derive(Debug, Clone)]
pub struct Sma {
    pub(crate) def: SmaDefinition,
    pub(crate) entry_bytes: usize,
    pub(crate) n_buckets: u32,
    pub(crate) groups: BTreeMap<GroupKey, SmaFile>,
    /// Per bucket: whether any input value was `Null` (min/max grading
    /// soundness needs this — a `Null` never enters the bounds but fails
    /// every predicate).
    pub(crate) null_seen: Vec<bool>,
    /// Per bucket: whether a delete/update may have left min/max loose.
    pub(crate) stale: Vec<bool>,
    /// Per bucket: whether the entries are *quarantined* — flagged as
    /// damaged (corrupt page behind them, or an inconsistency observed at
    /// query time) and not to be trusted for grading or merging. Unlike
    /// `stale` (loose but sound bounds), quarantined entries may be
    /// arbitrary garbage; execution demotes such buckets to base-table
    /// scans and [`Sma::refresh_bucket`] heals them. Runtime state only —
    /// never persisted (a damaged SMA is simply not saved; recovery
    /// rebuilds it from the table).
    pub(crate) quarantined: Vec<bool>,
}

impl Sma {
    /// Bulkloads `def` over `table` with a single sequential scan.
    pub fn build(table: &Table, def: SmaDefinition) -> Result<Sma, SmaError> {
        let mut smas = build_many(table, vec![def])?;
        let sma = smas.pop().ok_or_else(|| {
            SmaError::Corrupt("build_many returned no SMA for the single definition".into())
        })?;
        crate::validate::debug_check_sma(table, &sma);
        Ok(sma)
    }

    /// The definition this SMA materializes.
    pub fn def(&self) -> &SmaDefinition {
        &self.def
    }

    /// Number of buckets covered.
    pub fn n_buckets(&self) -> u32 {
        self.n_buckets
    }

    /// The groups (in key order) and their files.
    pub fn groups(&self) -> impl Iterator<Item = (&GroupKey, &SmaFile)> {
        self.groups.iter()
    }

    /// Number of SMA-files (= number of groups; 1 if ungrouped).
    pub fn file_count(&self) -> usize {
        self.groups.len()
    }

    /// The entry for `group` in `bucket`.
    pub fn entry(&self, group: &GroupKey, bucket: BucketNo) -> Option<&Value> {
        self.groups.get(group).and_then(|f| f.get(bucket))
    }

    /// The entry of an ungrouped SMA in `bucket`.
    pub fn entry_ungrouped(&self, bucket: BucketNo) -> Option<&Value> {
        debug_assert!(self.def.group_by.is_empty());
        self.entry(&Vec::new(), bucket)
    }

    /// Folds this SMA's entries for `bucket` across all groups with the
    /// SMA's own aggregate — e.g. the bucket-wide minimum of a grouped
    /// `min` SMA (§3.1: "we have to consider the maximum value of A for
    /// all groups").
    pub fn bucket_value_across_groups(&self, bucket: BucketNo) -> Value {
        let mut acc = Accumulator::new(self.def.agg);
        for file in self.groups.values() {
            if let Some(v) = file.get(bucket) {
                acc.merge(v);
            }
        }
        acc.finish()
    }

    /// Whether bucket `bucket` saw a `Null` input at build/maintenance time.
    ///
    /// A bucket this SMA has never covered answers `true`: nothing is
    /// known about it, so it cannot be certified null-free.
    pub fn saw_null(&self, bucket: BucketNo) -> bool {
        self.null_seen.get(bucket as usize).copied().unwrap_or(true)
    }

    /// Whether min/max bounds for `bucket` may be loose after deletions.
    ///
    /// A bucket this SMA has never covered answers `true`, matching
    /// [`Sma::saw_null`]: unknown bounds are exactly as untrustworthy as
    /// loosened ones, and grading must not treat them as tight.
    pub fn is_stale(&self, bucket: BucketNo) -> bool {
        self.stale.get(bucket as usize).copied().unwrap_or(true)
    }

    /// Flags `bucket`'s entries as damaged: grading stops trusting them,
    /// execution demotes the bucket to a base-table scan, and
    /// [`Sma::refresh_bucket`] (the heal path) clears the flag by
    /// recomputing the entries from the table.
    pub fn quarantine_bucket(&mut self, bucket: BucketNo) {
        self.ensure_bucket(bucket);
        self.quarantined[bucket as usize] = true;
    }

    /// Whether `bucket`'s entries are quarantined. Out-of-range buckets
    /// answer `false`: they are *unknown* (see [`Sma::is_stale`]), not
    /// damaged, and need no healing.
    pub fn is_quarantined(&self, bucket: BucketNo) -> bool {
        self.quarantined
            .get(bucket as usize)
            .copied()
            .unwrap_or(false)
    }

    /// The quarantined buckets, in ascending order.
    pub fn quarantined_buckets(&self) -> Vec<BucketNo> {
        self.quarantined
            .iter()
            .enumerate()
            .filter(|(_, &q)| q)
            .map(|(b, _)| b as BucketNo)
            .collect()
    }

    /// Whether any bucket is quarantined.
    pub fn has_quarantine(&self) -> bool {
        self.quarantined.iter().any(|&q| q)
    }

    /// Total physical size across all this SMA's files, in 4 KiB pages.
    pub fn total_pages(&self) -> usize {
        self.groups.values().map(SmaFile::size_pages).sum()
    }

    /// Total physical size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.groups.values().map(SmaFile::size_bytes).sum()
    }

    fn default_entry(&self) -> Value {
        default_entry(self.def.agg)
    }

    fn ensure_bucket(&mut self, bucket: BucketNo) {
        if (bucket as usize) < self.n_buckets as usize {
            return;
        }
        let def = self.default_entry();
        for file in self.groups.values_mut() {
            while file.len() <= bucket {
                file.push(def.clone());
            }
        }
        self.null_seen.resize(bucket as usize + 1, false);
        self.stale.resize(bucket as usize + 1, false);
        self.quarantined.resize(bucket as usize + 1, false);
        self.n_buckets = bucket + 1;
    }

    fn ensure_group(&mut self, key: &GroupKey) {
        if !self.groups.contains_key(key) {
            let file = SmaFile::filled(
                self.entry_bytes,
                self.n_buckets as usize,
                self.default_entry(),
            );
            self.groups.insert(key.clone(), file);
        }
    }

    /// Maintains the SMA for a tuple inserted into `bucket`. Exact for all
    /// aggregates. O(1) — the paper's cheap-maintenance property.
    pub fn note_insert(&mut self, bucket: BucketNo, tuple: &Tuple) -> Result<(), SmaError> {
        self.ensure_bucket(bucket);
        let key = self.def.group_key(tuple);
        self.ensure_group(&key);
        let v = self.def.input_value(tuple)?;
        if v.is_null() && matches!(self.def.agg, AggFn::Min | AggFn::Max) {
            self.null_seen[bucket as usize] = true;
        }
        let Some(file) = self.groups.get_mut(&key) else {
            // `ensure_group` above makes this unreachable; report anyway.
            return Err(SmaError::Def(DefError(format!(
                "insert into unknown group {key:?}"
            ))));
        };
        let mut acc = Accumulator::new(self.def.agg);
        acc.merge_entry_then_update(file.get(bucket), &v);
        file.set(bucket, acc.finish());
        Ok(())
    }

    /// Maintains the SMA for a tuple deleted from `bucket`. Exact for
    /// `sum`/`count`; for `min`/`max` the old (now possibly loose) bound is
    /// kept and the bucket is marked stale.
    pub fn note_delete(&mut self, bucket: BucketNo, tuple: &Tuple) -> Result<(), SmaError> {
        self.ensure_bucket(bucket);
        let key = self.def.group_key(tuple);
        let v = self.def.input_value(tuple)?;
        match self.def.agg {
            AggFn::Min | AggFn::Max => {
                // Bound stays a superset of the bucket — sound but loose.
                self.stale[bucket as usize] = true;
                Ok(())
            }
            AggFn::Sum | AggFn::Count => {
                let agg = self.def.agg;
                let Some(file) = self.groups.get_mut(&key) else {
                    return Err(SmaError::Def(DefError(format!(
                        "delete from unknown group {key:?}"
                    ))));
                };
                let current = file.get(bucket).cloned().unwrap_or(Value::Null);
                let mut acc = Accumulator::new(agg);
                acc.merge(&current);
                acc.retract(&v)
                    .map_err(|e| SmaError::Def(DefError(e.to_string())))?;
                file.set(bucket, acc.finish());
                Ok(())
            }
        }
    }

    /// Maintains the SMA for an in-place update (old → new, same bucket).
    pub fn note_update(
        &mut self,
        bucket: BucketNo,
        old: &Tuple,
        new: &Tuple,
    ) -> Result<(), SmaError> {
        self.note_delete(bucket, old)?;
        self.note_insert(bucket, new)
    }

    /// Recomputes this SMA's entries for one bucket from the table,
    /// clearing staleness. Costs one bucket read — the "one additional
    /// page access" of §2.1.
    pub fn refresh_bucket(&mut self, table: &Table, bucket: BucketNo) -> Result<(), SmaError> {
        self.ensure_bucket(bucket);
        // Reset every known group's entry, then re-accumulate.
        let def_entry = self.default_entry();
        for file in self.groups.values_mut() {
            file.set(bucket, def_entry.clone());
        }
        self.null_seen[bucket as usize] = false;
        if let Some(block) = table.columnar_bucket(bucket)? {
            // Columnwise: only the referenced columns are decoded.
            fill_bucket_from_block(self, bucket, &block)?;
        } else {
            let rows = table.scan_bucket(bucket)?;
            for (_, tuple) in &rows {
                self.note_insert(bucket, tuple)?;
            }
        }
        self.stale[bucket as usize] = false;
        self.quarantined[bucket as usize] = false;
        Ok(())
    }
}

impl Accumulator {
    /// Merges an existing SMA entry (if any) then folds one raw input —
    /// the common maintenance step.
    fn merge_entry_then_update(&mut self, entry: Option<&Value>, input: &Value) {
        if let Some(e) = entry {
            self.merge(e);
        }
        self.update(input);
    }
}

fn default_entry(agg: AggFn) -> Value {
    match agg {
        AggFn::Count => Value::Int(0),
        _ => Value::Null,
    }
}

/// Bulkloads several SMA definitions over `table` in **one** sequential
/// scan (the paper builds all eight Query 1 SMAs in under 15 minutes; a
/// shared scan is the obvious engineering of that).
pub fn build_many(table: &Table, defs: Vec<SmaDefinition>) -> Result<Vec<Sma>, SmaError> {
    let schema = table.schema();
    let mut smas: Vec<Sma> = Vec::with_capacity(defs.len());
    for def in defs {
        let entry_bytes = def.entry_bytes(schema)?;
        smas.push(Sma {
            def,
            entry_bytes,
            n_buckets: 0,
            groups: BTreeMap::new(),
            null_seen: Vec::new(),
            stale: Vec::new(),
            quarantined: Vec::new(),
        });
    }
    let n_buckets = table.bucket_count();
    let mut rows = Vec::new();
    for bucket in 0..n_buckets {
        if let Some(block) = table.columnar_bucket(bucket)? {
            // Columnwise: accumulate straight off the column arrays.
            for sma in &mut smas {
                fill_bucket_from_block(sma, bucket, &block)?;
            }
            continue;
        }
        rows.clear();
        for page in table.bucket_range(bucket) {
            table.scan_page_into(page, &mut rows)?;
        }
        for sma in &mut smas {
            fill_bucket_from_rows(sma, bucket, rows.iter().map(|(_, t)| t))?;
        }
        rows.clear();
    }
    Ok(smas)
}

/// Bulkloads several SMA definitions with `threads` worker threads, each
/// scanning a contiguous bucket range. Per-bucket summaries are
/// independent (§2.4: "its computation is independent of other buckets"),
/// so the partial results stitch together without coordination.
pub fn build_many_parallel(
    table: &Table,
    defs: Vec<SmaDefinition>,
    threads: usize,
) -> Result<Vec<Sma>, SmaError> {
    let threads = threads.max(1);
    let n_buckets = table.bucket_count();
    if threads == 1 || n_buckets < threads as u32 * 4 {
        return build_many(table, defs);
    }
    let schema = table.schema();
    for def in &defs {
        def.entry_bytes(schema)?;
    }
    let chunk = n_buckets.div_ceil(threads as u32);
    // Each worker produces, per definition, a sparse map
    // group -> (bucket, value) pairs plus null flags for its range.
    type Partial = Vec<(BTreeMap<GroupKey, Vec<(BucketNo, Value)>>, Vec<bool>)>;
    let results: Vec<Result<(u32, Partial), SmaError>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads as u32 {
            let defs = &defs;
            let start = (t * chunk).min(n_buckets);
            let end = ((t + 1) * chunk).min(n_buckets);
            handles.push(scope.spawn(move || -> Result<(u32, Partial), SmaError> {
                let mut partial: Partial = defs
                    .iter()
                    .map(|_| (BTreeMap::new(), vec![false; (end - start) as usize]))
                    .collect();
                let mut rows = Vec::new();
                for bucket in start..end {
                    if let Some(block) = table.columnar_bucket(bucket)? {
                        // Columnwise twin of the row loop below.
                        for (def, (groups, nulls)) in defs.iter().zip(&mut partial) {
                            let (accs, null_seen) = block_bucket_accs(def, &block)?;
                            if null_seen {
                                nulls[(bucket - start) as usize] = true;
                            }
                            for (key, acc) in accs {
                                groups.entry(key).or_default().push((bucket, acc.finish()));
                            }
                        }
                        continue;
                    }
                    rows.clear();
                    for page in table.bucket_range(bucket) {
                        table.scan_page_into(page, &mut rows)?;
                    }
                    for (def, (groups, nulls)) in defs.iter().zip(&mut partial) {
                        let mut accs: BTreeMap<GroupKey, Accumulator> = BTreeMap::new();
                        for (_, tuple) in &rows {
                            let v = def.input_value(tuple)?;
                            if v.is_null() && matches!(def.agg, AggFn::Min | AggFn::Max) {
                                nulls[(bucket - start) as usize] = true;
                            }
                            accs.entry(def.group_key(tuple))
                                .or_insert_with(|| Accumulator::new(def.agg))
                                .update(&v);
                        }
                        for (key, acc) in accs {
                            groups.entry(key).or_default().push((bucket, acc.finish()));
                        }
                    }
                }
                Ok((start, partial))
            }));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                // sma-lint: allow(A3-error-swallowing) -- join's payload is Box<dyn Any>, not an error; it is converted to a typed error here
                Err(_) => Err(SmaError::Corrupt(
                    "parallel SMA build worker panicked".into(),
                )),
            })
            .collect()
    });

    // Stitch the partials, in bucket order.
    let mut smas: Vec<Sma> = defs
        .iter()
        .map(|def| {
            Ok(Sma {
                entry_bytes: def.entry_bytes(schema)?,
                def: def.clone(),
                n_buckets,
                groups: BTreeMap::new(),
                null_seen: vec![false; n_buckets as usize],
                stale: vec![false; n_buckets as usize],
                quarantined: vec![false; n_buckets as usize],
            })
        })
        .collect::<Result<_, SmaError>>()?;
    let mut ordered: Vec<(u32, Partial)> = results.into_iter().collect::<Result<_, _>>()?;
    ordered.sort_by_key(|(start, _)| *start);
    for (start, partial) in ordered {
        for (sma, (groups, nulls)) in smas.iter_mut().zip(partial) {
            for (offset, flag) in nulls.iter().enumerate() {
                if *flag {
                    sma.null_seen[start as usize + offset] = true;
                }
            }
            for (key, entries) in groups {
                sma.ensure_group(&key);
                // `ensure_group` just inserted the file, so this always
                // takes the Some branch.
                if let Some(file) = sma.groups.get_mut(&key) {
                    for (bucket, value) in entries {
                        file.set(bucket, value);
                    }
                }
            }
        }
    }
    // Align: every group file spans all buckets.
    for sma in &mut smas {
        let def_entry = default_entry(sma.def.agg);
        for file in sma.groups.values_mut() {
            while file.len() < n_buckets {
                file.push(def_entry.clone());
            }
        }
    }
    Ok(smas)
}

fn fill_bucket_from_rows<'a>(
    sma: &mut Sma,
    bucket: BucketNo,
    rows: impl Iterator<Item = &'a Tuple>,
) -> Result<(), SmaError> {
    sma.ensure_bucket(bucket);
    for tuple in rows {
        sma.note_insert(bucket, tuple)?;
    }
    Ok(())
}

/// Per-bucket, per-group accumulation over a columnar block — the
/// columnwise twin of the `note_insert` loop. A bare-column input touches
/// only that column's array (never materializing tuples); expression
/// inputs fetch referenced columns on demand via
/// [`ScalarExpr::eval_fetch`]. Value semantics are identical to the row
/// path by construction: every input still flows through
/// [`Accumulator::update`] in row order. Returns the accumulators plus
/// whether a `Null` input was seen (tracked for min/max only, matching
/// `note_insert`).
pub fn block_bucket_accs(
    def: &SmaDefinition,
    block: &ColumnarBucket,
) -> Result<(BTreeMap<GroupKey, Accumulator>, bool), SmaError> {
    use crate::expr::ScalarExpr;
    let n = block.n_rows();
    let minmax = matches!(def.agg, AggFn::Min | AggFn::Max);
    let mut null_seen = false;
    let mut accs: BTreeMap<GroupKey, Accumulator> = BTreeMap::new();
    let fetch_err = |c: usize| SmaError::Expr(ExprError(format!("column {c} out of range")));
    if def.group_by.is_empty() {
        if n == 0 {
            // No tuples → no groups, exactly like the row loop.
            return Ok((accs, false));
        }
        let mut acc = Accumulator::new(def.agg);
        match &def.input {
            None => {
                for _ in 0..n {
                    acc.update(&Value::Int(1));
                }
            }
            Some(ScalarExpr::Column(c)) => {
                for row in 0..n {
                    let v = block.value(*c, row).ok_or_else(|| fetch_err(*c))?;
                    if v.is_null() && minmax {
                        null_seen = true;
                    }
                    acc.update(&v);
                }
            }
            Some(expr) => {
                for row in 0..n {
                    let v = expr.eval_fetch(&mut |c| {
                        block
                            .value(c, row)
                            .ok_or_else(|| ExprError(format!("column {c} out of range")))
                    })?;
                    if v.is_null() && minmax {
                        null_seen = true;
                    }
                    acc.update(&v);
                }
            }
        }
        accs.insert(Vec::new(), acc);
        return Ok((accs, null_seen));
    }
    for row in 0..n {
        let v = match &def.input {
            None => Value::Int(1),
            Some(expr) => expr.eval_fetch(&mut |c| {
                block
                    .value(c, row)
                    .ok_or_else(|| ExprError(format!("column {c} out of range")))
            })?,
        };
        if v.is_null() && minmax {
            null_seen = true;
        }
        let key: GroupKey = def
            .group_by
            .iter()
            .map(|&g| block.value(g, row).ok_or_else(|| fetch_err(g)))
            .collect::<Result<_, _>>()?;
        accs.entry(key)
            .or_insert_with(|| Accumulator::new(def.agg))
            .update(&v);
    }
    Ok((accs, null_seen))
}

/// Folds a columnar block's accumulators into `sma`'s files for `bucket`,
/// merging with whatever entry is already there — the block-wise
/// equivalent of `fill_bucket_from_rows` (build) and the re-accumulation
/// loop in `refresh_bucket` (heal, entries pre-reset to the identity).
fn fill_bucket_from_block(
    sma: &mut Sma,
    bucket: BucketNo,
    block: &ColumnarBucket,
) -> Result<(), SmaError> {
    sma.ensure_bucket(bucket);
    let (accs, null_seen) = block_bucket_accs(&sma.def, block)?;
    if null_seen {
        sma.null_seen[bucket as usize] = true;
    }
    for (key, acc) in accs {
        sma.ensure_group(&key);
        let Some(file) = sma.groups.get_mut(&key) else {
            // `ensure_group` above makes this unreachable; report anyway.
            return Err(SmaError::Def(DefError(format!(
                "fill into unknown group {key:?}"
            ))));
        };
        // Mirror `merge_entry_then_update`: existing entry first, then the
        // block's aggregate (identity entries merge as no-ops).
        let mut merged = Accumulator::new(sma.def.agg);
        if let Some(e) = file.get(bucket) {
            merged.merge(e);
        }
        merged.merge(acc.value());
        file.set(bucket, merged.finish());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::col;
    use sma_storage::Table;
    use sma_types::{Column, DataType, Date, Schema};
    use std::sync::Arc;

    /// Regression: the two out-of-range defaults used to disagree —
    /// `saw_null` answered `true` (conservative) for a bucket the SMA has
    /// never covered while `is_stale` answered `false`, so grading could
    /// treat completely unknown bounds as tight. Both must report the
    /// untrusted state.
    #[test]
    fn out_of_range_bucket_is_untrusted() {
        let t = fig1_table();
        let sma = build_many(&t, vec![SmaDefinition::new("min", AggFn::Min, col(0))])
            .unwrap()
            .remove(0);
        let beyond = t.bucket_count() + 5;
        assert!(sma.saw_null(beyond), "unknown bucket cannot be null-free");
        assert!(
            sma.is_stale(beyond),
            "unknown bucket cannot have tight bounds"
        );
        // In-range buckets built from non-null data stay trusted.
        assert!(!sma.saw_null(0));
        assert!(!sma.is_stale(0));
    }

    /// A small table shaped like Fig. 1 of the paper: one DATE column,
    /// one CHAR flag, padded so exactly 3 tuples fit per page.
    fn fig1_table() -> Table {
        let schema = Arc::new(Schema::new(vec![
            Column::new("SHIP", DataType::Date),
            Column::new("FLAG", DataType::Char),
            Column::new("PAD", DataType::Str),
        ]));
        let mut t = Table::in_memory("L", schema, 1);
        let dates = [
            "1997-03-11",
            "1997-04-22",
            "1997-02-02", // bucket 1
            "1997-04-01",
            "1997-05-07",
            "1997-04-28", // bucket 2
            "1997-05-02",
            "1997-05-20",
            "1997-06-03", // bucket 3
        ];
        let flags = [b'A', b'A', b'R', b'R', b'A', b'R', b'A', b'A', b'R'];
        let pad = "x".repeat(1200); // 3 tuples ≈ 3.6 KB per 4 KiB page
        for (d, f) in dates.iter().zip(flags) {
            t.append(&vec![
                Value::Date(Date::parse(d).unwrap()),
                Value::Char(f),
                Value::Str(pad.clone()),
            ])
            .unwrap();
        }
        assert_eq!(t.page_count(), 3, "fig. 1 layout: three buckets of three");
        t
    }

    fn date(s: &str) -> Value {
        Value::Date(Date::parse(s).unwrap())
    }

    #[test]
    fn fig1_min_max_count() {
        let t = fig1_table();
        let min = Sma::build(&t, SmaDefinition::new("min", AggFn::Min, col(0))).unwrap();
        let max = Sma::build(&t, SmaDefinition::new("max", AggFn::Max, col(0))).unwrap();
        let count = Sma::build(&t, SmaDefinition::count("count")).unwrap();
        // The exact values from Figure 1.
        assert_eq!(min.entry_ungrouped(0), Some(&date("1997-02-02")));
        assert_eq!(min.entry_ungrouped(1), Some(&date("1997-04-01")));
        assert_eq!(min.entry_ungrouped(2), Some(&date("1997-05-02")));
        assert_eq!(max.entry_ungrouped(0), Some(&date("1997-04-22")));
        assert_eq!(max.entry_ungrouped(1), Some(&date("1997-05-07")));
        assert_eq!(max.entry_ungrouped(2), Some(&date("1997-06-03")));
        for b in 0..3 {
            assert_eq!(count.entry_ungrouped(b), Some(&Value::Int(3)));
        }
        assert_eq!(min.file_count(), 1);
        assert_eq!(min.total_pages(), 1);
    }

    #[test]
    fn grouped_count_splits_by_flag() {
        let t = fig1_table();
        let c = Sma::build(&t, SmaDefinition::count("c").group_by(vec![1])).unwrap();
        assert_eq!(c.file_count(), 2, "two flags seen");
        let a_key = vec![Value::Char(b'A')];
        let r_key = vec![Value::Char(b'R')];
        assert_eq!(c.entry(&a_key, 0), Some(&Value::Int(2)));
        assert_eq!(c.entry(&r_key, 0), Some(&Value::Int(1)));
        assert_eq!(c.entry(&a_key, 1), Some(&Value::Int(1)));
        assert_eq!(c.entry(&r_key, 1), Some(&Value::Int(2)));
        assert_eq!(c.entry(&a_key, 2), Some(&Value::Int(2)));
        assert_eq!(c.entry(&r_key, 2), Some(&Value::Int(1)));
    }

    #[test]
    fn grouped_minmax_and_across_groups() {
        let t = fig1_table();
        let min = Sma::build(
            &t,
            SmaDefinition::new("min", AggFn::Min, col(0)).group_by(vec![1]),
        )
        .unwrap();
        // Across groups equals ungrouped min.
        assert_eq!(min.bucket_value_across_groups(0), date("1997-02-02"));
        assert_eq!(min.bucket_value_across_groups(2), date("1997-05-02"));
        // Group-local mins differ.
        assert_eq!(
            min.entry(&vec![Value::Char(b'R')], 0),
            Some(&date("1997-02-02"))
        );
        assert_eq!(
            min.entry(&vec![Value::Char(b'A')], 0),
            Some(&date("1997-03-11"))
        );
    }

    #[test]
    fn groups_absent_in_a_bucket_get_identity_entries() {
        let schema = Arc::new(Schema::new(vec![
            Column::new("K", DataType::Int),
            Column::new("G", DataType::Char),
            Column::new("PAD", DataType::Str),
        ]));
        let mut t = Table::in_memory("t", schema, 1);
        let pad = "p".repeat(1800); // 2 tuples per page
                                    // Bucket 0: only group X. Bucket 1: only group Y.
        t.append(&vec![
            Value::Int(1),
            Value::Char(b'X'),
            Value::Str(pad.clone()),
        ])
        .unwrap();
        t.append(&vec![
            Value::Int(2),
            Value::Char(b'X'),
            Value::Str(pad.clone()),
        ])
        .unwrap();
        t.append(&vec![
            Value::Int(3),
            Value::Char(b'Y'),
            Value::Str(pad.clone()),
        ])
        .unwrap();
        t.append(&vec![
            Value::Int(4),
            Value::Char(b'Y'),
            Value::Str(pad.clone()),
        ])
        .unwrap();
        assert_eq!(t.page_count(), 2);
        let sum = Sma::build(
            &t,
            SmaDefinition::new("s", AggFn::Sum, col(0)).group_by(vec![1]),
        )
        .unwrap();
        let count = Sma::build(&t, SmaDefinition::count("c").group_by(vec![1])).unwrap();
        let x = vec![Value::Char(b'X')];
        let y = vec![Value::Char(b'Y')];
        assert_eq!(sum.entry(&x, 0), Some(&Value::Int(3)));
        assert_eq!(
            sum.entry(&x, 1),
            Some(&Value::Null),
            "absent group: Null sum"
        );
        assert_eq!(sum.entry(&y, 0), Some(&Value::Null));
        assert_eq!(sum.entry(&y, 1), Some(&Value::Int(7)));
        assert_eq!(
            count.entry(&x, 1),
            Some(&Value::Int(0)),
            "absent group: 0 count"
        );
        // Files stay positionally aligned.
        for (_, f) in sum.groups() {
            assert_eq!(f.len(), 2);
        }
    }

    #[test]
    fn insert_maintenance_is_exact() {
        let t = fig1_table();
        let mut min = Sma::build(&t, SmaDefinition::new("min", AggFn::Min, col(0))).unwrap();
        let mut count = Sma::build(&t, SmaDefinition::count("c")).unwrap();
        let new_tuple = vec![
            date("1997-01-15"),
            Value::Char(b'N'),
            Value::Str("p".into()),
        ];
        min.note_insert(0, &new_tuple).unwrap();
        count.note_insert(0, &new_tuple).unwrap();
        assert_eq!(min.entry_ungrouped(0), Some(&date("1997-01-15")));
        assert_eq!(count.entry_ungrouped(0), Some(&Value::Int(4)));
        // Insert into a brand-new bucket extends the files.
        min.note_insert(5, &new_tuple).unwrap();
        assert_eq!(min.n_buckets(), 6);
        assert_eq!(
            min.entry_ungrouped(3),
            Some(&Value::Null),
            "gap buckets empty"
        );
        assert_eq!(min.entry_ungrouped(5), Some(&date("1997-01-15")));
    }

    #[test]
    fn delete_keeps_minmax_sound_but_loose() {
        let t = fig1_table();
        let mut max = Sma::build(&t, SmaDefinition::new("max", AggFn::Max, col(0))).unwrap();
        let victim = vec![
            date("1997-04-22"),
            Value::Char(b'A'),
            Value::Str("p".into()),
        ];
        max.note_delete(0, &victim).unwrap();
        // Bound unchanged (loose) but marked stale.
        assert_eq!(max.entry_ungrouped(0), Some(&date("1997-04-22")));
        assert!(max.is_stale(0));
        assert!(!max.is_stale(1));
    }

    #[test]
    fn delete_updates_sum_count_exactly() {
        let t = fig1_table();
        let mut count = Sma::build(&t, SmaDefinition::count("c")).unwrap();
        let victim = t.scan_bucket(1).unwrap()[0].1.clone();
        count.note_delete(1, &victim).unwrap();
        assert_eq!(count.entry_ungrouped(1), Some(&Value::Int(2)));
        assert!(!count.is_stale(1), "count stays exact");
    }

    #[test]
    fn refresh_bucket_retightens() {
        let mut t = fig1_table();
        let mut max = Sma::build(&t, SmaDefinition::new("max", AggFn::Max, col(0))).unwrap();
        // Physically delete the bucket-0 maximum (1997-04-22, slot 1).
        let rows = t.scan_bucket(0).unwrap();
        let (vid, victim) = rows
            .iter()
            .find(|(_, tu)| tu[0] == date("1997-04-22"))
            .cloned()
            .unwrap();
        t.delete(vid).unwrap();
        max.note_delete(0, &victim).unwrap();
        assert!(max.is_stale(0));
        max.refresh_bucket(&t, 0).unwrap();
        assert!(!max.is_stale(0));
        assert_eq!(max.entry_ungrouped(0), Some(&date("1997-03-11")));
    }

    #[test]
    fn update_maintenance_combines_delete_insert() {
        let t = fig1_table();
        // Sums of dates are ill-typed and rejected at build time.
        assert!(Sma::build(&t, SmaDefinition::new("s", AggFn::Sum, col(0))).is_err());
        let mut count = Sma::build(&t, SmaDefinition::count("c").group_by(vec![1])).unwrap();
        let old = vec![
            date("1997-03-11"),
            Value::Char(b'A'),
            Value::Str("p".into()),
        ];
        let new = vec![
            date("1997-03-12"),
            Value::Char(b'R'),
            Value::Str("p".into()),
        ];
        count.note_update(0, &old, &new).unwrap();
        assert_eq!(
            count.entry(&vec![Value::Char(b'A')], 0),
            Some(&Value::Int(1))
        );
        assert_eq!(
            count.entry(&vec![Value::Char(b'R')], 0),
            Some(&Value::Int(2))
        );
    }

    #[test]
    fn null_inputs_flag_the_bucket() {
        let schema = Arc::new(Schema::new(vec![Column::new("D", DataType::Date)]));
        let mut t = Table::in_memory("t", schema, 1);
        t.append(&vec![date("1997-01-01")]).unwrap();
        t.append(&vec![Value::Null]).unwrap();
        let min = Sma::build(&t, SmaDefinition::new("m", AggFn::Min, col(0))).unwrap();
        assert!(min.saw_null(0));
        assert_eq!(min.entry_ungrouped(0), Some(&date("1997-01-01")));
        assert!(min.saw_null(99), "unknown buckets conservatively nullish");
    }

    #[test]
    fn build_many_matches_individual_builds() {
        let t = fig1_table();
        let defs = vec![
            SmaDefinition::new("min", AggFn::Min, col(0)),
            SmaDefinition::new("max", AggFn::Max, col(0)),
            SmaDefinition::count("count").group_by(vec![1]),
        ];
        let together = build_many(&t, defs.clone()).unwrap();
        for (def, built) in defs.into_iter().zip(&together) {
            let alone = Sma::build(&t, def).unwrap();
            assert_eq!(alone.groups, built.groups);
            assert_eq!(alone.null_seen, built.null_seen);
        }
    }

    /// Converting sealed buckets to the columnar layout must leave every
    /// build path — serial, parallel, and the refresh/heal loop —
    /// producing bit-identical SMAs: same groups, entries, and null
    /// flags. The physical layout is invisible to the aggregates.
    #[test]
    fn columnar_buckets_build_identical_smas() {
        let schema = Arc::new(Schema::new(vec![
            Column::new("K", DataType::Int),
            Column::new("G", DataType::Char),
            Column::new("PAD", DataType::Str),
        ]));
        let mut t = Table::in_memory("t", schema, 2);
        let pad = "p".repeat(700);
        for k in 0..240i64 {
            let key = if k % 11 == 0 {
                Value::Null
            } else {
                Value::Int(k % 37 - 18)
            };
            t.append(&vec![
                key,
                Value::Char(b'A' + (k % 3) as u8),
                Value::Str(pad.clone()),
            ])
            .unwrap();
        }
        assert!(t.bucket_count() >= 16);
        let defs = vec![
            SmaDefinition::new("min", AggFn::Min, col(0)),
            SmaDefinition::new("max", AggFn::Max, col(0)).group_by(vec![1]),
            SmaDefinition::new("sum", AggFn::Sum, col(0).mul(crate::expr::lit(2i64))),
            SmaDefinition::count("count").group_by(vec![1]),
        ];
        let before = build_many(&t, defs.clone()).unwrap();
        let converted = t.convert_buckets_from(0).unwrap();
        assert!(!converted.is_empty(), "conversion must do something");
        let after = build_many(&t, defs.clone()).unwrap();
        let after_par = build_many_parallel(&t, defs, 4).unwrap();
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(b.groups, a.groups);
            assert_eq!(b.null_seen, a.null_seen);
            assert_eq!(b.n_buckets, a.n_buckets);
        }
        for (b, a) in before.iter().zip(&after_par) {
            assert_eq!(b.groups, a.groups);
            assert_eq!(b.null_seen, a.null_seen);
        }
        // The heal path re-reads a columnar bucket columnwise and must
        // land on the same entries.
        let mut healed = after.into_iter().next().unwrap();
        let target = converted[0];
        healed.quarantine_bucket(target);
        healed.refresh_bucket(&t, target).unwrap();
        assert!(!healed.is_quarantined(target));
        assert_eq!(healed.groups, before[0].groups);
        assert_eq!(healed.null_seen, before[0].null_seen);
    }

    #[test]
    fn parallel_build_matches_serial() {
        // Needs a table with enough buckets to actually split.
        let schema = Arc::new(Schema::new(vec![
            Column::new("K", DataType::Int),
            Column::new("G", DataType::Char),
            Column::new("PAD", DataType::Str),
        ]));
        let mut t = Table::in_memory("t", schema, 1);
        let pad = "p".repeat(900);
        for k in 0..200i64 {
            t.append(&vec![
                Value::Int(k % 37),
                Value::Char(b'A' + (k % 3) as u8),
                Value::Str(pad.clone()),
            ])
            .unwrap();
        }
        assert!(t.bucket_count() >= 16);
        let defs = vec![
            SmaDefinition::new("min", AggFn::Min, col(0)),
            SmaDefinition::new("sum", AggFn::Sum, col(0)).group_by(vec![1]),
            SmaDefinition::count("count").group_by(vec![1]),
        ];
        let serial = build_many(&t, defs.clone()).unwrap();
        let parallel = build_many_parallel(&t, defs, 4).unwrap();
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.groups, p.groups);
            assert_eq!(s.null_seen, p.null_seen);
            assert_eq!(s.n_buckets, p.n_buckets);
        }
    }
}
