//! Aggregate functions and incremental accumulators.
//!
//! The paper allows exactly `min`, `max`, `sum`, and `count` in a SMA
//! definition (§2.1); `avg` in queries is derived as `sum / count` during
//! post-processing (§3.3), so it never appears here.

use std::fmt;

use sma_types::{DataType, Decimal, Value};

/// The aggregate functions a SMA may materialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFn {
    /// Minimum of the input expression.
    Min,
    /// Maximum of the input expression.
    Max,
    /// Sum of the input expression.
    Sum,
    /// Row count (`count(*)`; ignores any input expression).
    Count,
}

impl AggFn {
    /// Result type given the input expression's type (`None` for
    /// `count(*)`). Min/max/sum with no input expression have no result
    /// type — [`crate::SmaDefinition::validate`] rejects such definitions.
    pub fn result_type(self, input: Option<DataType>) -> Option<DataType> {
        match self {
            AggFn::Count => Some(DataType::Int),
            AggFn::Min | AggFn::Max | AggFn::Sum => input,
        }
    }

    /// Bytes one materialized aggregate value occupies in a SMA-file.
    /// Matches the paper's accounting: 4 bytes for counts and dates,
    /// 8 bytes for everything else (§2.4).
    pub fn entry_bytes(self, input: Option<DataType>) -> usize {
        match self.result_type(input) {
            Some(DataType::Date) => 4,
            Some(DataType::Int) if self == AggFn::Count => 4,
            _ => 8,
        }
    }
}

impl fmt::Display for AggFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFn::Min => "min",
            AggFn::Max => "max",
            AggFn::Sum => "sum",
            AggFn::Count => "count",
        };
        f.write_str(s)
    }
}

/// Incremental accumulator for one aggregate over one bucket (or group).
///
/// Starts at the aggregate's identity: `Null` for min/max/sum (no input
/// seen — the paper's "not defined" case), `0` for count.
#[derive(Debug, Clone, PartialEq)]
pub struct Accumulator {
    agg: AggFn,
    state: Value,
}

impl Accumulator {
    /// A fresh accumulator for `agg`.
    pub fn new(agg: AggFn) -> Accumulator {
        let state = match agg {
            AggFn::Count => Value::Int(0),
            _ => Value::Null,
        };
        Accumulator { agg, state }
    }

    /// Folds in one input value. `Null` inputs are ignored by min/max/sum
    /// (SQL semantics) but still counted by `count(*)`. Int sums saturate
    /// at the `i64` endpoints instead of overflowing; type-mismatched
    /// inputs (unreachable after schema validation) are ignored.
    pub fn update(&mut self, v: &Value) {
        match self.agg {
            AggFn::Count => {
                self.state = Value::Int(self.state.as_int().unwrap_or(0).saturating_add(1));
            }
            AggFn::Min => self.state = self.state.min_value(v),
            AggFn::Max => self.state = self.state.max_value(v),
            AggFn::Sum => self.state = saturating_sum(&self.state, v),
        }
    }

    /// Sequentially folds raw decimal cents into a `sum` accumulator —
    /// exactly one [`Accumulator::update`] with
    /// `Value::Decimal(Decimal::from_cents(v))` per item (`None` items
    /// are `Null` inputs, ignored), minus the `Value` boxing and enum
    /// dispatch. The batch aggregation kernels call this per group with
    /// the compiled expression's per-row cents.
    pub fn fold_sum_dec(&mut self, items: impl IntoIterator<Item = Option<i64>>) {
        debug_assert_eq!(self.agg, AggFn::Sum);
        let items = items.into_iter();
        let mut state = match &self.state {
            Value::Null => None,
            Value::Decimal(d) => Some(d.cents()),
            _ => {
                // Type-mismatched running state (unreachable after schema
                // validation): keep the per-value fold, which ignores it.
                for item in items {
                    let v = item.map_or(Value::Null, |c| Value::Decimal(Decimal::from_cents(c)));
                    self.update(&v);
                }
                return;
            }
        };
        for item in items {
            let Some(c) = item else { continue };
            state = Some(match state {
                None => c,
                Some(s) => (Decimal::from_cents(s) + Decimal::from_cents(c)).cents(),
            });
        }
        self.state = state.map_or(Value::Null, |c| Value::Decimal(Decimal::from_cents(c)));
    }

    /// The `Int` twin of [`Accumulator::fold_sum_dec`]: per-step checked
    /// addition saturating at the `i64` endpoints, exactly like the
    /// per-value path.
    pub fn fold_sum_int(&mut self, items: impl IntoIterator<Item = Option<i64>>) {
        debug_assert_eq!(self.agg, AggFn::Sum);
        let items = items.into_iter();
        let mut state = match &self.state {
            Value::Null => None,
            Value::Int(n) => Some(*n),
            _ => {
                for item in items {
                    self.update(&item.map_or(Value::Null, Value::Int));
                }
                return;
            }
        };
        for item in items {
            let Some(v) = item else { continue };
            state = Some(match state {
                None => v,
                Some(s) => s.checked_add(v).unwrap_or_else(|| s.saturating_add(v)),
            });
        }
        self.state = state.map_or(Value::Null, Value::Int);
    }

    /// Counts `n` rows at once — identical to `n` single
    /// [`Accumulator::update`] calls because saturating increments are
    /// monotone: both end at `start + n` clamped to `i64::MAX`.
    pub fn fold_count(&mut self, n: usize) {
        debug_assert_eq!(self.agg, AggFn::Count);
        let start = self.state.as_int().unwrap_or(0);
        let add = i64::try_from(n).unwrap_or(i64::MAX);
        self.state = Value::Int(start.saturating_add(add));
    }

    /// Folds in an already-aggregated value (e.g. a SMA entry for a whole
    /// bucket). For `count`, `v` is the bucket's count. `Null` merges are
    /// no-ops for min/max/sum; a non-Int count merge (unreachable — SMA
    /// count entries are Int by construction) is ignored.
    pub fn merge(&mut self, v: &Value) {
        match self.agg {
            AggFn::Count => {
                let n = v.as_int().unwrap_or(0);
                self.state = Value::Int(self.state.as_int().unwrap_or(0).saturating_add(n));
            }
            AggFn::Min => self.state = self.state.min_value(v),
            AggFn::Max => self.state = self.state.max_value(v),
            AggFn::Sum => self.state = saturating_sum(&self.state, v),
        }
    }

    /// Removes one previously-added input value. Exact for sum and count;
    /// **not supported** for min/max (deletion there needs a bucket
    /// recompute — see `maintain`).
    pub fn retract(&mut self, v: &Value) -> Result<(), RetractError> {
        match self.agg {
            AggFn::Count => {
                self.state = Value::Int(self.state.as_int().unwrap_or(0).saturating_sub(1));
                Ok(())
            }
            AggFn::Sum => {
                if v.is_null() {
                    return Ok(());
                }
                let negated = match v {
                    Value::Int(n) => {
                        Value::Int(n.checked_neg().ok_or_else(|| {
                            RetractError("cannot retract i64::MIN from sum".into())
                        })?)
                    }
                    Value::Decimal(d) => Value::Decimal(-*d),
                    other => return Err(RetractError(format!("cannot retract {other} from sum"))),
                };
                self.state = saturating_sum(&self.state, &negated);
                Ok(())
            }
            AggFn::Min | AggFn::Max => Err(RetractError(
                "min/max cannot retract; recompute the bucket".into(),
            )),
        }
    }

    /// The aggregate's current value.
    pub fn value(&self) -> &Value {
        &self.state
    }

    /// Consumes the accumulator, yielding the final value.
    pub fn finish(self) -> Value {
        self.state
    }
}

/// Total fallback-aware sum: like [`Value::checked_add`] but Int overflow
/// saturates at the `i64` endpoints and a type-mismatched operand leaves
/// the running state unchanged (mismatches are unreachable for tuples that
/// passed schema validation, but the accumulator stays panic-free even on
/// hostile input).
fn saturating_sum(state: &Value, v: &Value) -> Value {
    match state.checked_add(v) {
        Some(s) => s,
        None => match (state, v) {
            (Value::Int(a), Value::Int(b)) => Value::Int(a.saturating_add(*b)),
            _ => state.clone(),
        },
    }
}

/// Error produced by unsupported retractions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetractError(pub String);

impl fmt::Display for RetractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "retract error: {}", self.0)
    }
}

impl std::error::Error for RetractError {}

#[cfg(test)]
mod tests {
    use super::*;
    use sma_types::{Date, Decimal};

    fn dec(s: &str) -> Value {
        Value::Decimal(Decimal::parse(s).unwrap())
    }

    #[test]
    fn count_counts_everything_including_null() {
        let mut a = Accumulator::new(AggFn::Count);
        a.update(&Value::Int(5));
        a.update(&Value::Null);
        a.update(&dec("1.00"));
        assert_eq!(a.finish(), Value::Int(3));
    }

    #[test]
    fn min_max_over_dates() {
        let d1 = Value::Date(Date::parse("1997-02-02").unwrap());
        let d2 = Value::Date(Date::parse("1997-04-22").unwrap());
        let mut lo = Accumulator::new(AggFn::Min);
        let mut hi = Accumulator::new(AggFn::Max);
        for v in [&d2, &Value::Null, &d1] {
            lo.update(v);
            hi.update(v);
        }
        assert_eq!(lo.finish(), d1);
        assert_eq!(hi.finish(), d2);
    }

    #[test]
    fn empty_min_max_sum_are_null() {
        assert_eq!(Accumulator::new(AggFn::Min).finish(), Value::Null);
        assert_eq!(Accumulator::new(AggFn::Max).finish(), Value::Null);
        assert_eq!(Accumulator::new(AggFn::Sum).finish(), Value::Null);
        assert_eq!(Accumulator::new(AggFn::Count).finish(), Value::Int(0));
    }

    #[test]
    fn sum_decimals_ignores_null() {
        let mut a = Accumulator::new(AggFn::Sum);
        a.update(&dec("1.50"));
        a.update(&Value::Null);
        a.update(&dec("2.25"));
        assert_eq!(a.finish(), dec("3.75"));
    }

    #[test]
    fn merge_combines_bucket_aggregates() {
        let mut sum = Accumulator::new(AggFn::Sum);
        sum.merge(&dec("10.00"));
        sum.merge(&dec("5.00"));
        sum.merge(&Value::Null); // empty bucket
        assert_eq!(sum.finish(), dec("15.00"));

        let mut count = Accumulator::new(AggFn::Count);
        count.merge(&Value::Int(120));
        count.merge(&Value::Int(3));
        assert_eq!(count.finish(), Value::Int(123));

        let mut min = Accumulator::new(AggFn::Min);
        min.merge(&Value::Int(5));
        min.merge(&Value::Int(2));
        assert_eq!(min.finish(), Value::Int(2));
    }

    #[test]
    fn retract_sum_and_count() {
        let mut sum = Accumulator::new(AggFn::Sum);
        sum.update(&Value::Int(10));
        sum.update(&Value::Int(7));
        sum.retract(&Value::Int(10)).unwrap();
        assert_eq!(sum.finish(), Value::Int(7));

        let mut count = Accumulator::new(AggFn::Count);
        count.update(&Value::Int(1));
        count.retract(&Value::Int(1)).unwrap();
        assert_eq!(count.finish(), Value::Int(0));
    }

    /// Regression: retracting `i64::MIN` used to negate unchecked and
    /// overflow-panic in debug builds; it must report a retract error.
    #[test]
    fn retract_i64_min_is_an_error_not_a_panic() {
        let mut sum = Accumulator::new(AggFn::Sum);
        sum.update(&Value::Int(5));
        assert!(sum.retract(&Value::Int(i64::MIN)).is_err());
    }

    #[test]
    fn retract_minmax_rejected() {
        let mut m = Accumulator::new(AggFn::Min);
        m.update(&Value::Int(1));
        assert!(m.retract(&Value::Int(1)).is_err());
    }

    #[test]
    fn entry_bytes_match_paper() {
        // §2.4: "For counts and dates, 4 bytes are needed. For all other
        // aggregate values we used 8 bytes."
        assert_eq!(AggFn::Count.entry_bytes(None), 4);
        assert_eq!(AggFn::Min.entry_bytes(Some(DataType::Date)), 4);
        assert_eq!(AggFn::Max.entry_bytes(Some(DataType::Date)), 4);
        assert_eq!(AggFn::Sum.entry_bytes(Some(DataType::Decimal)), 8);
        assert_eq!(AggFn::Sum.entry_bytes(Some(DataType::Int)), 8);
    }

    #[test]
    fn result_types() {
        assert_eq!(AggFn::Count.result_type(None), Some(DataType::Int));
        assert_eq!(
            AggFn::Min.result_type(Some(DataType::Date)),
            Some(DataType::Date)
        );
        assert_eq!(
            AggFn::Sum.result_type(Some(DataType::Decimal)),
            Some(DataType::Decimal)
        );
        assert_eq!(AggFn::Sum.result_type(None), None);
    }
}
