//! Bucket grading: partitioning buckets into qualifying, disqualifying and
//! ambivalent sets (§3.1).
//!
//! Given a selection predicate and the SMAs that mention its attributes,
//! [`BucketPred::grade`] classifies each bucket **without touching the
//! data**. The rules are the paper's, with two sound extensions noted
//! inline:
//!
//! * `A = c` additionally *qualifies* when `min = max = c` (the paper only
//!   disqualifies/leaves ambivalent);
//! * a bucket that saw `Null` inputs never *qualifies* wholesale, because
//!   `Null` fails every predicate while staying invisible to min/max.

use std::cmp::Ordering;

use sma_storage::BucketNo;
use sma_types::Value;

/// The three-way classification of a bucket (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Grade {
    /// Every tuple in the bucket satisfies the predicate.
    Qualifies,
    /// No tuple in the bucket satisfies the predicate.
    Disqualifies,
    /// Must be inspected tuple-by-tuple.
    Ambivalent,
}

/// Comparison operators of the paper's atomic predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the operator to an ordering of `left` vs `right`.
    pub fn matches(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// Evaluates `a op b` with SQL three-valued logic collapsed to bool
    /// (`Null`/type-mismatch → false).
    pub fn eval(self, a: &Value, b: &Value) -> bool {
        a.partial_cmp_typed(b).is_some_and(|ord| self.matches(ord))
    }
}

/// A selection predicate in the paper's grammar: atomic comparisons
/// combined with `and` / `or`.
#[derive(Debug, Clone, PartialEq)]
pub enum BucketPred {
    /// `A op c` — column vs constant.
    Cmp {
        /// Column index of `A`.
        col: usize,
        /// Comparison operator.
        op: CmpOp,
        /// The constant `c`.
        value: Value,
    },
    /// `A op B` — column vs column of the same relation.
    ColCmp {
        /// Column index of `A`.
        left: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Column index of `B`.
        right: usize,
    },
    /// Conjunction.
    And(Vec<BucketPred>),
    /// Disjunction.
    Or(Vec<BucketPred>),
}

/// Per-bucket statistics the grader consumes — implemented by `SmaSet`
/// from whatever min/max/count SMAs exist.
pub trait StatsProvider {
    /// Bucket-wide minimum of `col` (across groups if the SMA is grouped);
    /// `None` when no SMA covers it or the entry is undefined.
    fn min_of(&self, col: usize, bucket: BucketNo) -> Option<Value>;
    /// Bucket-wide maximum of `col`.
    fn max_of(&self, col: usize, bucket: BucketNo) -> Option<Value>;
    /// Whether `col` in `bucket` is known to contain no `Null`s.
    fn null_free(&self, col: usize, bucket: BucketNo) -> bool {
        let _ = (col, bucket);
        false
    }
    /// Exact `(value, count)` pairs for `col` in `bucket`, from a count
    /// SMA grouped solely by `col` (§3.1's `count_{A,i}[x]`). Pairs with
    /// zero count may be omitted or included.
    fn distinct_counts(&self, col: usize, bucket: BucketNo) -> Option<Vec<(Value, i64)>> {
        let _ = (col, bucket);
        None
    }
}

/// A provider with no statistics: everything grades ambivalent.
pub struct NoStats;

impl StatsProvider for NoStats {
    fn min_of(&self, _: usize, _: BucketNo) -> Option<Value> {
        None
    }
    fn max_of(&self, _: usize, _: BucketNo) -> Option<Value> {
        None
    }
}

impl BucketPred {
    /// Convenience constructor for `A op c`.
    pub fn cmp(col: usize, op: CmpOp, value: impl Into<Value>) -> BucketPred {
        BucketPred::Cmp {
            col,
            op,
            value: value.into(),
        }
    }

    /// Convenience constructor for `A op B`.
    pub fn col_cmp(left: usize, op: CmpOp, right: usize) -> BucketPred {
        BucketPred::ColCmp { left, op, right }
    }

    /// Evaluates the predicate on one tuple (the operators' runtime
    /// semantics; used for ambivalent buckets and as the test oracle).
    pub fn eval_tuple(&self, tuple: &[Value]) -> bool {
        match self {
            BucketPred::Cmp { col, op, value } => {
                tuple.get(*col).is_some_and(|v| op.eval(v, value))
            }
            BucketPred::ColCmp { left, op, right } => match (tuple.get(*left), tuple.get(*right)) {
                (Some(a), Some(b)) => op.eval(a, b),
                _ => false,
            },
            BucketPred::And(ps) => ps.iter().all(|p| p.eval_tuple(tuple)),
            BucketPred::Or(ps) => ps.iter().any(|p| p.eval_tuple(tuple)),
        }
    }

    /// Evaluates the predicate against a zero-copy [`sma_types::RowView`]
    /// with exactly the semantics of [`BucketPred::eval_tuple`]: `Null`
    /// operands, type mismatches, and out-of-range columns are `false`,
    /// empty `And` is `true`, empty `Or` is `false`. Allocation-free for
    /// every column type (strings compare borrowed); errors surface only
    /// for corrupt images whose string payloads cannot be read.
    pub fn eval_view(&self, row: &sma_types::RowView<'_>) -> Result<bool, sma_types::CodecError> {
        Ok(match self {
            BucketPred::Cmp { col, op, value } => row
                .cmp_value(*col, value)?
                .is_some_and(|ord| op.matches(ord)),
            BucketPred::ColCmp { left, op, right } => row
                .cmp_cols(*left, *right)?
                .is_some_and(|ord| op.matches(ord)),
            BucketPred::And(ps) => {
                for p in ps {
                    if !p.eval_view(row)? {
                        return Ok(false);
                    }
                }
                true
            }
            BucketPred::Or(ps) => {
                for p in ps {
                    if p.eval_view(row)? {
                        return Ok(true);
                    }
                }
                false
            }
        })
    }

    /// All column indexes the predicate references.
    pub fn referenced_columns(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.collect(&mut cols);
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    fn collect(&self, out: &mut Vec<usize>) {
        match self {
            BucketPred::Cmp { col, .. } => out.push(*col),
            BucketPred::ColCmp { left, right, .. } => {
                out.push(*left);
                out.push(*right);
            }
            BucketPred::And(ps) | BucketPred::Or(ps) => {
                for p in ps {
                    p.collect(out);
                }
            }
        }
    }

    /// Grades `bucket` using only SMA statistics (§3.1). Sound by
    /// construction: `Qualifies`/`Disqualifies` are only returned when the
    /// statistics prove them; everything else is `Ambivalent`.
    pub fn grade(&self, bucket: BucketNo, stats: &dyn StatsProvider) -> Grade {
        match self {
            BucketPred::Cmp { col, op, value } => {
                let by_minmax = grade_minmax(*col, *op, value, bucket, stats);
                if by_minmax != Grade::Ambivalent {
                    return by_minmax;
                }
                grade_by_counts(*col, *op, value, bucket, stats)
            }
            BucketPred::ColCmp { left, op, right } => {
                grade_col_cmp(*left, *op, *right, bucket, stats)
            }
            BucketPred::And(ps) => {
                // §3.1: q = ∩q_i, d = ∪d_i, a = rest.
                let mut grade = Grade::Qualifies;
                for p in ps {
                    match p.grade(bucket, stats) {
                        Grade::Disqualifies => return Grade::Disqualifies,
                        Grade::Ambivalent => grade = Grade::Ambivalent,
                        Grade::Qualifies => {}
                    }
                }
                grade
            }
            BucketPred::Or(ps) => {
                // §3.1: q = ∪q_i, d = ∩d_i, a = rest.
                let mut grade = Grade::Disqualifies;
                for p in ps {
                    match p.grade(bucket, stats) {
                        Grade::Qualifies => return Grade::Qualifies,
                        Grade::Ambivalent => grade = Grade::Ambivalent,
                        Grade::Disqualifies => {}
                    }
                }
                grade
            }
        }
    }
}

/// The `A op c` rules from §3.1 driven by min/max SMAs.
fn grade_minmax(
    col: usize,
    op: CmpOp,
    c: &Value,
    bucket: BucketNo,
    stats: &dyn StatsProvider,
) -> Grade {
    let (Some(lo), Some(hi)) = (stats.min_of(col, bucket), stats.max_of(col, bucket)) else {
        // "The else case is also applied if the max/min aggregates are not
        // defined."
        return Grade::Ambivalent;
    };
    let (Some(lo_c), Some(hi_c)) = (lo.partial_cmp_typed(c), hi.partial_cmp_typed(c)) else {
        return Grade::Ambivalent;
    };
    // A `Null` in the column fails every predicate but is invisible to the
    // bounds, so wholesale qualification needs a null-free bucket.
    let null_free = stats.null_free(col, bucket);
    let qualify = |g: Grade| if null_free { g } else { Grade::Ambivalent };
    match op {
        CmpOp::Eq => {
            if hi_c == Ordering::Less || lo_c == Ordering::Greater {
                Grade::Disqualifies
            } else if lo_c == Ordering::Equal && hi_c == Ordering::Equal {
                // Sound extension beyond the paper: a constant bucket.
                qualify(Grade::Qualifies)
            } else {
                Grade::Ambivalent
            }
        }
        CmpOp::Le => {
            if hi_c != Ordering::Greater {
                qualify(Grade::Qualifies)
            } else if lo_c == Ordering::Greater {
                Grade::Disqualifies
            } else {
                Grade::Ambivalent
            }
        }
        CmpOp::Lt => {
            if hi_c == Ordering::Less {
                qualify(Grade::Qualifies)
            } else if lo_c != Ordering::Less {
                Grade::Disqualifies
            } else {
                Grade::Ambivalent
            }
        }
        CmpOp::Ge => {
            if lo_c != Ordering::Less {
                qualify(Grade::Qualifies)
            } else if hi_c == Ordering::Less {
                Grade::Disqualifies
            } else {
                Grade::Ambivalent
            }
        }
        CmpOp::Gt => {
            if lo_c == Ordering::Greater {
                qualify(Grade::Qualifies)
            } else if hi_c != Ordering::Greater {
                Grade::Disqualifies
            } else {
                Grade::Ambivalent
            }
        }
    }
}

/// The grouped-count rules from §3.1: with a count SMA grouped solely by
/// `A`, the exact value distribution of the bucket is known, so grading is
/// exact (all present values pass / none pass / mixed).
fn grade_by_counts(
    col: usize,
    op: CmpOp,
    c: &Value,
    bucket: BucketNo,
    stats: &dyn StatsProvider,
) -> Grade {
    let Some(counts) = stats.distinct_counts(col, bucket) else {
        return Grade::Ambivalent;
    };
    let mut any_pass = false;
    let mut any_fail = false;
    for (x, n) in &counts {
        if *n <= 0 {
            continue;
        }
        if x.is_null() || !op.eval(x, c) {
            any_fail = true;
        } else {
            any_pass = true;
        }
        if any_pass && any_fail {
            return Grade::Ambivalent;
        }
    }
    match (any_pass, any_fail) {
        (true, false) => Grade::Qualifies,
        (false, true) => Grade::Disqualifies,
        // An empty bucket trivially disqualifies (no tuple can match).
        (false, false) => Grade::Disqualifies,
        (true, true) => unreachable!("early-returned above"),
    }
}

/// The `A op B` rules from §3.1.
fn grade_col_cmp(
    left: usize,
    op: CmpOp,
    right: usize,
    bucket: BucketNo,
    stats: &dyn StatsProvider,
) -> Grade {
    let (Some(min_a), Some(max_a)) = (stats.min_of(left, bucket), stats.max_of(left, bucket))
    else {
        return Grade::Ambivalent;
    };
    let (Some(min_b), Some(max_b)) = (stats.min_of(right, bucket), stats.max_of(right, bucket))
    else {
        return Grade::Ambivalent;
    };
    let nulls_ok = stats.null_free(left, bucket) && stats.null_free(right, bucket);
    let qualify = |g: Grade| if nulls_ok { g } else { Grade::Ambivalent };
    let le = |a: &Value, b: &Value| CmpOp::Le.eval(a, b);
    let lt = |a: &Value, b: &Value| CmpOp::Lt.eval(a, b);
    match op {
        CmpOp::Le => {
            if le(&max_a, &min_b) {
                qualify(Grade::Qualifies)
            } else if lt(&max_b, &min_a) {
                Grade::Disqualifies
            } else {
                Grade::Ambivalent
            }
        }
        CmpOp::Lt => {
            if lt(&max_a, &min_b) {
                qualify(Grade::Qualifies)
            } else if le(&max_b, &min_a) {
                Grade::Disqualifies
            } else {
                Grade::Ambivalent
            }
        }
        CmpOp::Ge => {
            if le(&max_b, &min_a) {
                qualify(Grade::Qualifies)
            } else if lt(&max_a, &min_b) {
                Grade::Disqualifies
            } else {
                Grade::Ambivalent
            }
        }
        CmpOp::Gt => {
            if lt(&max_b, &min_a) {
                qualify(Grade::Qualifies)
            } else if le(&max_a, &min_b) {
                Grade::Disqualifies
            } else {
                Grade::Ambivalent
            }
        }
        CmpOp::Eq => {
            if lt(&max_a, &min_b) || lt(&max_b, &min_a) {
                Grade::Disqualifies
            } else if min_a == max_a && min_b == max_b && min_a == min_b {
                qualify(Grade::Qualifies)
            } else {
                Grade::Ambivalent
            }
        }
    }
}

/// Result of grading all buckets of a relation against a predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Classification {
    /// Grade of each bucket, positionally.
    pub grades: Vec<Grade>,
}

impl Classification {
    /// Grades buckets `0..n_buckets`.
    pub fn classify(
        pred: &BucketPred,
        n_buckets: BucketNo,
        stats: &dyn StatsProvider,
    ) -> Classification {
        Classification {
            grades: (0..n_buckets).map(|b| pred.grade(b, stats)).collect(),
        }
    }

    /// Buckets graded `g`.
    pub fn count(&self, g: Grade) -> usize {
        self.grades.iter().filter(|&&x| x == g).count()
    }

    /// Fraction of buckets that must be read (ambivalent), in `[0, 1]`.
    pub fn ambivalent_fraction(&self) -> f64 {
        if self.grades.is_empty() {
            return 0.0;
        }
        self.count(Grade::Ambivalent) as f64 / self.grades.len() as f64
    }

    /// Fraction of buckets whose data pages can be skipped entirely.
    pub fn skipped_fraction(&self) -> f64 {
        if self.grades.is_empty() {
            return 0.0;
        }
        self.count(Grade::Disqualifies) as f64 / self.grades.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Hand-rolled provider over explicit per-bucket stats.
    #[derive(Default)]
    struct FakeStats {
        minmax: HashMap<(usize, BucketNo), (Value, Value)>,
        nullfree: HashMap<(usize, BucketNo), bool>,
        counts: HashMap<(usize, BucketNo), Vec<(Value, i64)>>,
    }

    impl FakeStats {
        fn with(mut self, col: usize, b: BucketNo, lo: i64, hi: i64) -> Self {
            self.minmax
                .insert((col, b), (Value::Int(lo), Value::Int(hi)));
            self.nullfree.insert((col, b), true);
            self
        }
        fn nullable(mut self, col: usize, b: BucketNo) -> Self {
            self.nullfree.insert((col, b), false);
            self
        }
        fn with_counts(mut self, col: usize, b: BucketNo, pairs: Vec<(i64, i64)>) -> Self {
            self.counts.insert(
                (col, b),
                pairs.into_iter().map(|(x, n)| (Value::Int(x), n)).collect(),
            );
            self
        }
    }

    impl StatsProvider for FakeStats {
        fn min_of(&self, col: usize, b: BucketNo) -> Option<Value> {
            self.minmax.get(&(col, b)).map(|(lo, _)| lo.clone())
        }
        fn max_of(&self, col: usize, b: BucketNo) -> Option<Value> {
            self.minmax.get(&(col, b)).map(|(_, hi)| hi.clone())
        }
        fn null_free(&self, col: usize, b: BucketNo) -> bool {
            self.nullfree.get(&(col, b)).copied().unwrap_or(false)
        }
        fn distinct_counts(&self, col: usize, b: BucketNo) -> Option<Vec<(Value, i64)>> {
            self.counts.get(&(col, b)).cloned()
        }
    }

    fn le(col: usize, c: i64) -> BucketPred {
        BucketPred::cmp(col, CmpOp::Le, c)
    }

    #[test]
    fn paper_example_section_2_2() {
        // Fig. 1 buckets as integer day-counts; pred: shipdate < 97-04-30.
        // Bucket 0: [97-02-02, 97-04-22] qualifies; bucket 1: [04-01,05-07]
        // ambivalent; bucket 2: [05-02, 06-03] disqualifies.
        let stats = FakeStats::default()
            .with(0, 0, 202, 422)
            .with(0, 1, 401, 507)
            .with(0, 2, 502, 603);
        let pred = BucketPred::cmp(0, CmpOp::Lt, 430i64);
        assert_eq!(pred.grade(0, &stats), Grade::Qualifies);
        assert_eq!(pred.grade(1, &stats), Grade::Ambivalent);
        assert_eq!(pred.grade(2, &stats), Grade::Disqualifies);
    }

    #[test]
    fn all_operators_all_cases() {
        let stats = FakeStats::default().with(0, 0, 10, 20);
        use CmpOp::*;
        use Grade::*;
        let cases: Vec<(CmpOp, i64, Grade)> = vec![
            (Eq, 5, Disqualifies),
            (Eq, 25, Disqualifies),
            (Eq, 15, Ambivalent),
            (Le, 20, Qualifies),
            (Le, 19, Ambivalent),
            (Le, 9, Disqualifies),
            (Lt, 21, Qualifies),
            (Lt, 20, Ambivalent),
            (Lt, 10, Disqualifies),
            (Ge, 10, Qualifies),
            (Ge, 11, Ambivalent),
            (Ge, 21, Disqualifies),
            (Gt, 9, Qualifies),
            (Gt, 10, Ambivalent),
            (Gt, 20, Disqualifies),
        ];
        for (op, c, expected) in cases {
            let pred = BucketPred::cmp(0, op, c);
            assert_eq!(pred.grade(0, &stats), expected, "{op:?} {c}");
        }
    }

    #[test]
    fn eq_constant_bucket_qualifies() {
        let stats = FakeStats::default().with(0, 0, 7, 7);
        assert_eq!(
            BucketPred::cmp(0, CmpOp::Eq, 7i64).grade(0, &stats),
            Grade::Qualifies
        );
    }

    #[test]
    fn missing_stats_are_ambivalent() {
        assert_eq!(le(0, 100).grade(0, &NoStats), Grade::Ambivalent);
        // Stats on a different column don't help.
        let stats = FakeStats::default().with(1, 0, 0, 1);
        assert_eq!(le(0, 100).grade(0, &stats), Grade::Ambivalent);
    }

    #[test]
    fn nullable_buckets_never_qualify_wholesale() {
        let stats = FakeStats::default().with(0, 0, 10, 20).nullable(0, 0);
        assert_eq!(le(0, 100).grade(0, &stats), Grade::Ambivalent);
        // …but disqualification is still safe: Null fails the predicate too.
        assert_eq!(le(0, 5).grade(0, &stats), Grade::Disqualifies);
    }

    #[test]
    fn col_vs_col_rules() {
        // A in [10,20]; B in [30,40]: A <= B qualifies, A >= B disqualifies.
        let stats = FakeStats::default().with(0, 0, 10, 20).with(1, 0, 30, 40);
        assert_eq!(
            BucketPred::col_cmp(0, CmpOp::Le, 1).grade(0, &stats),
            Grade::Qualifies
        );
        assert_eq!(
            BucketPred::col_cmp(0, CmpOp::Lt, 1).grade(0, &stats),
            Grade::Qualifies
        );
        assert_eq!(
            BucketPred::col_cmp(0, CmpOp::Ge, 1).grade(0, &stats),
            Grade::Disqualifies
        );
        assert_eq!(
            BucketPred::col_cmp(0, CmpOp::Gt, 1).grade(0, &stats),
            Grade::Disqualifies
        );
        assert_eq!(
            BucketPred::col_cmp(0, CmpOp::Eq, 1).grade(0, &stats),
            Grade::Disqualifies
        );
        // Overlapping ranges are ambivalent.
        let overlap = FakeStats::default().with(0, 0, 10, 35).with(1, 0, 30, 40);
        assert_eq!(
            BucketPred::col_cmp(0, CmpOp::Le, 1).grade(0, &overlap),
            Grade::Ambivalent
        );
        // Touching ranges: max(A) == min(B).
        let touch = FakeStats::default().with(0, 0, 10, 30).with(1, 0, 30, 40);
        assert_eq!(
            BucketPred::col_cmp(0, CmpOp::Le, 1).grade(0, &touch),
            Grade::Qualifies
        );
        assert_eq!(
            BucketPred::col_cmp(0, CmpOp::Lt, 1).grade(0, &touch),
            Grade::Ambivalent
        );
    }

    #[test]
    fn and_or_combination_tables() {
        let stats = FakeStats::default().with(0, 0, 10, 20).with(1, 0, 10, 20);
        let q = le(0, 30); // qualifies
        let d = le(0, 5); // disqualifies
        let a = le(0, 15); // ambivalent
        use Grade::*;
        let and = |x: &BucketPred, y: &BucketPred| {
            BucketPred::And(vec![x.clone(), y.clone()]).grade(0, &stats)
        };
        let or = |x: &BucketPred, y: &BucketPred| {
            BucketPred::Or(vec![x.clone(), y.clone()]).grade(0, &stats)
        };
        assert_eq!(and(&q, &q), Qualifies);
        assert_eq!(and(&q, &a), Ambivalent);
        assert_eq!(and(&q, &d), Disqualifies);
        assert_eq!(and(&a, &d), Disqualifies);
        assert_eq!(and(&a, &a), Ambivalent);
        assert_eq!(or(&q, &d), Qualifies);
        assert_eq!(or(&a, &q), Qualifies);
        assert_eq!(or(&d, &d), Disqualifies);
        assert_eq!(or(&a, &d), Ambivalent);
        assert_eq!(or(&a, &a), Ambivalent);
    }

    #[test]
    fn grouped_count_sma_grades_exactly() {
        // Bucket 0 holds values {3×5, 2×7}; no min/max SMA at all.
        let stats = FakeStats::default().with_counts(0, 0, vec![(5, 3), (7, 2)]);
        assert_eq!(le(0, 10).grade(0, &stats), Grade::Qualifies);
        assert_eq!(le(0, 4).grade(0, &stats), Grade::Disqualifies);
        assert_eq!(le(0, 6).grade(0, &stats), Grade::Ambivalent);
        assert_eq!(
            BucketPred::cmp(0, CmpOp::Eq, 5i64).grade(0, &stats),
            Grade::Ambivalent
        );
        assert_eq!(
            BucketPred::cmp(0, CmpOp::Eq, 6i64).grade(0, &stats),
            Grade::Disqualifies
        );
        // Zero-count pairs are ignored.
        let with_zero = FakeStats::default().with_counts(0, 0, vec![(5, 3), (9, 0)]);
        assert_eq!(le(0, 6).grade(0, &with_zero), Grade::Qualifies);
        // Empty bucket disqualifies.
        let empty = FakeStats::default().with_counts(0, 0, vec![]);
        assert_eq!(le(0, 6).grade(0, &empty), Grade::Disqualifies);
    }

    #[test]
    fn eval_tuple_semantics() {
        let t = vec![Value::Int(5), Value::Int(10)];
        assert!(le(0, 5).eval_tuple(&t));
        assert!(!le(0, 4).eval_tuple(&t));
        assert!(BucketPred::col_cmp(0, CmpOp::Lt, 1).eval_tuple(&t));
        assert!(!BucketPred::col_cmp(1, CmpOp::Lt, 0).eval_tuple(&t));
        // Null and out-of-range are false, not errors.
        let n = vec![Value::Null, Value::Int(1)];
        assert!(!le(0, 100).eval_tuple(&n));
        assert!(!le(7, 100).eval_tuple(&n));
        assert!(BucketPred::And(vec![]).eval_tuple(&t), "empty AND is true");
        assert!(!BucketPred::Or(vec![]).eval_tuple(&t), "empty OR is false");
    }

    #[test]
    fn classification_statistics() {
        let stats = FakeStats::default()
            .with(0, 0, 0, 10)
            .with(0, 1, 20, 30)
            .with(0, 2, 5, 25)
            .with(0, 3, 40, 50);
        let c = Classification::classify(&le(0, 15), 4, &stats);
        assert_eq!(
            c.grades,
            vec![
                Grade::Qualifies,
                Grade::Disqualifies,
                Grade::Ambivalent,
                Grade::Disqualifies
            ]
        );
        assert_eq!(c.count(Grade::Disqualifies), 2);
        assert!((c.ambivalent_fraction() - 0.25).abs() < 1e-9);
        assert!((c.skipped_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn referenced_columns() {
        let p = BucketPred::And(vec![
            le(3, 1),
            BucketPred::Or(vec![le(1, 2), BucketPred::col_cmp(3, CmpOp::Lt, 0)]),
        ]);
        assert_eq!(p.referenced_columns(), vec![0, 1, 3]);
    }
}
