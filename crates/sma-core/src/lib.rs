//! Small Materialized Aggregates — the paper's primary contribution.
//!
//! A SMA materializes one aggregate (`min`, `max`, `sum`, `count(*)`),
//! optionally per group, for every *bucket* of a physically ordered
//! relation, in a plain sequential file. SMAs serve two purposes (§2.2):
//!
//! 1. **Selection**: grade buckets as qualifying / disqualifying /
//!    ambivalent without touching the data ([`grade`]), so scans skip
//!    disqualified buckets and take qualified buckets' aggregates straight
//!    from the SMA;
//! 2. **Aggregation**: answer grouped aggregate queries from per-bucket
//!    aggregates, reading only ambivalent buckets ([`set`], used by
//!    `sma-exec`'s `SmaGAggr`).
//!
//! Module map: [`def`] (the `define sma` statement) → [`sma`]
//! (bulkload + maintenance) → [`mod@file`] (the sequential SMA-files) →
//! [`set`] (SMA sets, grading provider) → [`grade`] (§3.1 algebra) →
//! [`hierarchical`] / [`join_sma`] (§4 extensions) → [`parse`] /
//! [`catalog`] (the declarative front end) → [`persist`] (page-store
//! serialization) → [`projection`] (the structure SMAs generalize).
//! [`expr`] and [`agg`] are the shared scalar-expression and accumulator
//! plumbing.
//!
//! # Example
//!
//! ```
//! use sma_core::{SmaDefinition, SmaSet, AggFn, BucketPred, CmpOp, Grade, col};
//! use sma_storage::Table;
//! use sma_types::{Column, DataType, Schema, Value};
//! use std::sync::Arc;
//!
//! let schema = Arc::new(Schema::new(vec![Column::new("K", DataType::Int)]));
//! let mut table = Table::in_memory("R", schema, 1);
//! for k in 0..100 { table.append(&vec![Value::Int(k)]).unwrap(); }
//!
//! let smas = SmaSet::build(&table, vec![
//!     SmaDefinition::new("min", AggFn::Min, col(0)),
//!     SmaDefinition::new("max", AggFn::Max, col(0)),
//! ]).unwrap();
//!
//! // All 100 tuples fit one page/bucket here, so the lone bucket grades
//! // ambivalent for a predicate splitting it and exactly otherwise:
//! assert_eq!(BucketPred::cmp(0, CmpOp::Le, 50i64).grade(0, &smas), Grade::Ambivalent);
//! assert_eq!(BucketPred::cmp(0, CmpOp::Ge, 0i64).grade(0, &smas), Grade::Qualifies);
//! assert_eq!(BucketPred::cmp(0, CmpOp::Gt, 99i64).grade(0, &smas), Grade::Disqualifies);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod agg;
pub mod catalog;
pub mod def;
pub mod expr;
pub mod file;
pub mod grade;
pub mod hierarchical;
pub mod join_sma;
pub mod parse;
pub mod persist;
pub mod projection;
pub mod set;
pub mod sma;
pub mod validate;

pub use agg::{Accumulator, AggFn, RetractError};
pub use catalog::{CatalogError, SmaCatalog};
pub use def::{DefError, SmaDefinition};
pub use expr::{col, dec_lit, lit, DecProgram, ExprError, IntProgram, ScalarExpr};
pub use file::SmaFile;
pub use grade::{BucketPred, Classification, CmpOp, Grade, NoStats, StatsProvider};
pub use hierarchical::{HierarchicalMinMax, HierarchicalPrune};
pub use join_sma::{semijoin_prune, MinimaxOf};
pub use parse::{parse_define_sma, ParseError};
pub use persist::{
    decode_definition, decode_sma_stream, encode_definition, encode_sma_stream, load_sma,
    load_sma_file, save_sma, save_sma_file,
};
pub use projection::ProjectionIndex;
pub use set::{merge_bucket_into_group, SmaSet};
pub use sma::{block_bucket_accs, build_many, build_many_parallel, GroupKey, Sma, SmaError};
pub use validate::{check_set, check_sma, debug_check_sma, Violation};
