//! Scalar expressions over tuples.
//!
//! SMA definitions aggregate *expressions*, not just columns — Fig. 4 of
//! the paper materializes `sum(EXTPRICE * (1-DIS))` and
//! `sum(EXTPRICE * (1-DIS) * (1+TAX))`. This module provides the minimal
//! arithmetic AST those definitions (and the query layer's select lists)
//! need: column references, literals, `+`, `-`, `*`.

use std::fmt;

use sma_types::colblock::validity_bit;
use sma_types::{ColumnArray, ColumnarBucket, DataType, Decimal, Schema, Value};

/// A scalar expression evaluated against one tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// The value of the column at this index.
    Column(usize),
    /// A constant.
    Literal(Value),
    /// Numeric addition (or date + int days).
    Add(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Numeric subtraction (or date - int days).
    Sub(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Numeric multiplication.
    Mul(Box<ScalarExpr>, Box<ScalarExpr>),
}

/// Error produced by expression evaluation or type checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExprError(pub String);

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expression error: {}", self.0)
    }
}

impl std::error::Error for ExprError {}

/// Shorthand for a column reference.
pub fn col(idx: usize) -> ScalarExpr {
    ScalarExpr::Column(idx)
}

/// Shorthand for a literal.
pub fn lit(v: impl Into<Value>) -> ScalarExpr {
    ScalarExpr::Literal(v.into())
}

/// Shorthand for a decimal literal from a string like `"1.00"`.
pub fn dec_lit(s: &str) -> ScalarExpr {
    ScalarExpr::Literal(Value::Decimal(
        // sma-lint: allow(P2-expect) -- DSL constructor fed compile-time literal strings; a typo here is a programming error every test run catches
        Decimal::parse(s).expect("valid decimal literal"),
    ))
}

#[allow(clippy::should_implement_trait)] // builder DSL: `col(a).add(col(b))`
impl ScalarExpr {
    /// `self + rhs`.
    #[must_use]
    pub fn add(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Add(Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    #[must_use]
    pub fn sub(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Sub(Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    #[must_use]
    pub fn mul(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Mul(Box::new(self), Box::new(rhs))
    }

    /// Evaluates against `tuple`. Any `Null` operand yields `Null`
    /// (SQL semantics).
    pub fn eval(&self, tuple: &[Value]) -> Result<Value, ExprError> {
        match self {
            ScalarExpr::Column(i) => tuple
                .get(*i)
                .cloned()
                .ok_or_else(|| ExprError(format!("column {i} out of range"))),
            ScalarExpr::Literal(v) => Ok(v.clone()),
            ScalarExpr::Add(a, b) => binary(a.eval(tuple)?, b.eval(tuple)?, BinOp::Add),
            ScalarExpr::Sub(a, b) => binary(a.eval(tuple)?, b.eval(tuple)?, BinOp::Sub),
            ScalarExpr::Mul(a, b) => binary(a.eval(tuple)?, b.eval(tuple)?, BinOp::Mul),
        }
    }

    /// Evaluates against a zero-copy [`sma_types::RowView`], with the
    /// same semantics as [`ScalarExpr::eval`]. Heap-allocates only when a
    /// `Str` column or literal flows through the tree — never for the
    /// numeric expressions aggregation uses.
    pub fn eval_view(&self, row: &sma_types::RowView<'_>) -> Result<Value, ExprError> {
        match self {
            ScalarExpr::Column(i) => {
                if *i >= row.columns() {
                    return Err(ExprError(format!("column {i} out of range")));
                }
                row.get(*i)
                    .map_err(|e| ExprError(format!("column {i}: {e}")))
            }
            ScalarExpr::Literal(v) => Ok(v.clone()),
            ScalarExpr::Add(a, b) => binary(a.eval_view(row)?, b.eval_view(row)?, BinOp::Add),
            ScalarExpr::Sub(a, b) => binary(a.eval_view(row)?, b.eval_view(row)?, BinOp::Sub),
            ScalarExpr::Mul(a, b) => binary(a.eval_view(row)?, b.eval_view(row)?, BinOp::Mul),
        }
    }

    /// Evaluates with a column-fetch callback instead of a materialized
    /// tuple — the columnar kernels' entry point. Only referenced columns
    /// are fetched, so a scan over a columnar bucket never touches (or
    /// decodes) the others. Semantics are identical to
    /// [`ScalarExpr::eval`]; the callback reports out-of-range columns.
    pub fn eval_fetch(
        &self,
        fetch: &mut dyn FnMut(usize) -> Result<Value, ExprError>,
    ) -> Result<Value, ExprError> {
        match self {
            ScalarExpr::Column(i) => fetch(*i),
            ScalarExpr::Literal(v) => Ok(v.clone()),
            ScalarExpr::Add(a, b) => {
                let x = a.eval_fetch(fetch)?;
                let y = b.eval_fetch(fetch)?;
                binary(x, y, BinOp::Add)
            }
            ScalarExpr::Sub(a, b) => {
                let x = a.eval_fetch(fetch)?;
                let y = b.eval_fetch(fetch)?;
                binary(x, y, BinOp::Sub)
            }
            ScalarExpr::Mul(a, b) => {
                let x = a.eval_fetch(fetch)?;
                let y = b.eval_fetch(fetch)?;
                binary(x, y, BinOp::Mul)
            }
        }
    }

    /// Compiles a pure-`Decimal` tree into a cents program over `block`'s
    /// column arrays, or `None` if any node is not `Decimal`-typed (a
    /// non-`Decimal` column or literal anywhere). The program evaluates
    /// closure-free on raw `i64` cents with exactly the arithmetic
    /// [`ScalarExpr::eval`] uses (`+`/`-` are plain cents addition,
    /// `*` is [`Decimal::mul_round`]), so the batch aggregation kernels
    /// can run it per selected row without boxing a [`Value`].
    pub fn compile_decimal<'a>(&self, block: &'a ColumnarBucket) -> Option<DecProgram<'a>> {
        match self {
            ScalarExpr::Column(i) => match block.col(*i)? {
                ColumnArray::Decimal { valid, data } => Some(DecProgram::Col { valid, data }),
                _ => None,
            },
            ScalarExpr::Literal(Value::Decimal(d)) => Some(DecProgram::Lit(Some(d.cents()))),
            ScalarExpr::Literal(Value::Null) => Some(DecProgram::Lit(None)),
            ScalarExpr::Literal(_) => None,
            ScalarExpr::Add(a, b) => Some(DecProgram::Add(
                Box::new(a.compile_decimal(block)?),
                Box::new(b.compile_decimal(block)?),
            )),
            ScalarExpr::Sub(a, b) => Some(DecProgram::Sub(
                Box::new(a.compile_decimal(block)?),
                Box::new(b.compile_decimal(block)?),
            )),
            ScalarExpr::Mul(a, b) => Some(DecProgram::Mul(
                Box::new(a.compile_decimal(block)?),
                Box::new(b.compile_decimal(block)?),
            )),
        }
    }

    /// The `Int` twin of [`ScalarExpr::compile_decimal`]: a pure-`Int`
    /// tree over `block`'s arrays, with the row path's checked arithmetic
    /// (overflow is the same [`ExprError`] [`ScalarExpr::eval`] reports).
    pub fn compile_int<'a>(&self, block: &'a ColumnarBucket) -> Option<IntProgram<'a>> {
        match self {
            ScalarExpr::Column(i) => match block.col(*i)? {
                ColumnArray::Int { valid, data } => Some(IntProgram::Col { valid, data }),
                _ => None,
            },
            ScalarExpr::Literal(Value::Int(n)) => Some(IntProgram::Lit(Some(*n))),
            ScalarExpr::Literal(Value::Null) => Some(IntProgram::Lit(None)),
            ScalarExpr::Literal(_) => None,
            ScalarExpr::Add(a, b) => Some(IntProgram::Add(
                Box::new(a.compile_int(block)?),
                Box::new(b.compile_int(block)?),
            )),
            ScalarExpr::Sub(a, b) => Some(IntProgram::Sub(
                Box::new(a.compile_int(block)?),
                Box::new(b.compile_int(block)?),
            )),
            ScalarExpr::Mul(a, b) => Some(IntProgram::Mul(
                Box::new(a.compile_int(block)?),
                Box::new(b.compile_int(block)?),
            )),
        }
    }

    /// All column indexes referenced, ascending and deduplicated.
    pub fn referenced_columns(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.collect_columns(&mut cols);
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            ScalarExpr::Column(i) => out.push(*i),
            ScalarExpr::Literal(_) => {}
            ScalarExpr::Add(a, b) | ScalarExpr::Sub(a, b) | ScalarExpr::Mul(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
        }
    }

    /// Static result type under `schema`, or an error for ill-typed trees.
    pub fn result_type(&self, schema: &Schema) -> Result<DataType, ExprError> {
        match self {
            ScalarExpr::Column(i) => {
                if *i >= schema.len() {
                    return Err(ExprError(format!("column {i} out of range")));
                }
                Ok(schema.column(*i).ty)
            }
            ScalarExpr::Literal(v) => v
                .data_type()
                .ok_or_else(|| ExprError("literal NULL has no type".into())),
            ScalarExpr::Add(a, b) | ScalarExpr::Sub(a, b) => {
                let (ta, tb) = (a.result_type(schema)?, b.result_type(schema)?);
                match (ta, tb) {
                    (DataType::Int, DataType::Int) => Ok(DataType::Int),
                    (DataType::Decimal, DataType::Decimal) => Ok(DataType::Decimal),
                    (DataType::Date, DataType::Int) => Ok(DataType::Date),
                    _ => Err(ExprError(format!("cannot add/sub {ta} and {tb}"))),
                }
            }
            ScalarExpr::Mul(a, b) => {
                let (ta, tb) = (a.result_type(schema)?, b.result_type(schema)?);
                match (ta, tb) {
                    (DataType::Int, DataType::Int) => Ok(DataType::Int),
                    (DataType::Decimal, DataType::Decimal) => Ok(DataType::Decimal),
                    _ => Err(ExprError(format!("cannot multiply {ta} and {tb}"))),
                }
            }
        }
    }
}

/// A `Decimal`-typed expression compiled against one columnar bucket:
/// column references hold the array's validity bitmap and cents slices
/// directly, so per-row evaluation is a closure-free tree walk over raw
/// `i64`s. `None` results are `Null` (a null column slot or the `NULL`
/// literal), propagated exactly as [`ScalarExpr::eval`] propagates them.
#[derive(Debug)]
pub enum DecProgram<'a> {
    /// A `Decimal` column's validity bitmap and cents array.
    Col {
        /// Validity bitmap (bit set = non-null).
        valid: &'a [u8],
        /// Scaled cents; null slots hold `0`.
        data: &'a [i64],
    },
    /// A constant, in cents (`None` = the `NULL` literal).
    Lit(Option<i64>),
    /// Cents addition.
    Add(Box<DecProgram<'a>>, Box<DecProgram<'a>>),
    /// Cents subtraction.
    Sub(Box<DecProgram<'a>>, Box<DecProgram<'a>>),
    /// Half-away-from-zero rounding product ([`Decimal::mul_round`]).
    Mul(Box<DecProgram<'a>>, Box<DecProgram<'a>>),
}

impl DecProgram<'_> {
    /// The expression's cents at `row`, `None` for `Null`. Arithmetic is
    /// routed through [`Decimal`] so results are bit-identical to the
    /// `Value`-level row path.
    pub fn eval_cents(&self, row: usize) -> Option<i64> {
        match self {
            DecProgram::Col { valid, data } => {
                if validity_bit(valid, row) {
                    data.get(row).copied()
                } else {
                    None
                }
            }
            DecProgram::Lit(v) => *v,
            DecProgram::Add(a, b) => {
                let (x, y) = (a.eval_cents(row)?, b.eval_cents(row)?);
                Some((Decimal::from_cents(x) + Decimal::from_cents(y)).cents())
            }
            DecProgram::Sub(a, b) => {
                let (x, y) = (a.eval_cents(row)?, b.eval_cents(row)?);
                Some((Decimal::from_cents(x) - Decimal::from_cents(y)).cents())
            }
            DecProgram::Mul(a, b) => {
                let (x, y) = (a.eval_cents(row)?, b.eval_cents(row)?);
                Some(
                    Decimal::from_cents(x)
                        .mul_round(Decimal::from_cents(y))
                        .cents(),
                )
            }
        }
    }
}

/// The `Int` twin of [`DecProgram`]: checked arithmetic, with overflow
/// reported as the same [`ExprError`] the row path produces.
#[derive(Debug)]
pub enum IntProgram<'a> {
    /// An `Int` column's validity bitmap and value array.
    Col {
        /// Validity bitmap (bit set = non-null).
        valid: &'a [u8],
        /// Raw values; null slots hold `0`.
        data: &'a [i64],
    },
    /// A constant (`None` = the `NULL` literal).
    Lit(Option<i64>),
    /// Checked addition.
    Add(Box<IntProgram<'a>>, Box<IntProgram<'a>>),
    /// Checked subtraction.
    Sub(Box<IntProgram<'a>>, Box<IntProgram<'a>>),
    /// Checked multiplication.
    Mul(Box<IntProgram<'a>>, Box<IntProgram<'a>>),
}

impl IntProgram<'_> {
    /// The expression's value at `row`, `Ok(None)` for `Null`.
    pub fn eval(&self, row: usize) -> Result<Option<i64>, ExprError> {
        match self {
            IntProgram::Col { valid, data } => Ok(if validity_bit(valid, row) {
                data.get(row).copied()
            } else {
                None
            }),
            IntProgram::Lit(v) => Ok(*v),
            IntProgram::Add(a, b) => int_binary(a.eval(row)?, b.eval(row)?, "+", i64::checked_add),
            IntProgram::Sub(a, b) => int_binary(a.eval(row)?, b.eval(row)?, "-", i64::checked_sub),
            IntProgram::Mul(a, b) => int_binary(a.eval(row)?, b.eval(row)?, "*", i64::checked_mul),
        }
    }
}

fn int_binary(
    a: Option<i64>,
    b: Option<i64>,
    sym: &str,
    op: impl Fn(i64, i64) -> Option<i64>,
) -> Result<Option<i64>, ExprError> {
    match (a, b) {
        (Some(x), Some(y)) => op(x, y)
            .map(Some)
            .ok_or_else(|| ExprError(format!("integer overflow in {sym}"))),
        _ => Ok(None),
    }
}

enum BinOp {
    Add,
    Sub,
    Mul,
}

fn binary(a: Value, b: Value, op: BinOp) -> Result<Value, ExprError> {
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    match (op, &a, &b) {
        (BinOp::Add, Value::Int(x), Value::Int(y)) => x
            .checked_add(*y)
            .map(Value::Int)
            .ok_or_else(|| ExprError("integer overflow in +".into())),
        (BinOp::Sub, Value::Int(x), Value::Int(y)) => x
            .checked_sub(*y)
            .map(Value::Int)
            .ok_or_else(|| ExprError("integer overflow in -".into())),
        (BinOp::Mul, Value::Int(x), Value::Int(y)) => x
            .checked_mul(*y)
            .map(Value::Int)
            .ok_or_else(|| ExprError("integer overflow in *".into())),
        (BinOp::Add, Value::Decimal(x), Value::Decimal(y)) => Ok(Value::Decimal(*x + *y)),
        (BinOp::Sub, Value::Decimal(x), Value::Decimal(y)) => Ok(Value::Decimal(*x - *y)),
        (BinOp::Mul, Value::Decimal(x), Value::Decimal(y)) => Ok(Value::Decimal(x.mul_round(*y))),
        (BinOp::Add, Value::Date(d), Value::Int(n)) => Ok(Value::Date(d.add_days(*n as i32))),
        (BinOp::Sub, Value::Date(d), Value::Int(n)) => Ok(Value::Date(d.add_days(-*n as i32))),
        _ => Err(ExprError(format!("type mismatch: {a} vs {b}"))),
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Column(i) => write!(f, "${i}"),
            ScalarExpr::Literal(v) => write!(f, "{v}"),
            ScalarExpr::Add(a, b) => write!(f, "({a} + {b})"),
            ScalarExpr::Sub(a, b) => write!(f, "({a} - {b})"),
            ScalarExpr::Mul(a, b) => write!(f, "({a} * {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sma_types::{Column, Date};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("N", DataType::Int),
            Column::new("P", DataType::Decimal),
            Column::new("D", DataType::Date),
        ])
    }

    fn tuple() -> Vec<Value> {
        vec![
            Value::Int(10),
            Value::Decimal(Decimal::parse("2.50").unwrap()),
            Value::Date(Date::parse("1997-04-30").unwrap()),
        ]
    }

    #[test]
    fn column_and_literal() {
        assert_eq!(col(0).eval(&tuple()).unwrap(), Value::Int(10));
        assert_eq!(lit(5i64).eval(&tuple()).unwrap(), Value::Int(5));
        assert!(col(9).eval(&tuple()).is_err());
    }

    #[test]
    fn arithmetic() {
        let t = tuple();
        assert_eq!(col(0).add(lit(5i64)).eval(&t).unwrap(), Value::Int(15));
        assert_eq!(col(0).sub(lit(3i64)).eval(&t).unwrap(), Value::Int(7));
        assert_eq!(col(0).mul(col(0)).eval(&t).unwrap(), Value::Int(100));
        // Paper's Query 1 expression shape: price * (1 - disc).
        let disc = dec_lit("0.10");
        let e = col(1).mul(dec_lit("1.00").sub(disc));
        assert_eq!(
            e.eval(&t).unwrap(),
            Value::Decimal(Decimal::parse("2.25").unwrap())
        );
    }

    #[test]
    fn date_arithmetic() {
        let t = tuple();
        let e = col(2).sub(lit(90i64));
        assert_eq!(
            e.eval(&t).unwrap(),
            Value::Date(Date::parse("1997-01-30").unwrap())
        );
    }

    #[test]
    fn null_propagates() {
        let t = vec![Value::Null, Value::Null, Value::Null];
        assert_eq!(col(0).add(lit(1i64)).eval(&t).unwrap(), Value::Null);
        assert_eq!(col(1).mul(dec_lit("2.00")).eval(&t).unwrap(), Value::Null);
    }

    #[test]
    fn type_mismatch_errors() {
        let t = tuple();
        assert!(col(0).add(col(1)).eval(&t).is_err());
        assert!(col(2).mul(lit(2i64)).eval(&t).is_err());
    }

    #[test]
    fn overflow_is_an_error() {
        let t = vec![Value::Int(i64::MAX)];
        assert!(col(0).add(lit(1i64)).eval(&t).is_err());
        assert!(col(0).mul(lit(2i64)).eval(&t).is_err());
    }

    #[test]
    fn result_types() {
        let s = schema();
        assert_eq!(col(0).result_type(&s).unwrap(), DataType::Int);
        assert_eq!(
            col(1).mul(dec_lit("1.00")).result_type(&s).unwrap(),
            DataType::Decimal
        );
        assert_eq!(
            col(2).sub(lit(90i64)).result_type(&s).unwrap(),
            DataType::Date
        );
        assert!(col(0).add(col(1)).result_type(&s).is_err());
        assert!(col(7).result_type(&s).is_err());
        assert!(ScalarExpr::Literal(Value::Null).result_type(&s).is_err());
    }

    #[test]
    fn referenced_columns_deduped() {
        let e = col(2).sub(lit(1i64)).mul(col(0)).add(col(2).mul(col(0)));
        // (Mul of dates is ill-typed but reference collection is syntactic.)
        assert_eq!(e.referenced_columns(), vec![0, 2]);
    }

    #[test]
    fn display_is_readable() {
        let e = col(1).mul(dec_lit("1.00").sub(col(0)));
        assert_eq!(e.to_string(), "($1 * (1.00 - $0))");
    }
}
