//! Projection indexes — the structure SMAs generalize.
//!
//! §1: "SMAs can be seen as a generalization of projection indexes. In a
//! projection index on a certain attribute, for all tuples in the relation
//! to index, the attribute value is stored sequentially in a file. SMAs
//! generalize this approach in that an aggregate value is stored for a set
//! of tuples instead of mere projection values." And §2.2: "for the case
//! where a bucket contains exactly a single tuple, a SMA degenerates to a
//! projection index."
//!
//! This module provides the [`ProjectionIndex`] (\[16\], O'Neil & Quass) as
//! a first-class structure: the indexed expression's value for *every*
//! tuple, in physical order, grouped by bucket so positions map back to
//! tuples. It supports exact selection evaluation without touching the
//! relation, at a per-tuple (not per-bucket) storage cost — the trade SMAs
//! improve on.

use sma_storage::{BucketNo, Table, PAGE_SIZE};
use sma_types::{DataType, Value};

use crate::def::DefError;
use crate::expr::ScalarExpr;
use crate::grade::{BucketPred, CmpOp};
use crate::sma::SmaError;

/// A projection index: one stored value per tuple, in physical order.
#[derive(Debug, Clone)]
pub struct ProjectionIndex {
    expr: ScalarExpr,
    entry_bytes: usize,
    /// Per bucket: the projected values of its live tuples, in slot order.
    buckets: Vec<Vec<Value>>,
}

impl ProjectionIndex {
    /// Builds the index for `expr` by one sequential scan of `table`.
    pub fn build(table: &Table, expr: ScalarExpr) -> Result<ProjectionIndex, SmaError> {
        let ty = expr
            .result_type(table.schema())
            .map_err(|e| SmaError::Def(DefError(e.to_string())))?;
        let entry_bytes = match ty {
            DataType::Date => 4,
            DataType::Char => 1,
            DataType::Str => 16, // the paper's structures index fixed-width values
            _ => 8,
        };
        let mut buckets = Vec::with_capacity(table.bucket_count() as usize);
        let mut rows = Vec::new();
        for b in 0..table.bucket_count() {
            rows.clear();
            for page in table.bucket_range(b) {
                table.scan_page_into(page, &mut rows)?;
            }
            let mut vals = Vec::with_capacity(rows.len());
            for (_, t) in &rows {
                vals.push(expr.eval(t)?);
            }
            buckets.push(vals);
            rows.clear();
        }
        Ok(ProjectionIndex {
            expr,
            entry_bytes,
            buckets,
        })
    }

    /// The indexed expression.
    pub fn expr(&self) -> &ScalarExpr {
        &self.expr
    }

    /// Total entries (= live tuples at build time).
    pub fn len(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// True iff the index has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physical size in bytes — `len × entry_bytes`, the per-tuple cost
    /// the paper contrasts with SMAs' per-bucket cost.
    pub fn size_bytes(&self) -> usize {
        self.len() * self.entry_bytes
    }

    /// Physical size in 4 KiB pages.
    pub fn size_pages(&self) -> usize {
        self.size_bytes().div_ceil(PAGE_SIZE)
    }

    /// The projected values of `bucket`'s tuples.
    pub fn bucket_values(&self, b: BucketNo) -> &[Value] {
        &self.buckets[b as usize]
    }

    /// Evaluates `value op c` over the whole index, returning per bucket
    /// the ordinals (within the bucket's live tuples) that satisfy it —
    /// exact selection without touching the relation.
    pub fn select(&self, op: CmpOp, c: &Value) -> Vec<(BucketNo, Vec<usize>)> {
        let mut out = Vec::new();
        for (b, vals) in self.buckets.iter().enumerate() {
            let hits: Vec<usize> = vals
                .iter()
                .enumerate()
                .filter(|(_, v)| op.eval(v, c))
                .map(|(i, _)| i)
                .collect();
            if !hits.is_empty() {
                out.push((b as BucketNo, hits));
            }
        }
        out
    }

    /// Counts tuples satisfying `op c` — a count query answered entirely
    /// from the index.
    pub fn count(&self, op: CmpOp, c: &Value) -> usize {
        self.buckets
            .iter()
            .flatten()
            .filter(|v| op.eval(v, c))
            .count()
    }

    /// Degenerates this index into the SMA view of the same data: treats
    /// each *tuple* as its own bucket and yields its min=max=value bounds.
    /// This is the §2.2 degeneration made literal, used by tests to show
    /// the structures coincide at bucket size one.
    pub fn as_singleton_bounds(&self) -> Vec<Option<(Value, Value)>> {
        self.buckets
            .iter()
            .flatten()
            .map(|v| {
                if v.is_null() {
                    None
                } else {
                    Some((v.clone(), v.clone()))
                }
            })
            .collect()
    }

    /// Evaluates an arbitrary single-column predicate over the index,
    /// provided every atom references the indexed expression's column(s)
    /// only — returns `None` when the predicate involves other columns.
    pub fn eval_pred_counts(&self, pred: &BucketPred) -> Option<usize> {
        let idx_cols = self.expr.referenced_columns();
        if pred
            .referenced_columns()
            .iter()
            .any(|c| !idx_cols.contains(c))
        {
            return None;
        }
        // Only valid when the expression IS the bare column (otherwise the
        // predicate's column values are not what we stored).
        let ScalarExpr::Column(col) = self.expr else {
            return None;
        };
        let mut n = 0;
        for v in self.buckets.iter().flatten() {
            // Build a sparse tuple exposing only the indexed column.
            let mut t = vec![Value::Null; col + 1];
            t[col] = v.clone();
            if pred.eval_tuple(&t) {
                n += 1;
            }
        }
        Some(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::col;
    use sma_storage::Table;
    use sma_types::{Column, Schema};
    use std::sync::Arc;

    fn table(values: &[i64]) -> Table {
        let schema = Arc::new(Schema::new(vec![
            Column::new("K", DataType::Int),
            Column::new("PAD", DataType::Str),
        ]));
        let mut t = Table::in_memory("t", schema, 1);
        let pad = "p".repeat(1800); // 2 per page
        for &v in values {
            t.append(&vec![Value::Int(v), Value::Str(pad.clone())])
                .unwrap();
        }
        t
    }

    #[test]
    fn stores_every_tuple_in_order() {
        let t = table(&[5, 3, 8, 1]);
        let idx = ProjectionIndex::build(&t, col(0)).unwrap();
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.bucket_values(0), &[Value::Int(5), Value::Int(3)]);
        assert_eq!(idx.bucket_values(1), &[Value::Int(8), Value::Int(1)]);
    }

    #[test]
    fn select_and_count_are_exact() {
        let t = table(&[5, 3, 8, 1, 9, 2]);
        let idx = ProjectionIndex::build(&t, col(0)).unwrap();
        assert_eq!(idx.count(CmpOp::Le, &Value::Int(3)), 3);
        let sel = idx.select(CmpOp::Le, &Value::Int(3));
        assert_eq!(
            sel,
            vec![(0, vec![1]), (1, vec![1]), (2, vec![1])],
            "second tuple of every bucket"
        );
        assert_eq!(idx.count(CmpOp::Gt, &Value::Int(100)), 0);
        assert!(idx.select(CmpOp::Gt, &Value::Int(100)).is_empty());
    }

    #[test]
    fn degenerates_to_singleton_smas() {
        // §2.2: a SMA with one-tuple buckets IS a projection index. The
        // singleton bounds say min=max=value for every tuple.
        let t = table(&[7, 7, 2]);
        let idx = ProjectionIndex::build(&t, col(0)).unwrap();
        let bounds = idx.as_singleton_bounds();
        assert_eq!(bounds.len(), 3);
        assert_eq!(bounds[0], Some((Value::Int(7), Value::Int(7))));
        assert_eq!(bounds[2], Some((Value::Int(2), Value::Int(2))));
    }

    #[test]
    fn per_tuple_vs_per_bucket_cost() {
        // The storage trade the paper describes: a projection index costs
        // one entry per tuple; an ungrouped SMA costs one per bucket.
        use crate::agg::AggFn;
        use crate::def::SmaDefinition;
        use crate::sma::Sma;
        let t = table(&(0..200).collect::<Vec<_>>());
        let idx = ProjectionIndex::build(&t, col(0)).unwrap();
        let sma = Sma::build(&t, SmaDefinition::new("m", AggFn::Min, col(0))).unwrap();
        assert_eq!(idx.len(), 200);
        assert_eq!(sma.n_buckets(), 100);
        assert!(idx.size_bytes() > sma.total_bytes());
    }

    #[test]
    fn expression_indexes_work() {
        let t = table(&[1, 2, 3, 4]);
        let idx = ProjectionIndex::build(&t, col(0).mul(crate::expr::lit(10i64))).unwrap();
        assert_eq!(idx.count(CmpOp::Ge, &Value::Int(30)), 2);
        // Predicate evaluation over non-bare-column expressions is refused
        // (the stored values are not the column's).
        assert_eq!(
            idx.eval_pred_counts(&BucketPred::cmp(0, CmpOp::Ge, 3i64)),
            None
        );
    }

    #[test]
    fn eval_pred_counts_on_bare_column() {
        let t = table(&[1, 5, 9, 13]);
        let idx = ProjectionIndex::build(&t, col(0)).unwrap();
        let pred = BucketPred::Or(vec![
            BucketPred::cmp(0, CmpOp::Lt, 5i64),
            BucketPred::cmp(0, CmpOp::Gt, 9i64),
        ]);
        assert_eq!(idx.eval_pred_counts(&pred), Some(2));
        // Predicates over other columns are refused.
        assert_eq!(
            idx.eval_pred_counts(&BucketPred::cmp(1, CmpOp::Lt, 5i64)),
            None
        );
    }

    #[test]
    fn nulls_fail_predicates_and_bounds() {
        let schema = Arc::new(Schema::new(vec![Column::new("K", DataType::Int)]));
        let mut t = Table::in_memory("t", schema, 1);
        t.append(&vec![Value::Int(1)]).unwrap();
        t.append(&vec![Value::Null]).unwrap();
        let idx = ProjectionIndex::build(&t, col(0)).unwrap();
        assert_eq!(idx.count(CmpOp::Le, &Value::Int(100)), 1);
        assert_eq!(idx.as_singleton_bounds()[1], None);
    }

    #[test]
    fn ill_typed_expression_rejected() {
        let t = table(&[1]);
        assert!(ProjectionIndex::build(&t, col(0).add(col(1))).is_err());
    }
}
