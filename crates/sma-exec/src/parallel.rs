//! Bucket-parallel execution support.
//!
//! The paper's operators iterate `forall bucket in buckets` — an
//! embarrassingly parallel loop, because SMA grading is pure in-memory
//! arithmetic and every bucket's pages are disjoint. This module provides
//! the two small pieces the operators share:
//!
//! * [`Parallelism`] — the knob saying how many worker threads to use
//!   (default: every available core), and
//! * [`morsels`] — a contiguous partition of `0..n_buckets` so each worker
//!   scans a run of adjacent buckets (preserving sequential page access
//!   within a worker) and partial results can be merged back **in bucket
//!   order**, keeping parallel output byte-identical to the serial path.

use std::num::NonZeroUsize;
use std::ops::Range;

/// Degree of intra-query parallelism for bucket loops.
///
/// `Parallelism::default()` is the number of available cores; use
/// [`Parallelism::serial`] to force the single-threaded path (useful for
/// deterministic I/O traces in tests and benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism(NonZeroUsize);

impl Parallelism {
    /// Exactly one thread: the serial paper algorithm, unchanged.
    pub fn serial() -> Parallelism {
        Parallelism(NonZeroUsize::MIN)
    }

    /// `threads` worker threads (clamped up to at least 1).
    pub fn new(threads: usize) -> Parallelism {
        Parallelism(NonZeroUsize::new(threads.max(1)).unwrap_or(NonZeroUsize::MIN))
    }

    /// One thread per available core (falls back to 1 when the runtime
    /// cannot tell).
    pub fn available() -> Parallelism {
        Parallelism(std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN))
    }

    /// Number of worker threads.
    pub fn get(self) -> usize {
        self.0.get()
    }
}

impl Default for Parallelism {
    fn default() -> Parallelism {
        Parallelism::available()
    }
}

/// Splits `0..n_buckets` into at most `threads` contiguous, non-empty
/// morsels covering the whole range in order.
///
/// Contiguity matters twice: each worker reads adjacent pages (the
/// sequential-I/O pattern the cost model rewards), and concatenating the
/// morsel results in order reproduces the serial bucket order exactly.
pub fn morsels(n_buckets: u32, threads: usize) -> Vec<Range<u32>> {
    if n_buckets == 0 {
        return Vec::new();
    }
    let threads = (threads.max(1) as u32).min(n_buckets);
    let chunk = n_buckets.div_ceil(threads);
    (0..threads)
        .map(|t| (t * chunk).min(n_buckets)..((t + 1) * chunk).min(n_buckets))
        .filter(|r| !r.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsels_cover_the_range_in_order() {
        for n in [0u32, 1, 2, 3, 7, 30, 31, 1000] {
            for threads in [1usize, 2, 3, 4, 8, 64] {
                let parts = morsels(n, threads);
                let flat: Vec<u32> = parts.iter().cloned().flatten().collect();
                let expect: Vec<u32> = (0..n).collect();
                assert_eq!(flat, expect, "n={n} threads={threads}");
                assert!(parts.len() <= threads.max(1), "n={n} threads={threads}");
                assert!(parts.iter().all(|r| !r.is_empty()));
            }
        }
    }

    #[test]
    fn zero_threads_behaves_like_one() {
        assert_eq!(morsels(5, 0), vec![0..5]);
    }

    #[test]
    fn parallelism_knob() {
        assert_eq!(Parallelism::serial().get(), 1);
        assert_eq!(Parallelism::new(0).get(), 1);
        assert_eq!(Parallelism::new(6).get(), 6);
        assert!(Parallelism::available().get() >= 1);
        assert_eq!(Parallelism::default(), Parallelism::available());
    }
}
