//! End-to-end TPC-D Query 3 execution (shipping priority).
//!
//! The plan SMA-grades *both* date predicates — `O_ORDERDATE < date` over
//! ORDERS and `L_SHIPDATE > date` over LINEITEM — so on time-clustered
//! data each side reads only a fraction of its buckets, then hash-joins
//! through CUSTOMER's segment filter and finishes with the algebra's
//! `Sort` + `Limit` (`ORDER BY REVENUE DESC, O_ORDERDATE` top 10).

use std::collections::{BTreeMap, BTreeSet};

use sma_core::{dec_lit, BucketPred, CmpOp, SmaSet};
use sma_storage::Table;
use sma_types::{Date, Decimal, Value};

use crate::op::{ExecError, PhysicalOp};
use crate::scan::{ScanCounters, SmaScan};

/// Query 3 substitution parameters (mirrors `sma_tpcd::Q3Params`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Q3Params {
    /// The market segment.
    pub segment: String,
    /// The pivot date.
    pub date: Date,
    /// Rows to return (TPC-D: 10).
    pub limit: usize,
}

impl Default for Q3Params {
    fn default() -> Q3Params {
        Q3Params {
            segment: "BUILDING".to_string(),
            // sma-lint: allow(P2-expect) -- compile-time constant date; cannot fail
            date: Date::from_ymd(1995, 3, 15).expect("valid constant"),
            limit: 10,
        }
    }
}

/// One output row: `(L_ORDERKEY, REVENUE, O_ORDERDATE, O_SHIPPRIORITY)`.
pub type Q3OutRow = (i64, Decimal, Date, i64);

/// The outcome of a Query 3 run.
#[derive(Debug)]
pub struct Q3Execution {
    /// Top rows by revenue desc, order date asc.
    pub rows: Vec<Q3OutRow>,
    /// Bucket counters of the ORDERS-side scan.
    pub orders_scan: ScanCounters,
    /// Bucket counters of the LINEITEM-side scan.
    pub lineitem_scan: ScanCounters,
    /// Wall-clock execution time.
    pub elapsed: std::time::Duration,
}

/// Runs Query 3. The SMA sets may be empty (naive full scans). A budget,
/// when given, is checked and charged on every page read across all
/// three relations.
pub fn run_query3(
    customer: &Table,
    orders: &Table,
    lineitem: &Table,
    orders_smas: &SmaSet,
    lineitem_smas: &SmaSet,
    p: &Q3Params,
    budget: Option<&sma_storage::QueryBudget>,
) -> Result<Q3Execution, ExecError> {
    let need = |t: &Table, name: &str| -> Result<usize, ExecError> {
        t.schema()
            .index_of(name)
            .ok_or_else(|| ExecError::Plan(format!("missing column {name}")))
    };
    let c_custkey = need(customer, "C_CUSTKEY")?;
    let c_segment = need(customer, "C_MKTSEGMENT")?;
    let o_orderkey = need(orders, "O_ORDERKEY")?;
    let o_custkey = need(orders, "O_CUSTKEY")?;
    let o_orderdate = need(orders, "O_ORDERDATE")?;
    let o_shippriority = need(orders, "O_SHIPPRIORITY")?;
    let l_orderkey = need(lineitem, "L_ORDERKEY")?;
    let l_shipdate = need(lineitem, "L_SHIPDATE")?;
    let l_extendedprice = need(lineitem, "L_EXTENDEDPRICE")?;
    let l_discount = need(lineitem, "L_DISCOUNT")?;

    let started = sma_storage::Stopwatch::start();

    // Build side 1: segment customers (small relation, plain scan).
    let mut seg_customers: BTreeSet<i64> = BTreeSet::new();
    let mut rows = Vec::new();
    for page in 0..customer.page_count() {
        if let Some(b) = budget {
            b.check()?;
            b.charge(1)?;
        }
        rows.clear();
        customer.scan_page_into(page, &mut rows)?;
        for (_, t) in &rows {
            if t[c_segment].as_str() == Some(p.segment.as_str()) {
                if let Some(k) = t[c_custkey].as_int() {
                    seg_customers.insert(k);
                }
            }
        }
    }

    // Build side 2: open orders via SMA-graded date scan of ORDERS.
    let open_pred = BucketPred::cmp(o_orderdate, CmpOp::Lt, Value::Date(p.date));
    let mut o_scan = SmaScan::new(orders, open_pred, orders_smas);
    if let Some(b) = budget {
        o_scan = o_scan.with_budget(b);
    }
    let mut open_orders: BTreeMap<i64, (Date, i64)> = BTreeMap::new();
    o_scan.open()?;
    while let Some(t) = o_scan.next()? {
        let Some(custkey) = t[o_custkey].as_int() else {
            continue;
        };
        if !seg_customers.contains(&custkey) {
            continue;
        }
        let (Some(key), Some(date), Some(prio)) = (
            t[o_orderkey].as_int(),
            t[o_orderdate].as_date(),
            t[o_shippriority].as_int(),
        ) else {
            continue;
        };
        open_orders.insert(key, (date, prio));
    }
    o_scan.close();
    let orders_counters = o_scan.counters();

    // Probe side: SMA-graded shipdate scan of LINEITEM, accumulate revenue.
    let ship_pred = BucketPred::cmp(l_shipdate, CmpOp::Gt, Value::Date(p.date));
    let mut l_scan = SmaScan::new(lineitem, ship_pred, lineitem_smas);
    if let Some(b) = budget {
        l_scan = l_scan.with_budget(b);
    }
    let mut revenue: BTreeMap<i64, Decimal> = BTreeMap::new();
    l_scan.open()?;
    while let Some(t) = l_scan.next()? {
        let Some(key) = t[l_orderkey].as_int() else {
            continue;
        };
        if !open_orders.contains_key(&key) {
            continue;
        }
        let (Some(ext), Some(disc)) = (t[l_extendedprice].as_decimal(), t[l_discount].as_decimal())
        else {
            continue;
        };
        *revenue.entry(key).or_insert(Decimal::ZERO) += ext.mul_round(Decimal::ONE - disc);
    }
    l_scan.close();
    let lineitem_counters = l_scan.counters();

    // ORDER BY REVENUE DESC, O_ORDERDATE — via the algebra's Sort + Limit
    // over the joined groups.
    let joined: Vec<sma_types::Tuple> = revenue
        .into_iter()
        .map(|(key, rev)| {
            let (date, prio) = open_orders[&key];
            vec![
                Value::Int(key),
                Value::Decimal(rev),
                Value::Date(date),
                Value::Int(prio),
            ]
        })
        .collect();
    let source = MaterializedRows::new(joined);
    let sort = crate::sort::Sort::new(
        Box::new(source),
        vec![
            (1, crate::sort::SortOrder::Desc),
            (2, crate::sort::SortOrder::Asc),
            (0, crate::sort::SortOrder::Asc),
        ],
    );
    let mut limit = crate::sort::Limit::new(Box::new(sort), p.limit);
    let out = crate::op::collect(&mut limit)?;
    let rows = out
        .into_iter()
        .map(|r| {
            match (
                r[0].as_int(),
                r[1].as_decimal(),
                r[2].as_date(),
                r[3].as_int(),
            ) {
                (Some(key), Some(rev), Some(date), Some(prio)) => Ok((key, rev, date, prio)),
                _ => Err(ExecError::Plan(
                    "query 3 output row has unexpected shape".into(),
                )),
            }
        })
        .collect::<Result<Vec<_>, ExecError>>()?;

    Ok(Q3Execution {
        rows,
        orders_scan: orders_counters,
        lineitem_scan: lineitem_counters,
        elapsed: started.elapsed(),
    })
}

/// The standard SMA definitions for Query 3's two date predicates plus
/// the revenue expression (for future aggregate use).
pub fn query3_sma_definitions(
    orders: &Table,
    lineitem: &Table,
) -> Result<(Vec<sma_core::SmaDefinition>, Vec<sma_core::SmaDefinition>), ExecError> {
    use sma_core::{col, AggFn, SmaDefinition};
    let need = |t: &Table, name: &str| -> Result<usize, ExecError> {
        t.schema()
            .index_of(name)
            .ok_or_else(|| ExecError::Plan(format!("missing column {name}")))
    };
    let o_orderdate = need(orders, "O_ORDERDATE")?;
    let l_shipdate = need(lineitem, "L_SHIPDATE")?;
    let l_ext = need(lineitem, "L_EXTENDEDPRICE")?;
    let l_disc = need(lineitem, "L_DISCOUNT")?;
    Ok((
        vec![
            SmaDefinition::new("q3_min_od", AggFn::Min, col(o_orderdate)),
            SmaDefinition::new("q3_max_od", AggFn::Max, col(o_orderdate)),
        ],
        vec![
            SmaDefinition::new("q3_min_sd", AggFn::Min, col(l_shipdate)),
            SmaDefinition::new("q3_max_sd", AggFn::Max, col(l_shipdate)),
            SmaDefinition::new(
                "q3_rev",
                AggFn::Sum,
                col(l_ext).mul(dec_lit("1.00").sub(col(l_disc))),
            ),
        ],
    ))
}

/// A leaf operator over pre-materialized rows (used to feed Sort/Limit).
struct MaterializedRows {
    rows: Vec<sma_types::Tuple>,
    pos: usize,
}

impl MaterializedRows {
    fn new(rows: Vec<sma_types::Tuple>) -> MaterializedRows {
        MaterializedRows { rows, pos: 0 }
    }
}

impl PhysicalOp for MaterializedRows {
    fn open(&mut self) -> Result<(), ExecError> {
        self.pos = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<sma_types::Tuple>, ExecError> {
        if self.pos < self.rows.len() {
            let t = self.rows[self.pos].clone();
            self.pos += 1;
            Ok(Some(t))
        } else {
            Ok(None)
        }
    }

    fn close(&mut self) {}

    fn describe(&self) -> String {
        format!("Materialized({} rows)", self.rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sma_storage::MemStore;
    use sma_tpcd::{
        generate, generate_customers, load_customers, load_lineitem, load_orders, q3_reference,
        Clustering, GenConfig,
    };

    struct Setup {
        customer: Table,
        orders: Table,
        lineitem: Table,
        orders_smas: SmaSet,
        lineitem_smas: SmaSet,
        raw: (
            Vec<sma_tpcd::Customer>,
            Vec<sma_tpcd::Order>,
            Vec<sma_tpcd::LineItem>,
        ),
    }

    fn setup(clustering: Clustering) -> Setup {
        let cfg = GenConfig {
            orders: 1500,
            ..GenConfig::tiny(clustering)
        };
        let (mut orders_rows, items) = generate(&cfg);
        orders_rows.sort_by_key(|o| o.orderdate); // TOC clustering
        let customers = generate_customers(cfg.orders / 10, cfg.seed);
        let customer = load_customers(&customers, 1, 1 << 14);
        let orders = load_orders(&orders_rows, 1, 1 << 14);
        let lineitem = load_lineitem(&items, Box::new(MemStore::new()), 1, 1 << 14);
        let (o_defs, l_defs) = query3_sma_definitions(&orders, &lineitem).unwrap();
        let orders_smas = SmaSet::build(&orders, o_defs).unwrap();
        let lineitem_smas = SmaSet::build(&lineitem, l_defs).unwrap();
        Setup {
            customer,
            orders,
            lineitem,
            orders_smas,
            lineitem_smas,
            raw: (customers, orders_rows, items),
        }
    }

    #[test]
    fn matches_the_oracle() {
        let s = setup(Clustering::SortedByShipdate);
        let p = Q3Params::default();
        let run = run_query3(
            &s.customer,
            &s.orders,
            &s.lineitem,
            &s.orders_smas,
            &s.lineitem_smas,
            &p,
            None,
        )
        .unwrap();
        let oracle = q3_reference(
            &s.raw.0,
            &s.raw.1,
            &s.raw.2,
            &sma_tpcd::Q3Params {
                segment: p.segment.clone(),
                date: p.date,
            },
            p.limit,
        );
        assert_eq!(run.rows.len(), oracle.len());
        for (got, want) in run.rows.iter().zip(&oracle) {
            assert_eq!(got.0, want.orderkey);
            assert_eq!(got.1, want.revenue);
            assert_eq!(got.2, want.orderdate);
            assert_eq!(got.3, want.shippriority);
        }
    }

    #[test]
    fn both_scans_skip_buckets_on_clustered_data() {
        let s = setup(Clustering::SortedByShipdate);
        let run = run_query3(
            &s.customer,
            &s.orders,
            &s.lineitem,
            &s.orders_smas,
            &s.lineitem_smas,
            &Q3Params::default(),
            None,
        )
        .unwrap();
        // O_ORDERDATE < 1995-03-15: roughly half of a 1992–1998 window —
        // the later half of ORDERS disqualifies.
        assert!(
            run.orders_scan.disqualified > 0,
            "orders: {:?}",
            run.orders_scan
        );
        // L_SHIPDATE > 1995-03-15: the earlier half of LINEITEM skips.
        assert!(
            run.lineitem_scan.disqualified > 0,
            "lineitem: {:?}",
            run.lineitem_scan
        );
        // And qualifying buckets dominate what's left (predicates are
        // one-sided ranges on sorted data).
        assert!(run.orders_scan.ambivalent <= 2);
        assert!(run.lineitem_scan.ambivalent <= 2);
    }

    #[test]
    fn naive_and_sma_plans_agree() {
        let s = setup(Clustering::Shuffled);
        let empty = SmaSet::new();
        let p = Q3Params::default();
        let fast = run_query3(
            &s.customer,
            &s.orders,
            &s.lineitem,
            &s.orders_smas,
            &s.lineitem_smas,
            &p,
            None,
        )
        .unwrap();
        let slow = run_query3(
            &s.customer,
            &s.orders,
            &s.lineitem,
            &empty,
            &empty,
            &p,
            None,
        )
        .unwrap();
        assert_eq!(fast.rows, slow.rows);
    }

    #[test]
    fn budget_cap_aborts_the_query() {
        let s = setup(Clustering::Uniform);
        let budget = sma_storage::QueryBudget::unbounded().with_page_cap(0);
        let err = run_query3(
            &s.customer,
            &s.orders,
            &s.lineitem,
            &s.orders_smas,
            &s.lineitem_smas,
            &Q3Params::default(),
            Some(&budget),
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::Budget(_)), "got {err:?}");
    }

    #[test]
    fn limit_is_respected() {
        let s = setup(Clustering::Uniform);
        let p = Q3Params {
            limit: 3,
            ..Q3Params::default()
        };
        let run = run_query3(
            &s.customer,
            &s.orders,
            &s.lineitem,
            &s.orders_smas,
            &s.lineitem_smas,
            &p,
            None,
        )
        .unwrap();
        assert!(run.rows.len() <= 3);
    }
}
