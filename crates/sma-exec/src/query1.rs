//! End-to-end TPC-D Query 1 execution — the paper's headline experiment.
//!
//! [`run_query1`] plans and runs Query 1 over any LINEITEM-shaped table,
//! with or without the Fig. 4 SMA set, and reports the answer rows plus
//! the I/O and timing observations the paper's §2.4 table records.

use std::time::Duration;

use sma_core::{col, dec_lit, BucketPred, CmpOp, SmaSet};
use sma_storage::{IoStats, Table};
use sma_types::{Date, Tuple, Value};

use crate::degrade::DegradationReport;
use crate::gaggr::AggSpec;
use crate::op::ExecError;
use crate::planner::{plan, AggregateQuery, PlanKind, PlannerConfig};

/// Configuration of a Query 1 run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Query1Config {
    /// `delta` in `DATE '1998-12-01' - INTERVAL delta DAY` (TPC-D draws it
    /// from `[60, 120]`; 90 is the validation value).
    pub delta: i32,
    /// Drop the buffer pool first (the paper's *cold* runs).
    pub cold: bool,
    /// Planner settings.
    pub planner: PlannerConfig,
}

impl Default for Query1Config {
    fn default() -> Query1Config {
        Query1Config {
            delta: 90,
            cold: false,
            planner: PlannerConfig::default(),
        }
    }
}

/// The outcome of a Query 1 run.
#[derive(Debug)]
pub struct Q1Execution {
    /// Output rows: `RETURNFLAG, LINESTATUS, SUM_QTY, SUM_BASE_PRICE,
    /// SUM_DISC_PRICE, SUM_CHARGE, AVG_QTY, AVG_PRICE, AVG_DISC,
    /// COUNT_ORDER`, ordered by the two flags.
    pub rows: Vec<Tuple>,
    /// Which plan ran.
    pub plan_kind: PlanKind,
    /// Buffer-pool traffic during execution.
    pub io: IoStats,
    /// Wall-clock execution time (excludes planning).
    pub elapsed: Duration,
    /// Deterministic modeled I/O cost of the observed traffic, in ms.
    pub modeled_cost_ms: f64,
    /// What the resilience layer gave up (empty on a healthy run).
    pub degradation: DegradationReport,
}

/// Builds Query 1's algebraic form over `table`'s schema.
///
/// The expressions are constructed *identically* to
/// [`SmaSet::query1_definitions`] so that structural matching
/// (`find_aggregate`) connects query aggregates to their SMAs.
pub fn query1_query(table: &Table, cutoff: Date) -> Result<AggregateQuery, ExecError> {
    let schema = table.schema();
    let need = |name: &str| -> Result<usize, ExecError> {
        schema
            .index_of(name)
            .ok_or_else(|| ExecError::Plan(format!("missing column {name}")))
    };
    let shipdate = need("L_SHIPDATE")?;
    let retflag = need("L_RETURNFLAG")?;
    let linestat = need("L_LINESTATUS")?;
    let qty = need("L_QUANTITY")?;
    let ext = need("L_EXTENDEDPRICE")?;
    let dis = need("L_DISCOUNT")?;
    let tax = need("L_TAX")?;
    let one_minus_dis = dec_lit("1.00").sub(col(dis));
    let one_plus_tax = dec_lit("1.00").add(col(tax));
    Ok(AggregateQuery {
        pred: BucketPred::cmp(shipdate, CmpOp::Le, Value::Date(cutoff)),
        group_by: vec![retflag, linestat],
        specs: vec![
            AggSpec::Sum(col(qty)),
            AggSpec::Sum(col(ext)),
            AggSpec::Sum(col(ext).mul(one_minus_dis.clone())),
            AggSpec::Sum(col(ext).mul(one_minus_dis).mul(one_plus_tax)),
            AggSpec::Avg(col(qty)),
            AggSpec::Avg(col(ext)),
            AggSpec::Avg(col(dis)),
            AggSpec::CountStar,
        ],
    })
}

/// The Query 1 ship-date cutoff for `delta`.
pub fn cutoff(delta: i32) -> Date {
    Date::from_ymd(1998, 12, 1)
        .expect("valid constant") // sma-lint: allow(P2-expect) -- compile-time constant date; cannot fail
        .add_days(-delta)
}

/// Plans and runs Query 1 over `table`; pass `smas` to allow SMA plans.
pub fn run_query1(
    table: &Table,
    smas: Option<&SmaSet>,
    config: &Query1Config,
) -> Result<Q1Execution, ExecError> {
    let query = query1_query(table, cutoff(config.delta))?;
    let chosen = plan(table, query, smas, &config.planner);
    if config.cold {
        table.make_cold()?;
    }
    table.reset_io_stats();
    let started = sma_storage::Stopwatch::start();
    let (rows, degradation) = chosen.execute_with_report()?;
    let elapsed = started.elapsed();
    let io = table.io_stats();
    Ok(Q1Execution {
        rows,
        plan_kind: chosen.kind,
        io,
        elapsed,
        modeled_cost_ms: config.planner.cost_model.cost_ms(&io),
        degradation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sma_tpcd::{
        generate_lineitem_table, q1_cutoff, q1_reference_table, Clustering, GenConfig, Q1Row,
    };

    fn to_q1_rows(rows: &[Tuple]) -> Vec<Q1Row> {
        rows.iter()
            .map(|r| Q1Row {
                returnflag: r[0].as_char().unwrap(),
                linestatus: r[1].as_char().unwrap(),
                sum_qty: r[2].as_decimal().unwrap(),
                sum_base_price: r[3].as_decimal().unwrap(),
                sum_disc_price: r[4].as_decimal().unwrap(),
                sum_charge: r[5].as_decimal().unwrap(),
                avg_qty: r[6].as_decimal().unwrap(),
                avg_price: r[7].as_decimal().unwrap(),
                avg_disc: r[8].as_decimal().unwrap(),
                count_order: r[9].as_int().unwrap(),
            })
            .collect()
    }

    #[test]
    fn sma_plan_matches_reference_oracle() {
        for clustering in [
            Clustering::SortedByShipdate,
            Clustering::diagonal_default(),
            Clustering::Shuffled,
        ] {
            let table = generate_lineitem_table(&GenConfig::tiny(clustering));
            let smas = SmaSet::build_query1_set(&table).unwrap();
            let with = run_query1(&table, Some(&smas), &Query1Config::default()).unwrap();
            let without = run_query1(&table, None, &Query1Config::default()).unwrap();
            let oracle = q1_reference_table(&table, q1_cutoff(90)).unwrap();
            assert_eq!(to_q1_rows(&with.rows), oracle, "{clustering:?}");
            assert_eq!(to_q1_rows(&without.rows), oracle, "{clustering:?}");
            assert_eq!(without.plan_kind, PlanKind::FullScan);
        }
    }

    #[test]
    fn sorted_table_picks_sma_gaggr_and_reads_little() {
        let table = generate_lineitem_table(&GenConfig::tiny(Clustering::SortedByShipdate));
        let smas = SmaSet::build_query1_set(&table).unwrap();
        let run = run_query1(&table, Some(&smas), &Query1Config::default()).unwrap();
        assert_eq!(run.plan_kind, PlanKind::SmaGAggr);
        // ~96 % of tuples qualify but almost no pages are read: only the
        // ambivalent boundary bucket.
        let pages = table.page_count() as u64;
        assert!(
            run.io.logical_reads <= pages / 10,
            "read {} of {pages} pages",
            run.io.logical_reads
        );
    }

    #[test]
    fn shuffled_table_falls_back_to_full_scan() {
        let table = generate_lineitem_table(&GenConfig::tiny(Clustering::Shuffled));
        let smas = SmaSet::build_query1_set(&table).unwrap();
        let run = run_query1(&table, Some(&smas), &Query1Config::default()).unwrap();
        assert_eq!(run.plan_kind, PlanKind::FullScan);
    }

    #[test]
    fn cold_runs_hit_the_store() {
        let table = generate_lineitem_table(&GenConfig::tiny(Clustering::SortedByShipdate));
        let cold = run_query1(
            &table,
            None,
            &Query1Config {
                cold: true,
                ..Query1Config::default()
            },
        )
        .unwrap();
        assert_eq!(cold.io.physical_reads, table.page_count() as u64);
        let warm = run_query1(&table, None, &Query1Config::default()).unwrap();
        assert_eq!(warm.io.physical_reads, 0);
        assert!(cold.modeled_cost_ms > warm.modeled_cost_ms);
    }

    #[test]
    fn delta_changes_cutoff() {
        assert_eq!(cutoff(90).to_string(), "1998-09-02");
        assert_eq!(cutoff(60).to_string(), "1998-10-02");
        let table = generate_lineitem_table(&GenConfig::tiny(Clustering::Uniform));
        let a = run_query1(
            &table,
            None,
            &Query1Config {
                delta: 60,
                ..Query1Config::default()
            },
        )
        .unwrap();
        let b = run_query1(
            &table,
            None,
            &Query1Config {
                delta: 120,
                ..Query1Config::default()
            },
        )
        .unwrap();
        let count = |rows: &[Tuple]| -> i64 { rows.iter().map(|r| r[9].as_int().unwrap()).sum() };
        assert!(count(&a.rows) > count(&b.rows), "smaller delta keeps more");
    }
}
