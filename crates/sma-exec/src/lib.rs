//! Physical query algebra exploiting SMAs (§3 of the paper).
//!
//! * [`op`] — the iterator-model operator interface,
//! * [`basic`] — `SeqScan`, `Filter`, `Project` (the SMA-less baselines),
//! * [`colkernel`] — selection-vector batch kernels over columnar buckets,
//! * [`scan`] — `SmaScan` (Fig. 6),
//! * [`gaggr`] — Dayal-style grouping/aggregation (`HashGAggr`),
//! * [`sma_gaggr`] — `SmaGAggr` (Fig. 7),
//! * [`parallel`] — the bucket-parallelism knob and morsel partitioning,
//! * [`degrade`] — degradation accounting: buckets demoted to base scans
//!   when SMA entries cannot be trusted, and retries spent underneath,
//! * [`semijoin`] — semi-joins with SMA input reduction (§4),
//! * [`planner`] — cost-based plan choice with the Fig. 5 breakeven,
//! * [`query1`] — end-to-end TPC-D Query 1 runs.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod basic;
pub mod colkernel;
pub mod degrade;
pub mod gaggr;
pub mod op;
pub mod parallel;
pub mod planner;
pub mod query1;
pub mod query3;
pub mod query4;
pub mod query6;
pub mod scan;
pub mod semijoin;
pub mod sma_gaggr;
pub mod sort;

pub use basic::{Filter, Project, SeqScan};
pub use colkernel::{filter_block, SelectionVector};
pub use degrade::DegradationReport;
pub use gaggr::{AggSpec, HashGAggr};
pub use op::{collect, ExecError, PhysicalOp};
pub use parallel::{morsels, Parallelism};
pub use planner::{plan, AggregateQuery, Estimate, Plan, PlanKind, PlannerConfig};
pub use query1::{cutoff, query1_query, run_query1, Q1Execution, Query1Config};
pub use query3::{query3_sma_definitions, run_query3, Q3Execution, Q3Params};
pub use query4::{run_query4, Q4Execution, Q4Params};
pub use query6::{query6_query, query6_sma_definitions, run_query6, Q6Execution, Q6Params};
pub use scan::{ScanCounters, SmaScan};
pub use semijoin::SemiJoin;
pub use sma_gaggr::SmaGAggr;
pub use sort::{Limit, Sort, SortOrder};
