//! The `SMA_GAggr` operator — Fig. 7 of the paper.
//!
//! Computes grouping + aggregation under a selection predicate using two
//! kinds of SMAs: *selection SMAs* (min/max, via the grading provider) to
//! classify buckets, and *aggregate SMAs* to answer qualifying buckets
//! without touching their pages. Only ambivalent buckets are read and
//! aggregated tuple-by-tuple. A pipeline breaker: the whole result is
//! computed in `open` ("within its init function, the result is
//! computed"), `next` merely streams it.

use std::collections::BTreeMap;

use sma_core::{BucketPred, Grade, Sma, SmaSet};
use sma_types::{Tuple, Value};

use crate::gaggr::{AggSpec, GroupState};
use crate::op::{ExecError, PhysicalOp};
use crate::scan::ScanCounters;

/// How one query aggregate maps onto SMAs.
struct ResolvedSpec<'a> {
    /// SMA holding the base aggregate (`avg` → its `sum` SMA).
    sma: &'a Sma,
    /// For each query group column, its position in the SMA's group key.
    key_positions: Vec<usize>,
}

/// The SMA-driven grouping/aggregation operator.
pub struct SmaGAggr<'a> {
    table: &'a sma_storage::Table,
    pred: BucketPred,
    group_by: Vec<usize>,
    specs: Vec<AggSpec>,
    smas: &'a SmaSet,
    resolved: Vec<ResolvedSpec<'a>>,
    count_sma: ResolvedSpec<'a>,
    results: Vec<Tuple>,
    pos: usize,
    counters: ScanCounters,
}

fn resolve<'a>(
    smas: &'a SmaSet,
    agg: sma_core::AggFn,
    input: Option<&sma_core::ScalarExpr>,
    group_by: &[usize],
    what: &str,
) -> Result<ResolvedSpec<'a>, ExecError> {
    let sma = smas
        .find_aggregate(agg, input, group_by)
        .ok_or_else(|| ExecError::MissingSma(format!("{agg} SMA for {what}")))?;
    let key_positions = group_by
        .iter()
        .map(|qc| {
            sma.def()
                .group_by
                .iter()
                .position(|g| g == qc)
                .expect("find_aggregate guarantees grouping refinement")
        })
        .collect();
    Ok(ResolvedSpec { sma, key_positions })
}

impl ResolvedSpec<'_> {
    fn project(&self, sma_key: &[Value]) -> Vec<Value> {
        self.key_positions
            .iter()
            .map(|&p| sma_key[p].clone())
            .collect()
    }
}

impl<'a> SmaGAggr<'a> {
    /// Creates the operator (Fig. 7's constructor: `SMA_GAggr(R, pred,
    /// aggregateSpec, groupSpec, selectionSMAs, aggregateSMAs)`; here one
    /// [`SmaSet`] plays both SMA roles). Fails fast with
    /// [`ExecError::MissingSma`] when an aggregate SMA is missing — the
    /// planner then falls back to a plain scan.
    pub fn new(
        table: &'a sma_storage::Table,
        pred: BucketPred,
        group_by: Vec<usize>,
        specs: Vec<AggSpec>,
        smas: &'a SmaSet,
    ) -> Result<SmaGAggr<'a>, ExecError> {
        let mut resolved = Vec::with_capacity(specs.len());
        for spec in &specs {
            resolved.push(resolve(
                smas,
                spec.base_fn(),
                spec.input(),
                &group_by,
                &format!("{spec:?}"),
            )?);
        }
        // The hidden count(*) (group existence + averages).
        let count_sma = resolve(smas, sma_core::AggFn::Count, None, &group_by, "count(*)")?;
        Ok(SmaGAggr {
            table,
            pred,
            group_by,
            specs,
            smas,
            resolved,
            count_sma,
            results: Vec::new(),
            pos: 0,
            counters: ScanCounters::default(),
        })
    }

    /// Bucket-level counters (meaningful after `open`).
    pub fn counters(&self) -> ScanCounters {
        self.counters
    }

    fn merge_qualifying_bucket(
        &self,
        bucket: u32,
        groups: &mut BTreeMap<Vec<Value>, GroupState>,
    ) {
        for (i, r) in self.resolved.iter().enumerate() {
            for (key, file) in r.sma.groups() {
                let Some(v) = file.get(bucket) else { continue };
                let target = r.project(key);
                groups
                    .entry(target)
                    .or_insert_with(|| GroupState::new(&self.specs))
                    .accs[i]
                    .merge(v);
            }
        }
        for (key, file) in self.count_sma.sma.groups() {
            let Some(v) = file.get(bucket) else { continue };
            let n = v.as_int().unwrap_or(0);
            let target = self.count_sma.project(key);
            groups
                .entry(target)
                .or_insert_with(|| GroupState::new(&self.specs))
                .hidden_count += n;
        }
    }

    fn scan_ambivalent_bucket(
        &self,
        bucket: u32,
        groups: &mut BTreeMap<Vec<Value>, GroupState>,
    ) -> Result<(), ExecError> {
        let rows = self.table.scan_bucket(bucket)?;
        for (_, tuple) in rows {
            if !self.pred.eval_tuple(&tuple) {
                continue;
            }
            let key: Vec<Value> = self.group_by.iter().map(|&g| tuple[g].clone()).collect();
            groups
                .entry(key)
                .or_insert_with(|| GroupState::new(&self.specs))
                .update(&self.specs, &tuple)?;
        }
        Ok(())
    }
}

impl PhysicalOp for SmaGAggr<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.results.clear();
        self.pos = 0;
        self.counters = ScanCounters::default();
        let mut groups: BTreeMap<Vec<Value>, GroupState> = BTreeMap::new();
        // Fig. 7: "forall bucket in buckets: switch(grade(bucket, pred))".
        for bucket in 0..self.table.bucket_count() {
            match self.pred.grade(bucket, self.smas) {
                Grade::Qualifies => {
                    self.counters.qualified += 1;
                    self.merge_qualifying_bucket(bucket, &mut groups);
                }
                Grade::Disqualifies => {
                    self.counters.disqualified += 1;
                }
                Grade::Ambivalent => {
                    self.counters.ambivalent += 1;
                    self.scan_ambivalent_bucket(bucket, &mut groups)?;
                }
            }
        }
        // "Perform post processing for average aggregates" + drop groups
        // with no qualifying tuples.
        for (key, state) in groups {
            if state.hidden_count == 0 {
                continue;
            }
            let mut row = key;
            row.extend(state.finish(&self.specs));
            self.results.push(row);
        }
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        if self.pos < self.results.len() {
            let t = std::mem::take(&mut self.results[self.pos]);
            self.pos += 1;
            Ok(Some(t))
        } else {
            Ok(None)
        }
    }

    fn close(&mut self) {
        self.results.clear();
    }

    fn describe(&self) -> String {
        format!(
            "SmaGAggr({}, by={:?}, aggs={}, pred={:?})",
            self.table.name(),
            self.group_by,
            self.specs.len(),
            self.pred
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::{Filter, SeqScan};
    use crate::gaggr::HashGAggr;
    use crate::op::collect;
    use sma_core::{col, AggFn, CmpOp, SmaDefinition};
    use sma_storage::Table;
    use sma_types::{Column, DataType, Decimal, Schema};
    use std::sync::Arc;

    /// Sorted keyed table with a flag and a price, 2 tuples per page.
    fn make_table(n: i64) -> Table {
        let schema = Arc::new(Schema::new(vec![
            Column::new("K", DataType::Int),
            Column::new("G", DataType::Char),
            Column::new("P", DataType::Decimal),
            Column::new("PAD", DataType::Str),
        ]));
        let mut t = Table::in_memory("t", schema, 1);
        let pad = "p".repeat(1700);
        for k in 0..n {
            t.append(&vec![
                Value::Int(k),
                Value::Char(b'A' + (k % 3) as u8),
                Value::Decimal(Decimal::from_cents(100 * k + 50)),
                Value::Str(pad.clone()),
            ])
            .unwrap();
        }
        t
    }

    fn full_set(t: &Table) -> SmaSet {
        SmaSet::build(
            t,
            vec![
                SmaDefinition::new("min", AggFn::Min, col(0)),
                SmaDefinition::new("max", AggFn::Max, col(0)),
                SmaDefinition::count("count").group_by(vec![1]),
                SmaDefinition::new("sum_p", AggFn::Sum, col(2)).group_by(vec![1]),
                SmaDefinition::new("min_k", AggFn::Min, col(0)).group_by(vec![1]),
                SmaDefinition::new("max_k", AggFn::Max, col(0)).group_by(vec![1]),
            ],
        )
        .unwrap()
    }

    fn specs() -> Vec<AggSpec> {
        vec![
            AggSpec::CountStar,
            AggSpec::Sum(col(2)),
            AggSpec::Avg(col(2)),
            AggSpec::Min(col(0)),
            AggSpec::Max(col(0)),
        ]
    }

    fn baseline(t: &Table, pred: BucketPred) -> Vec<Tuple> {
        let mut g = HashGAggr::new(
            Box::new(Filter::new(Box::new(SeqScan::new(t)), pred)),
            vec![1],
            specs(),
        );
        collect(&mut g).unwrap()
    }

    #[test]
    fn matches_baseline_across_cutoffs() {
        let t = make_table(60);
        let smas = full_set(&t);
        for c in [-1i64, 0, 10, 29, 30, 59, 100] {
            let pred = BucketPred::cmp(0, CmpOp::Le, c);
            let mut op = SmaGAggr::new(&t, pred.clone(), vec![1], specs(), &smas).unwrap();
            let fast = collect(&mut op).unwrap();
            let slow = baseline(&t, pred);
            assert_eq!(fast, slow, "cutoff {c}");
        }
    }

    #[test]
    fn skips_buckets_and_uses_sma_answers() {
        let t = make_table(60); // 30 buckets
        let smas = full_set(&t);
        let pred = BucketPred::cmp(0, CmpOp::Le, 9i64); // 5 buckets survive
        let mut op = SmaGAggr::new(&t, pred, vec![1], specs(), &smas).unwrap();
        t.reset_io_stats();
        op.open().unwrap();
        let c = op.counters();
        assert_eq!(c.total(), 30);
        assert_eq!(c.disqualified, 25);
        assert_eq!(c.qualified, 5, "cutoff aligns with bucket boundary");
        assert_eq!(c.ambivalent, 0);
        assert_eq!(
            t.io_stats().logical_reads,
            0,
            "fully qualifying query answered from SMAs alone"
        );
    }

    #[test]
    fn ambivalent_buckets_read_and_filtered() {
        let t = make_table(60);
        let smas = full_set(&t);
        let pred = BucketPred::cmp(0, CmpOp::Le, 8i64); // splits bucket 4
        let mut op = SmaGAggr::new(&t, pred.clone(), vec![1], specs(), &smas).unwrap();
        t.reset_io_stats();
        op.open().unwrap();
        assert_eq!(op.counters().ambivalent, 1);
        assert_eq!(t.io_stats().logical_reads, 1, "only the split bucket read");
        // And the answer is still exact.
        let mut op2 = SmaGAggr::new(&t, pred.clone(), vec![1], specs(), &smas).unwrap();
        assert_eq!(collect(&mut op2).unwrap(), baseline(&t, pred));
    }

    #[test]
    fn missing_aggregate_sma_fails_fast() {
        let t = make_table(10);
        let only_minmax = SmaSet::build(
            &t,
            vec![
                SmaDefinition::new("min", AggFn::Min, col(0)),
                SmaDefinition::new("max", AggFn::Max, col(0)),
            ],
        )
        .unwrap();
        let result = SmaGAggr::new(
            &t,
            BucketPred::cmp(0, CmpOp::Le, 5i64),
            vec![1],
            specs(),
            &only_minmax,
        );
        match result {
            Err(ExecError::MissingSma(_)) => {}
            Err(other) => panic!("unexpected error: {other}"),
            Ok(_) => panic!("expected MissingSma error"),
        }
    }

    #[test]
    fn finer_grouped_smas_serve_coarser_query() {
        let t = make_table(30);
        // SMAs grouped by (G, K%2-ish char)… simpler: group by [1, 0] is
        // overkill; group by [1] and query by [] (global aggregate).
        let smas = full_set(&t);
        let pred = BucketPred::cmp(0, CmpOp::Le, 100i64);
        let mut op =
            SmaGAggr::new(&t, pred.clone(), vec![], specs(), &smas).unwrap();
        let fast = collect(&mut op).unwrap();
        let mut slow = HashGAggr::new(
            Box::new(Filter::new(Box::new(SeqScan::new(&t)), pred)),
            vec![],
            specs(),
        );
        assert_eq!(fast, collect(&mut slow).unwrap());
    }

    #[test]
    fn all_disqualified_yields_empty() {
        let t = make_table(20);
        let smas = full_set(&t);
        let pred = BucketPred::cmp(0, CmpOp::Lt, 0i64);
        let mut op = SmaGAggr::new(&t, pred, vec![1], specs(), &smas).unwrap();
        assert!(collect(&mut op).unwrap().is_empty());
        assert_eq!(op.counters().disqualified, 20 / 2);
    }

    #[test]
    fn or_predicate_still_correct() {
        let t = make_table(40);
        let smas = full_set(&t);
        let pred = BucketPred::Or(vec![
            BucketPred::cmp(0, CmpOp::Le, 5i64),
            BucketPred::cmp(0, CmpOp::Ge, 35i64),
        ]);
        let mut op = SmaGAggr::new(&t, pred.clone(), vec![1], specs(), &smas).unwrap();
        assert_eq!(collect(&mut op).unwrap(), baseline(&t, pred));
    }
}
