//! The `SMA_GAggr` operator — Fig. 7 of the paper.
//!
//! Computes grouping + aggregation under a selection predicate using two
//! kinds of SMAs: *selection SMAs* (min/max, via the grading provider) to
//! classify buckets, and *aggregate SMAs* to answer qualifying buckets
//! without touching their pages. Only ambivalent buckets are read and
//! aggregated tuple-by-tuple. A pipeline breaker: the whole result is
//! computed in `open` ("within its init function, the result is
//! computed"), `next` merely streams it.

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use sma_core::{BucketPred, Grade, Sma, SmaSet};
use sma_storage::QueryBudget;
use sma_types::{RowLayout, Tuple, Value};

use crate::colkernel::{aggregate_block, filter_block};
use crate::gaggr::{AggSpec, DenseGroups, GroupState};
use crate::op::{ExecError, PhysicalOp};
use crate::parallel::{morsels, Parallelism};
use crate::scan::ScanCounters;

/// How one query aggregate maps onto SMAs.
struct ResolvedSpec<'a> {
    /// SMA holding the base aggregate (`avg` → its `sum` SMA).
    sma: &'a Sma,
    /// For each query group column, its position in the SMA's group key.
    key_positions: Vec<usize>,
}

/// The SMA-driven grouping/aggregation operator.
pub struct SmaGAggr<'a> {
    table: &'a sma_storage::Table,
    pred: BucketPred,
    group_by: Vec<usize>,
    specs: Vec<AggSpec>,
    smas: &'a SmaSet,
    resolved: Vec<ResolvedSpec<'a>>,
    count_sma: ResolvedSpec<'a>,
    /// Byte offsets of the row codec, computed once so ambivalent buckets
    /// can be filtered and aggregated on zero-copy views.
    layout: RowLayout,
    results: Vec<Tuple>,
    pos: usize,
    counters: ScanCounters,
    parallelism: Parallelism,
    /// Cooperative per-query budget, shared by all morsel workers (its
    /// state is atomic): checked once per bucket, charged per page read.
    budget: Option<&'a QueryBudget>,
}

fn resolve<'a>(
    smas: &'a SmaSet,
    agg: sma_core::AggFn,
    input: Option<&sma_core::ScalarExpr>,
    group_by: &[usize],
    what: &str,
) -> Result<ResolvedSpec<'a>, ExecError> {
    let sma = smas
        .find_aggregate(agg, input, group_by)
        .ok_or_else(|| ExecError::MissingSma(format!("{agg} SMA for {what}")))?;
    let key_positions: Vec<usize> = group_by
        .iter()
        .filter_map(|qc| sma.def().group_by.iter().position(|g| g == qc))
        .collect();
    if key_positions.len() != group_by.len() {
        // `find_aggregate` guarantees grouping refinement; report rather
        // than assume if that contract is ever broken.
        return Err(ExecError::MissingSma(format!(
            "{agg} SMA grouping does not refine {what}"
        )));
    }
    Ok(ResolvedSpec { sma, key_positions })
}

impl ResolvedSpec<'_> {
    fn project(&self, sma_key: &[Value]) -> Vec<Value> {
        self.key_positions
            .iter()
            .map(|&p| sma_key[p].clone())
            .collect()
    }
}

impl<'a> SmaGAggr<'a> {
    /// Creates the operator (Fig. 7's constructor: `SMA_GAggr(R, pred,
    /// aggregateSpec, groupSpec, selectionSMAs, aggregateSMAs)`; here one
    /// [`SmaSet`] plays both SMA roles). Fails fast with
    /// [`ExecError::MissingSma`] when an aggregate SMA is missing — the
    /// planner then falls back to a plain scan.
    pub fn new(
        table: &'a sma_storage::Table,
        pred: BucketPred,
        group_by: Vec<usize>,
        specs: Vec<AggSpec>,
        smas: &'a SmaSet,
    ) -> Result<SmaGAggr<'a>, ExecError> {
        let mut resolved = Vec::with_capacity(specs.len());
        for spec in &specs {
            resolved.push(resolve(
                smas,
                spec.base_fn(),
                spec.input(),
                &group_by,
                &format!("{spec:?}"),
            )?);
        }
        // The hidden count(*) (group existence + averages).
        let count_sma = resolve(smas, sma_core::AggFn::Count, None, &group_by, "count(*)")?;
        let layout = RowLayout::new(table.schema());
        Ok(SmaGAggr {
            table,
            pred,
            group_by,
            specs,
            smas,
            resolved,
            count_sma,
            layout,
            results: Vec::new(),
            pos: 0,
            counters: ScanCounters::default(),
            parallelism: Parallelism::default(),
            budget: None,
        })
    }

    /// Sets the number of worker threads `open` uses for the bucket loop
    /// (default: one per available core). Results and counters are
    /// identical at any setting.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> SmaGAggr<'a> {
        self.parallelism = parallelism;
        self
    }

    /// Attaches a cooperative budget. Every morsel worker checks it at
    /// each bucket boundary and charges it the bucket's page count before
    /// an ambivalent (or demoted) base-table read; qualifying buckets are
    /// answered from in-memory SMA entries and charge nothing.
    pub fn with_budget(mut self, budget: &'a QueryBudget) -> SmaGAggr<'a> {
        self.budget = Some(budget);
        self
    }

    /// Bucket-level counters (meaningful after `open`).
    pub fn counters(&self) -> ScanCounters {
        self.counters.clone()
    }

    /// Whether any SMA this operator would draw entries from has `bucket`
    /// quarantined — if so the entries may be garbage and the bucket must
    /// be answered from the base table instead.
    fn aggregate_entries_quarantined(&self, bucket: u32) -> bool {
        self.count_sma.sma.is_quarantined(bucket)
            || self.resolved.iter().any(|r| r.sma.is_quarantined(bucket))
    }

    /// Merges one qualifying bucket's SMA entries into a *fresh* group map
    /// so an inconsistency detected mid-merge leaves the caller's state
    /// untouched and the bucket can be demoted to a base scan instead.
    fn merge_qualifying_bucket(
        &self,
        bucket: u32,
    ) -> Result<BTreeMap<Vec<Value>, GroupState>, ExecError> {
        let mut groups: BTreeMap<Vec<Value>, GroupState> = BTreeMap::new();
        // Groups that received a materialized aggregate value this bucket;
        // each must also be covered by the count SMA, or group existence
        // (and averages) would be computed from thin air.
        let mut touched: BTreeSet<Vec<Value>> = BTreeSet::new();
        for (i, r) in self.resolved.iter().enumerate() {
            for (key, file) in r.sma.groups() {
                let Some(v) = file.get(bucket) else { continue };
                let target = r.project(key);
                if !v.is_null() {
                    touched.insert(target.clone());
                }
                groups
                    .entry(target)
                    .or_insert_with(|| GroupState::new(&self.specs))
                    .accs[i]
                    .merge(v);
            }
        }
        for (key, file) in self.count_sma.sma.groups() {
            let Some(v) = file.get(bucket) else { continue };
            let n = v.as_int().unwrap_or(0);
            let target = self.count_sma.project(key);
            touched.remove(&target);
            groups
                .entry(target)
                .or_insert_with(|| GroupState::new(&self.specs))
                .hidden_count += n;
        }
        if let Some(orphan) = touched.into_iter().next() {
            return Err(ExecError::InconsistentSma(format!(
                "bucket {bucket}: aggregate SMA materialized values for group \
                 {orphan:?} but the count SMA has no entry for that bucket"
            )));
        }
        Ok(groups)
    }

    /// Fig. 7's bucket loop over one contiguous morsel: grade each bucket,
    /// answer qualifying ones from SMA entries, scan ambivalent ones.
    /// Buckets whose SMA entries cannot be trusted (quarantined) or do not
    /// add up (inconsistent) are demoted to base-table scans — the base
    /// table is the ground truth, so the answer stays exact and only the
    /// fast path is lost. Pure with respect to `self`, so morsels run on
    /// worker threads.
    fn process_buckets(
        &self,
        range: Range<u32>,
    ) -> Result<(ScanCounters, BTreeMap<Vec<Value>, GroupState>), ExecError> {
        let mut counters = ScanCounters::default();
        let mut groups: BTreeMap<Vec<Value>, GroupState> = BTreeMap::new();
        // All-`Char` group keys (the Q1 shape) accumulate in a flat
        // direct-indexed table instead of the ordered map; it folds back
        // into `groups` once at the end of the morsel. Aggregate merging
        // is commutative, so the deferred fold changes nothing.
        let mut dense = DenseGroups::try_new(self.table.schema(), &self.group_by);
        for bucket in range {
            if let Some(b) = self.budget {
                b.check()?;
            }
            match self.pred.grade(bucket, self.smas) {
                Grade::Qualifies => {
                    if self.aggregate_entries_quarantined(bucket) {
                        counters.ambivalent += 1;
                        counters.degradation.note_quarantined(bucket);
                        self.scan_ambivalent_bucket(bucket, &mut groups, &mut dense)?;
                        continue;
                    }
                    match self.merge_qualifying_bucket(bucket) {
                        Ok(local) => {
                            counters.qualified += 1;
                            absorb_groups(&mut groups, local);
                        }
                        Err(ExecError::InconsistentSma(_)) => {
                            counters.ambivalent += 1;
                            counters.degradation.note_inconsistent(bucket);
                            self.scan_ambivalent_bucket(bucket, &mut groups, &mut dense)?;
                        }
                        Err(e) => return Err(e),
                    }
                }
                Grade::Disqualifies => {
                    counters.disqualified += 1;
                }
                Grade::Ambivalent => {
                    counters.ambivalent += 1;
                    // Selection SMAs with a quarantined bucket grade it
                    // Ambivalent; the base scan below is the demotion.
                    if self.smas.is_bucket_quarantined(bucket) {
                        counters.degradation.note_quarantined(bucket);
                    }
                    self.scan_ambivalent_bucket(bucket, &mut groups, &mut dense)?;
                }
            }
        }
        if let Some(d) = dense {
            absorb_groups(&mut groups, d.into_groups());
        }
        Ok((counters, groups))
    }

    /// Reads one bucket straight out of the buffer pool's page frames:
    /// the predicate and the aggregate inputs are evaluated on zero-copy
    /// [`sma_types::RowView`]s, so qualifying tuples fold into their group
    /// without ever being materialized (no image copy, no `Vec<Value>`).
    fn scan_ambivalent_bucket(
        &self,
        bucket: u32,
        groups: &mut BTreeMap<Vec<Value>, GroupState>,
        dense: &mut Option<DenseGroups>,
    ) -> Result<(), ExecError> {
        if let Some(b) = self.budget {
            b.charge(self.table.bucket_range(bucket).len() as u64)?;
        }
        if let Some(block) = self.table.columnar_bucket(bucket)? {
            // Columnar layout: the batch kernels filter over the column
            // arrays and fold only the survivors, touching only the
            // columns the predicate and aggregates reference. Decoding
            // the block reads the same pages the row branch below would.
            let sel = filter_block(&block, &self.pred);
            return aggregate_block(&block, &sel, &self.group_by, &self.specs, groups, dense);
        }
        self.table
            .for_each_in_bucket::<ExecError, _>(bucket, |_, image| {
                let row = self.layout.view(image)?;
                if !self.pred.eval_view(&row)? {
                    return Ok(());
                }
                if let Some(d) = dense {
                    return d.update(&self.specs, &row);
                }
                let mut key = Vec::with_capacity(self.group_by.len());
                for &g in &self.group_by {
                    key.push(row.get(g)?);
                }
                groups
                    .entry(key)
                    .or_insert_with(|| GroupState::new(&self.specs))
                    .update_view(&self.specs, &row)
            })
    }
}

/// Merges a bucket-local (or morsel-local) group map into the combined one.
pub(crate) fn absorb_groups(
    into: &mut BTreeMap<Vec<Value>, GroupState>,
    from: BTreeMap<Vec<Value>, GroupState>,
) {
    for (key, state) in from {
        match into.entry(key) {
            Entry::Occupied(e) => e.into_mut().absorb(state),
            Entry::Vacant(e) => {
                e.insert(state);
            }
        }
    }
}

impl PhysicalOp for SmaGAggr<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.results.clear();
        self.pos = 0;
        self.counters = ScanCounters::default();
        let retries_at_open = self.table.io_stats().retried_reads;
        let n_buckets = self.table.bucket_count();
        let threads = self.parallelism.get().min(n_buckets.max(1) as usize);
        // Fig. 7: "forall bucket in buckets: switch(grade(bucket, pred))".
        // Buckets are independent (grading is in-memory arithmetic, pages
        // are disjoint), so the loop runs as contiguous morsels on worker
        // threads; partials merge back in bucket order, which keeps both
        // the result rows and the counters identical to the serial loop.
        let (mut counters, groups) = if threads <= 1 {
            self.process_buckets(0..n_buckets)?
        } else {
            let shared: &SmaGAggr<'_> = &*self;
            let partials: Vec<Result<_, ExecError>> = std::thread::scope(|scope| {
                let handles: Vec<_> = morsels(n_buckets, threads)
                    .into_iter()
                    .map(|r| scope.spawn(move || shared.process_buckets(r)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(r) => r,
                        // sma-lint: allow(A3-error-swallowing) -- join's payload is Box<dyn Any>, not an error; it is converted to a typed error here
                        Err(_) => Err(ExecError::Plan("bucket worker panicked".into())),
                    })
                    .collect()
            });
            let mut counters = ScanCounters::default();
            let mut groups: BTreeMap<Vec<Value>, GroupState> = BTreeMap::new();
            for partial in partials {
                let (c, partial_groups) = partial?;
                counters.qualified += c.qualified;
                counters.disqualified += c.disqualified;
                counters.ambivalent += c.ambivalent;
                // Bucket lists are sorted + deduplicated on merge, so the
                // combined report is identical at any worker count.
                counters.degradation.merge(&c.degradation);
                absorb_groups(&mut groups, partial_groups);
            }
            (counters, groups)
        };
        // Retries are a pool-level tally (morsels share the pool), so the
        // per-execution figure is the delta across the whole bucket loop.
        counters.degradation.retries_spent = self
            .table
            .io_stats()
            .retried_reads
            .saturating_sub(retries_at_open);
        self.counters = counters;
        // "Perform post processing for average aggregates" + drop groups
        // with no qualifying tuples.
        for (key, state) in groups {
            if state.hidden_count == 0 {
                continue;
            }
            let mut row = key;
            row.extend(state.finish(&self.specs));
            self.results.push(row);
        }
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        if self.pos < self.results.len() {
            let t = std::mem::take(&mut self.results[self.pos]);
            self.pos += 1;
            Ok(Some(t))
        } else {
            Ok(None)
        }
    }

    fn close(&mut self) {
        self.results.clear();
    }

    fn describe(&self) -> String {
        format!(
            "SmaGAggr({}, by={:?}, aggs={}, pred={:?})",
            self.table.name(),
            self.group_by,
            self.specs.len(),
            self.pred
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::{Filter, SeqScan};
    use crate::gaggr::HashGAggr;
    use crate::op::collect;
    use sma_core::{col, AggFn, CmpOp, SmaDefinition};
    use sma_storage::Table;
    use sma_types::{Column, DataType, Decimal, Schema};
    use std::sync::Arc;

    /// Sorted keyed table with a flag and a price, 2 tuples per page.
    fn make_table(n: i64) -> Table {
        let schema = Arc::new(Schema::new(vec![
            Column::new("K", DataType::Int),
            Column::new("G", DataType::Char),
            Column::new("P", DataType::Decimal),
            Column::new("PAD", DataType::Str),
        ]));
        let mut t = Table::in_memory("t", schema, 1);
        let pad = "p".repeat(1700);
        for k in 0..n {
            t.append(&vec![
                Value::Int(k),
                Value::Char(b'A' + (k % 3) as u8),
                Value::Decimal(Decimal::from_cents(100 * k + 50)),
                Value::Str(pad.clone()),
            ])
            .unwrap();
        }
        t
    }

    fn full_set(t: &Table) -> SmaSet {
        SmaSet::build(
            t,
            vec![
                SmaDefinition::new("min", AggFn::Min, col(0)),
                SmaDefinition::new("max", AggFn::Max, col(0)),
                SmaDefinition::count("count").group_by(vec![1]),
                SmaDefinition::new("sum_p", AggFn::Sum, col(2)).group_by(vec![1]),
                SmaDefinition::new("min_k", AggFn::Min, col(0)).group_by(vec![1]),
                SmaDefinition::new("max_k", AggFn::Max, col(0)).group_by(vec![1]),
            ],
        )
        .unwrap()
    }

    fn specs() -> Vec<AggSpec> {
        vec![
            AggSpec::CountStar,
            AggSpec::Sum(col(2)),
            AggSpec::Avg(col(2)),
            AggSpec::Min(col(0)),
            AggSpec::Max(col(0)),
        ]
    }

    fn baseline(t: &Table, pred: BucketPred) -> Vec<Tuple> {
        let mut g = HashGAggr::new(
            Box::new(Filter::new(Box::new(SeqScan::new(t)), pred)),
            vec![1],
            specs(),
        );
        collect(&mut g).unwrap()
    }

    #[test]
    fn matches_baseline_across_cutoffs() {
        let t = make_table(60);
        let smas = full_set(&t);
        for c in [-1i64, 0, 10, 29, 30, 59, 100] {
            let pred = BucketPred::cmp(0, CmpOp::Le, c);
            let mut op = SmaGAggr::new(&t, pred.clone(), vec![1], specs(), &smas).unwrap();
            let fast = collect(&mut op).unwrap();
            let slow = baseline(&t, pred);
            assert_eq!(fast, slow, "cutoff {c}");
        }
    }

    #[test]
    fn skips_buckets_and_uses_sma_answers() {
        let t = make_table(60); // 30 buckets
        let smas = full_set(&t);
        let pred = BucketPred::cmp(0, CmpOp::Le, 9i64); // 5 buckets survive
        let mut op = SmaGAggr::new(&t, pred, vec![1], specs(), &smas).unwrap();
        t.reset_io_stats();
        op.open().unwrap();
        let c = op.counters();
        assert_eq!(c.total(), 30);
        assert_eq!(c.disqualified, 25);
        assert_eq!(c.qualified, 5, "cutoff aligns with bucket boundary");
        assert_eq!(c.ambivalent, 0);
        assert_eq!(
            t.io_stats().logical_reads,
            0,
            "fully qualifying query answered from SMAs alone"
        );
    }

    #[test]
    fn ambivalent_buckets_read_and_filtered() {
        let t = make_table(60);
        let smas = full_set(&t);
        let pred = BucketPred::cmp(0, CmpOp::Le, 8i64); // splits bucket 4
        let mut op = SmaGAggr::new(&t, pred.clone(), vec![1], specs(), &smas).unwrap();
        t.reset_io_stats();
        op.open().unwrap();
        assert_eq!(op.counters().ambivalent, 1);
        assert_eq!(t.io_stats().logical_reads, 1, "only the split bucket read");
        // And the answer is still exact.
        let mut op2 = SmaGAggr::new(&t, pred.clone(), vec![1], specs(), &smas).unwrap();
        assert_eq!(collect(&mut op2).unwrap(), baseline(&t, pred));
    }

    #[test]
    fn missing_aggregate_sma_fails_fast() {
        let t = make_table(10);
        let only_minmax = SmaSet::build(
            &t,
            vec![
                SmaDefinition::new("min", AggFn::Min, col(0)),
                SmaDefinition::new("max", AggFn::Max, col(0)),
            ],
        )
        .unwrap();
        let result = SmaGAggr::new(
            &t,
            BucketPred::cmp(0, CmpOp::Le, 5i64),
            vec![1],
            specs(),
            &only_minmax,
        );
        match result {
            Err(ExecError::MissingSma(_)) => {}
            Err(other) => panic!("unexpected error: {other}"),
            Ok(_) => panic!("expected MissingSma error"),
        }
    }

    #[test]
    fn finer_grouped_smas_serve_coarser_query() {
        let t = make_table(30);
        // SMAs grouped by (G, K%2-ish char)… simpler: group by [1, 0] is
        // overkill; group by [1] and query by [] (global aggregate).
        let smas = full_set(&t);
        let pred = BucketPred::cmp(0, CmpOp::Le, 100i64);
        let mut op = SmaGAggr::new(&t, pred.clone(), vec![], specs(), &smas).unwrap();
        let fast = collect(&mut op).unwrap();
        let mut slow = HashGAggr::new(
            Box::new(Filter::new(Box::new(SeqScan::new(&t)), pred)),
            vec![],
            specs(),
        );
        assert_eq!(fast, collect(&mut slow).unwrap());
    }

    #[test]
    fn all_disqualified_yields_empty() {
        let t = make_table(20);
        let smas = full_set(&t);
        let pred = BucketPred::cmp(0, CmpOp::Lt, 0i64);
        let mut op = SmaGAggr::new(&t, pred, vec![1], specs(), &smas).unwrap();
        assert!(collect(&mut op).unwrap().is_empty());
        assert_eq!(op.counters().disqualified, 20 / 2);
    }

    #[test]
    fn parallel_open_matches_serial_exactly() {
        let t = make_table(60);
        let smas = full_set(&t);
        // Le 8 splits bucket 4: qualifying, disqualified, and ambivalent
        // buckets all present, so every merge path runs.
        let pred = BucketPred::cmp(0, CmpOp::Le, 8i64);
        let mut serial = SmaGAggr::new(&t, pred.clone(), vec![1], specs(), &smas)
            .unwrap()
            .with_parallelism(Parallelism::serial());
        let expected = collect(&mut serial).unwrap();
        let expected_counters = serial.counters();
        assert!(!expected.is_empty());
        for threads in [2, 3, 4, 8, 64] {
            let mut par = SmaGAggr::new(&t, pred.clone(), vec![1], specs(), &smas)
                .unwrap()
                .with_parallelism(Parallelism::new(threads));
            assert_eq!(collect(&mut par).unwrap(), expected, "{threads} threads");
            assert_eq!(par.counters(), expected_counters, "{threads} threads");
        }
    }

    /// A count SMA whose files stop short of a bucket that the aggregate
    /// SMAs do cover used to make `merge_qualifying_bucket` silently drop
    /// the affected groups, then (PR 2) fail the whole query with
    /// `InconsistentSma`. Now the inconsistency demotes exactly the
    /// affected buckets to base-table scans: the answer stays correct and
    /// the degradation report names every demoted bucket.
    #[test]
    fn count_sma_gap_demotes_to_scan_not_an_error() {
        let t = make_table(60); // 30 buckets
        let short = make_table(20); // 10 buckets
        let full = full_set(&t);
        let mut mismatched = SmaSet::new();
        for sma in full.smas() {
            if sma.def().agg != AggFn::Count {
                mismatched.push(sma.clone());
            }
        }
        // A count SMA built over the shorter table: same definition, but
        // its files have no entries for buckets 10..30.
        let truncated = SmaSet::build(
            &short,
            vec![SmaDefinition::count("count").group_by(vec![1])],
        )
        .unwrap();
        mismatched.push(truncated.smas()[0].clone());

        let pred = BucketPred::cmp(0, CmpOp::Le, 100i64); // every bucket qualifies
        let mut op = SmaGAggr::new(&t, pred.clone(), vec![1], specs(), &mismatched)
            .unwrap()
            .with_parallelism(Parallelism::serial());
        let rows = collect(&mut op).unwrap();
        assert_eq!(rows, baseline(&t, pred.clone()), "demoted run stays exact");
        let c = op.counters();
        assert_eq!(
            c.degradation.inconsistent_buckets,
            (10u32..30).collect::<Vec<_>>(),
            "exactly the uncovered buckets were demoted"
        );
        assert_eq!(c.degradation.demoted_buckets.len(), 20);
        assert_eq!(c.qualified, 10);
        assert_eq!(c.ambivalent, 20);
        // The parallel path produces the identical answer and report.
        let mut par = SmaGAggr::new(&t, pred.clone(), vec![1], specs(), &mismatched)
            .unwrap()
            .with_parallelism(Parallelism::new(4));
        assert_eq!(collect(&mut par).unwrap(), rows);
        assert_eq!(par.counters(), c);
    }

    /// Quarantined aggregate-SMA entries must not be trusted even when the
    /// selection SMAs still grade the bucket as fully qualifying.
    #[test]
    fn quarantined_aggregate_bucket_demotes_even_when_qualifying() {
        let t = make_table(60); // 30 buckets
        let full = full_set(&t);
        let mut damaged = SmaSet::new();
        for sma in full.smas() {
            let mut s = sma.clone();
            if s.def().name == "sum_p" {
                s.quarantine_bucket(3);
            }
            damaged.push(s);
        }
        let pred = BucketPred::cmp(0, CmpOp::Le, 100i64); // every bucket qualifies
        let mut op = SmaGAggr::new(&t, pred.clone(), vec![1], specs(), &damaged)
            .unwrap()
            .with_parallelism(Parallelism::serial());
        let rows = collect(&mut op).unwrap();
        assert_eq!(rows, baseline(&t, pred.clone()));
        let c = op.counters();
        assert_eq!(c.degradation.quarantined_buckets, vec![3]);
        assert_eq!(c.degradation.demoted_buckets, vec![3]);
        assert_eq!(c.qualified, 29);
        assert_eq!(c.ambivalent, 1);
        // Deterministic across worker counts.
        for threads in [2, 4, 8] {
            let mut par = SmaGAggr::new(&t, pred.clone(), vec![1], specs(), &damaged)
                .unwrap()
                .with_parallelism(Parallelism::new(threads));
            assert_eq!(collect(&mut par).unwrap(), rows, "{threads} threads");
            assert_eq!(par.counters(), c, "{threads} threads");
        }
    }

    /// Quarantining through the whole set (the `Warehouse` path) makes the
    /// bucket ambivalent at grading time; the answer still matches.
    #[test]
    fn set_wide_quarantine_degrades_but_stays_exact() {
        let t = make_table(60);
        let mut smas = full_set(&t);
        smas.quarantine_bucket(0);
        smas.quarantine_bucket(7);
        let pred = BucketPred::cmp(0, CmpOp::Le, 100i64);
        let mut op = SmaGAggr::new(&t, pred.clone(), vec![1], specs(), &smas).unwrap();
        let rows = collect(&mut op).unwrap();
        assert_eq!(rows, baseline(&t, pred));
        let c = op.counters();
        assert_eq!(c.degradation.quarantined_buckets, vec![0, 7]);
        assert_eq!(c.ambivalent, 2);
    }

    /// Columnar conversion must leave the operator's rows, counters, and
    /// I/O totals untouched at every thread count — ambivalent columnar
    /// buckets run the batch kernels, everything else is unchanged.
    /// Quarantine demotions land on the kernel path too, and stay exact.
    #[test]
    fn columnar_buckets_match_row_aggregation_exactly() {
        let mut t = make_table(60); // 30 buckets
        let smas = full_set(&t);
        let pred = BucketPred::cmp(0, CmpOp::Le, 8i64); // splits bucket 4
        t.reset_io_stats();
        let mut row_op = SmaGAggr::new(&t, pred.clone(), vec![1], specs(), &smas)
            .unwrap()
            .with_parallelism(Parallelism::serial());
        let expected = collect(&mut row_op).unwrap();
        let expected_counters = row_op.counters();
        let expected_reads = t.io_stats().logical_reads;
        let converted = t.convert_buckets_from(0).unwrap();
        assert!(!converted.is_empty());
        for threads in [1, 2, 8] {
            t.reset_io_stats();
            let mut op = SmaGAggr::new(&t, pred.clone(), vec![1], specs(), &smas)
                .unwrap()
                .with_parallelism(Parallelism::new(threads));
            assert_eq!(collect(&mut op).unwrap(), expected, "{threads} threads");
            assert_eq!(op.counters(), expected_counters, "{threads} threads");
            assert_eq!(
                t.io_stats().logical_reads,
                expected_reads,
                "{threads} threads"
            );
        }
        // Quarantined buckets demote to columnar kernel scans and the
        // answer still matches the tuple-at-a-time oracle.
        let mut damaged = smas.clone();
        damaged.quarantine_bucket(1);
        damaged.quarantine_bucket(3);
        let wide = BucketPred::cmp(0, CmpOp::Le, 100i64);
        let mut op = SmaGAggr::new(&t, wide.clone(), vec![1], specs(), &damaged).unwrap();
        assert_eq!(collect(&mut op).unwrap(), baseline(&t, wide));
        assert_eq!(op.counters().degradation.quarantined_buckets, vec![1, 3]);
    }

    #[test]
    fn or_predicate_still_correct() {
        let t = make_table(40);
        let smas = full_set(&t);
        let pred = BucketPred::Or(vec![
            BucketPred::cmp(0, CmpOp::Le, 5i64),
            BucketPred::cmp(0, CmpOp::Ge, 35i64),
        ]);
        let mut op = SmaGAggr::new(&t, pred.clone(), vec![1], specs(), &smas).unwrap();
        assert_eq!(collect(&mut op).unwrap(), baseline(&t, pred));
    }
}
