//! Plan selection for aggregate queries in the presence of SMAs.
//!
//! §2.4 / Fig. 5: the SMA plan beats the full scan until roughly 25 % of
//! the buckets are ambivalent; past the breakeven the full scan wins
//! (though the SMA plan's overhead stays under 2 %). The planner estimates
//! the ambivalent fraction *from the SMAs themselves* — grading is a pure
//! in-memory pass over SMA entries, so the estimate is exact and costs no
//! data I/O — then prices each candidate plan with the storage cost model
//! (sequential vs. random page reads) and picks the cheapest:
//!
//! 1. `SmaGAggr` — reads the SMA files plus only ambivalent buckets;
//! 2. `SmaScan` + `HashGAggr` — reads min/max SMAs plus qualifying and
//!    ambivalent buckets;
//! 3. plain `SeqScan` + `Filter` + `HashGAggr` — reads everything,
//!    perfectly sequentially.
//!
//! An optional hard breakeven threshold reproduces the paper's simpler
//! decision rule.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

use sma_core::{Accumulator, BucketPred, Classification, Grade, SmaSet};
use sma_storage::{CostModel, QueryBudget, Table};
use sma_types::{RowLayout, Tuple, Value};

use crate::degrade::DegradationReport;
use crate::gaggr::{AggSpec, DenseGroups, GroupState, HashGAggr};
use crate::op::{collect, ExecError, PhysicalOp};
use crate::scan::SmaScan;
use crate::sma_gaggr::{absorb_groups, SmaGAggr};

/// An aggregate query: `select <group_by>, <specs> from R where <pred>
/// group by <group_by>` (output sorted by the group key).
#[derive(Debug, Clone)]
pub struct AggregateQuery {
    /// Selection predicate.
    pub pred: BucketPred,
    /// Grouping columns.
    pub group_by: Vec<usize>,
    /// Aggregates to compute.
    pub specs: Vec<AggSpec>,
}

/// Planner tunables.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PlannerConfig {
    /// The I/O price list used to compare candidate plans.
    pub cost_model: CostModel,
    /// Optional hard rule on top of the cost comparison: when the
    /// ambivalent fraction exceeds this, fall back to the full scan
    /// outright (the paper's Fig. 5 rule with 0.25).
    pub hard_breakeven: Option<f64>,
}

/// Which physical strategy the planner chose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// `SmaGAggr`: aggregate + selection SMAs.
    SmaGAggr,
    /// `SmaScan` feeding a `HashGAggr`: selection SMAs only.
    SmaScanGAggr,
    /// Plain sequential scan + filter + aggregation.
    FullScan,
}

/// Planner cost estimate, derived from grading the SMA entries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Buckets in the relation.
    pub n_buckets: u32,
    /// Fraction of buckets a SMA plan must read and filter.
    pub ambivalent_fraction: f64,
    /// Fraction of buckets a SMA plan skips entirely.
    pub skipped_fraction: f64,
    /// Modeled cost of the full sequential scan, in ms.
    pub full_scan_cost_ms: f64,
    /// Modeled cost of `SmaGAggr` (`None` when aggregate SMAs are missing).
    pub sma_gaggr_cost_ms: Option<f64>,
    /// Modeled cost of `SmaScan` + aggregation.
    pub sma_scan_cost_ms: f64,
}

/// A chosen plan, ready to execute.
pub struct Plan<'a> {
    table: &'a Table,
    smas: Option<&'a SmaSet>,
    query: AggregateQuery,
    /// Unsealed tuples (a streaming memtable) unioned with the table at
    /// execution time — see [`Plan::with_overlay`].
    overlay: Vec<Tuple>,
    /// Cooperative per-query budget — see [`Plan::with_budget`].
    budget: Option<&'a QueryBudget>,
    /// The chosen strategy.
    pub kind: PlanKind,
    /// The estimate that drove the choice (`None` without SMAs).
    pub estimate: Option<Estimate>,
}

impl<'a> Plan<'a> {
    /// Attaches unsealed tuples to the plan: rows that logically belong to
    /// the relation but have not been flushed into the sealed, SMA-indexed
    /// table yet. Execution aggregates them separately (the predicate
    /// applied per tuple, no SMA pruning — there are no SMAs over volatile
    /// data) and merges the partial groups into the sealed result, which
    /// is exact because every aggregate here is decomposable: min/max/sum/
    /// count are associative, and `avg` is rewritten to `sum` + `count(*)`
    /// and divided after the merge, exactly as §3.3 computes it.
    pub fn with_overlay(mut self, rows: Vec<Tuple>) -> Plan<'a> {
        self.overlay = rows;
        self
    }

    /// Attaches a cooperative [`QueryBudget`]: execution checks it at
    /// every bucket/page boundary and charges it one unit per data page
    /// read, so a deadline, a page cap, or an external cancellation cuts
    /// the query off with [`ExecError::Budget`] instead of letting it run
    /// to completion. Charges are deterministic (the page counts the
    /// operators request), so a budget verdict reproduces exactly in a
    /// single-threaded replay.
    pub fn with_budget(mut self, budget: &'a QueryBudget) -> Plan<'a> {
        self.budget = Some(budget);
        self
    }

    /// Runs the plan to completion.
    pub fn execute(&self) -> Result<Vec<Tuple>, ExecError> {
        Ok(self.execute_with_report()?.0)
    }

    /// Runs the plan to completion and reports what the resilience layer
    /// had to give up: buckets demoted to base-table scans (quarantined or
    /// inconsistent SMA entries) and transient-I/O retries spent. The
    /// report is empty on a healthy run and for the SMA-less full scan.
    pub fn execute_with_report(&self) -> Result<(Vec<Tuple>, DegradationReport), ExecError> {
        // Admission checkpoint: a budget that is already expired or
        // cancelled refuses even plans that would touch no data page
        // (empty tables, pure-overlay queries).
        if let Some(b) = self.budget {
            b.check()?;
        }
        if self.overlay.is_empty() {
            return self.run_base(&self.query.specs);
        }
        // Rewrite every `avg` to its decomposable base (`sum`) and make
        // sure a `count(*)` column exists to divide by after the merge.
        let mut eff: Vec<AggSpec> = self
            .query
            .specs
            .iter()
            .map(|s| match s {
                AggSpec::Avg(e) => AggSpec::Sum(e.clone()),
                other => other.clone(),
            })
            .collect();
        let count_at = self
            .query
            .specs
            .iter()
            .position(|s| matches!(s, AggSpec::CountStar));
        if count_at.is_none() {
            eff.push(AggSpec::CountStar);
        }
        let (base_rows, report) = self.run_base(&eff)?;
        let key_len = self.query.group_by.len();
        let mut merged: BTreeMap<Vec<Value>, Vec<Value>> = base_rows
            .into_iter()
            .map(|mut row| {
                let aggs = row.split_off(key_len);
                (row, aggs)
            })
            .collect();
        for (key, state) in self.aggregate_overlay(&eff)? {
            // `eff` holds no `avg`, so `finish` yields the raw partials.
            let partial = state.finish(&eff);
            match merged.entry(key) {
                Entry::Occupied(mut e) => {
                    for (i, spec) in eff.iter().enumerate() {
                        let mut acc = Accumulator::new(spec.base_fn());
                        acc.merge(&e.get()[i]);
                        acc.merge(&partial[i]);
                        e.get_mut()[i] = acc.finish();
                    }
                }
                Entry::Vacant(e) => {
                    e.insert(partial);
                }
            }
        }
        let count_idx = count_at.unwrap_or(eff.len() - 1);
        let mut rows = Vec::with_capacity(merged.len());
        for (key, mut aggs) in merged {
            let n = match aggs.get(count_idx) {
                Some(Value::Int(n)) => *n,
                _ => 0,
            };
            if count_at.is_none() {
                aggs.pop(); // drop the count column the rewrite added
            }
            for (i, spec) in self.query.specs.iter().enumerate() {
                if spec.is_avg() && n > 0 {
                    aggs[i] = match std::mem::replace(&mut aggs[i], Value::Null) {
                        Value::Decimal(d) => Value::Decimal(d.div_count(n)),
                        Value::Int(v) => Value::Int(v / n),
                        other => other,
                    };
                }
            }
            let mut row = key;
            row.extend(aggs);
            rows.push(row);
        }
        Ok((rows, report))
    }

    /// Groups and aggregates the overlay tuples under `specs` (which must
    /// be decomposable — no `avg`), applying the query predicate per tuple.
    fn aggregate_overlay(
        &self,
        specs: &[AggSpec],
    ) -> Result<BTreeMap<Vec<Value>, GroupState>, ExecError> {
        let mut groups: BTreeMap<Vec<Value>, GroupState> = BTreeMap::new();
        for t in &self.overlay {
            if !self.query.pred.eval_tuple(t) {
                continue;
            }
            let mut key = Vec::with_capacity(self.query.group_by.len());
            for &g in &self.query.group_by {
                key.push(t.get(g).cloned().ok_or_else(|| {
                    ExecError::Plan(format!(
                        "group column {g} out of range for an overlay tuple"
                    ))
                })?);
            }
            groups
                .entry(key)
                .or_insert_with(|| GroupState::new(specs))
                .update(specs, t)?;
        }
        Ok(groups)
    }

    /// Runs the chosen physical strategy over the sealed table with the
    /// given aggregate list (the query's own, or the decomposable rewrite
    /// the overlay path substitutes).
    fn run_base(&self, specs: &[AggSpec]) -> Result<(Vec<Tuple>, DegradationReport), ExecError> {
        match self.kind {
            PlanKind::SmaGAggr => {
                let Some(smas) = self.smas else {
                    return Err(ExecError::Plan("SMA plan chosen without a SMA set".into()));
                };
                let mut op = SmaGAggr::new(
                    self.table,
                    self.query.pred.clone(),
                    self.query.group_by.clone(),
                    specs.to_vec(),
                    smas,
                )?;
                if let Some(b) = self.budget {
                    op = op.with_budget(b);
                }
                let rows = collect(&mut op)?;
                Ok((rows, op.counters().degradation))
            }
            PlanKind::SmaScanGAggr => {
                let Some(smas) = self.smas else {
                    return Err(ExecError::Plan("SMA plan chosen without a SMA set".into()));
                };
                // Drive the scan directly so its counters survive the
                // aggregation; the filtered tuples are buffered, which
                // leaves the page I/O pattern identical to the pipelined
                // form (the scan does all its I/O either way).
                let mut scan = SmaScan::new(self.table, self.query.pred.clone(), smas);
                if let Some(b) = self.budget {
                    scan = scan.with_budget(b);
                }
                let filtered = collect(&mut scan)?;
                let report = scan.counters().degradation;
                let mut op = HashGAggr::new(
                    Box::new(Buffered::new(filtered)),
                    self.query.group_by.clone(),
                    specs.to_vec(),
                );
                let rows = collect(&mut op)?;
                Ok((rows, report))
            }
            PlanKind::FullScan => {
                let rows = full_scan_aggregate(self.table, &self.query, specs, self.budget)?;
                Ok((rows, DegradationReport::default()))
            }
        }
    }

    /// EXPLAIN-style description of the choice and its rationale.
    pub fn explain(&self) -> String {
        let mut out = format!("plan: {:?}\n", self.kind);
        match &self.estimate {
            Some(e) => {
                out.push_str(&format!(
                    "  buckets: {} ({:.1}% skipped, {:.1}% ambivalent)\n",
                    e.n_buckets,
                    e.skipped_fraction * 100.0,
                    e.ambivalent_fraction * 100.0
                ));
                out.push_str(&format!(
                    "  modeled cost (ms): full={:.1} sma_scan={:.1} sma_gaggr={}\n",
                    e.full_scan_cost_ms,
                    e.sma_scan_cost_ms,
                    e.sma_gaggr_cost_ms
                        .map(|c| format!("{c:.1}"))
                        .unwrap_or_else(|| "n/a".into()),
                ));
            }
            None => out.push_str("  no SMAs available\n"),
        }
        out.push_str(&format!(
            "  query: group_by={:?} aggs={} pred={:?}\n",
            self.query.group_by,
            self.query.specs.len(),
            self.query.pred
        ));
        out
    }
}

/// Replays an already-materialized tuple vector through the operator
/// interface (used by [`Plan::execute_with_report`] to keep a scan's
/// counters accessible after aggregation consumes its output).
struct Buffered {
    rows: Vec<Tuple>,
    pos: usize,
}

impl Buffered {
    fn new(rows: Vec<Tuple>) -> Buffered {
        Buffered { rows, pos: 0 }
    }
}

impl PhysicalOp for Buffered {
    fn open(&mut self) -> Result<(), ExecError> {
        self.pos = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        if self.pos < self.rows.len() {
            let t = std::mem::take(&mut self.rows[self.pos]);
            self.pos += 1;
            Ok(Some(t))
        } else {
            Ok(None)
        }
    }

    fn close(&mut self) {}

    fn describe(&self) -> String {
        format!("Buffered({} rows)", self.rows.len())
    }
}

/// The SMA-less baseline, fused: one pass over the data pages in physical
/// order, evaluating the predicate and folding aggregate inputs directly
/// on zero-copy views — no per-tuple materialization anywhere. Pages are
/// visited in exactly [`crate::basic::SeqScan`]'s order, so the I/O trace
/// is unchanged, and groups come out of an ordered map (or the flat `Char`
/// table that folds back into one), so the rows match what
/// `SeqScan → Filter → HashGAggr` produces.
fn full_scan_aggregate(
    table: &Table,
    query: &AggregateQuery,
    specs: &[AggSpec],
    budget: Option<&QueryBudget>,
) -> Result<Vec<Tuple>, ExecError> {
    let layout = RowLayout::new(table.schema());
    let mut dense = DenseGroups::try_new(table.schema(), &query.group_by);
    let mut groups: BTreeMap<Vec<Value>, GroupState> = BTreeMap::new();
    // Bucket-wise so columnar buckets run through the batch kernels;
    // bucket ranges tile `0..page_count`, and a columnar bucket charges
    // its whole range at once while a row bucket charges page by page,
    // so the budget total is exactly one unit per data page either way.
    for bucket in 0..table.bucket_count() {
        let range = table.bucket_range(bucket);
        if let Some(block) = table.columnar_bucket(bucket)? {
            if let Some(b) = budget {
                b.charge(range.len() as u64)?;
            }
            let sel = crate::colkernel::filter_block(&block, &query.pred);
            crate::colkernel::aggregate_block(
                &block,
                &sel,
                &query.group_by,
                specs,
                &mut groups,
                &mut dense,
            )?;
            continue;
        }
        for page in range {
            if let Some(b) = budget {
                b.charge(1)?;
            }
            table.for_each_on_page::<ExecError, _>(page, |_, image| {
                let row = layout.view(image)?;
                if !query.pred.eval_view(&row)? {
                    return Ok(());
                }
                if let Some(d) = &mut dense {
                    return d.update(specs, &row);
                }
                let mut key = Vec::with_capacity(query.group_by.len());
                for &g in &query.group_by {
                    key.push(row.get(g)?);
                }
                groups
                    .entry(key)
                    .or_insert_with(|| GroupState::new(specs))
                    .update_view(specs, &row)
            })?;
        }
    }
    if let Some(d) = dense {
        absorb_groups(&mut groups, d.into_groups());
    }
    let mut rows = Vec::with_capacity(groups.len());
    for (key, state) in groups {
        let mut row = key;
        row.extend(state.finish(specs));
        rows.push(row);
    }
    Ok(rows)
}

/// Whether `smas` can answer every aggregate of `query`.
fn aggregates_covered(smas: &SmaSet, query: &AggregateQuery) -> bool {
    let count_ok = smas
        .find_aggregate(sma_core::AggFn::Count, None, &query.group_by)
        .is_some();
    count_ok
        && query.specs.iter().all(|spec| {
            smas.find_aggregate(spec.base_fn(), spec.input(), &query.group_by)
                .is_some()
        })
}

/// Models the cost of reading the buckets selected by `read`, charging a
/// seek whenever the previous bucket was skipped (clustered ambivalent
/// runs therefore price mostly sequentially — the reason the paper's
/// breakeven sits as high as 25 %).
fn bucket_read_cost(
    grades: &[Grade],
    bucket_pages: u32,
    cm: &CostModel,
    read: impl Fn(Grade) -> bool,
) -> f64 {
    let mut cost = 0.0;
    let mut prev_read = false;
    for &g in grades {
        if read(g) {
            cost += if prev_read {
                cm.seq_read_ms * bucket_pages as f64
            } else {
                cm.rand_read_ms + cm.seq_read_ms * (bucket_pages.saturating_sub(1)) as f64
            };
            prev_read = true;
        } else {
            prev_read = false;
        }
    }
    cost
}

/// Pages of the min/max and count SMAs usable for grading `pred`.
fn selection_sma_pages(set: &SmaSet, pred: &BucketPred) -> usize {
    pred.referenced_columns()
        .into_iter()
        .map(|c| {
            set.min_sma_for(c).map(|s| s.total_pages()).unwrap_or(0)
                + set.max_sma_for(c).map(|s| s.total_pages()).unwrap_or(0)
                + set
                    .count_sma_grouped_by(c)
                    .map(|s| s.total_pages())
                    .unwrap_or(0)
        })
        .sum()
}

/// Chooses a plan for `query` over `table` given the available SMAs.
pub fn plan<'a>(
    table: &'a Table,
    query: AggregateQuery,
    smas: Option<&'a SmaSet>,
    cfg: &PlannerConfig,
) -> Plan<'a> {
    let Some(set) = smas else {
        return Plan {
            table,
            smas,
            query,
            overlay: Vec::new(),
            budget: None,
            kind: PlanKind::FullScan,
            estimate: None,
        };
    };
    let cm = &cfg.cost_model;
    let grades = Classification::classify(&query.pred, table.bucket_count(), set);
    let n_pages = table.page_count() as f64;
    let full_scan_cost_ms = if n_pages > 0.0 {
        cm.rand_read_ms + cm.seq_read_ms * (n_pages - 1.0)
    } else {
        0.0
    };
    let sel_pages = selection_sma_pages(set, &query.pred) as f64;
    let sma_scan_cost_ms = sel_pages * cm.seq_read_ms
        + bucket_read_cost(&grades.grades, table.bucket_pages(), cm, |g| {
            g != Grade::Disqualifies
        });
    let covered = aggregates_covered(set, &query);
    let sma_gaggr_cost_ms = covered.then(|| {
        // All SMA files are scanned sequentially "in sync" (§2.3).
        set.total_pages() as f64 * cm.seq_read_ms
            + bucket_read_cost(&grades.grades, table.bucket_pages(), cm, |g| {
                g == Grade::Ambivalent
            })
    });
    let estimate = Estimate {
        n_buckets: table.bucket_count(),
        ambivalent_fraction: grades.ambivalent_fraction(),
        skipped_fraction: grades.skipped_fraction(),
        full_scan_cost_ms,
        sma_gaggr_cost_ms,
        sma_scan_cost_ms,
    };
    let over_hard_breakeven = cfg
        .hard_breakeven
        .is_some_and(|b| estimate.ambivalent_fraction > b);
    let kind = if over_hard_breakeven {
        PlanKind::FullScan
    } else {
        let mut best = (PlanKind::FullScan, full_scan_cost_ms);
        if sma_scan_cost_ms < best.1 {
            best = (PlanKind::SmaScanGAggr, sma_scan_cost_ms);
        }
        if let Some(c) = sma_gaggr_cost_ms {
            if c < best.1 {
                best = (PlanKind::SmaGAggr, c);
            }
        }
        best.0
    };
    Plan {
        table,
        smas,
        query,
        overlay: Vec::new(),
        budget: None,
        kind,
        estimate: Some(estimate),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sma_core::{col, AggFn, CmpOp, SmaDefinition};
    use sma_types::{Column, DataType, Decimal, Schema, Value};
    use std::sync::Arc;

    fn make_table(n: i64, sorted: bool) -> Table {
        let schema = Arc::new(Schema::new(vec![
            Column::new("K", DataType::Int),
            Column::new("G", DataType::Char),
            Column::new("P", DataType::Decimal),
            Column::new("PAD", DataType::Str),
        ]));
        let mut t = Table::in_memory("t", schema, 1);
        let pad = "p".repeat(1700);
        for i in 0..n {
            let k = if sorted { i } else { (i * 17 + 5) % n };
            t.append(&vec![
                Value::Int(k),
                Value::Char(b'A' + (k % 2) as u8),
                Value::Decimal(Decimal::from_int(k)),
                Value::Str(pad.clone()),
            ])
            .unwrap();
        }
        t
    }

    fn full_set(t: &Table) -> SmaSet {
        SmaSet::build(
            t,
            vec![
                SmaDefinition::new("min", AggFn::Min, col(0)),
                SmaDefinition::new("max", AggFn::Max, col(0)),
                SmaDefinition::count("count").group_by(vec![1]),
                SmaDefinition::new("sum_p", AggFn::Sum, col(2)).group_by(vec![1]),
            ],
        )
        .unwrap()
    }

    fn query(cutoff: i64) -> AggregateQuery {
        AggregateQuery {
            pred: BucketPred::cmp(0, CmpOp::Le, cutoff),
            group_by: vec![1],
            specs: vec![AggSpec::CountStar, AggSpec::Sum(col(2))],
        }
    }

    #[test]
    fn sorted_data_low_cutoff_uses_sma_gaggr() {
        let t = make_table(60, true);
        let set = full_set(&t);
        let p = plan(&t, query(10), Some(&set), &PlannerConfig::default());
        assert_eq!(p.kind, PlanKind::SmaGAggr);
        let e = p.estimate.unwrap();
        assert!(e.ambivalent_fraction <= 0.25, "{e:?}");
        assert!(e.sma_gaggr_cost_ms.unwrap() < e.full_scan_cost_ms);
        assert!(p.explain().contains("SmaGAggr"));
    }

    #[test]
    fn shuffled_data_falls_back_to_full_scan() {
        let t = make_table(60, false);
        let set = full_set(&t);
        // Mid-range cutoff on shuffled data: nearly every bucket straddles
        // the cutoff, so the SMA plans pay random reads for almost all
        // buckets and lose to the sequential scan.
        let p = plan(&t, query(30), Some(&set), &PlannerConfig::default());
        assert_eq!(p.kind, PlanKind::FullScan);
        assert!(p.estimate.unwrap().ambivalent_fraction > 0.25);
    }

    #[test]
    fn missing_aggregate_smas_degrade_to_smascan() {
        let t = make_table(60, true);
        let minmax_only = SmaSet::build(
            &t,
            vec![
                SmaDefinition::new("min", AggFn::Min, col(0)),
                SmaDefinition::new("max", AggFn::Max, col(0)),
            ],
        )
        .unwrap();
        let p = plan(&t, query(10), Some(&minmax_only), &PlannerConfig::default());
        assert_eq!(p.kind, PlanKind::SmaScanGAggr);
        assert!(p.estimate.unwrap().sma_gaggr_cost_ms.is_none());
    }

    #[test]
    fn no_smas_full_scan() {
        let t = make_table(20, true);
        let p = plan(&t, query(10), None, &PlannerConfig::default());
        assert_eq!(p.kind, PlanKind::FullScan);
        assert!(p.estimate.is_none());
        assert!(p.explain().contains("no SMAs"));
    }

    #[test]
    fn all_plans_agree_on_the_answer() {
        for sorted in [true, false] {
            let t = make_table(60, sorted);
            let set = full_set(&t);
            for cutoff in [5i64, 30, 59] {
                let q = query(cutoff);
                let mut answers = Vec::new();
                for kind in [
                    PlanKind::SmaGAggr,
                    PlanKind::SmaScanGAggr,
                    PlanKind::FullScan,
                ] {
                    let p = Plan {
                        table: &t,
                        smas: Some(&set),
                        query: q.clone(),
                        overlay: Vec::new(),
                        budget: None,
                        kind,
                        estimate: None,
                    };
                    answers.push(p.execute().unwrap());
                }
                assert_eq!(answers[0], answers[1], "sorted={sorted} cutoff={cutoff}");
                assert_eq!(answers[1], answers[2], "sorted={sorted} cutoff={cutoff}");
            }
        }
    }

    #[test]
    fn overlay_matches_bulk_load_for_every_plan_kind() {
        // Sealed table holds rows 0..40; the overlay holds rows 40..60.
        // Every plan kind over (sealed + overlay) must equal the full
        // scan over a single 60-row table — including `avg`, which the
        // overlay path rewrites to sum + count(*).
        let sealed = make_table(60, true); // template for tuples
        let all_rows: Vec<Tuple> = {
            let mut t = Vec::new();
            for (_, row) in sealed.scan().unwrap() {
                t.push(row);
            }
            t
        };
        let schema = sealed.schema().clone();
        let mut base = Table::in_memory("t", schema, 1);
        for row in &all_rows[..40] {
            base.append(row).unwrap();
        }
        // Aggregate SMAs covering every spec below, so the forced
        // SmaGAggr kind is actually executable.
        let set = SmaSet::build(
            &base,
            vec![
                SmaDefinition::new("min", AggFn::Min, col(0)),
                SmaDefinition::new("max", AggFn::Max, col(0)),
                SmaDefinition::count("count").group_by(vec![1]),
                SmaDefinition::new("sum_p", AggFn::Sum, col(2)).group_by(vec![1]),
                SmaDefinition::new("sum_k", AggFn::Sum, col(0)).group_by(vec![1]),
                SmaDefinition::new("min_k", AggFn::Min, col(0)).group_by(vec![1]),
            ],
        )
        .unwrap();
        for cutoff in [5i64, 39, 45, 59] {
            for specs in [
                vec![AggSpec::CountStar, AggSpec::Sum(col(2))],
                vec![AggSpec::Avg(col(2)), AggSpec::Min(col(0))],
                vec![AggSpec::Avg(col(0))],
            ] {
                let q = AggregateQuery {
                    pred: BucketPred::cmp(0, CmpOp::Le, cutoff),
                    group_by: vec![1],
                    specs,
                };
                let expected = {
                    let p = plan(&sealed, q.clone(), None, &PlannerConfig::default());
                    p.execute().unwrap()
                };
                for kind in [
                    PlanKind::SmaGAggr,
                    PlanKind::SmaScanGAggr,
                    PlanKind::FullScan,
                ] {
                    let p = Plan {
                        table: &base,
                        smas: Some(&set),
                        query: q.clone(),
                        overlay: Vec::new(),
                        budget: None,
                        kind,
                        estimate: None,
                    }
                    .with_overlay(all_rows[40..].to_vec());
                    assert_eq!(
                        p.execute().unwrap(),
                        expected,
                        "kind={kind:?} cutoff={cutoff}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_overlay_is_a_true_noop_for_every_plan_kind() {
        // `with_overlay(vec![])` must leave the plan exactly as planned —
        // same kind, same rows, same Avg→Sum/Count rewrite, no merge
        // layer — so a fully-flushed streaming warehouse is
        // indistinguishable from a bulk-loaded one.
        let t = make_table(60, true);
        let set = full_set(&t);
        let q = AggregateQuery {
            pred: BucketPred::cmp(0, CmpOp::Le, 10),
            group_by: vec![1],
            specs: vec![
                AggSpec::CountStar,
                AggSpec::Sum(col(2)),
                AggSpec::Avg(col(2)),
            ],
        };
        let baseline = plan(&t, q.clone(), Some(&set), &PlannerConfig::default());
        let kind = baseline.kind;
        let want = baseline.execute().unwrap();
        let wrapped =
            plan(&t, q.clone(), Some(&set), &PlannerConfig::default()).with_overlay(Vec::new());
        assert_eq!(
            wrapped.kind, kind,
            "an empty overlay must not change the plan kind"
        );
        assert_eq!(wrapped.execute().unwrap(), want);
    }

    #[test]
    fn overlay_only_groups_and_empty_overlay() {
        // Groups that exist only in the overlay must appear; an overlay
        // none of whose tuples pass the predicate must change nothing.
        let t = make_table(20, true);
        let set = full_set(&t);
        let q = query(1000);
        let baseline = plan(&t, q.clone(), Some(&set), &PlannerConfig::default())
            .execute()
            .unwrap();
        // 'Z' is a group absent from the sealed table.
        let extra = vec![
            Value::Int(100),
            Value::Char(b'Z'),
            Value::Decimal(Decimal::from_int(7)),
            Value::Str("x".into()),
        ];
        let with_new_group = plan(&t, q.clone(), Some(&set), &PlannerConfig::default())
            .with_overlay(vec![extra.clone()])
            .execute()
            .unwrap();
        assert_eq!(with_new_group.len(), baseline.len() + 1);
        let z = with_new_group.last().unwrap();
        assert_eq!(z[0], Value::Char(b'Z'));
        assert_eq!(z[1], Value::Int(1));
        // Filtered-out overlay tuple: identical to baseline.
        let filtered = plan(&t, query(5), Some(&set), &PlannerConfig::default())
            .with_overlay(vec![extra])
            .execute()
            .unwrap();
        let narrow = plan(&t, query(5), Some(&set), &PlannerConfig::default())
            .execute()
            .unwrap();
        assert_eq!(filtered, narrow);
    }

    /// A full scan over a columnar-converted table must produce the same
    /// rows as before conversion and charge the budget exactly one unit
    /// per data page (columnar buckets charge their range at once, row
    /// buckets page by page — the totals tile `0..page_count` either
    /// way). Every plan kind keeps agreeing after conversion.
    #[test]
    fn columnar_buckets_preserve_full_scan_answers_and_charges() {
        let mut t = make_table(60, true);
        let set = full_set(&t);
        let q = query(30);
        let expected = plan(&t, q.clone(), None, &PlannerConfig::default())
            .execute()
            .unwrap();
        let converted = t.convert_buckets_from(0).unwrap();
        assert!(!converted.is_empty());
        let budget = QueryBudget::unbounded();
        let p = Plan {
            table: &t,
            smas: None,
            query: q.clone(),
            overlay: Vec::new(),
            budget: None,
            kind: PlanKind::FullScan,
            estimate: None,
        }
        .with_budget(&budget);
        assert_eq!(p.execute().unwrap(), expected);
        assert_eq!(budget.pages_charged(), u64::from(t.page_count()));
        for kind in [
            PlanKind::SmaGAggr,
            PlanKind::SmaScanGAggr,
            PlanKind::FullScan,
        ] {
            let p = Plan {
                table: &t,
                smas: Some(&set),
                query: q.clone(),
                overlay: Vec::new(),
                budget: None,
                kind,
                estimate: None,
            };
            assert_eq!(p.execute().unwrap(), expected, "{kind:?}");
        }
    }

    #[test]
    fn hard_breakeven_forces_full_scan() {
        let t = make_table(60, true);
        let set = full_set(&t);
        // Cutoff 8 splits bucket {8,9}: exactly one ambivalent bucket.
        let cfg = PlannerConfig {
            hard_breakeven: Some(0.0),
            ..PlannerConfig::default()
        };
        let p = plan(&t, query(8), Some(&set), &cfg);
        assert_eq!(p.kind, PlanKind::FullScan);
        // Without the hard rule, the cost model picks the SMA plan.
        let p = plan(&t, query(8), Some(&set), &PlannerConfig::default());
        assert_eq!(p.kind, PlanKind::SmaGAggr);
    }

    #[test]
    fn clustered_ambivalence_prices_sequentially() {
        use Grade::*;
        let cm = CostModel {
            seq_read_ms: 1.0,
            rand_read_ms: 10.0,
            write_ms: 0.0,
            failed_read_ms: 0.0,
        };
        // Contiguous run: 1 seek + 3 sequential.
        let run = vec![
            Disqualifies,
            Ambivalent,
            Ambivalent,
            Ambivalent,
            Disqualifies,
        ];
        let clustered = bucket_read_cost(&run, 1, &cm, |g| g == Ambivalent);
        assert!((clustered - 12.0).abs() < 1e-9);
        // Same count, scattered: 3 seeks.
        let scattered = vec![
            Ambivalent,
            Disqualifies,
            Ambivalent,
            Disqualifies,
            Ambivalent,
        ];
        let s = bucket_read_cost(&scattered, 1, &cm, |g| g == Ambivalent);
        assert!((s - 30.0).abs() < 1e-9);
        // Multi-page buckets amortize the seek.
        let one = bucket_read_cost(&[Ambivalent], 4, &cm, |g| g == Ambivalent);
        assert!((one - 13.0).abs() < 1e-9);
    }
    #[test]
    fn budget_page_cap_cuts_off_every_plan_kind() {
        use sma_storage::BudgetExceeded;
        // Cutoff 30 on sorted data leaves an ambivalent bucket, so even
        // the SMA plan must touch at least one data page; a zero-page cap
        // therefore trips every strategy with a structured error.
        let t = make_table(60, true);
        let set = full_set(&t);
        let q = query(30);
        for kind in [
            PlanKind::SmaGAggr,
            PlanKind::SmaScanGAggr,
            PlanKind::FullScan,
        ] {
            let budget = QueryBudget::unbounded().with_page_cap(0);
            let p = Plan {
                table: &t,
                smas: Some(&set),
                query: q.clone(),
                overlay: Vec::new(),
                budget: None,
                kind,
                estimate: None,
            }
            .with_budget(&budget);
            let err = p.execute().unwrap_err();
            assert!(
                matches!(err, ExecError::Budget(BudgetExceeded::Pages { .. })),
                "{kind:?}: {err}"
            );
        }
    }

    #[test]
    fn budget_deadline_and_cancel_cut_off_every_plan_kind() {
        use sma_storage::BudgetExceeded;
        use std::time::Duration;
        let t = make_table(60, true);
        let set = full_set(&t);
        for kind in [
            PlanKind::SmaGAggr,
            PlanKind::SmaScanGAggr,
            PlanKind::FullScan,
        ] {
            let expired = QueryBudget::unbounded().with_deadline(Duration::ZERO);
            let p = Plan {
                table: &t,
                smas: Some(&set),
                query: query(30),
                overlay: Vec::new(),
                budget: None,
                kind,
                estimate: None,
            }
            .with_budget(&expired);
            let err = p.execute().unwrap_err();
            assert!(
                matches!(err, ExecError::Budget(BudgetExceeded::Deadline { .. })),
                "{kind:?}: {err}"
            );

            let cancelled = QueryBudget::unbounded();
            cancelled.cancel();
            let p = Plan {
                table: &t,
                smas: Some(&set),
                query: query(30),
                overlay: Vec::new(),
                budget: None,
                kind,
                estimate: None,
            }
            .with_budget(&cancelled);
            let err = p.execute().unwrap_err();
            assert!(
                matches!(err, ExecError::Budget(BudgetExceeded::Cancelled)),
                "{kind:?}: {err}"
            );
        }
    }

    #[test]
    fn unbounded_budget_is_invisible_and_charges_match_pages() {
        let t = make_table(60, true);
        let set = full_set(&t);
        let q = query(30);
        let budget = QueryBudget::unbounded();
        let with_budget = Plan {
            table: &t,
            smas: Some(&set),
            query: q.clone(),
            overlay: Vec::new(),
            budget: None,
            kind: PlanKind::FullScan,
            estimate: None,
        }
        .with_budget(&budget)
        .execute()
        .unwrap();
        let bare = Plan {
            table: &t,
            smas: Some(&set),
            query: q,
            overlay: Vec::new(),
            budget: None,
            kind: PlanKind::FullScan,
            estimate: None,
        }
        .execute()
        .unwrap();
        assert_eq!(with_budget, bare);
        // A full scan charges exactly one unit per data page: the same
        // logical-page count IoStats would tally single-threaded.
        assert_eq!(budget.pages_charged(), u64::from(t.page_count()));
    }
}
