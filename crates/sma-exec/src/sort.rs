//! Order-by and limit operators.
//!
//! Query 1 ends with `ORDER BY L_RETURNFLAG, L_LINESTATUS`; the GAggr
//! operators happen to emit group-key order already, but a complete
//! algebra needs explicit ordering (and its usual companion, `LIMIT`) for
//! plans where the order isn't free.

use sma_types::{Tuple, Value};

use crate::op::{ExecError, PhysicalOp};

/// Sort direction for one key column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending (SQL default).
    Asc,
    /// Descending.
    Desc,
}

/// A pipeline-breaking sort by a list of `(column, order)` keys.
/// Comparison uses [`Value`]'s storage order, which coincides with SQL
/// order for same-typed columns; `Null` sorts first.
pub struct Sort<'a> {
    child: Box<dyn PhysicalOp + 'a>,
    keys: Vec<(usize, SortOrder)>,
    rows: Vec<Tuple>,
    pos: usize,
}

impl<'a> Sort<'a> {
    /// Creates a sort of `child`'s output by `keys`, significant first.
    pub fn new(child: Box<dyn PhysicalOp + 'a>, keys: Vec<(usize, SortOrder)>) -> Sort<'a> {
        Sort {
            child,
            keys,
            rows: Vec::new(),
            pos: 0,
        }
    }
}

impl PhysicalOp for Sort<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.rows.clear();
        self.pos = 0;
        self.child.open()?;
        while let Some(t) = self.child.next()? {
            self.rows.push(t);
        }
        self.child.close();
        let keys = self.keys.clone();
        self.rows.sort_by(|a, b| {
            for &(col, order) in &keys {
                let (x, y): (&Value, &Value) = (&a[col], &b[col]);
                let ord = x.cmp(y);
                let ord = match order {
                    SortOrder::Asc => ord,
                    SortOrder::Desc => ord.reverse(),
                };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        if self.pos < self.rows.len() {
            let t = std::mem::take(&mut self.rows[self.pos]);
            self.pos += 1;
            Ok(Some(t))
        } else {
            Ok(None)
        }
    }

    fn close(&mut self) {
        self.rows.clear();
    }

    fn describe(&self) -> String {
        format!("Sort({:?}) <- {}", self.keys, self.child.describe())
    }
}

/// Passes through at most `n` tuples.
pub struct Limit<'a> {
    child: Box<dyn PhysicalOp + 'a>,
    n: usize,
    emitted: usize,
}

impl<'a> Limit<'a> {
    /// Creates a limit of `n` over `child`.
    pub fn new(child: Box<dyn PhysicalOp + 'a>, n: usize) -> Limit<'a> {
        Limit {
            child,
            n,
            emitted: 0,
        }
    }
}

impl PhysicalOp for Limit<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.emitted = 0;
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        if self.emitted >= self.n {
            return Ok(None);
        }
        match self.child.next()? {
            Some(t) => {
                self.emitted += 1;
                Ok(Some(t))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self) {
        self.child.close();
    }

    fn describe(&self) -> String {
        format!("Limit({}) <- {}", self.n, self.child.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::SeqScan;
    use crate::op::collect;
    use sma_storage::Table;
    use sma_types::{Column, DataType, Schema};
    use std::sync::Arc;

    fn table(rows: &[(i64, u8)]) -> Table {
        let schema = Arc::new(Schema::new(vec![
            Column::new("K", DataType::Int),
            Column::new("G", DataType::Char),
        ]));
        let mut t = Table::in_memory("t", schema, 1);
        for &(k, g) in rows {
            t.append(&vec![Value::Int(k), Value::Char(g)]).unwrap();
        }
        t
    }

    #[test]
    fn sorts_single_key_asc_and_desc() {
        let t = table(&[(3, b'a'), (1, b'b'), (2, b'c')]);
        let mut s = Sort::new(Box::new(SeqScan::new(&t)), vec![(0, SortOrder::Asc)]);
        let ks: Vec<i64> = collect(&mut s)
            .unwrap()
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        assert_eq!(ks, vec![1, 2, 3]);
        let mut s = Sort::new(Box::new(SeqScan::new(&t)), vec![(0, SortOrder::Desc)]);
        let ks: Vec<i64> = collect(&mut s)
            .unwrap()
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        assert_eq!(ks, vec![3, 2, 1]);
    }

    #[test]
    fn multi_key_sort() {
        let t = table(&[(1, b'z'), (2, b'a'), (1, b'a'), (2, b'z')]);
        let mut s = Sort::new(
            Box::new(SeqScan::new(&t)),
            vec![(0, SortOrder::Asc), (1, SortOrder::Desc)],
        );
        let rows = collect(&mut s).unwrap();
        let pairs: Vec<(i64, u8)> = rows
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_char().unwrap()))
            .collect();
        assert_eq!(pairs, vec![(1, b'z'), (1, b'a'), (2, b'z'), (2, b'a')]);
    }

    #[test]
    fn nulls_sort_first() {
        let schema = Arc::new(Schema::new(vec![Column::new("K", DataType::Int)]));
        let mut t = Table::in_memory("t", schema, 1);
        t.append(&vec![Value::Int(2)]).unwrap();
        t.append(&vec![Value::Null]).unwrap();
        t.append(&vec![Value::Int(1)]).unwrap();
        let mut s = Sort::new(Box::new(SeqScan::new(&t)), vec![(0, SortOrder::Asc)]);
        let rows = collect(&mut s).unwrap();
        assert_eq!(rows[0][0], Value::Null);
        assert_eq!(rows[1][0], Value::Int(1));
    }

    #[test]
    fn limit_truncates_and_reopens() {
        let t = table(&[(1, b'a'), (2, b'b'), (3, b'c')]);
        let mut l = Limit::new(Box::new(SeqScan::new(&t)), 2);
        assert_eq!(collect(&mut l).unwrap().len(), 2);
        assert_eq!(collect(&mut l).unwrap().len(), 2, "reopen resets");
        let mut l0 = Limit::new(Box::new(SeqScan::new(&t)), 0);
        assert!(collect(&mut l0).unwrap().is_empty());
        let mut big = Limit::new(Box::new(SeqScan::new(&t)), 100);
        assert_eq!(collect(&mut big).unwrap().len(), 3);
    }

    #[test]
    fn top_k_composition() {
        let t = table(&[(5, b'a'), (9, b'b'), (1, b'c'), (7, b'd')]);
        let sort = Sort::new(Box::new(SeqScan::new(&t)), vec![(0, SortOrder::Desc)]);
        let mut topk = Limit::new(Box::new(sort), 2);
        let ks: Vec<i64> = collect(&mut topk)
            .unwrap()
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        assert_eq!(ks, vec![9, 7]);
        assert!(topk.describe().contains("Sort"));
    }
}
