//! End-to-end TPC-D Query 4 execution — every SMA technique at once.
//!
//! The plan exploits three distinct SMA opportunities:
//!
//! 1. **Inner selection with the `A < B` rule (§3.1)**: LINEITEM is
//!    scanned with `SmaScan` under `L_COMMITDATE < L_RECEIPTDATE`; min/max
//!    SMAs on both date columns let whole buckets resolve (in TPC-D data
//!    most buckets are ambivalent for this predicate, but the machinery is
//!    exact and sound — and receives real skips when commit dates are
//!    systematically late or early).
//! 2. **Range grading on ORDERS**: `O_ORDERDATE` min/max SMAs disqualify
//!    every bucket outside the three-month window before any I/O.
//! 3. **Existential semi-join**: surviving ORDERS tuples are checked for a
//!    late line item via a hash set built from the (already SMA-filtered)
//!    LINEITEM side.

use std::collections::{BTreeMap, BTreeSet};

use sma_core::{BucketPred, CmpOp, Grade, SmaSet};
use sma_storage::{IoStats, Table};
use sma_types::Value;

use crate::op::{ExecError, PhysicalOp};
use crate::scan::{ScanCounters, SmaScan};

pub use sma_tpcd_params::Q4Params;

/// Parameter struct mirrored from `sma_tpcd::Q4Params` (this crate does
/// not depend on the generator at build time).
mod sma_tpcd_params {
    use sma_types::Date;

    /// Query 4 substitution parameters (see `sma_tpcd::Q4Params`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Q4Params {
        /// First order date included.
        pub date: Date,
    }

    impl Default for Q4Params {
        fn default() -> Q4Params {
            Q4Params {
                // sma-lint: allow(P2-expect) -- compile-time constant date; cannot fail
                date: Date::from_ymd(1993, 7, 1).expect("valid constant"),
            }
        }
    }

    impl Q4Params {
        /// Exclusive upper order-date bound: `date + 3 months`.
        pub fn date_hi(&self) -> Date {
            let (y, m, d) = self.date.ymd();
            let (y, m) = if m > 9 { (y + 1, m - 9) } else { (y, m + 3) };
            Date::from_ymd(y, m, d).unwrap_or_else(|_| self.date.add_days(91))
        }
    }
}

/// The outcome of a Query 4 run.
#[derive(Debug)]
pub struct Q4Execution {
    /// `(O_ORDERPRIORITY, COUNT(*))`, ordered by priority.
    pub rows: Vec<(String, i64)>,
    /// Bucket counters from the LINEITEM-side `SmaScan`.
    pub lineitem_scan: ScanCounters,
    /// Buckets of ORDERS skipped / read.
    pub orders_scan: ScanCounters,
    /// Combined buffer-pool traffic (both tables).
    pub io: IoStats,
    /// Wall-clock execution time.
    pub elapsed: std::time::Duration,
}

/// Runs Query 4. `lineitem_smas` should hold min/max SMAs on
/// `L_COMMITDATE`/`L_RECEIPTDATE`; `orders_smas` min/max on `O_ORDERDATE`.
/// Pass empty sets to run the naive plan — the operators degrade to full
/// scans (every bucket ambivalent). A budget, when given, is checked and
/// charged on every page read on both tables.
pub fn run_query4(
    orders: &Table,
    lineitem: &Table,
    orders_smas: &SmaSet,
    lineitem_smas: &SmaSet,
    p: &Q4Params,
    budget: Option<&sma_storage::QueryBudget>,
) -> Result<Q4Execution, ExecError> {
    let o_schema = orders.schema();
    let l_schema = lineitem.schema();
    let need = |schema: &sma_types::Schema, name: &str| -> Result<usize, ExecError> {
        schema
            .index_of(name)
            .ok_or_else(|| ExecError::Plan(format!("missing column {name}")))
    };
    let o_orderdate = need(o_schema, "O_ORDERDATE")?;
    let o_orderkey = need(o_schema, "O_ORDERKEY")?;
    let o_priority = need(o_schema, "O_ORDERPRIORITY")?;
    let l_orderkey = need(l_schema, "L_ORDERKEY")?;
    let l_commit = need(l_schema, "L_COMMITDATE")?;
    let l_receipt = need(l_schema, "L_RECEIPTDATE")?;

    orders.reset_io_stats();
    lineitem.reset_io_stats();
    let started = sma_storage::Stopwatch::start();

    // Phase 1: late order keys from LINEITEM via SmaScan under
    // L_COMMITDATE < L_RECEIPTDATE (the §3.1 A < B rule).
    let late_pred = BucketPred::col_cmp(l_commit, CmpOp::Lt, l_receipt);
    let mut l_scan = SmaScan::new(lineitem, late_pred, lineitem_smas);
    if let Some(b) = budget {
        l_scan = l_scan.with_budget(b);
    }
    let mut late: BTreeSet<i64> = BTreeSet::new();
    l_scan.open()?;
    while let Some(t) = l_scan.next()? {
        if let Some(k) = t[l_orderkey].as_int() {
            late.insert(k);
        }
    }
    l_scan.close();
    let lineitem_scan = l_scan.counters();

    // Phase 2: graded scan of ORDERS in the date window, semi-join against
    // the late set, grouped count by priority.
    let window = BucketPred::And(vec![
        BucketPred::cmp(o_orderdate, CmpOp::Ge, Value::Date(p.date)),
        BucketPred::cmp(o_orderdate, CmpOp::Lt, Value::Date(p.date_hi())),
    ]);
    let mut groups: BTreeMap<String, i64> = BTreeMap::new();
    let mut orders_counters = ScanCounters::default();
    for b in 0..orders.bucket_count() {
        let grade = window.grade(b, orders_smas);
        match grade {
            Grade::Disqualifies => {
                orders_counters.disqualified += 1;
                continue;
            }
            Grade::Qualifies => orders_counters.qualified += 1,
            Grade::Ambivalent => orders_counters.ambivalent += 1,
        }
        if let Some(bg) = budget {
            bg.check()?;
            bg.charge(orders.bucket_range(b).len() as u64)?;
        }
        for (_, t) in orders.scan_bucket(b)? {
            if grade != Grade::Qualifies && !window.eval_tuple(&t) {
                continue;
            }
            let Some(key) = t[o_orderkey].as_int() else {
                continue;
            };
            if !late.contains(&key) {
                continue;
            }
            let priority = t[o_priority].as_str().unwrap_or("").to_string();
            *groups.entry(priority).or_default() += 1;
        }
    }

    let elapsed = started.elapsed();
    let mut io = orders.io_stats();
    let l_io = lineitem.io_stats();
    io.logical_reads += l_io.logical_reads;
    io.physical_reads += l_io.physical_reads;
    io.sequential_reads += l_io.sequential_reads;
    io.random_reads += l_io.random_reads;
    io.physical_writes += l_io.physical_writes;
    Ok(Q4Execution {
        rows: groups.into_iter().collect(),
        lineitem_scan,
        orders_scan: orders_counters,
        io,
        elapsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sma_core::{col, AggFn, SmaDefinition};
    use sma_storage::MemStore;
    use sma_tpcd::{
        generate, load_lineitem, load_orders, q4_reference, schema::lineitem as li,
        schema::orders as o, Clustering, GenConfig,
    };

    fn setup(
        clustering: Clustering,
    ) -> (
        Table,
        Table,
        SmaSet,
        SmaSet,
        Vec<sma_tpcd::Order>,
        Vec<sma_tpcd::LineItem>,
    ) {
        let cfg = GenConfig {
            orders: 1200,
            ..GenConfig::tiny(clustering)
        };
        let (mut orders, items) = generate(&cfg);
        // Orders arrive in date order in a TOC-clustered warehouse.
        orders.sort_by_key(|ord| ord.orderdate);
        let orders_table = load_orders(&orders, 1, 1 << 14);
        let lineitem_table = load_lineitem(&items, Box::new(MemStore::new()), 1, 1 << 14);
        let orders_smas = SmaSet::build(
            &orders_table,
            vec![
                SmaDefinition::new("min_od", AggFn::Min, col(o::ORDERDATE)),
                SmaDefinition::new("max_od", AggFn::Max, col(o::ORDERDATE)),
            ],
        )
        .unwrap();
        let lineitem_smas = SmaSet::build(
            &lineitem_table,
            vec![
                SmaDefinition::new("min_cd", AggFn::Min, col(li::COMMITDATE)),
                SmaDefinition::new("max_cd", AggFn::Max, col(li::COMMITDATE)),
                SmaDefinition::new("min_rd", AggFn::Min, col(li::RECEIPTDATE)),
                SmaDefinition::new("max_rd", AggFn::Max, col(li::RECEIPTDATE)),
            ],
        )
        .unwrap();
        (
            orders_table,
            lineitem_table,
            orders_smas,
            lineitem_smas,
            orders,
            items,
        )
    }

    #[test]
    fn matches_the_oracle() {
        let (ot, lt, osmas, lsmas, orders, items) = setup(Clustering::SortedByShipdate);
        let p = Q4Params::default();
        let run = run_query4(&ot, &lt, &osmas, &lsmas, &p, None).unwrap();
        let oracle = q4_reference(&orders, &items, &sma_tpcd::Q4Params { date: p.date });
        let got: Vec<(String, i64)> = run.rows.clone();
        let want: Vec<(String, i64)> = oracle
            .into_iter()
            .map(|r| (r.orderpriority, r.order_count))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn orders_window_skips_buckets() {
        let (ot, lt, osmas, lsmas, _, _) = setup(Clustering::SortedByShipdate);
        let run = run_query4(&ot, &lt, &osmas, &lsmas, &Q4Params::default(), None).unwrap();
        let c = run.orders_scan;
        // A 3-month window over a 6.5-year ordered file: ~96 % skipped.
        assert!(
            c.disqualified as f64 > 0.8 * c.total() as f64,
            "orders scan counters {c:?}"
        );
    }

    #[test]
    fn empty_smas_degrade_to_full_scans_with_same_answer() {
        let (ot, lt, osmas, lsmas, _, _) = setup(Clustering::Uniform);
        let p = Q4Params::default();
        let fast = run_query4(&ot, &lt, &osmas, &lsmas, &p, None).unwrap();
        let empty = SmaSet::new();
        let slow = run_query4(&ot, &lt, &empty, &empty, &p, None).unwrap();
        assert_eq!(fast.rows, slow.rows);
        assert_eq!(slow.orders_scan.disqualified, 0);
        assert!(fast.io.logical_reads <= slow.io.logical_reads);
    }

    #[test]
    fn budget_cap_aborts_the_query() {
        let (ot, lt, osmas, lsmas, _, _) = setup(Clustering::Uniform);
        let budget = sma_storage::QueryBudget::unbounded().with_page_cap(0);
        let err = run_query4(
            &ot,
            &lt,
            &osmas,
            &lsmas,
            &Q4Params::default(),
            Some(&budget),
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::Budget(_)), "got {err:?}");
    }

    #[test]
    fn window_outside_domain_reads_no_orders() {
        let (ot, lt, osmas, lsmas, _, _) = setup(Clustering::SortedByShipdate);
        let p = Q4Params {
            date: sma_types::Date::from_ymd(2005, 1, 1).unwrap(),
        };
        let run = run_query4(&ot, &lt, &osmas, &lsmas, &p, None).unwrap();
        assert!(run.rows.is_empty());
        assert_eq!(run.orders_scan.disqualified, ot.bucket_count() as u64);
    }
}
