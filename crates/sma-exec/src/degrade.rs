//! Degradation accounting for self-healing execution.
//!
//! SMAs are redundant derived data (§3 of the paper: every entry is
//! recomputable from its bucket), so a damaged SMA entry never has to fail
//! a query — the operators demote the affected bucket to a plain scan of
//! the base table and keep going. This module holds the record of what was
//! given up: which buckets lost their SMA fast path and why, plus how many
//! transient-I/O retries the storage layer spent underneath. Only base
//! table damage remains a hard error, because base pages are primary data
//! with nothing to rebuild them from.

/// What a resilient operator had to give up during one execution.
///
/// Carried inside [`crate::ScanCounters`] and merged deterministically
/// across morsel workers: bucket lists are kept sorted and deduplicated,
/// so the report is identical at any thread count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradationReport {
    /// Buckets answered by scanning the base table instead of the SMA
    /// fast path (union of the quarantined and inconsistent lists).
    pub demoted_buckets: Vec<u32>,
    /// Demoted because a consulted SMA had the bucket quarantined
    /// (possibly-garbage entries after detected corruption).
    pub quarantined_buckets: Vec<u32>,
    /// Demoted because the SMA set contradicted itself mid-merge: an
    /// aggregate SMA materialized values the count SMA knows nothing
    /// about, so group existence could not be derived from entries alone.
    pub inconsistent_buckets: Vec<u32>,
    /// Transient-I/O read retries the buffer pool spent while this
    /// operator executed (successful recoveries — give-ups surface as
    /// errors, not degradation).
    pub retries_spent: u64,
}

impl DegradationReport {
    /// True when execution ran entirely on the healthy fast path: no
    /// bucket demoted and no retry spent.
    pub fn is_empty(&self) -> bool {
        self.demoted_buckets.is_empty()
            && self.quarantined_buckets.is_empty()
            && self.inconsistent_buckets.is_empty()
            && self.retries_spent == 0
    }

    /// Records a bucket demoted because of quarantined SMA entries.
    pub fn note_quarantined(&mut self, bucket: u32) {
        self.demoted_buckets.push(bucket);
        self.quarantined_buckets.push(bucket);
    }

    /// Records a bucket demoted because of an inconsistent SMA set.
    pub fn note_inconsistent(&mut self, bucket: u32) {
        self.demoted_buckets.push(bucket);
        self.inconsistent_buckets.push(bucket);
    }

    /// Merges another worker's report into this one and re-normalizes, so
    /// the combined report is independent of morsel boundaries and worker
    /// completion order.
    pub fn merge(&mut self, other: &DegradationReport) {
        self.demoted_buckets
            .extend_from_slice(&other.demoted_buckets);
        self.quarantined_buckets
            .extend_from_slice(&other.quarantined_buckets);
        self.inconsistent_buckets
            .extend_from_slice(&other.inconsistent_buckets);
        self.retries_spent += other.retries_spent;
        self.normalize();
    }

    /// Sorts and deduplicates the bucket lists.
    pub fn normalize(&mut self) {
        for list in [
            &mut self.demoted_buckets,
            &mut self.quarantined_buckets,
            &mut self.inconsistent_buckets,
        ] {
            list.sort_unstable();
            list.dedup();
        }
    }
}

impl std::fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "healthy (no degradation)");
        }
        write!(
            f,
            "{} bucket(s) demoted to base scan ({} quarantined, {} inconsistent), {} retry(ies) spent",
            self.demoted_buckets.len(),
            self.quarantined_buckets.len(),
            self.inconsistent_buckets.len(),
            self.retries_spent
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_order_independent_and_dedups() {
        let mut a = DegradationReport::default();
        a.note_quarantined(5);
        a.note_quarantined(1);
        a.retries_spent = 2;
        let mut b = DegradationReport::default();
        b.note_inconsistent(3);
        b.note_quarantined(5);
        b.retries_spent = 1;

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.demoted_buckets, vec![1, 3, 5]);
        assert_eq!(ab.quarantined_buckets, vec![1, 5]);
        assert_eq!(ab.inconsistent_buckets, vec![3]);
        assert_eq!(ab.retries_spent, 3);
    }

    #[test]
    fn emptiness_counts_retries() {
        let mut r = DegradationReport::default();
        assert!(r.is_empty());
        r.retries_spent = 1;
        assert!(!r.is_empty());
        assert!(r.to_string().contains("1 retry"));
        assert!(DegradationReport::default().to_string().contains("healthy"));
    }
}
