//! The `SMA_Scan` operator — Fig. 6 of the paper.
//!
//! Scans a relation under a selection predicate, using SMAs to grade each
//! bucket first: disqualified buckets are *skipped without I/O*, qualified
//! buckets return their tuples without evaluating the predicate, and only
//! ambivalent buckets pay per-tuple predicate evaluation.

use sma_core::{BucketPred, Grade, SmaSet};
use sma_storage::{QueryBudget, SlotId, Table, TupleId};
use sma_types::{RowLayout, Tuple};

use crate::colkernel::filter_block;
use crate::degrade::DegradationReport;
use crate::op::{ExecError, PhysicalOp};
use crate::parallel::{morsels, Parallelism};

/// Bucket-level counters a finished scan reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanCounters {
    /// Buckets whose every tuple qualified (read, no predicate evaluation).
    pub qualified: u64,
    /// Buckets skipped without reading any data page.
    pub disqualified: u64,
    /// Buckets read and filtered tuple-by-tuple.
    pub ambivalent: u64,
    /// What the resilience layer had to give up: buckets demoted to base
    /// scans and transient-I/O retries spent (empty on a healthy run).
    pub degradation: DegradationReport,
}

impl ScanCounters {
    /// Total buckets graded.
    pub fn total(&self) -> u64 {
        self.qualified + self.disqualified + self.ambivalent
    }
}

/// The SMA-driven selection scan.
pub struct SmaScan<'a> {
    table: &'a Table,
    pred: BucketPred,
    smas: &'a SmaSet,
    curr_grade: Grade,
    next_bucket: u32,
    /// Byte offsets of the row codec, computed once so ambivalent buckets
    /// can be filtered on zero-copy views.
    layout: RowLayout,
    /// Tuples of the current bucket. Ambivalent buckets arrive already
    /// filtered (only passing tuples were materialized); qualifying
    /// buckets arrive whole, with no predicate evaluation either way.
    buffer: Vec<(TupleId, Tuple)>,
    pos: usize,
    counters: ScanCounters,
    parallelism: Parallelism,
    /// Grades precomputed in `open` by worker threads (empty on the serial
    /// path, which grades lazily bucket by bucket).
    grades: Vec<Grade>,
    /// Pool retry counter at `open`, so `counters` reports only the
    /// retries this execution spent.
    retries_at_open: u64,
    /// Cooperative per-query budget, checked once per bucket and charged
    /// for every data page the scan is about to read.
    budget: Option<&'a QueryBudget>,
}

impl<'a> SmaScan<'a> {
    /// Creates the operator (the constructor signature of Fig. 6:
    /// `SMA_Scan(R, pred, smas)`).
    pub fn new(table: &'a Table, pred: BucketPred, smas: &'a SmaSet) -> SmaScan<'a> {
        SmaScan {
            table,
            pred,
            smas,
            curr_grade: Grade::Ambivalent,
            next_bucket: 0,
            layout: RowLayout::new(table.schema()),
            buffer: Vec::new(),
            pos: 0,
            counters: ScanCounters::default(),
            parallelism: Parallelism::default(),
            grades: Vec::new(),
            retries_at_open: 0,
            budget: None,
        }
    }

    /// Sets the number of worker threads `open` uses to grade buckets
    /// (default: one per available core). Grading is pure in-memory
    /// arithmetic over SMA entries, so it parallelizes freely; page I/O
    /// still happens serially in `next`, in bucket order, so the scan's
    /// output, counters, and I/O trace are identical at any setting.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> SmaScan<'a> {
        self.parallelism = parallelism;
        self
    }

    /// Attaches a cooperative budget. The scan checks it at every bucket
    /// boundary (so deadlines and cancellation are honored even across
    /// long disqualified runs) and charges it the bucket's page count
    /// before reading a qualifying or ambivalent bucket — the same unit
    /// the pool's `logical_reads` counter tallies.
    pub fn with_budget(mut self, budget: &'a QueryBudget) -> SmaScan<'a> {
        self.budget = Some(budget);
        self
    }

    /// Bucket-level counters (meaningful once the scan is drained).
    pub fn counters(&self) -> ScanCounters {
        self.counters.clone()
    }

    /// Fig. 6's `getBucket`: advances to the next qualifying or ambivalent
    /// bucket and reads it. Returns `false` when no buckets remain.
    fn get_bucket(&mut self) -> Result<bool, ExecError> {
        loop {
            if self.next_bucket >= self.table.bucket_count() {
                return Ok(false);
            }
            let bucket = self.next_bucket;
            self.next_bucket += 1;
            if let Some(b) = self.budget {
                b.check()?;
            }
            self.curr_grade = match self.grades.get(bucket as usize) {
                Some(&g) => g,
                None => self.pred.grade(bucket, self.smas),
            };
            match self.curr_grade {
                Grade::Disqualifies => {
                    self.counters.disqualified += 1;
                    continue;
                }
                Grade::Qualifies => self.counters.qualified += 1,
                Grade::Ambivalent => self.counters.ambivalent += 1,
            }
            // A quarantined bucket grades Ambivalent (the provider refuses
            // to answer for it), so it lands here and is read and filtered
            // from the base table — correct, just slower. Record the
            // demotion from the SMA fast path.
            if self.smas.is_bucket_quarantined(bucket) {
                self.counters.degradation.note_quarantined(bucket);
            }
            self.buffer.clear();
            self.pos = 0;
            if let Some(b) = self.budget {
                // Both branches below read the whole bucket.
                b.charge(self.table.bucket_range(bucket).len() as u64)?;
            }
            if self.curr_grade == Grade::Qualifies {
                // Every tuple is wanted: plain materializing read.
                for page in self.table.bucket_range(bucket) {
                    self.table.scan_page_into(page, &mut self.buffer)?;
                }
            } else if let Some(block) = self.table.columnar_bucket(bucket)? {
                // Ambivalent, columnar layout: the batch kernels evaluate
                // the predicate over the column arrays and only survivors
                // are materialized. Decoding the block reads the bucket's
                // whole page range once — the same pages, in the same
                // order, as the row branch below — and the synthetic
                // tuple ids (first page of the bucket, slot = row index)
                // are exactly what `for_each_in_bucket` reports for a
                // columnar bucket, so output and I/O trace are unchanged.
                let first = self.table.bucket_range(bucket).start;
                for &row in filter_block(&block, &self.pred).rows() {
                    let slot = SlotId::try_from(row).map_err(|_| {
                        ExecError::Plan(format!(
                            "columnar bucket {bucket} row {row} exceeds the slot range"
                        ))
                    })?;
                    let tuple = block.row(row).ok_or_else(|| {
                        ExecError::Plan(format!(
                            "columnar bucket {bucket} row {row} vanished mid-scan"
                        ))
                    })?;
                    self.buffer.push((TupleId { page: first, slot }, tuple));
                }
            } else {
                // Ambivalent: evaluate the predicate on zero-copy views
                // straight out of the page frames and materialize only the
                // tuples that pass. Pages are visited in the same order as
                // the materializing read, so the I/O trace is unchanged.
                let table = self.table;
                let layout = &self.layout;
                let pred = &self.pred;
                let buffer = &mut self.buffer;
                table.for_each_in_bucket::<ExecError, _>(bucket, |tid, image| {
                    let row = layout.view(image)?;
                    if pred.eval_view(&row)? {
                        buffer.push((tid, row.materialize()?));
                    }
                    Ok(())
                })?;
            }
            self.counters.degradation.retries_spent = self
                .table
                .io_stats()
                .retried_reads
                .saturating_sub(self.retries_at_open);
            return Ok(true);
        }
    }
}

impl PhysicalOp for SmaScan<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.next_bucket = 0;
        self.buffer.clear();
        self.pos = 0;
        self.counters = ScanCounters::default();
        self.grades.clear();
        self.retries_at_open = self.table.io_stats().retried_reads;
        let n_buckets = self.table.bucket_count();
        let threads = self.parallelism.get().min(n_buckets.max(1) as usize);
        if threads > 1 {
            let pred = &self.pred;
            let smas = self.smas;
            let parts: Result<Vec<Vec<Grade>>, ExecError> = std::thread::scope(|scope| {
                let handles: Vec<_> = morsels(n_buckets, threads)
                    .into_iter()
                    .map(|r| {
                        scope.spawn(move || r.map(|b| pred.grade(b, smas)).collect::<Vec<Grade>>())
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join()
                            .map_err(|_| ExecError::Plan("grading worker panicked".into()))
                    })
                    .collect()
            });
            self.grades = parts?.into_iter().flatten().collect();
        }
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        loop {
            if self.pos < self.buffer.len() {
                let idx = self.pos;
                self.pos += 1;
                return Ok(Some(std::mem::take(&mut self.buffer[idx].1)));
            }
            if !self.get_bucket()? {
                return Ok(None);
            }
        }
    }

    fn close(&mut self) {
        self.buffer.clear();
    }

    fn describe(&self) -> String {
        format!(
            "SmaScan({}, pred={:?}, smas={})",
            self.table.name(),
            self.pred,
            self.smas.smas().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::{Filter, SeqScan};
    use crate::op::collect;
    use sma_core::{col, AggFn, CmpOp, SmaDefinition};
    use sma_types::{Column, DataType, Schema, Value};
    use std::sync::Arc;

    /// Sorted table: value = index, 2 tuples per page, 1 page per bucket.
    fn sorted_table(n: i64) -> Table {
        let schema = Arc::new(Schema::new(vec![
            Column::new("K", DataType::Int),
            Column::new("PAD", DataType::Str),
        ]));
        let mut t = Table::in_memory("t", schema, 1);
        let pad = "p".repeat(1800);
        for k in 0..n {
            t.append(&vec![Value::Int(k), Value::Str(pad.clone())])
                .unwrap();
        }
        t
    }

    fn minmax(t: &Table) -> SmaSet {
        SmaSet::build(
            t,
            vec![
                SmaDefinition::new("min", AggFn::Min, col(0)),
                SmaDefinition::new("max", AggFn::Max, col(0)),
            ],
        )
        .unwrap()
    }

    fn keys(rows: &[Tuple]) -> Vec<i64> {
        rows.iter().map(|r| r[0].as_int().unwrap()).collect()
    }

    #[test]
    fn matches_seqscan_filter_on_every_cutoff() {
        let t = sorted_table(40);
        let smas = minmax(&t);
        for c in [-1i64, 0, 1, 7, 20, 38, 39, 100] {
            for op in [CmpOp::Le, CmpOp::Lt, CmpOp::Ge, CmpOp::Gt, CmpOp::Eq] {
                let pred = BucketPred::cmp(0, op, c);
                let mut sma_scan = SmaScan::new(&t, pred.clone(), &smas);
                let fast = collect(&mut sma_scan).unwrap();
                let mut slow_op = Filter::new(Box::new(SeqScan::new(&t)), pred);
                let slow = collect(&mut slow_op).unwrap();
                assert_eq!(keys(&fast), keys(&slow), "op {op:?} cutoff {c}");
            }
        }
    }

    #[test]
    fn skips_disqualified_buckets_without_io() {
        let t = sorted_table(40); // 20 buckets
        let smas = minmax(&t);
        t.reset_io_stats();
        let pred = BucketPred::cmp(0, CmpOp::Le, 5i64); // first 3 buckets only
        let mut scan = SmaScan::new(&t, pred, &smas);
        let rows = collect(&mut scan).unwrap();
        assert_eq!(rows.len(), 6);
        let c = scan.counters();
        assert_eq!(c.total(), 20);
        assert_eq!(c.disqualified, 17);
        assert_eq!(c.qualified + c.ambivalent, 3);
        // Only the 3 surviving pages were touched.
        assert_eq!(t.io_stats().logical_reads, 3);
    }

    #[test]
    fn qualifying_buckets_bypass_predicate() {
        let t = sorted_table(8);
        let smas = minmax(&t);
        // Cutoff splits bucket 2 (values 4,5): ≤ 4.
        let pred = BucketPred::cmp(0, CmpOp::Le, 4i64);
        let mut scan = SmaScan::new(&t, pred, &smas);
        let rows = collect(&mut scan).unwrap();
        assert_eq!(keys(&rows), vec![0, 1, 2, 3, 4]);
        let c = scan.counters();
        assert_eq!(c.qualified, 2);
        assert_eq!(c.ambivalent, 1);
        assert_eq!(c.disqualified, 1);
    }

    #[test]
    fn without_usable_smas_everything_is_ambivalent() {
        let t = sorted_table(8);
        let empty = SmaSet::new();
        let pred = BucketPred::cmp(0, CmpOp::Le, 3i64);
        let mut scan = SmaScan::new(&t, pred, &empty);
        let rows = collect(&mut scan).unwrap();
        assert_eq!(keys(&rows), vec![0, 1, 2, 3]);
        assert_eq!(scan.counters().ambivalent, 4);
        assert_eq!(scan.counters().disqualified, 0);
    }

    #[test]
    fn parallel_grading_matches_serial_exactly() {
        let t = sorted_table(40); // 20 buckets
        let smas = minmax(&t);
        let pred = BucketPred::cmp(0, CmpOp::Le, 5i64);
        let mut serial =
            SmaScan::new(&t, pred.clone(), &smas).with_parallelism(Parallelism::serial());
        let expected = collect(&mut serial).unwrap();
        let expected_counters = serial.counters();
        for threads in [2, 3, 4, 8, 64] {
            t.reset_io_stats();
            let mut par =
                SmaScan::new(&t, pred.clone(), &smas).with_parallelism(Parallelism::new(threads));
            assert_eq!(collect(&mut par).unwrap(), expected, "{threads} threads");
            assert_eq!(par.counters(), expected_counters, "{threads} threads");
            // Page I/O stays serial, so the trace matches too: only the 3
            // surviving buckets are read.
            assert_eq!(t.io_stats().logical_reads, 3, "{threads} threads");
        }
    }

    #[test]
    fn quarantined_buckets_degrade_to_base_scan_with_correct_rows() {
        let t = sorted_table(40); // 20 buckets
        let healthy = minmax(&t);
        let pred = BucketPred::cmp(0, CmpOp::Le, 5i64);
        let mut scan = SmaScan::new(&t, pred.clone(), &healthy);
        let expected = collect(&mut scan).unwrap();

        // Quarantine one bucket the predicate would have disqualified and
        // one it would have qualified: both must demote to filtered reads.
        let mut damaged = healthy.clone();
        damaged.quarantine_bucket(0);
        damaged.quarantine_bucket(10);
        let mut scan = SmaScan::new(&t, pred, &damaged);
        let rows = collect(&mut scan).unwrap();
        assert_eq!(keys(&rows), keys(&expected), "degraded run stays exact");
        let c = scan.counters();
        assert_eq!(c.degradation.demoted_buckets, vec![0, 10]);
        assert_eq!(c.degradation.quarantined_buckets, vec![0, 10]);
        assert!(c.degradation.inconsistent_buckets.is_empty());
        // Both demoted buckets were executed as ambivalent reads; the
        // other qualifying buckets kept their fast path.
        assert_eq!(c.ambivalent, 2);
        assert_eq!(c.qualified, 2);
        assert_eq!(c.disqualified, 16);
    }

    #[test]
    fn reopen_resets_counters() {
        let t = sorted_table(8);
        let smas = minmax(&t);
        let pred = BucketPred::cmp(0, CmpOp::Le, 3i64);
        let mut scan = SmaScan::new(&t, pred, &smas);
        collect(&mut scan).unwrap();
        let first = scan.counters();
        collect(&mut scan).unwrap();
        assert_eq!(scan.counters(), first);
    }

    /// Converting sealed buckets to the columnar layout must change
    /// nothing observable: same rows, same counters, same logical-read
    /// totals — only the kernel that produced them differs. The tail
    /// bucket stays in row layout (appends land there), so this also
    /// covers the mixed row/columnar case.
    #[test]
    fn columnar_buckets_match_row_scan_exactly() {
        let mut t = sorted_table(40); // 20 buckets
        let smas = minmax(&t);
        let preds = vec![
            BucketPred::cmp(0, CmpOp::Le, 8i64),
            BucketPred::cmp(0, CmpOp::Eq, 7i64),
            BucketPred::And(vec![
                BucketPred::cmp(0, CmpOp::Ge, 5i64),
                BucketPred::cmp(0, CmpOp::Le, 33i64),
            ]),
            BucketPred::Or(vec![
                BucketPred::cmp(0, CmpOp::Lt, 3i64),
                BucketPred::cmp(0, CmpOp::Gt, 36i64),
            ]),
        ];
        let mut row_path = Vec::new();
        for pred in &preds {
            t.reset_io_stats();
            let mut scan = SmaScan::new(&t, pred.clone(), &smas);
            let rows = collect(&mut scan).unwrap();
            row_path.push((rows, scan.counters(), t.io_stats().logical_reads));
        }
        let converted = t.convert_buckets_from(0).unwrap();
        assert!(!converted.is_empty());
        assert!(
            (converted.len() as u32) < t.bucket_count(),
            "tail bucket stays in row layout — the table is mixed"
        );
        for (pred, (rows, counters, reads)) in preds.iter().zip(&row_path) {
            t.reset_io_stats();
            let mut scan = SmaScan::new(&t, pred.clone(), &smas);
            assert_eq!(&collect(&mut scan).unwrap(), rows, "pred {pred:?}");
            assert_eq!(&scan.counters(), counters, "pred {pred:?}");
            assert_eq!(t.io_stats().logical_reads, *reads, "pred {pred:?}");
        }
    }

    #[test]
    fn empty_table() {
        let t = sorted_table(0);
        let smas = minmax(&t);
        let mut scan = SmaScan::new(&t, BucketPred::cmp(0, CmpOp::Le, 3i64), &smas);
        assert!(collect(&mut scan).unwrap().is_empty());
        assert_eq!(scan.counters().total(), 0);
    }
}
