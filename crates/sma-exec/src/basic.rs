//! Baseline operators: sequential scan, filter, project.
//!
//! These are the plans a SMA-less system runs — the paper's "without
//! SMAs" comparison points.

use sma_core::{BucketPred, ScalarExpr};
use sma_storage::{QueryBudget, Table, TupleId};
use sma_types::Tuple;

use crate::op::{ExecError, PhysicalOp};

/// Full sequential scan of a table, page by page in physical order.
pub struct SeqScan<'a> {
    table: &'a Table,
    buffer: Vec<(TupleId, Tuple)>,
    buffer_pos: usize,
    next_page: u32,
    opened: bool,
    /// Cooperative per-query budget, checked and charged one page at a
    /// time — the scan's read unit.
    budget: Option<&'a QueryBudget>,
}

impl<'a> SeqScan<'a> {
    /// Creates a scan over `table`.
    pub fn new(table: &'a Table) -> SeqScan<'a> {
        SeqScan {
            table,
            buffer: Vec::new(),
            buffer_pos: 0,
            next_page: 0,
            opened: false,
            budget: None,
        }
    }

    /// Attaches a cooperative budget. The scan checks it before every
    /// page read and charges one page per read — the same unit the
    /// pool's `logical_reads` counter tallies.
    pub fn with_budget(mut self, budget: &'a QueryBudget) -> SeqScan<'a> {
        self.budget = Some(budget);
        self
    }
}

impl PhysicalOp for SeqScan<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.buffer.clear();
        self.buffer_pos = 0;
        self.next_page = 0;
        self.opened = true;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        debug_assert!(self.opened, "next before open");
        loop {
            if self.buffer_pos < self.buffer.len() {
                let t = std::mem::take(&mut self.buffer[self.buffer_pos].1);
                self.buffer_pos += 1;
                return Ok(Some(t));
            }
            if self.next_page >= self.table.page_count() {
                return Ok(None);
            }
            if let Some(b) = self.budget {
                b.check()?;
                b.charge(1)?;
            }
            self.buffer.clear();
            self.buffer_pos = 0;
            self.table
                .scan_page_into(self.next_page, &mut self.buffer)?;
            self.next_page += 1;
        }
    }

    fn close(&mut self) {
        self.buffer.clear();
        self.opened = false;
    }

    fn describe(&self) -> String {
        format!("SeqScan({})", self.table.name())
    }
}

/// Tuple-at-a-time filter over a child operator.
pub struct Filter<'a> {
    child: Box<dyn PhysicalOp + 'a>,
    pred: BucketPred,
}

impl<'a> Filter<'a> {
    /// Creates a filter evaluating `pred` on each child tuple.
    pub fn new(child: Box<dyn PhysicalOp + 'a>, pred: BucketPred) -> Filter<'a> {
        Filter { child, pred }
    }
}

impl PhysicalOp for Filter<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        while let Some(t) = self.child.next()? {
            if self.pred.eval_tuple(&t) {
                return Ok(Some(t));
            }
        }
        Ok(None)
    }

    fn close(&mut self) {
        self.child.close();
    }

    fn describe(&self) -> String {
        format!("Filter({:?}) <- {}", self.pred, self.child.describe())
    }
}

/// Projection: evaluates one expression per output column.
pub struct Project<'a> {
    child: Box<dyn PhysicalOp + 'a>,
    exprs: Vec<ScalarExpr>,
}

impl<'a> Project<'a> {
    /// Creates a projection computing `exprs` over each child tuple.
    pub fn new(child: Box<dyn PhysicalOp + 'a>, exprs: Vec<ScalarExpr>) -> Project<'a> {
        Project { child, exprs }
    }
}

impl PhysicalOp for Project<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        match self.child.next()? {
            None => Ok(None),
            Some(t) => {
                let mut out = Vec::with_capacity(self.exprs.len());
                for e in &self.exprs {
                    out.push(e.eval(&t)?);
                }
                Ok(Some(out))
            }
        }
    }

    fn close(&mut self) {
        self.child.close();
    }

    fn describe(&self) -> String {
        format!("Project[{}] <- {}", self.exprs.len(), self.child.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::collect;
    use sma_core::{col, lit, CmpOp};
    use sma_types::{Column, DataType, Schema, Value};
    use std::sync::Arc;

    fn table(values: &[i64]) -> Table {
        let schema = Arc::new(Schema::new(vec![
            Column::new("K", DataType::Int),
            Column::new("PAD", DataType::Str),
        ]));
        let mut t = Table::in_memory("t", schema, 1);
        let pad = "p".repeat(700);
        for &v in values {
            t.append(&vec![Value::Int(v), Value::Str(pad.clone())])
                .unwrap();
        }
        t
    }

    #[test]
    fn seqscan_yields_physical_order() {
        let t = table(&[3, 1, 4, 1, 5, 9, 2, 6]);
        let rows = collect(&mut SeqScan::new(&t)).unwrap();
        let ks: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ks, vec![3, 1, 4, 1, 5, 9, 2, 6]);
    }

    #[test]
    fn seqscan_empty_table() {
        let t = table(&[]);
        assert!(collect(&mut SeqScan::new(&t)).unwrap().is_empty());
    }

    #[test]
    fn seqscan_reopens() {
        let t = table(&[1, 2, 3]);
        let mut s = SeqScan::new(&t);
        assert_eq!(collect(&mut s).unwrap().len(), 3);
        assert_eq!(collect(&mut s).unwrap().len(), 3, "re-open restarts");
    }

    #[test]
    fn seqscan_stops_at_page_cap() {
        let t = table(&(0..64).collect::<Vec<_>>());
        assert!(t.page_count() > 1, "need a multi-page table");
        let budget = QueryBudget::unbounded().with_page_cap(0);
        let mut s = SeqScan::new(&t).with_budget(&budget);
        let err = collect(&mut s).unwrap_err();
        assert!(matches!(err, ExecError::Budget(_)), "got {err:?}");
    }

    #[test]
    fn seqscan_under_generous_budget_charges_all_pages() {
        let t = table(&(0..64).collect::<Vec<_>>());
        let budget = QueryBudget::unbounded();
        let mut s = SeqScan::new(&t).with_budget(&budget);
        let rows = collect(&mut s).unwrap();
        assert_eq!(rows.len(), 64);
        assert_eq!(budget.pages_charged(), u64::from(t.page_count()));
    }

    #[test]
    fn filter_applies_predicate() {
        let t = table(&[1, 5, 2, 8, 3]);
        let pred = BucketPred::cmp(0, CmpOp::Le, 3i64);
        let mut f = Filter::new(Box::new(SeqScan::new(&t)), pred);
        let rows = collect(&mut f).unwrap();
        let ks: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ks, vec![1, 2, 3]);
    }

    #[test]
    fn project_computes_expressions() {
        let t = table(&[10, 20]);
        let mut p = Project::new(
            Box::new(SeqScan::new(&t)),
            vec![col(0).add(lit(1i64)), col(0).mul(lit(2i64))],
        );
        let rows = collect(&mut p).unwrap();
        assert_eq!(rows[0], vec![Value::Int(11), Value::Int(20)]);
        assert_eq!(rows[1], vec![Value::Int(21), Value::Int(40)]);
    }

    #[test]
    fn describe_nests() {
        let t = table(&[1]);
        let f = Filter::new(
            Box::new(SeqScan::new(&t)),
            BucketPred::cmp(0, CmpOp::Le, 3i64),
        );
        assert!(f.describe().contains("SeqScan"));
        assert!(f.describe().starts_with("Filter"));
    }
}
