//! Semi-join with SMA input reduction — the §4 generalization.
//!
//! `select R.* from R, S where R.A θ S.B` under existential semantics.
//! The same operator runs in two modes:
//!
//! * **naive** — scan every R bucket and test each tuple;
//! * **SMA-reduced** — grade R's buckets against S's global minimax
//!   first ([`sma_core::semijoin_prune`]), skipping disqualified buckets
//!   and emitting qualified buckets wholesale.
//!
//! The per-tuple existence test uses S's bounds for the ordering
//! operators (exact) and a hash set of S.B values for `=`.

use std::collections::BTreeSet;

use sma_core::{semijoin_prune, CmpOp, Grade, MinimaxOf, SmaSet};
use sma_storage::{QueryBudget, Table};
use sma_types::{Tuple, Value};

use crate::op::{ExecError, PhysicalOp};
use crate::scan::ScanCounters;

/// Semi-join operator, optionally SMA-reduced.
pub struct SemiJoin<'a> {
    r: &'a Table,
    a_col: usize,
    theta: CmpOp,
    s: &'a Table,
    b_col: usize,
    /// R's SMA set; `None` runs the naive mode.
    smas: Option<&'a SmaSet>,
    // Execution state:
    minimax: Option<MinimaxOf>,
    eq_set: BTreeSet<Value>,
    grades: Vec<Grade>,
    bucket: u32,
    buffer: Vec<(sma_storage::TupleId, Tuple)>,
    pos: usize,
    curr_grade: Grade,
    counters: ScanCounters,
    /// Cooperative per-query budget: checked at every bucket boundary,
    /// charged per page for both the S build pass and the R probe pass.
    budget: Option<&'a QueryBudget>,
}

impl<'a> SemiJoin<'a> {
    /// Creates `R ⋉_(A θ B) S`; pass `smas` to enable bucket pruning.
    pub fn new(
        r: &'a Table,
        a_col: usize,
        theta: CmpOp,
        s: &'a Table,
        b_col: usize,
        smas: Option<&'a SmaSet>,
    ) -> SemiJoin<'a> {
        SemiJoin {
            r,
            a_col,
            theta,
            s,
            b_col,
            smas,
            minimax: None,
            eq_set: BTreeSet::new(),
            grades: Vec::new(),
            bucket: 0,
            buffer: Vec::new(),
            pos: 0,
            curr_grade: Grade::Ambivalent,
            counters: ScanCounters::default(),
            budget: None,
        }
    }

    /// Attaches a cooperative budget. Charged one page per read on both
    /// sides of the join (S's build pass and R's probe pass), checked at
    /// every bucket boundary so cancellation lands promptly.
    pub fn with_budget(mut self, budget: &'a QueryBudget) -> SemiJoin<'a> {
        self.budget = Some(budget);
        self
    }

    /// Bucket counters (meaningful once drained).
    pub fn counters(&self) -> ScanCounters {
        self.counters.clone()
    }

    fn tuple_has_partner(&self, t: &Tuple) -> bool {
        let a = &t[self.a_col];
        if a.is_null() {
            return false;
        }
        let Some(mm) = self.minimax.as_ref() else {
            // Polled before open(): no partner evidence exists yet.
            return false;
        };
        match self.theta {
            CmpOp::Eq => self.eq_set.contains(a),
            CmpOp::Lt | CmpOp::Le => mm.max.as_ref().is_some_and(|hi| self.theta.eval(a, hi)),
            CmpOp::Gt | CmpOp::Ge => mm.min.as_ref().is_some_and(|lo| self.theta.eval(a, lo)),
        }
    }
}

impl PhysicalOp for SemiJoin<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.counters = ScanCounters::default();
        self.bucket = 0;
        self.buffer.clear();
        self.pos = 0;
        // One pass over S for its minimax (and value set for `=`).
        if let Some(b) = self.budget {
            b.check()?;
            b.charge(u64::from(self.s.page_count()))?;
        }
        let mm = MinimaxOf::scan(self.s, self.b_col)?;
        if self.theta == CmpOp::Eq {
            self.eq_set.clear();
            let mut rows = Vec::new();
            for page in 0..self.s.page_count() {
                if let Some(b) = self.budget {
                    b.check()?;
                    b.charge(1)?;
                }
                rows.clear();
                self.s.scan_page_into(page, &mut rows)?;
                for (_, t) in &rows {
                    if !t[self.b_col].is_null() {
                        self.eq_set.insert(t[self.b_col].clone());
                    }
                }
            }
        }
        self.grades = match self.smas {
            Some(set) => {
                semijoin_prune(self.a_col, self.theta, &mm, self.r.bucket_count(), set).grades
            }
            None => vec![Grade::Ambivalent; self.r.bucket_count() as usize],
        };
        self.minimax = Some(mm);
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        loop {
            while self.pos < self.buffer.len() {
                let idx = self.pos;
                self.pos += 1;
                if self.curr_grade == Grade::Qualifies
                    || self.tuple_has_partner(&self.buffer[idx].1)
                {
                    return Ok(Some(std::mem::take(&mut self.buffer[idx].1)));
                }
            }
            // Advance to the next non-disqualified bucket.
            loop {
                if self.bucket as usize >= self.grades.len() {
                    return Ok(None);
                }
                let b = self.bucket;
                self.bucket += 1;
                if let Some(bg) = self.budget {
                    bg.check()?;
                }
                self.curr_grade = self.grades[b as usize];
                match self.curr_grade {
                    Grade::Disqualifies => {
                        self.counters.disqualified += 1;
                    }
                    Grade::Qualifies => {
                        self.counters.qualified += 1;
                        self.buffer.clear();
                        self.pos = 0;
                        if let Some(bg) = self.budget {
                            bg.charge(self.r.bucket_range(b).len() as u64)?;
                        }
                        for page in self.r.bucket_range(b) {
                            self.r.scan_page_into(page, &mut self.buffer)?;
                        }
                        break;
                    }
                    Grade::Ambivalent => {
                        self.counters.ambivalent += 1;
                        self.buffer.clear();
                        self.pos = 0;
                        if let Some(bg) = self.budget {
                            bg.charge(self.r.bucket_range(b).len() as u64)?;
                        }
                        for page in self.r.bucket_range(b) {
                            self.r.scan_page_into(page, &mut self.buffer)?;
                        }
                        break;
                    }
                }
            }
        }
    }

    fn close(&mut self) {
        self.buffer.clear();
        self.eq_set.clear();
    }

    fn describe(&self) -> String {
        format!(
            "SemiJoin({}.{} {:?} {}.{}, {})",
            self.r.name(),
            self.a_col,
            self.theta,
            self.s.name(),
            self.b_col,
            if self.smas.is_some() {
                "sma-reduced"
            } else {
                "naive"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::collect;
    use sma_core::{col, AggFn, SmaDefinition};
    use sma_types::{Column, DataType, Schema};
    use std::sync::Arc;

    fn int_table(name: &str, values: &[i64]) -> Table {
        let schema = Arc::new(Schema::new(vec![
            Column::new("K", DataType::Int),
            Column::new("PAD", DataType::Str),
        ]));
        let mut t = Table::in_memory(name, schema, 1);
        let pad = "p".repeat(1800);
        for &v in values {
            t.append(&vec![Value::Int(v), Value::Str(pad.clone())])
                .unwrap();
        }
        t
    }

    fn minmax(t: &Table) -> SmaSet {
        SmaSet::build(
            t,
            vec![
                SmaDefinition::new("min", AggFn::Min, col(0)),
                SmaDefinition::new("max", AggFn::Max, col(0)),
            ],
        )
        .unwrap()
    }

    fn keys(rows: &[Tuple]) -> Vec<i64> {
        rows.iter().map(|r| r[0].as_int().unwrap()).collect()
    }

    #[test]
    fn sma_mode_matches_naive_for_all_operators() {
        let r = int_table("R", &(0..30).collect::<Vec<_>>());
        let s = int_table("S", &[7, 12, 12, 25]);
        let smas = minmax(&r);
        for theta in [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq] {
            let mut naive = SemiJoin::new(&r, 0, theta, &s, 0, None);
            let mut fast = SemiJoin::new(&r, 0, theta, &s, 0, Some(&smas));
            assert_eq!(
                keys(&collect(&mut fast).unwrap()),
                keys(&collect(&mut naive).unwrap()),
                "theta {theta:?}"
            );
        }
    }

    #[test]
    fn eq_semantics_are_membership() {
        let r = int_table("R", &[1, 2, 3, 4, 5]);
        let s = int_table("S", &[2, 4, 4]);
        let mut j = SemiJoin::new(&r, 0, CmpOp::Eq, &s, 0, None);
        assert_eq!(keys(&collect(&mut j).unwrap()), vec![2, 4]);
    }

    #[test]
    fn pruning_skips_buckets() {
        let r = int_table("R", &(0..40).collect::<Vec<_>>()); // 20 buckets
        let s = int_table("S", &[35, 38]);
        let smas = minmax(&r);
        r.reset_io_stats();
        let mut j = SemiJoin::new(&r, 0, CmpOp::Ge, &s, 0, Some(&smas));
        let rows = collect(&mut j).unwrap();
        assert_eq!(keys(&rows), (35..40).collect::<Vec<_>>());
        let c = j.counters();
        assert!(c.disqualified >= 17, "most buckets skipped: {c:?}");
        // Naive mode reads everything.
        let mut naive = SemiJoin::new(&r, 0, CmpOp::Ge, &s, 0, None);
        collect(&mut naive).unwrap();
        assert_eq!(naive.counters().ambivalent, 20);
    }

    #[test]
    fn budget_cap_stops_the_join() {
        let r = int_table("R", &(0..30).collect::<Vec<_>>());
        let s = int_table("S", &[7, 12]);
        let budget = QueryBudget::unbounded().with_page_cap(0);
        let mut j = SemiJoin::new(&r, 0, CmpOp::Eq, &s, 0, None).with_budget(&budget);
        let err = collect(&mut j).unwrap_err();
        assert!(matches!(err, ExecError::Budget(_)), "got {err:?}");
    }

    #[test]
    fn budget_charges_both_sides() {
        let r = int_table("R", &(0..30).collect::<Vec<_>>());
        let s = int_table("S", &[7, 12]);
        let budget = QueryBudget::unbounded();
        let mut j = SemiJoin::new(&r, 0, CmpOp::Eq, &s, 0, None).with_budget(&budget);
        collect(&mut j).unwrap();
        // The minimax pass and eq-set build each cover S once; the naive
        // probe covers all of R.
        let expected = u64::from(s.page_count()) * 2 + u64::from(r.page_count());
        assert_eq!(budget.pages_charged(), expected);
    }

    #[test]
    fn empty_s_yields_nothing() {
        let r = int_table("R", &[1, 2, 3]);
        let s = int_table("S", &[]);
        let set = minmax(&r);
        for smas in [None, Some(&set)] {
            let mut j = SemiJoin::new(&r, 0, CmpOp::Lt, &s, 0, smas);
            assert!(collect(&mut j).unwrap().is_empty());
        }
    }

    #[test]
    fn null_r_values_never_match() {
        let schema = Arc::new(Schema::new(vec![Column::new("K", DataType::Int)]));
        let mut r = Table::in_memory("R", schema, 1);
        r.append(&vec![Value::Null]).unwrap();
        r.append(&vec![Value::Int(1)]).unwrap();
        let s = int_table("S", &[0, 5]);
        let mut j = SemiJoin::new(&r, 0, CmpOp::Le, &s, 0, None);
        let rows = collect(&mut j).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(1));
    }
}
