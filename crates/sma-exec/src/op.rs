//! The physical-operator interface.
//!
//! Operators implement the iterator concept the paper cites (\[7\], Graefe):
//! `open` / `next` / `close`. Tuples are materialized [`Tuple`]s — fine
//! for a system whose interesting costs are page I/O, not copies.

use std::fmt;

use sma_core::{ExprError, SmaError};
use sma_storage::{BudgetExceeded, TableError};
use sma_types::Tuple;

/// Errors surfaced by query execution.
#[derive(Debug)]
pub enum ExecError {
    /// Storage layer failed.
    Table(TableError),
    /// SMA layer failed.
    Sma(SmaError),
    /// Expression evaluation failed.
    Expr(ExprError),
    /// A plan needed a SMA the set does not contain.
    MissingSma(String),
    /// Operator protocol misuse or invalid plan shape.
    Plan(String),
    /// The SMA set contradicts itself: an aggregate SMA materialized a
    /// value for a bucket/group the count SMA knows nothing about.
    /// Answering from such a set would silently drop or misstate groups,
    /// so execution refuses instead.
    InconsistentSma(String),
    /// The query's [`sma_storage::QueryBudget`] was exhausted (deadline or
    /// page cap) or cancelled. A cooperative cut-off, not a failure of the
    /// data: re-running with a bigger budget would succeed.
    Budget(BudgetExceeded),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Table(e) => write!(f, "{e}"),
            ExecError::Sma(e) => write!(f, "{e}"),
            ExecError::Expr(e) => write!(f, "{e}"),
            ExecError::MissingSma(what) => write!(f, "missing SMA: {what}"),
            ExecError::Plan(what) => write!(f, "plan error: {what}"),
            ExecError::InconsistentSma(what) => write!(f, "inconsistent SMA set: {what}"),
            ExecError::Budget(e) => write!(f, "query budget: {e}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Table(e) => Some(e),
            ExecError::Sma(e) => Some(e),
            ExecError::Expr(e) => Some(e),
            ExecError::MissingSma(_) | ExecError::Plan(_) | ExecError::InconsistentSma(_) => None,
            ExecError::Budget(e) => Some(e),
        }
    }
}

impl From<TableError> for ExecError {
    fn from(e: TableError) -> ExecError {
        ExecError::Table(e)
    }
}

impl From<sma_types::CodecError> for ExecError {
    fn from(e: sma_types::CodecError) -> ExecError {
        ExecError::Table(TableError::from(e))
    }
}

impl From<SmaError> for ExecError {
    fn from(e: SmaError) -> ExecError {
        ExecError::Sma(e)
    }
}

impl From<ExprError> for ExecError {
    fn from(e: ExprError) -> ExecError {
        ExecError::Expr(e)
    }
}

impl From<BudgetExceeded> for ExecError {
    fn from(e: BudgetExceeded) -> ExecError {
        ExecError::Budget(e)
    }
}

/// A physical operator in the iterator model.
pub trait PhysicalOp {
    /// Prepares the operator. Pipeline breakers (the GAggr variants) do
    /// their whole computation here (§3.3: "within its init function, the
    /// result is computed").
    fn open(&mut self) -> Result<(), ExecError>;

    /// Produces the next tuple, or `None` when exhausted.
    fn next(&mut self) -> Result<Option<Tuple>, ExecError>;

    /// Releases resources; the operator may be re-`open`ed afterwards.
    fn close(&mut self);

    /// One-line description for EXPLAIN output.
    fn describe(&self) -> String;
}

/// Drains an operator into a vector (convenience for tests and examples).
pub fn collect(op: &mut dyn PhysicalOp) -> Result<Vec<Tuple>, ExecError> {
    op.open()?;
    let mut out = Vec::new();
    while let Some(t) = op.next()? {
        out.push(t);
    }
    op.close();
    Ok(out)
}
