//! End-to-end TPC-D Query 6 execution — the conjunctive-predicate showcase.
//!
//! Query 6 restricts three attributes at once (`L_SHIPDATE` range,
//! `L_DISCOUNT` band, `L_QUANTITY` bound), exactly the `and`-combination
//! case of §3.1. With min/max SMAs on all three columns, time-clustered
//! data lets the ship-date atoms disqualify most buckets outright, and the
//! other atoms can only *add* disqualification evidence.

use sma_core::{col, AggFn, BucketPred, CmpOp, SmaDefinition, SmaSet};
use sma_storage::{IoStats, Table};
use sma_types::{Decimal, Value};

use crate::degrade::DegradationReport;
use crate::gaggr::AggSpec;
use crate::op::ExecError;
use crate::planner::{plan, AggregateQuery, PlanKind, PlannerConfig};

/// Re-export of the workload parameters (defined next to the oracle).
pub use sma_tpcd_params::Q6Params;

/// Tiny shim module so this crate does not depend on `sma-tpcd` at build
/// time: the parameter struct is duplicated here with identical semantics
/// and converted freely in tests.
mod sma_tpcd_params {
    use sma_types::{Date, Decimal};

    /// Query 6 substitution parameters (see `sma_tpcd::Q6Params`).
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Q6Params {
        /// First ship date included.
        pub date: Date,
        /// Central discount; the band is ±0.01.
        pub discount: Decimal,
        /// Exclusive quantity bound.
        pub quantity: i64,
    }

    impl Default for Q6Params {
        fn default() -> Q6Params {
            Q6Params {
                // sma-lint: allow(P2-expect) -- compile-time constant date; cannot fail
                date: Date::from_ymd(1994, 1, 1).expect("valid constant"),
                // sma-lint: allow(P2-expect) -- compile-time constant decimal; cannot fail
                discount: Decimal::parse("0.06").expect("valid constant"),
                quantity: 24,
            }
        }
    }

    impl Q6Params {
        /// Exclusive upper ship-date bound: `date + 1 year`.
        pub fn date_hi(&self) -> Date {
            let (y, m, d) = self.date.ymd();
            Date::from_ymd(y + 1, m, d).unwrap_or_else(|_| self.date.add_days(365))
        }
    }
}

/// The SMA definitions that serve Query 6: min/max on each restricted
/// column plus the ungrouped revenue sum and count.
pub fn query6_sma_definitions(table: &Table) -> Result<Vec<SmaDefinition>, ExecError> {
    let schema = table.schema();
    let need = |name: &str| -> Result<usize, ExecError> {
        schema
            .index_of(name)
            .ok_or_else(|| ExecError::Plan(format!("missing column {name}")))
    };
    let ship = need("L_SHIPDATE")?;
    let disc = need("L_DISCOUNT")?;
    let qty = need("L_QUANTITY")?;
    let ext = need("L_EXTENDEDPRICE")?;
    Ok(vec![
        SmaDefinition::new("q6_min_ship", AggFn::Min, col(ship)),
        SmaDefinition::new("q6_max_ship", AggFn::Max, col(ship)),
        SmaDefinition::new("q6_min_disc", AggFn::Min, col(disc)),
        SmaDefinition::new("q6_max_disc", AggFn::Max, col(disc)),
        SmaDefinition::new("q6_min_qty", AggFn::Min, col(qty)),
        SmaDefinition::new("q6_max_qty", AggFn::Max, col(qty)),
        SmaDefinition::new("q6_revenue", AggFn::Sum, col(ext).mul(col(disc))),
        SmaDefinition::count("q6_count"),
    ])
}

/// Builds Query 6's algebraic form over `table`'s schema.
pub fn query6_query(table: &Table, p: &Q6Params) -> Result<AggregateQuery, ExecError> {
    let schema = table.schema();
    let need = |name: &str| -> Result<usize, ExecError> {
        schema
            .index_of(name)
            .ok_or_else(|| ExecError::Plan(format!("missing column {name}")))
    };
    let ship = need("L_SHIPDATE")?;
    let disc = need("L_DISCOUNT")?;
    let qty = need("L_QUANTITY")?;
    let ext = need("L_EXTENDEDPRICE")?;
    let lo = p.discount - Decimal::from_cents(1);
    let hi = p.discount + Decimal::from_cents(1);
    Ok(AggregateQuery {
        pred: BucketPred::And(vec![
            BucketPred::cmp(ship, CmpOp::Ge, Value::Date(p.date)),
            BucketPred::cmp(ship, CmpOp::Lt, Value::Date(p.date_hi())),
            BucketPred::cmp(disc, CmpOp::Ge, Value::Decimal(lo)),
            BucketPred::cmp(disc, CmpOp::Le, Value::Decimal(hi)),
            BucketPred::cmp(
                qty,
                CmpOp::Lt,
                Value::Decimal(Decimal::from_int(p.quantity)),
            ),
        ]),
        group_by: vec![],
        specs: vec![AggSpec::Sum(col(ext).mul(col(disc)))],
    })
}

/// The outcome of a Query 6 run.
#[derive(Debug)]
pub struct Q6Execution {
    /// `SUM(L_EXTENDEDPRICE * L_DISCOUNT)`; zero when nothing qualifies.
    pub revenue: Decimal,
    /// Which plan ran.
    pub plan_kind: PlanKind,
    /// Buffer-pool traffic during execution.
    pub io: IoStats,
    /// Wall-clock execution time (excludes planning).
    pub elapsed: std::time::Duration,
    /// What the resilience layer gave up (empty on a healthy run).
    pub degradation: DegradationReport,
}

/// Plans and runs Query 6 over `table`; pass `smas` to allow SMA plans.
pub fn run_query6(
    table: &Table,
    smas: Option<&SmaSet>,
    p: &Q6Params,
    planner: &PlannerConfig,
) -> Result<Q6Execution, ExecError> {
    let query = query6_query(table, p)?;
    let chosen = plan(table, query, smas, planner);
    table.reset_io_stats();
    let started = sma_storage::Stopwatch::start();
    let (rows, degradation) = chosen.execute_with_report()?;
    let elapsed = started.elapsed();
    let revenue = match rows.first() {
        Some(row) => row[0].as_decimal().unwrap_or(Decimal::ZERO),
        None => Decimal::ZERO,
    };
    Ok(Q6Execution {
        revenue,
        plan_kind: chosen.kind,
        io: table.io_stats(),
        elapsed,
        degradation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sma_tpcd::{generate_lineitem_table, q6_reference_table, Clustering, GenConfig};

    fn tpcd_params(p: &Q6Params) -> sma_tpcd::Q6Params {
        sma_tpcd::Q6Params {
            date: p.date,
            discount: p.discount,
            quantity: p.quantity,
        }
    }

    #[test]
    fn matches_oracle_across_clusterings() {
        for clustering in [
            Clustering::SortedByShipdate,
            Clustering::diagonal_default(),
            Clustering::Shuffled,
        ] {
            let table = generate_lineitem_table(&GenConfig::tiny(clustering));
            let smas = SmaSet::build(&table, query6_sma_definitions(&table).unwrap()).unwrap();
            let p = Q6Params::default();
            let with = run_query6(&table, Some(&smas), &p, &PlannerConfig::default()).unwrap();
            let without = run_query6(&table, None, &p, &PlannerConfig::default()).unwrap();
            let oracle = q6_reference_table(&table, &tpcd_params(&p)).unwrap();
            assert_eq!(with.revenue, oracle, "{clustering:?}");
            assert_eq!(without.revenue, oracle, "{clustering:?}");
        }
    }

    #[test]
    fn sorted_data_skips_most_buckets() {
        let cfg = GenConfig {
            orders: 2000,
            ..GenConfig::tiny(Clustering::SortedByShipdate)
        };
        let table = generate_lineitem_table(&cfg);
        let smas = SmaSet::build(&table, query6_sma_definitions(&table).unwrap()).unwrap();
        let p = Q6Params::default();
        let run = run_query6(&table, Some(&smas), &p, &PlannerConfig::default()).unwrap();
        assert_ne!(run.plan_kind, PlanKind::FullScan);
        // The one-year window is ~1/7 of the data; everything outside it
        // is disqualified by the date atoms alone.
        let pages = table.page_count() as u64;
        assert!(
            run.io.logical_reads < pages / 4,
            "read {} of {pages} pages",
            run.io.logical_reads
        );
    }

    #[test]
    fn a_parameter_outside_the_domain_reads_nothing() {
        let table = generate_lineitem_table(&GenConfig::tiny(Clustering::SortedByShipdate));
        let smas = SmaSet::build(&table, query6_sma_definitions(&table).unwrap()).unwrap();
        let p = Q6Params {
            date: sma_types::Date::from_ymd(2005, 1, 1).unwrap(),
            ..Q6Params::default()
        };
        let run = run_query6(&table, Some(&smas), &p, &PlannerConfig::default()).unwrap();
        assert_eq!(run.revenue, Decimal::ZERO);
        assert_eq!(run.io.logical_reads, 0, "grading disqualifies every bucket");
    }
}
