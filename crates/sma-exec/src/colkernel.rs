//! Batch-vectorized predicate and aggregation kernels over columnar
//! (PAX) buckets.
//!
//! Sealed buckets rewritten to the columnar layout decode to a
//! [`ColumnarBucket`] — one typed array per column, plus a validity
//! bitmap. The kernels here evaluate a [`BucketPred`] over those arrays
//! in fixed-size batches of [`BATCH_ROWS`] rows, filling a
//! [`SelectionVector`] of passing row indexes: atomic comparisons run as
//! tight typed loops over the raw arrays, conjunctions *intersect* the
//! per-conjunct vectors and disjunctions *union* them, so no tuple is
//! materialized before the whole predicate has decided. Aggregation then
//! folds only the selected rows, fetching aggregate inputs straight out
//! of the column arrays — columns the query never references are never
//! touched.
//!
//! Semantics are bit-for-bit those of the row path
//! ([`BucketPred::eval_tuple`] / `eval_view`): `Null` operands and type
//! mismatches compare false (`Value::partial_cmp_typed` is defined only
//! on same-variant pairs), out-of-range columns select nothing, the
//! empty `And` is true and the empty `Or` is false. Selected rows fold
//! in physical row order, so even path-dependent aggregate results
//! (per-step saturating integer sums) are identical to the row scan.
//! The typed fast loops below are *specializations*, not semantic
//! variants: every (array type, literal type) pair they cover compares
//! through the same total order `partial_cmp_typed` uses (`Decimal` and
//! `Date` derive their ordering from the raw scaled value the arrays
//! store), and every pair they do not cover falls back to a generic
//! per-row `CmpOp::eval`.

use std::collections::BTreeMap;

use sma_core::{BucketPred, CmpOp};
use sma_types::{ColumnArray, ColumnarBucket, Value};

use crate::gaggr::{AggSpec, DenseGroups, GroupState};
use crate::op::ExecError;

/// Rows evaluated per kernel batch. Batching bounds the scratch
/// selection vectors (a batch's worth of `usize`s, not a bucket's) and
/// keeps the arrays' working set cache-resident while a multi-term
/// predicate intersects or unions over it.
pub const BATCH_ROWS: usize = 1024;

/// Ascending row indexes of one columnar bucket that passed a predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionVector {
    rows: Vec<usize>,
}

impl SelectionVector {
    /// The selected row indexes, ascending.
    pub fn rows(&self) -> &[usize] {
        &self.rows
    }
}

/// Evaluates `pred` over every row of `block`, batch by batch, and
/// returns the selection vector of passing rows.
pub fn filter_block(block: &ColumnarBucket, pred: &BucketPred) -> SelectionVector {
    let n = block.n_rows();
    let mut rows = Vec::new();
    let mut batch = Vec::new();
    let mut start = 0usize;
    while start < n {
        let end = (start + BATCH_ROWS).min(n);
        batch.clear();
        fill(pred, block, start, end, &mut batch);
        rows.extend_from_slice(&batch);
        start = end;
    }
    SelectionVector { rows }
}

/// Folds the selected rows of `block` into the aggregation state —
/// either the dense all-`Char` group table or the generic ordered map,
/// exactly as the row path dispatches.
pub(crate) fn aggregate_block(
    block: &ColumnarBucket,
    sel: &SelectionVector,
    group_by: &[usize],
    specs: &[AggSpec],
    groups: &mut BTreeMap<Vec<Value>, GroupState>,
    dense: &mut Option<DenseGroups>,
) -> Result<(), ExecError> {
    if let Some(d) = dense {
        return d.update_block_batch(specs, block, sel.rows());
    }
    for &row in sel.rows() {
        let mut key = Vec::with_capacity(group_by.len());
        for &g in group_by {
            key.push(
                block
                    .value(g, row)
                    .ok_or_else(|| ExecError::Plan(format!("group column {g} out of range")))?,
            );
        }
        groups
            .entry(key)
            .or_insert_with(|| GroupState::new(specs))
            .update_block(specs, block, row)?;
    }
    Ok(())
}

/// Fills `out` with the rows of `[start, end)` satisfying `pred`,
/// ascending. Recursion mirrors the predicate grammar: leaves run typed
/// loops, `And` intersects, `Or` unions.
fn fill(pred: &BucketPred, block: &ColumnarBucket, start: usize, end: usize, out: &mut Vec<usize>) {
    match pred {
        BucketPred::Cmp { col, op, value } => fill_cmp(block, *col, *op, value, start, end, out),
        BucketPred::ColCmp { left, op, right } => {
            fill_col_cmp(block, *left, *op, *right, start, end, out)
        }
        BucketPred::And(ps) => {
            let Some((first, rest)) = ps.split_first() else {
                // The empty conjunction is true: every row passes.
                out.extend(start..end);
                return;
            };
            fill(first, block, start, end, out);
            let mut term = Vec::new();
            for p in rest {
                if out.is_empty() {
                    return;
                }
                term.clear();
                fill(p, block, start, end, &mut term);
                intersect_sorted(out, &term);
            }
        }
        BucketPred::Or(ps) => {
            // The empty disjunction is false: the loop body never runs
            // and `out` stays as it came in.
            let mut term = Vec::new();
            for p in ps {
                term.clear();
                fill(p, block, start, end, &mut term);
                union_sorted(out, &term);
            }
        }
    }
}

/// One `A op c` leaf: a typed loop over the raw array when the literal
/// matches the column type, the generic `CmpOp::eval` loop otherwise
/// (which makes `Null` literals and type mismatches select nothing, the
/// row path's semantics).
fn fill_cmp(
    block: &ColumnarBucket,
    col: usize,
    op: CmpOp,
    value: &Value,
    start: usize,
    end: usize,
    out: &mut Vec<usize>,
) {
    let Some(array) = block.col(col) else {
        // Out-of-range column: `eval_tuple` yields false for every row.
        return;
    };
    match (array, value) {
        (ColumnArray::Int { data, .. }, Value::Int(c)) => {
            for row in start..end {
                if array.is_valid(row) {
                    if let Some(v) = data.get(row) {
                        if op.matches(v.cmp(c)) {
                            out.push(row);
                        }
                    }
                }
            }
        }
        (ColumnArray::Decimal { data, .. }, Value::Decimal(c)) => {
            let c = c.cents();
            for row in start..end {
                if array.is_valid(row) {
                    if let Some(v) = data.get(row) {
                        if op.matches(v.cmp(&c)) {
                            out.push(row);
                        }
                    }
                }
            }
        }
        (ColumnArray::Date { data, .. }, Value::Date(c)) => {
            let c = c.days();
            for row in start..end {
                if array.is_valid(row) {
                    if let Some(v) = data.get(row) {
                        if op.matches(v.cmp(&c)) {
                            out.push(row);
                        }
                    }
                }
            }
        }
        (ColumnArray::Char { data, .. }, Value::Char(c)) => {
            for row in start..end {
                if array.is_valid(row) {
                    if let Some(v) = data.get(row) {
                        if op.matches(v.cmp(c)) {
                            out.push(row);
                        }
                    }
                }
            }
        }
        (ColumnArray::Str { .. }, Value::Str(c)) => {
            for row in start..end {
                if let Some(s) = array.str_at(row) {
                    if op.matches(s.cmp(c.as_str())) {
                        out.push(row);
                    }
                }
            }
        }
        _ => {
            for row in start..end {
                if let Some(v) = block.value(col, row) {
                    if op.eval(&v, value) {
                        out.push(row);
                    }
                }
            }
        }
    }
}

/// One `A op B` leaf: typed loops for same-type column pairs, the
/// generic loop otherwise (mixed-type pairs compare false).
fn fill_col_cmp(
    block: &ColumnarBucket,
    left: usize,
    op: CmpOp,
    right: usize,
    start: usize,
    end: usize,
    out: &mut Vec<usize>,
) {
    let (Some(a), Some(b)) = (block.col(left), block.col(right)) else {
        return;
    };
    match (a, b) {
        (ColumnArray::Int { data: da, .. }, ColumnArray::Int { data: db, .. })
        | (ColumnArray::Decimal { data: da, .. }, ColumnArray::Decimal { data: db, .. }) => {
            for row in start..end {
                if a.is_valid(row) && b.is_valid(row) {
                    if let (Some(x), Some(y)) = (da.get(row), db.get(row)) {
                        if op.matches(x.cmp(y)) {
                            out.push(row);
                        }
                    }
                }
            }
        }
        (ColumnArray::Date { data: da, .. }, ColumnArray::Date { data: db, .. }) => {
            for row in start..end {
                if a.is_valid(row) && b.is_valid(row) {
                    if let (Some(x), Some(y)) = (da.get(row), db.get(row)) {
                        if op.matches(x.cmp(y)) {
                            out.push(row);
                        }
                    }
                }
            }
        }
        (ColumnArray::Char { data: da, .. }, ColumnArray::Char { data: db, .. }) => {
            for row in start..end {
                if a.is_valid(row) && b.is_valid(row) {
                    if let (Some(x), Some(y)) = (da.get(row), db.get(row)) {
                        if op.matches(x.cmp(y)) {
                            out.push(row);
                        }
                    }
                }
            }
        }
        (ColumnArray::Str { .. }, ColumnArray::Str { .. }) => {
            for row in start..end {
                if let (Some(x), Some(y)) = (a.str_at(row), b.str_at(row)) {
                    if op.matches(x.cmp(y)) {
                        out.push(row);
                    }
                }
            }
        }
        _ => {
            for row in start..end {
                if let (Some(x), Some(y)) = (block.value(left, row), block.value(right, row)) {
                    if op.eval(&x, &y) {
                        out.push(row);
                    }
                }
            }
        }
    }
}

/// Keeps only the elements of `out` also present in `other` (both
/// ascending) — in place, one forward pass over each.
fn intersect_sorted(out: &mut Vec<usize>, other: &[usize]) {
    let mut keep = 0usize;
    let mut j = 0usize;
    for i in 0..out.len() {
        let v = out[i];
        while j < other.len() && other[j] < v {
            j += 1;
        }
        if j < other.len() && other[j] == v {
            out[keep] = v;
            keep += 1;
            j += 1;
        }
    }
    out.truncate(keep);
}

/// Replaces `out` with the ascending, deduplicated union of `out` and
/// `other` (both ascending).
fn union_sorted(out: &mut Vec<usize>, other: &[usize]) {
    if other.is_empty() {
        return;
    }
    if out.is_empty() {
        out.extend_from_slice(other);
        return;
    }
    let mut merged = Vec::with_capacity(out.len() + other.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < out.len() && j < other.len() {
        match out[i].cmp(&other[j]) {
            std::cmp::Ordering::Less => {
                merged.push(out[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                merged.push(other[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                merged.push(out[i]);
                i += 1;
                j += 1;
            }
        }
    }
    merged.extend_from_slice(&out[i..]);
    merged.extend_from_slice(&other[j..]);
    *out = merged;
}

#[cfg(test)]
mod tests {
    use super::*;
    use sma_types::{Column, DataType, Date, Decimal, Schema, StdRng, Tuple};

    /// A block over all five column types with scattered nulls, long
    /// enough to span several kernel batches.
    fn mixed_block(n: usize) -> (ColumnarBucket, Vec<Tuple>) {
        let schema = Schema::new(vec![
            Column::new("I", DataType::Int),
            Column::new("D", DataType::Decimal),
            Column::new("T", DataType::Date),
            Column::new("C", DataType::Char),
            Column::new("S", DataType::Str),
        ]);
        let mut rng = StdRng::seed_from_u64(0xC01C);
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let null = |r: &mut StdRng| r.next_u64().is_multiple_of(7);
            rows.push(vec![
                if null(&mut rng) {
                    Value::Null
                } else {
                    Value::Int((rng.next_u64() % 100) as i64 - 50)
                },
                if null(&mut rng) {
                    Value::Null
                } else {
                    Value::Decimal(Decimal::from_cents((rng.next_u64() % 1000) as i64 - 500))
                },
                if null(&mut rng) {
                    Value::Null
                } else {
                    Value::Date(Date::from_days(730_000 + (rng.next_u64() % 60) as i32))
                },
                if null(&mut rng) {
                    Value::Null
                } else {
                    Value::Char(b'A' + (rng.next_u64() % 4) as u8)
                },
                if null(&mut rng) {
                    Value::Null
                } else {
                    Value::Str(format!("s{:03}", i % 50))
                },
            ]);
        }
        let block = ColumnarBucket::from_rows(&schema, &rows).unwrap();
        (block, rows)
    }

    fn assert_matches_row_path(pred: &BucketPred, block: &ColumnarBucket, rows: &[Tuple]) {
        let expected: Vec<usize> = rows
            .iter()
            .enumerate()
            .filter(|(_, t)| pred.eval_tuple(t))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(
            filter_block(block, pred).rows(),
            expected.as_slice(),
            "pred {pred:?}"
        );
    }

    #[test]
    fn typed_leaves_match_eval_tuple() {
        let (block, rows) = mixed_block(2500);
        let literals: Vec<Value> = vec![
            Value::Int(0),
            Value::Int(-50),
            Value::Int(49),
            Value::Decimal(Decimal::from_cents(13)),
            Value::Date(Date::from_days(730_030)),
            Value::Char(b'B'),
            Value::Str("s025".into()),
        ];
        for col in 0..6 {
            for op in [CmpOp::Eq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
                for lit in &literals {
                    let pred = BucketPred::Cmp {
                        col,
                        op,
                        value: lit.clone(),
                    };
                    assert_matches_row_path(&pred, &block, &rows);
                }
            }
        }
    }

    #[test]
    fn null_literal_and_type_mismatch_select_nothing() {
        let (block, rows) = mixed_block(200);
        for col in 0..5 {
            let null_pred = BucketPred::Cmp {
                col,
                op: CmpOp::Eq,
                value: Value::Null,
            };
            assert!(filter_block(&block, &null_pred).rows().is_empty());
            assert_matches_row_path(&null_pred, &block, &rows);
            // Str literal against every non-Str column (and vice versa).
            let mismatch = BucketPred::Cmp {
                col,
                op: CmpOp::Le,
                value: if col == 4 {
                    Value::Int(3)
                } else {
                    Value::Str("x".into())
                },
            };
            assert!(filter_block(&block, &mismatch).rows().is_empty());
            assert_matches_row_path(&mismatch, &block, &rows);
        }
    }

    #[test]
    fn col_cmp_matches_eval_tuple() {
        let (block, rows) = mixed_block(1500);
        for (l, r) in [
            (0, 0),
            (1, 1),
            (2, 2),
            (3, 3),
            (4, 4),
            (0, 1),
            (3, 4),
            (0, 9),
        ] {
            for op in [CmpOp::Eq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
                let pred = BucketPred::col_cmp(l, op, r);
                assert_matches_row_path(&pred, &block, &rows);
            }
        }
    }

    #[test]
    fn conjunction_intersects_and_disjunction_unions() {
        let (block, rows) = mixed_block(3000);
        let a = BucketPred::cmp(0, CmpOp::Ge, -10i64);
        let b = BucketPred::cmp(0, CmpOp::Le, 10i64);
        let c = BucketPred::cmp(3, CmpOp::Eq, Value::Char(b'A'));
        for pred in [
            BucketPred::And(vec![a.clone(), b.clone()]),
            BucketPred::And(vec![a.clone(), b.clone(), c.clone()]),
            BucketPred::Or(vec![a.clone(), c.clone()]),
            BucketPred::Or(vec![BucketPred::And(vec![a.clone(), b.clone()]), c.clone()]),
            BucketPred::And(vec![BucketPred::Or(vec![b.clone(), c.clone()]), a.clone()]),
        ] {
            assert_matches_row_path(&pred, &block, &rows);
        }
    }

    #[test]
    fn empty_and_is_true_empty_or_is_false() {
        let (block, rows) = mixed_block(100);
        assert_eq!(
            filter_block(&block, &BucketPred::And(vec![])).rows().len(),
            rows.len()
        );
        assert!(filter_block(&block, &BucketPred::Or(vec![]))
            .rows()
            .is_empty());
    }

    #[test]
    fn out_of_range_column_selects_nothing() {
        let (block, rows) = mixed_block(64);
        let pred = BucketPred::cmp(17, CmpOp::Ge, 0i64);
        assert!(filter_block(&block, &pred).rows().is_empty());
        assert_matches_row_path(&pred, &block, &rows);
    }

    #[test]
    fn set_ops_are_exact() {
        let mut v = vec![1usize, 3, 5, 7, 9];
        intersect_sorted(&mut v, &[0, 3, 4, 7, 10]);
        assert_eq!(v, vec![3, 7]);
        let mut v = vec![1usize, 4];
        union_sorted(&mut v, &[0, 1, 2, 9]);
        assert_eq!(v, vec![0, 1, 2, 4, 9]);
        let mut v: Vec<usize> = vec![];
        union_sorted(&mut v, &[2, 3]);
        assert_eq!(v, vec![2, 3]);
        intersect_sorted(&mut v, &[]);
        assert!(v.is_empty());
    }
}
