//! Grouping with aggregation — Dayal's GAggr operator (\[4\] in the paper),
//! implemented as a hash aggregation over any child operator. This is the
//! plain (SMA-less) baseline `SMA_GAggr` is measured against.

use std::collections::BTreeMap;

use sma_core::{Accumulator, AggFn, ExprError, ScalarExpr};
use sma_types::{ColumnarBucket, DataType, RowView, Schema, Tuple, Value};

use crate::op::{ExecError, PhysicalOp};

/// One aggregate in a query's select clause.
#[derive(Debug, Clone, PartialEq)]
pub enum AggSpec {
    /// `min(expr)`
    Min(ScalarExpr),
    /// `max(expr)`
    Max(ScalarExpr),
    /// `sum(expr)`
    Sum(ScalarExpr),
    /// `count(*)`
    CountStar,
    /// `avg(expr)` — computed as `sum(expr) / count(*)` in a
    /// post-processing phase, exactly as §3.3 prescribes.
    Avg(ScalarExpr),
}

impl AggSpec {
    /// The input expression, if any.
    pub fn input(&self) -> Option<&ScalarExpr> {
        match self {
            AggSpec::Min(e) | AggSpec::Max(e) | AggSpec::Sum(e) | AggSpec::Avg(e) => Some(e),
            AggSpec::CountStar => None,
        }
    }

    /// The base aggregate function accumulated at runtime (`avg` → `sum`).
    pub fn base_fn(&self) -> AggFn {
        match self {
            AggSpec::Min(_) => AggFn::Min,
            AggSpec::Max(_) => AggFn::Max,
            AggSpec::Sum(_) | AggSpec::Avg(_) => AggFn::Sum,
            AggSpec::CountStar => AggFn::Count,
        }
    }

    /// Whether post-processing divides by the group count.
    pub fn is_avg(&self) -> bool {
        matches!(self, AggSpec::Avg(_))
    }
}

/// Per-group accumulation state shared by both GAggr variants.
#[derive(Debug)]
pub(crate) struct GroupState {
    pub accs: Vec<Accumulator>,
    /// Hidden `count(*)` — §3.3: "if the result aggregates do not contain
    /// a count(*) and if averages are demanded by the query, we add it".
    /// We always keep it: it also decides group existence.
    pub hidden_count: i64,
}

impl GroupState {
    pub fn new(specs: &[AggSpec]) -> GroupState {
        GroupState {
            accs: specs
                .iter()
                .map(|s| Accumulator::new(s.base_fn()))
                .collect(),
            hidden_count: 0,
        }
    }

    /// Folds one tuple into every aggregate.
    pub fn update(&mut self, specs: &[AggSpec], tuple: &[Value]) -> Result<(), ExecError> {
        for (spec, acc) in specs.iter().zip(&mut self.accs) {
            match spec.input() {
                Some(e) => acc.update(&e.eval(tuple)?),
                None => acc.update(&Value::Int(1)),
            }
        }
        self.hidden_count += 1;
        Ok(())
    }

    /// Folds one zero-copy row view into every aggregate. Identical math
    /// to [`GroupState::update`]; the aggregate inputs are evaluated
    /// straight off the encoded image without materializing the tuple.
    pub fn update_view(
        &mut self,
        specs: &[AggSpec],
        row: &sma_types::RowView<'_>,
    ) -> Result<(), ExecError> {
        for (spec, acc) in specs.iter().zip(&mut self.accs) {
            match spec.input() {
                Some(e) => acc.update(&e.eval_view(row)?),
                None => acc.update(&Value::Int(1)),
            }
        }
        self.hidden_count += 1;
        Ok(())
    }

    /// Folds one row of a columnar bucket into every aggregate. Identical
    /// math to [`GroupState::update`]; aggregate inputs are fetched
    /// straight out of the column arrays, so only the columns the specs
    /// actually reference are touched.
    pub fn update_block(
        &mut self,
        specs: &[AggSpec],
        block: &ColumnarBucket,
        row: usize,
    ) -> Result<(), ExecError> {
        for (spec, acc) in specs.iter().zip(&mut self.accs) {
            match spec.input() {
                Some(e) => {
                    let v = e.eval_fetch(&mut |c| {
                        block
                            .value(c, row)
                            .ok_or_else(|| ExprError(format!("column {c} out of range")))
                    })?;
                    acc.update(&v);
                }
                None => acc.update(&Value::Int(1)),
            }
        }
        self.hidden_count += 1;
        Ok(())
    }

    /// Merges a partial state for the same group (computed over a disjoint
    /// bucket range) into this one. Folding each partial's finished value
    /// back in is exact because min/max/sum/count are associative and the
    /// identity (`Null`, or `0` for count) merges as a no-op.
    pub fn absorb(&mut self, other: GroupState) {
        for (acc, partial) in self.accs.iter_mut().zip(other.accs) {
            acc.merge(&partial.finish());
        }
        self.hidden_count += other.hidden_count;
    }

    /// Final output values (averages divided by the count).
    pub fn finish(self, specs: &[AggSpec]) -> Vec<Value> {
        let n = self.hidden_count;
        specs
            .iter()
            .zip(self.accs)
            .map(|(spec, acc)| {
                let v = acc.finish();
                if spec.is_avg() && n > 0 {
                    match v {
                        Value::Decimal(d) => Value::Decimal(d.div_count(n)),
                        Value::Int(i) => Value::Int(i / n),
                        other => other,
                    }
                } else {
                    v
                }
            })
            .collect()
    }
}

/// A direct-indexed group table for all-`Char` group keys of at most two
/// columns — the TPC-D Q1 shape, `group by RETURNFLAG, LINESTATUS`.
///
/// Indexing a flat array by the raw key bytes replaces both the per-tuple
/// key `Vec` allocation and the ordered-map probe in the ambivalent-bucket
/// hot loop. `Null` group keys (legal in the model, absent in TPC-D data)
/// overflow to an ordered side map, so nothing is lost. Flat-index order
/// equals `Value` order for `Char` keys (both are byte order, and `Null`
/// sorts first in the `BTreeMap` everything folds back into), so results
/// are byte-identical to the generic path.
pub(crate) struct DenseGroups {
    cols: Vec<usize>,
    slots: Vec<Option<GroupState>>,
    overflow: BTreeMap<Vec<Value>, GroupState>,
}

impl DenseGroups {
    /// Builds the table when the grouping is dense-indexable: one or two
    /// group columns, all of type `Char`. Returns `None` otherwise (the
    /// caller falls back to the ordered map).
    pub fn try_new(schema: &Schema, group_by: &[usize]) -> Option<DenseGroups> {
        if group_by.is_empty() || group_by.len() > 2 {
            return None;
        }
        if !group_by
            .iter()
            .all(|&c| c < schema.len() && schema.column(c).ty == DataType::Char)
        {
            return None;
        }
        let mut slots = Vec::new();
        slots.resize_with(1usize << (8 * group_by.len()), || None);
        Some(DenseGroups {
            cols: group_by.to_vec(),
            slots,
            overflow: BTreeMap::new(),
        })
    }

    /// Folds one passing row into its group — allocation-free for
    /// non-null keys.
    pub fn update(&mut self, specs: &[AggSpec], row: &RowView<'_>) -> Result<(), ExecError> {
        let mut idx = 0usize;
        for (pos, &c) in self.cols.iter().enumerate() {
            match row.char_at(c) {
                Some(b) => idx = (idx << 8) | b as usize,
                None => {
                    let mut key = Vec::with_capacity(self.cols.len());
                    for &k in &self.cols[..pos] {
                        // These columns yielded Some earlier in this very
                        // loop; Null is the generic fallback for a null key.
                        key.push(row.char_at(k).map(Value::Char).unwrap_or(Value::Null));
                    }
                    for &k in &self.cols[pos..] {
                        key.push(row.get(k)?);
                    }
                    return self
                        .overflow
                        .entry(key)
                        .or_insert_with(|| GroupState::new(specs))
                        .update_view(specs, row);
                }
            }
        }
        self.slots[idx]
            .get_or_insert_with(|| GroupState::new(specs))
            .update_view(specs, row)
    }

    /// Folds one selected row of a columnar bucket into its group — the
    /// block twin of [`DenseGroups::update`], with identical key
    /// semantics: non-null `Char` keys index the flat table, null keys
    /// overflow to the ordered side map.
    pub fn update_block(
        &mut self,
        specs: &[AggSpec],
        block: &ColumnarBucket,
        row: usize,
    ) -> Result<(), ExecError> {
        let mut idx = 0usize;
        for (pos, &c) in self.cols.iter().enumerate() {
            match block_char_at(block, c, row) {
                Some(b) => idx = (idx << 8) | b as usize,
                None => {
                    let mut key = Vec::with_capacity(self.cols.len());
                    for &k in &self.cols[..pos] {
                        // These columns yielded Some earlier in this very
                        // loop; Null is the generic fallback for a null key.
                        key.push(
                            block_char_at(block, k, row)
                                .map(Value::Char)
                                .unwrap_or(Value::Null),
                        );
                    }
                    for &k in &self.cols[pos..] {
                        key.push(block.value(k, row).ok_or_else(|| {
                            ExecError::Plan(format!("group column {k} out of range"))
                        })?);
                    }
                    return self
                        .overflow
                        .entry(key)
                        .or_insert_with(|| GroupState::new(specs))
                        .update_block(specs, block, row);
                }
            }
        }
        self.slots[idx]
            .get_or_insert_with(|| GroupState::new(specs))
            .update_block(specs, block, row)
    }

    /// Folds a whole selection of columnar-bucket rows, spec-at-a-time.
    ///
    /// Pass 1 resolves every row's flat group slot (rows with a null key
    /// take the exact per-row overflow path immediately). Pass 2 then
    /// compiles each aggregate input once against the block's arrays and
    /// folds column-at-a-time: `sum` over a compiled `Decimal`/`Int`
    /// program feeds raw values straight into the accumulator, `count(*)`
    /// adds each group's row count in one step, and anything else (or an
    /// uncompilable tree) falls back to the per-row fold. Per-group
    /// update order is ascending row order either way, so even
    /// path-dependent accumulator states (saturating `Int` sums) match
    /// the row path bit for bit.
    pub fn update_block_batch(
        &mut self,
        specs: &[AggSpec],
        block: &ColumnarBucket,
        rows: &[usize],
    ) -> Result<(), ExecError> {
        enum Prog<'a> {
            Dec(sma_core::DecProgram<'a>),
            Int(sma_core::IntProgram<'a>),
            Count,
            Fallback,
        }
        let mut slot_of: BTreeMap<usize, usize> = BTreeMap::new();
        let mut touched: Vec<usize> = Vec::new();
        let mut group_rows: Vec<Vec<usize>> = Vec::new();
        'rows: for &row in rows {
            let mut idx = 0usize;
            for &c in &self.cols {
                match block_char_at(block, c, row) {
                    Some(b) => idx = (idx << 8) | b as usize,
                    None => {
                        self.update_block(specs, block, row)?;
                        continue 'rows;
                    }
                }
            }
            match slot_of.get(&idx) {
                Some(&p) => group_rows[p].push(row),
                None => {
                    slot_of.insert(idx, touched.len());
                    touched.push(idx);
                    group_rows.push(vec![row]);
                }
            }
        }
        let progs: Vec<Prog<'_>> = specs
            .iter()
            .map(|spec| match (spec.base_fn(), spec.input()) {
                (AggFn::Count, None) => Prog::Count,
                (AggFn::Sum, Some(e)) => e
                    .compile_decimal(block)
                    .map(Prog::Dec)
                    .or_else(|| e.compile_int(block).map(Prog::Int))
                    .unwrap_or(Prog::Fallback),
                _ => Prog::Fallback,
            })
            .collect();
        let mut scratch: Vec<Option<i64>> = Vec::new();
        for (&flat, rows_g) in touched.iter().zip(&group_rows) {
            let state = self.slots[flat].get_or_insert_with(|| GroupState::new(specs));
            for ((spec, prog), acc) in specs.iter().zip(&progs).zip(&mut state.accs) {
                match prog {
                    Prog::Count => acc.fold_count(rows_g.len()),
                    Prog::Dec(p) => {
                        acc.fold_sum_dec(rows_g.iter().map(|&r| p.eval_cents(r)));
                    }
                    Prog::Int(p) => {
                        scratch.clear();
                        for &r in rows_g {
                            scratch.push(p.eval(r)?);
                        }
                        acc.fold_sum_int(scratch.iter().copied());
                    }
                    Prog::Fallback => {
                        for &r in rows_g {
                            match spec.input() {
                                Some(e) => {
                                    let v = e.eval_fetch(&mut |c| {
                                        block.value(c, r).ok_or_else(|| {
                                            ExprError(format!("column {c} out of range"))
                                        })
                                    })?;
                                    acc.update(&v);
                                }
                                None => acc.update(&Value::Int(1)),
                            }
                        }
                    }
                }
            }
            state.hidden_count += i64::try_from(rows_g.len()).unwrap_or(i64::MAX);
        }
        Ok(())
    }

    /// Converts back to the ordered map the merge machinery uses.
    pub fn into_groups(self) -> BTreeMap<Vec<Value>, GroupState> {
        let mut out = self.overflow;
        let two_cols = self.cols.len() == 2;
        for (idx, slot) in self.slots.into_iter().enumerate() {
            let Some(state) = slot else { continue };
            let key = if two_cols {
                vec![Value::Char((idx >> 8) as u8), Value::Char(idx as u8)]
            } else {
                vec![Value::Char(idx as u8)]
            };
            out.insert(key, state);
        }
        out
    }
}

/// The raw byte of a non-null `Char` column in a columnar bucket — the
/// block twin of [`RowView::char_at`]: `None` for nulls, non-`Char`
/// columns, and out-of-range rows or columns.
fn block_char_at(block: &ColumnarBucket, col: usize, row: usize) -> Option<u8> {
    let array = block.col(col)?;
    if let sma_types::ColumnArray::Char { data, .. } = array {
        if row < block.n_rows() && array.is_valid(row) {
            return data.get(row).copied();
        }
    }
    None
}

/// Hash (well, ordered-map) aggregation: a pipeline breaker computing all
/// groups in `open`, then streaming `group key ++ aggregates` rows sorted
/// by group key.
pub struct HashGAggr<'a> {
    child: Box<dyn PhysicalOp + 'a>,
    group_by: Vec<usize>,
    specs: Vec<AggSpec>,
    results: Vec<Tuple>,
    pos: usize,
}

impl<'a> HashGAggr<'a> {
    /// Creates the operator: group `child`'s output by the `group_by`
    /// columns and compute `specs`.
    pub fn new(
        child: Box<dyn PhysicalOp + 'a>,
        group_by: Vec<usize>,
        specs: Vec<AggSpec>,
    ) -> HashGAggr<'a> {
        HashGAggr {
            child,
            group_by,
            specs,
            results: Vec::new(),
            pos: 0,
        }
    }
}

impl PhysicalOp for HashGAggr<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.results.clear();
        self.pos = 0;
        self.child.open()?;
        let mut groups: BTreeMap<Vec<Value>, GroupState> = BTreeMap::new();
        while let Some(t) = self.child.next()? {
            let key: Vec<Value> = self.group_by.iter().map(|&g| t[g].clone()).collect();
            groups
                .entry(key)
                .or_insert_with(|| GroupState::new(&self.specs))
                .update(&self.specs, &t)?;
        }
        self.child.close();
        for (key, state) in groups {
            let mut row = key;
            row.extend(state.finish(&self.specs));
            self.results.push(row);
        }
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        if self.pos < self.results.len() {
            let t = std::mem::take(&mut self.results[self.pos]);
            self.pos += 1;
            Ok(Some(t))
        } else {
            Ok(None)
        }
    }

    fn close(&mut self) {
        self.results.clear();
    }

    fn describe(&self) -> String {
        format!(
            "HashGAggr(by={:?}, aggs={}) <- {}",
            self.group_by,
            self.specs.len(),
            self.child.describe()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::SeqScan;
    use crate::op::collect;
    use sma_core::col;
    use sma_storage::Table;
    use sma_types::{Column, DataType, Decimal, Schema};
    use std::sync::Arc;

    fn table(rows: &[(u8, i64, &str)]) -> Table {
        let schema = Arc::new(Schema::new(vec![
            Column::new("G", DataType::Char),
            Column::new("N", DataType::Int),
            Column::new("P", DataType::Decimal),
        ]));
        let mut t = Table::in_memory("t", schema, 1);
        for &(g, n, p) in rows {
            t.append(&vec![
                Value::Char(g),
                Value::Int(n),
                Value::Decimal(Decimal::parse(p).unwrap()),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn groups_and_aggregates() {
        let t = table(&[
            (b'A', 1, "1.00"),
            (b'B', 10, "5.00"),
            (b'A', 2, "3.00"),
            (b'B', 20, "7.00"),
            (b'A', 3, "2.00"),
        ]);
        let mut g = HashGAggr::new(
            Box::new(SeqScan::new(&t)),
            vec![0],
            vec![
                AggSpec::CountStar,
                AggSpec::Sum(col(1)),
                AggSpec::Min(col(1)),
                AggSpec::Max(col(1)),
                AggSpec::Avg(col(2)),
            ],
        );
        let rows = collect(&mut g).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0],
            vec![
                Value::Char(b'A'),
                Value::Int(3),
                Value::Int(6),
                Value::Int(1),
                Value::Int(3),
                Value::Decimal(Decimal::parse("2.00").unwrap()),
            ]
        );
        assert_eq!(rows[1][0], Value::Char(b'B'));
        assert_eq!(rows[1][1], Value::Int(2));
        assert_eq!(rows[1][5], Value::Decimal(Decimal::parse("6.00").unwrap()));
    }

    #[test]
    fn global_aggregate_no_grouping() {
        let t = table(&[(b'A', 1, "1.00"), (b'B', 2, "2.00")]);
        let mut g = HashGAggr::new(
            Box::new(SeqScan::new(&t)),
            vec![],
            vec![AggSpec::CountStar, AggSpec::Sum(col(1))],
        );
        let rows = collect(&mut g).unwrap();
        assert_eq!(rows, vec![vec![Value::Int(2), Value::Int(3)]]);
    }

    #[test]
    fn empty_input_yields_no_groups() {
        let t = table(&[]);
        let mut g = HashGAggr::new(
            Box::new(SeqScan::new(&t)),
            vec![0],
            vec![AggSpec::CountStar],
        );
        assert!(collect(&mut g).unwrap().is_empty());
    }

    #[test]
    fn avg_of_ints_truncates_like_sql() {
        let t = table(&[(b'A', 1, "1.00"), (b'A', 2, "1.00")]);
        let mut g = HashGAggr::new(
            Box::new(SeqScan::new(&t)),
            vec![0],
            vec![AggSpec::Avg(col(1))],
        );
        let rows = collect(&mut g).unwrap();
        assert_eq!(rows[0][1], Value::Int(1)); // (1+2)/2 = 1 in integer math
    }

    #[test]
    fn output_sorted_by_group_key() {
        let t = table(&[(b'C', 1, "1.00"), (b'A', 1, "1.00"), (b'B', 1, "1.00")]);
        let mut g = HashGAggr::new(
            Box::new(SeqScan::new(&t)),
            vec![0],
            vec![AggSpec::CountStar],
        );
        let rows = collect(&mut g).unwrap();
        let order: Vec<u8> = rows.iter().map(|r| r[0].as_char().unwrap()).collect();
        assert_eq!(order, vec![b'A', b'B', b'C']);
    }

    #[test]
    fn spec_introspection() {
        assert_eq!(AggSpec::CountStar.input(), None);
        assert_eq!(AggSpec::Avg(col(1)).base_fn(), AggFn::Sum);
        assert!(AggSpec::Avg(col(1)).is_avg());
        assert!(!AggSpec::Sum(col(1)).is_avg());
    }
}
