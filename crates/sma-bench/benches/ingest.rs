//! Durable streaming ingest: what the WAL fsync costs per acknowledged
//! insert, and what an unflushed memtable overlay costs readers, against
//! the bulk-load and sealed-segment baselines. The same fixture backs
//! `paper_tables e11`, which records the medians in `BENCH_ingest.json`.

use sma_bench::harness::{black_box, Criterion};
use sma_bench::ingest::IngestFixture;
use sma_bench::{criterion_group, criterion_main};

fn bench_ingest(c: &mut Criterion) {
    let fx = IngestFixture::new("bench", 150);
    let expected = fx.bulk_answer();

    // The whole load live in the overlay, and the same load sealed.
    let overlay = fx.stream_into(&fx.sample_dir("overlay"));
    let mut flushed = fx.stream_into(&fx.sample_dir("flushed"));
    flushed.flush().expect("flush");
    for sw in [&overlay, &flushed] {
        assert_eq!(
            sw.query("LINEITEM", fx.query.clone()).expect("query").rows,
            expected,
            "every measured path must answer like the bulk load"
        );
    }

    let mut group = c.benchmark_group("ingest");
    group.sample_size(10);
    let stream_dir = fx.sample_dir("stream");
    group.bench_function("insert_load/streamed_wal_fsync", |b| {
        b.iter(|| black_box(fx.stream_into(&stream_dir)))
    });
    group.bench_function("insert_load/bulk_no_wal", |b| {
        b.iter(|| {
            let mut w = fx.fresh_warehouse();
            for t in &fx.rows {
                w.insert("LINEITEM", t).expect("insert");
            }
            black_box(w)
        })
    });
    group.bench_function("query/memtable_overlay", |b| {
        b.iter(|| black_box(overlay.query("LINEITEM", fx.query.clone()).expect("query")))
    });
    group.bench_function("query/flushed_segments", |b| {
        b.iter(|| black_box(flushed.query("LINEITEM", fx.query.clone()).expect("query")))
    });
    group.finish();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
