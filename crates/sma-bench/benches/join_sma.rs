//! A3 — ablation: join SMAs / semi-join input reduction, §4.
//!
//! `LINEITEM ⋉ ORDERS on L_SHIPDATE <= O_ORDERDATE` with ORDERS narrowed
//! to early dates so the reduction has something to skip: naive semi-join
//! (every R bucket read) vs SMA-reduced (graded buckets skipped).

use sma_bench::harness::Criterion;
use sma_bench::{criterion_group, criterion_main};

use sma_bench::{bench_scale_factor, bench_table};
use sma_core::{col, AggFn, CmpOp, SmaDefinition, SmaSet};
use sma_exec::{collect, SemiJoin};
use sma_tpcd::{
    generate, load_orders, schema::lineitem as li, schema::orders as o, start_date, Clustering,
    GenConfig,
};

fn bench_join_sma(c: &mut Criterion) {
    let lineitem = bench_table(Clustering::SortedByShipdate, 1);
    let cfg = GenConfig::scale_factor(bench_scale_factor(), Clustering::SortedByShipdate);
    let (orders, _) = generate(&cfg);
    let early: Vec<_> = orders
        .into_iter()
        .filter(|ord| ord.orderdate <= start_date().add_days(90))
        .collect();
    let orders_table = load_orders(&early, 1, 1 << 14);
    let smas = SmaSet::build(
        &lineitem,
        vec![
            SmaDefinition::new("min", AggFn::Min, col(li::SHIPDATE)),
            SmaDefinition::new("max", AggFn::Max, col(li::SHIPDATE)),
        ],
    )
    .expect("build");

    let mut group = c.benchmark_group("a3_join_sma");
    group.sample_size(15);
    group.bench_function("naive_semijoin", |b| {
        b.iter(|| {
            let mut j = SemiJoin::new(
                &lineitem,
                li::SHIPDATE,
                CmpOp::Le,
                &orders_table,
                o::ORDERDATE,
                None,
            );
            collect(&mut j).expect("join")
        })
    });
    group.bench_function("sma_reduced_semijoin", |b| {
        b.iter(|| {
            let mut j = SemiJoin::new(
                &lineitem,
                li::SHIPDATE,
                CmpOp::Le,
                &orders_table,
                o::ORDERDATE,
                Some(&smas),
            );
            collect(&mut j).expect("join")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_join_sma);
criterion_main!(benches);
