//! Microbenchmark: the grading algebra itself (§3.1).
//!
//! Grading is the hot inner loop of every SMA plan — the paper's "< 2 %
//! overhead even when erroneously applied" hinges on it being nearly free
//! compared to a page read. This measures single-bucket grades and the
//! full classification pass for atomic and composite predicates.

use sma_bench::harness::Criterion;
use sma_bench::{criterion_group, criterion_main};

use sma_bench::{bench_table, q1_smas};
use sma_core::{BucketPred, Classification, CmpOp};
use sma_exec::cutoff;
use sma_tpcd::{schema::lineitem as li, Clustering};
use sma_types::Value;

fn bench_grading(c: &mut Criterion) {
    let table = bench_table(Clustering::diagonal_default(), 1);
    let smas = q1_smas(&table);
    let atomic = BucketPred::cmp(li::SHIPDATE, CmpOp::Le, Value::Date(cutoff(90)));
    let composite = BucketPred::Or(vec![
        BucketPred::And(vec![
            atomic.clone(),
            BucketPred::cmp(li::SHIPDATE, CmpOp::Ge, Value::Date(cutoff(2000))),
        ]),
        BucketPred::cmp(li::SHIPDATE, CmpOp::Eq, Value::Date(cutoff(0))),
    ]);
    let n = table.bucket_count();

    let mut group = c.benchmark_group("grading");
    group.bench_function("grade_one_bucket_atomic", |b| {
        let mut bucket = 0u32;
        b.iter(|| {
            bucket = (bucket + 1) % n;
            atomic.grade(bucket, &smas)
        })
    });
    group.bench_function("classify_all_atomic", |b| {
        b.iter(|| Classification::classify(&atomic, n, &smas))
    });
    group.bench_function("classify_all_composite", |b| {
        b.iter(|| Classification::classify(&composite, n, &smas))
    });
    group.finish();
}

criterion_group!(benches, bench_grading);
criterion_main!(benches);
