//! Materialized vs zero-copy scan kernels: the per-bucket filter loop and
//! the per-query aggregation loops of Query 1, measured on an
//! all-ambivalent table (the case where per-tuple costs dominate). The
//! same kernels back `paper_tables e10`, which records the medians in
//! `BENCH_scan_kernels.json`.

use sma_bench::harness::{black_box, Criterion};
use sma_bench::kernels::scan_kernel_fixture;
use sma_bench::{criterion_group, criterion_main};

fn bench_scan_kernels(c: &mut Criterion) {
    let fx = scan_kernel_fixture();
    assert_eq!(
        fx.filter_bucket_materialized(),
        fx.filter_bucket_zero_copy(),
        "kernels must agree before being compared"
    );
    let expected = fx.q1_materialized();
    assert_eq!(expected, fx.q1_sma_ambivalent());
    assert_eq!(expected, fx.q1_full_scan_fused());

    let mut group = c.benchmark_group("scan_kernels");
    group.bench_function("bucket_filter/materialized", |b| {
        b.iter(|| black_box(fx.filter_bucket_materialized()))
    });
    group.bench_function("bucket_filter/zero_copy", |b| {
        b.iter(|| black_box(fx.filter_bucket_zero_copy()))
    });
    group.bench_function("query1_ambivalent/materialized", |b| {
        b.iter(|| black_box(fx.q1_materialized()))
    });
    group.bench_function("query1_ambivalent/zero_copy_sma_gaggr", |b| {
        b.iter(|| black_box(fx.q1_sma_ambivalent()))
    });
    group.bench_function("query1_full_scan/zero_copy_fused", |b| {
        b.iter(|| black_box(fx.q1_full_scan_fused()))
    });
    group.finish();
}

criterion_group!(benches, bench_scan_kernels);
criterion_main!(benches);
