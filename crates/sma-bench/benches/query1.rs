//! E3 — Query 1 response time (the §2.4 table).
//!
//! Warm runs of Query 1 with and without the Fig. 4 SMA set, over sorted,
//! diagonal and shuffled LINEITEM. The paper's cold numbers are modeled
//! deterministically by `paper_tables e3` (see `DESIGN.md`); wall-clock
//! here shows the same *shape*: the SMA plan wins by a widening margin as
//! clustering improves.

use sma_bench::harness::Criterion;
use sma_bench::{criterion_group, criterion_main};

use sma_bench::{bench_table, q1, q1_smas};
use sma_tpcd::Clustering;

fn bench_query1(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_query1");
    group.sample_size(20);
    for (name, clustering) in [
        ("sorted", Clustering::SortedByShipdate),
        ("diagonal", Clustering::diagonal_default()),
        ("shuffled", Clustering::Shuffled),
    ] {
        let table = bench_table(clustering, 1);
        let smas = q1_smas(&table);
        group.bench_function(format!("{name}/without_smas"), |b| {
            b.iter(|| q1(&table, None, false))
        });
        group.bench_function(format!("{name}/with_smas"), |b| {
            b.iter(|| q1(&table, Some(&smas), false))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query1);
criterion_main!(benches);
