//! A4 — ablation: maintenance and bulkloading costs.
//!
//! §2.1 claims SMAs are "cheap to maintain" (O(1) per touched tuple) and
//! "amenable to bulkloading". This bench quantifies both against the
//! alternative a warehouse would otherwise use — rebuilding from scratch —
//! and against B+-tree insertion:
//!
//! * `incremental_append`: nightly-load style — append a batch of tuples
//!   and route each into the SMA set;
//! * `rebuild_after_append`: the same batch, answered by a full rebuild;
//! * `refresh_one_stale_bucket`: re-tightening min/max after a delete.

use sma_bench::harness::Criterion;
use sma_bench::{criterion_group, criterion_main};

use sma_bench::{bench_table, q1_smas};
use sma_core::SmaSet;
use sma_tpcd::{generate, Clustering, GenConfig};

fn bench_maintenance(c: &mut Criterion) {
    let base = bench_table(Clustering::SortedByShipdate, 1);
    let smas = q1_smas(&base);
    // A batch of fresh line items to append (1 % of the table).
    let (_, extra) = generate(&GenConfig {
        orders: 40,
        clustering: Clustering::SortedByShipdate,
        seed: 777,
        bucket_pages: 1,
        pool_pages: 64,
    });

    let mut group = c.benchmark_group("a4_maintenance");
    group.sample_size(20);
    group.bench_function("incremental_append_batch", |b| {
        b.iter(|| {
            // Route the batch into a copy of the SMA set (the table append
            // itself is the same for both strategies, so it is excluded).
            let mut set = smas.clone();
            let bucket = base.bucket_count(); // appends land past the end
            for item in &extra {
                set.note_insert(bucket, &item.to_tuple()).expect("insert");
            }
            set
        })
    });
    group.bench_function("rebuild_from_scratch", |b| {
        b.iter(|| SmaSet::build_query1_set(&base).expect("rebuild"))
    });
    group.bench_function("refresh_one_stale_bucket", |b| {
        let victim = base.scan_bucket(0).expect("bucket")[0].1.clone();
        b.iter(|| {
            let mut set = smas.clone();
            set.note_delete(0, &victim).expect("delete");
            set.refresh_bucket(&base, 0).expect("refresh");
            set
        })
    });
    group.finish();
}

criterion_group!(benches, bench_maintenance);
criterion_main!(benches);
