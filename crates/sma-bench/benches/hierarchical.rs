//! A2 — ablation: hierarchical (two-level) SMAs, §4.
//!
//! Compares flat grading of every level-1 entry against two-level pruning
//! at several fanouts, over clustered data where level 2 resolves most
//! super-buckets without touching level 1.

use sma_bench::harness::{BenchmarkId, Criterion};
use sma_bench::{criterion_group, criterion_main};

use sma_bench::bench_table;
use sma_core::{
    col, AggFn, BucketPred, Classification, CmpOp, HierarchicalMinMax, Sma, SmaDefinition, SmaSet,
};
use sma_exec::cutoff;
use sma_tpcd::{schema::lineitem as li, Clustering};
use sma_types::Value;

fn bench_hierarchical(c: &mut Criterion) {
    let table = bench_table(Clustering::SortedByShipdate, 1);
    let min = Sma::build(
        &table,
        SmaDefinition::new("min", AggFn::Min, col(li::SHIPDATE)),
    )
    .expect("build");
    let max = Sma::build(
        &table,
        SmaDefinition::new("max", AggFn::Max, col(li::SHIPDATE)),
    )
    .expect("build");
    let set = SmaSet::build(
        &table,
        vec![
            SmaDefinition::new("min", AggFn::Min, col(li::SHIPDATE)),
            SmaDefinition::new("max", AggFn::Max, col(li::SHIPDATE)),
        ],
    )
    .expect("build");
    let pred = BucketPred::cmp(li::SHIPDATE, CmpOp::Le, Value::Date(cutoff(90)));

    let mut group = c.benchmark_group("a2_hierarchical");
    group.bench_function("flat_grading", |b| {
        b.iter(|| Classification::classify(&pred, table.bucket_count(), &set))
    });
    for fanout in [8u32, 32, 128] {
        let h = HierarchicalMinMax::from_smas(&min, &max, fanout).unwrap();
        group.bench_with_input(BenchmarkId::new("two_level", fanout), &fanout, |b, _| {
            b.iter(|| h.prune(&pred))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hierarchical);
criterion_main!(benches);
