//! E1 — SMA creation (the §2.4 creation-time table).
//!
//! Benchmarks building each of the eight Query 1 SMAs individually, all of
//! them in one shared scan, the parallel bulkload, and — as the paper's
//! comparison point — bulk-loading a B+ tree on `L_SHIPDATE`.

use sma_bench::harness::Criterion;
use sma_bench::{criterion_group, criterion_main};

use sma_bench::bench_table;
use sma_core::{build_many, build_many_parallel, Sma, SmaSet};
use sma_cube::{page_sized_order, BPlusTree};
use sma_tpcd::{schema::lineitem as li, Clustering};

fn bench_creation(c: &mut Criterion) {
    let table = bench_table(Clustering::SortedByShipdate, 1);
    let defs = SmaSet::query1_definitions(&table).expect("defs");

    let mut group = c.benchmark_group("e1_creation");
    group.sample_size(10);
    for def in &defs {
        group.bench_function(format!("sma_{}", def.name), |b| {
            b.iter(|| Sma::build(&table, def.clone()).expect("build"))
        });
    }
    group.bench_function("all_8_shared_scan", |b| {
        b.iter(|| build_many(&table, defs.clone()).expect("build"))
    });
    group.bench_function("all_8_parallel_x4", |b| {
        b.iter(|| build_many_parallel(&table, defs.clone(), 4).expect("build"))
    });

    // Comparator: B+ tree on shipdate (paper: 230 MB, "far beyond" 15 min).
    let rows = table.scan().expect("scan");
    let mut pairs: Vec<(i32, u64)> = rows
        .iter()
        .map(|(tid, t)| {
            (
                t[li::SHIPDATE].as_date().expect("typed").days(),
                (tid.page as u64) << 16 | tid.slot as u64,
            )
        })
        .collect();
    pairs.sort_by_key(|&(k, _)| k);
    group.bench_function("btree_bulk_load", |b| {
        b.iter(|| BPlusTree::bulk_load(page_sized_order(4, 8), pairs.clone()))
    });
    group.bench_function("btree_insert_each", |b| {
        b.iter(|| {
            let mut t = BPlusTree::new(page_sized_order(4, 8));
            for &(k, v) in &pairs {
                t.insert(k, v);
            }
            t
        })
    });
    group.finish();
}

criterion_group!(benches, bench_creation);
criterion_main!(benches);
