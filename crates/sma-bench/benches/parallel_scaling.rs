//! E8 — thread scaling of the bucket-parallel paths.
//!
//! Measures SMA bulkload (`build_many_parallel`) and the bucket-parallel
//! `SmaGAggr` at 1/2/4/8 worker threads over diagonal-clustered LINEITEM.
//! Results are recorded in `EXPERIMENTS.md`; on a single-core host the
//! curve is flat (threads only add scheduling overhead), on an N-core
//! host the bucket loop scales until morsels run out.

use sma_bench::harness::{BenchmarkId, Criterion};
use sma_bench::{bench_table, criterion_group, criterion_main};
use sma_core::col;
use sma_core::{build_many_parallel, BucketPred, CmpOp, SmaSet};
use sma_exec::{collect, cutoff, AggSpec, Parallelism, SmaGAggr};
use sma_tpcd::{schema::lineitem as li, Clustering};
use sma_types::Value;

fn bench_parallel_scaling(c: &mut Criterion) {
    let table = bench_table(Clustering::diagonal_default(), 1);
    let defs = SmaSet::query1_definitions(&table).expect("defs");
    let smas = SmaSet::build(&table, defs.clone()).expect("build");
    let pred = BucketPred::cmp(li::SHIPDATE, CmpOp::Le, Value::Date(cutoff(90)));
    let group_by = vec![li::RETURNFLAG, li::LINESTATUS];
    let specs = vec![
        AggSpec::CountStar,
        AggSpec::Sum(col(li::QUANTITY)),
        AggSpec::Avg(col(li::QUANTITY)),
    ];

    let mut group = c.benchmark_group("e8_thread_scaling");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("bulkload", threads),
            &threads,
            |b, &threads| {
                b.iter(|| build_many_parallel(&table, defs.clone(), threads).expect("build"))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sma_gaggr", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut op =
                        SmaGAggr::new(&table, pred.clone(), group_by.clone(), specs.clone(), &smas)
                            .expect("plan")
                            .with_parallelism(Parallelism::new(threads));
                    collect(&mut op).expect("run")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
