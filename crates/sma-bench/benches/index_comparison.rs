//! A5 — index-family comparison: SMA vs projection index vs bitmap index
//! vs B+ tree on the structures' home turf and away games.
//!
//! The paper's introduction surveys traditional indexes, bitmaps and
//! projection indexes before arguing SMAs fill the low-selectivity gap.
//! This bench runs one representative task per structure over the same
//! LINEITEM data:
//!
//! * count of `L_SHIPDATE <= cutoff` at ~96 % selectivity (SMA turf),
//! * point lookup of one ship date (B+ tree turf),
//! * count of `L_RETURNFLAG = 'R'` (bitmap turf),
//! * exact per-tuple selection ordinals (projection-index turf).

use sma_bench::harness::Criterion;
use sma_bench::{criterion_group, criterion_main};

use sma_bench::{bench_table, q1_smas};
use sma_core::BucketPred;
use sma_core::{col, CmpOp, ProjectionIndex};
use sma_cube::{page_sized_order, BPlusTree, BitmapIndex};
use sma_exec::{collect, cutoff, AggSpec, SmaGAggr};
use sma_tpcd::{schema::lineitem as li, Clustering};
use sma_types::Value;

fn bench_index_comparison(c: &mut Criterion) {
    let table = bench_table(Clustering::SortedByShipdate, 1);
    let smas = q1_smas(&table);
    let projection = ProjectionIndex::build(&table, col(li::SHIPDATE)).expect("build");
    let bitmap = BitmapIndex::build(&table, li::RETURNFLAG).expect("build");
    let rows = table.scan().expect("scan");
    let mut pairs: Vec<(i32, u64)> = rows
        .iter()
        .map(|(tid, t)| {
            (
                t[li::SHIPDATE].as_date().expect("typed").days(),
                (tid.page as u64) << 16 | tid.slot as u64,
            )
        })
        .collect();
    pairs.sort_by_key(|&(k, _)| k);
    let tree = BPlusTree::bulk_load(page_sized_order(4, 8), pairs);
    let cut = cutoff(90);
    let probe_day = cut.days();

    let mut group = c.benchmark_group("a5_index_comparison");
    group.bench_function("count_le_cutoff/sma_gaggr", |b| {
        b.iter(|| {
            let mut op = SmaGAggr::new(
                &table,
                BucketPred::cmp(li::SHIPDATE, CmpOp::Le, Value::Date(cut)),
                vec![],
                vec![AggSpec::CountStar],
                &smas,
            )
            .expect("op");
            collect(&mut op).expect("collect")
        })
    });
    group.bench_function("count_le_cutoff/projection_index", |b| {
        b.iter(|| projection.count(CmpOp::Le, &Value::Date(cut)))
    });
    group.bench_function("count_le_cutoff/btree_range", |b| {
        b.iter(|| tree.range(&i32::MIN, &probe_day).len())
    });
    group.bench_function("point_lookup/btree", |b| b.iter(|| tree.get(&probe_day)));
    group.bench_function("point_lookup/projection_index", |b| {
        b.iter(|| projection.count(CmpOp::Eq, &Value::Date(cut)))
    });
    group.bench_function("flag_eq/bitmap", |b| {
        b.iter(|| BitmapIndex::count(&bitmap.eq(&Value::Char(b'R'))))
    });
    group.finish();
}

criterion_group!(benches, bench_index_comparison);
criterion_main!(benches);
