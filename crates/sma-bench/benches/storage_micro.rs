//! Microbenchmarks of the storage substrate: tuple codec, slotted-page
//! operations, and buffer-pool hit paths. These bound the constant factors
//! under every experiment (a SMA plan's win is page-skipping, so the
//! per-page costs here are the currency of all the other numbers).

use sma_bench::harness::Criterion;
use sma_bench::{criterion_group, criterion_main};

use sma_storage::{BufferPool, MemStore, PageStore, SlottedPage};
use sma_tpcd::{generate, Clustering, GenConfig};
use sma_types::row;

fn bench_storage(c: &mut Criterion) {
    let (_, items) = generate(&GenConfig::tiny(Clustering::Uniform));
    let schema = sma_tpcd::lineitem_schema();
    let tuple = items[0].to_tuple();
    let mut image = Vec::new();
    row::encode(&schema, &tuple, &mut image).unwrap();

    let mut group = c.benchmark_group("storage_micro");
    group.bench_function("codec/encode_lineitem", |b| {
        let mut buf = Vec::with_capacity(256);
        b.iter(|| {
            buf.clear();
            row::encode(&schema, &tuple, &mut buf).expect("encodable tuple");
            buf.len()
        })
    });
    group.bench_function("codec/decode_lineitem", |b| {
        b.iter(|| row::decode(&schema, &image).expect("valid image"))
    });
    group.bench_function("page/insert_until_full", |b| {
        b.iter(|| {
            let mut p = SlottedPage::new();
            let mut n = 0;
            while p.insert(&image).is_some() {
                n += 1;
            }
            n
        })
    });
    group.bench_function("page/iterate_full_page", |b| {
        let mut p = SlottedPage::new();
        while p.insert(&image).is_some() {}
        b.iter(|| p.iter().map(|(_, img)| img.len()).sum::<usize>())
    });
    group.bench_function("page/from_bytes_validate", |b| {
        let mut p = SlottedPage::new();
        while p.insert(&image).is_some() {}
        let bytes = *p.as_bytes();
        b.iter(|| SlottedPage::from_bytes(&bytes).expect("valid page"))
    });
    group.bench_function("pool/warm_hit", |b| {
        let pool = {
            let mut store = MemStore::new();
            for _ in 0..64 {
                store.allocate().unwrap();
            }
            BufferPool::new(Box::new(store), 128)
        };
        for p in 0..64 {
            pool.with_page(p, |_| ()).unwrap();
        }
        let mut p = 0u32;
        b.iter(|| {
            p = (p + 1) % 64;
            pool.with_page(p, |d| d[0]).unwrap()
        })
    });
    group.bench_function("pool/cold_miss_with_eviction", |b| {
        let pool = {
            let mut store = MemStore::new();
            for _ in 0..64 {
                store.allocate().unwrap();
            }
            BufferPool::new(Box::new(store), 8)
        };
        let mut p = 0u32;
        b.iter(|| {
            p = (p + 9) % 64; // stride defeats the 8-frame pool
            pool.with_page(p, |d| d[0]).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
