//! A1 — ablation: the §4 bucket-size trade-off.
//!
//! Small buckets → more SMA entries to scan; large buckets → more
//! ambivalent buckets under imperfect (diagonal) clustering. The sweep
//! shows the U-shape the paper describes.

use sma_bench::harness::{BenchmarkId, Criterion};
use sma_bench::{criterion_group, criterion_main};

use sma_bench::{bench_table, q1, q1_smas};
use sma_tpcd::Clustering;

fn bench_bucket_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_bucket_size");
    group.sample_size(15);
    for bucket_pages in [1u32, 2, 4, 8, 16, 32] {
        let table = bench_table(Clustering::diagonal_default(), bucket_pages);
        let smas = q1_smas(&table);
        group.bench_with_input(
            BenchmarkId::new("q1_sma_plan", bucket_pages),
            &bucket_pages,
            |b, _| b.iter(|| q1(&table, Some(&smas), false)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bucket_size);
criterion_main!(benches);
