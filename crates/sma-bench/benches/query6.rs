//! E7 — Query 6: the conjunctive-predicate workload (§3.1 `and` rules).
//!
//! Not a table in the paper, but the query class its §3.1 algebra is
//! built for: three attributes restricted at once. On time-clustered data
//! the ship-date window disqualifies most buckets without I/O.

use sma_bench::harness::Criterion;
use sma_bench::{criterion_group, criterion_main};

use sma_bench::bench_table;
use sma_core::SmaSet;
use sma_exec::{query6_sma_definitions, run_query6, PlannerConfig, Q6Params};
use sma_tpcd::Clustering;

fn bench_query6(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_query6");
    group.sample_size(20);
    for (name, clustering) in [
        ("sorted", Clustering::SortedByShipdate),
        ("diagonal", Clustering::diagonal_default()),
        ("shuffled", Clustering::Shuffled),
    ] {
        let table = bench_table(clustering, 1);
        let smas =
            SmaSet::build(&table, query6_sma_definitions(&table).expect("defs")).expect("build");
        let p = Q6Params::default();
        group.bench_function(format!("{name}/without_smas"), |b| {
            b.iter(|| run_query6(&table, None, &p, &PlannerConfig::default()).expect("q6"))
        });
        group.bench_function(format!("{name}/with_smas"), |b| {
            b.iter(|| run_query6(&table, Some(&smas), &p, &PlannerConfig::default()).expect("q6"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query6);
criterion_main!(benches);
