//! E4 — Figure 5: Query 1 runtime as a function of the percentage of
//! buckets that must be investigated.
//!
//! The ambivalent fraction is dialed synthetically (one out-of-range ship
//! date per chosen bucket), the SMA plan is forced, and its runtime is
//! compared against the full scan at each point. The criterion report's
//! series is the figure; `paper_tables e4` prints the modeled-cost version
//! with the interpolated breakeven (~25 %).

use sma_bench::harness::{BenchmarkId, Criterion};
use sma_bench::{criterion_group, criterion_main};

use sma_bench::{bench_table, dial_ambivalence, q1_smas};
use sma_exec::{cutoff, run_query1, PlanKind, PlannerConfig, Query1Config};
use sma_storage::CostModel;
use sma_tpcd::Clustering;

fn bench_ambivalence(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_figure5");
    group.sample_size(15);
    // A cost model that always prefers the SMA plan, so we measure the SMA
    // side of the figure even past breakeven.
    let force_sma = Query1Config {
        planner: PlannerConfig {
            cost_model: CostModel::uniform(1.0),
            hard_breakeven: None,
        },
        ..Default::default()
    };
    for pct in [0u32, 10, 20, 25, 30, 40] {
        let mut table = bench_table(Clustering::SortedByShipdate, 1);
        dial_ambivalence(&mut table, cutoff(90), pct as f64 / 100.0);
        let smas = q1_smas(&table);
        group.bench_with_input(BenchmarkId::new("sma_plan", pct), &pct, |b, _| {
            b.iter(|| {
                let run = run_query1(&table, Some(&smas), &force_sma).expect("q1");
                debug_assert_eq!(run.plan_kind, PlanKind::SmaGAggr);
                run
            })
        });
        group.bench_with_input(BenchmarkId::new("full_scan", pct), &pct, |b, _| {
            b.iter(|| run_query1(&table, None, &Query1Config::default()).expect("q1"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ambivalence);
criterion_main!(benches);
