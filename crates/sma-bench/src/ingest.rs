//! Streaming-ingest throughput and query-interference measurement.
//!
//! One shared fixture drives both `benches/ingest.rs` (interactive
//! `cargo bench` output) and `paper_tables e11` (which also emits the
//! machine-readable `BENCH_ingest.json`), so the two always measure the
//! same paths on the same data.
//!
//! What is compared:
//!
//! * **Insert cost** — a WAL-fsynced [`StreamingWarehouse::insert`]
//!   against the no-durability bulk [`Warehouse::insert`]; the ratio is
//!   the price of the durability guarantee per acknowledged tuple.
//! * **Query latency** — the same Query-1-shaped aggregate with the whole
//!   load live in the memtable overlay versus fully flushed to sealed
//!   segments with SMAs; the ratio is the interference an unflushed tail
//!   imposes on readers.
//! * **Flush and recovery** — one flush of the full load (segment write,
//!   manifest commit, WAL truncation) and one cold recovery replaying the
//!   full WAL, the two bulk transitions of the ingest lifecycle.
//!
//! Every timed path is first asserted to produce the byte-identical
//! answer of a plain bulk load, so the numbers compare equals.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use smadb::compact::CompactionPolicy;
use smadb::exec::{AggSpec, AggregateQuery};
use smadb::ingest::{CommitPolicy, StreamingWarehouse};
use smadb::sma::{col, BucketPred, CmpOp};
use smadb::storage::Table;
use smadb::tpcd::{generate_lineitem_table, lineitem_schema, Clustering, GenConfig};
use smadb::types::{Tuple, Value};
use smadb::Warehouse;

/// The SMA complement maintained online during ingest (min/max for bucket
/// grading plus two grouped aggregates), mirroring the Fig. 4 shape.
const DEFS: [&str; 4] = [
    "define sma li_min select min(L_SHIPDATE) from LINEITEM",
    "define sma li_max select max(L_SHIPDATE) from LINEITEM",
    "define sma li_cnt select count(*) from LINEITEM group by L_RETURNFLAG",
    "define sma li_qty select sum(L_QUANTITY) from LINEITEM group by L_RETURNFLAG",
];

/// The shared measurement setup: diagonally-clustered LINEITEM rows (the
/// arrival order a live warehouse would see) and a Query-1-shaped
/// aggregate whose cutoff splits the load in half.
pub struct IngestFixture {
    /// The rows every measured path ingests, in arrival order.
    pub rows: Vec<Tuple>,
    /// `count/sum/avg(L_QUANTITY) group by L_RETURNFLAG` below the cutoff.
    pub query: AggregateQuery,
    /// Pages per bucket for every warehouse built from this fixture.
    pub bucket_pages: u32,
    dir: PathBuf,
}

impl IngestFixture {
    /// Builds the fixture with `orders` TPC-D orders (~4 line items each)
    /// and a private scratch directory namespaced by `tag`.
    pub fn new(tag: &str, orders: usize) -> IngestFixture {
        let generated = generate_lineitem_table(&GenConfig {
            orders,
            ..GenConfig::tiny(Clustering::diagonal_default())
        });
        let rows: Vec<Tuple> = generated
            .scan()
            .expect("generated table scans")
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        let schema = lineitem_schema();
        let shipdate = schema.index_of("L_SHIPDATE").expect("lineitem column");
        let flag = schema.index_of("L_RETURNFLAG").expect("lineitem column");
        let qty = schema.index_of("L_QUANTITY").expect("lineitem column");
        let mut dates: Vec<_> = rows
            .iter()
            .map(|t| match &t[shipdate] {
                Value::Date(d) => *d,
                other => panic!("L_SHIPDATE is a date, got {other:?}"),
            })
            .collect();
        dates.sort();
        let cutoff = dates[dates.len() / 2];
        let query = AggregateQuery {
            pred: BucketPred::cmp(shipdate, CmpOp::Le, Value::Date(cutoff)),
            group_by: vec![flag],
            specs: vec![
                AggSpec::CountStar,
                AggSpec::Sum(col(qty)),
                AggSpec::Avg(col(qty)),
            ],
        };
        let dir =
            std::env::temp_dir().join(format!("smadb-bench-ingest-{tag}-{}", std::process::id()));
        IngestFixture {
            rows,
            query,
            bucket_pages: generated.bucket_pages(),
            dir,
        }
    }

    /// An empty warehouse with the LINEITEM table and the online SMA set.
    pub fn fresh_warehouse(&self) -> Warehouse {
        let mut w = Warehouse::new();
        w.register(Table::in_memory(
            "LINEITEM",
            lineitem_schema(),
            self.bucket_pages,
        ))
        .expect("register");
        for stmt in DEFS {
            w.define_sma(stmt).expect("define");
        }
        w
    }

    /// The reference answer: every row bulk-loaded, no WAL in sight.
    pub fn bulk_answer(&self) -> Vec<Tuple> {
        let mut w = self.fresh_warehouse();
        for t in &self.rows {
            w.insert("LINEITEM", t).expect("insert");
        }
        w.query("LINEITEM", self.query.clone()).expect("query").rows
    }

    /// A scratch directory for one streamed warehouse, created fresh.
    pub fn sample_dir(&self, name: &str) -> PathBuf {
        let dir = self.dir.join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    /// Streams every row through the WAL into `dir` (no auto-flush), so
    /// the whole load sits in the memtable overlay when this returns.
    pub fn stream_into(&self, dir: &Path) -> StreamingWarehouse {
        let mut sw = StreamingWarehouse::create(dir, self.fresh_warehouse(), 0).expect("create");
        for t in &self.rows {
            sw.insert("LINEITEM", t).expect("acked insert");
        }
        sw
    }
}

impl Drop for IngestFixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Median timings over the ingest lifecycle, all in nanoseconds.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// How many line items every path ingested.
    pub rows: usize,
    /// Per-row cost of a WAL-fsynced acknowledged insert.
    pub streamed_insert_ns: u64,
    /// Per-row cost of the no-durability bulk insert baseline.
    pub bulk_insert_ns: u64,
    /// Query latency with the full load live in the memtable overlay.
    pub overlay_query_ns: u64,
    /// Query latency after the flush, on sealed segments with SMAs.
    pub flushed_query_ns: u64,
    /// One flush of the full load: apply, segments, manifest, truncate.
    pub flush_ns: u64,
    /// One cold recovery replaying the full WAL into the memtable.
    pub recovery_ns: u64,
}

impl IngestReport {
    /// Durability price: streamed insert cost over the bulk baseline.
    pub fn wal_overhead(&self) -> f64 {
        self.streamed_insert_ns as f64 / self.bulk_insert_ns.max(1) as f64
    }

    /// Reader interference: overlay latency over the flushed fast path.
    pub fn overlay_penalty(&self) -> f64 {
        self.overlay_query_ns as f64 / self.flushed_query_ns.max(1) as f64
    }
}

fn median_ns(samples: usize, mut f: impl FnMut()) -> u64 {
    f(); // warmup
    let mut times: Vec<u64> = (0..samples.max(1))
        .map(|_| {
            let started = Instant::now();
            f();
            started.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Times the full ingest lifecycle over the shared fixture, asserting at
/// each transition that the answers stay byte-identical to a bulk load.
pub fn ingest_timings(samples: usize) -> IngestReport {
    let fx = IngestFixture::new("timings", 150);
    let n = fx.rows.len().max(1) as u64;
    let expected = fx.bulk_answer();

    // Per-row insert cost, streamed (WAL fsync per row) vs bulk.
    let dir = fx.sample_dir("stream");
    let streamed_insert_ns = median_ns(samples, || {
        std::hint::black_box(fx.stream_into(&dir));
    }) / n;
    let bulk_insert_ns = median_ns(samples, || {
        let mut w = fx.fresh_warehouse();
        for t in &fx.rows {
            w.insert("LINEITEM", t).expect("insert");
        }
        std::hint::black_box(&w);
    }) / n;

    // Query latency with the whole load buffered in the overlay.
    let overlay = fx.stream_into(&fx.sample_dir("overlay"));
    assert_eq!(
        overlay
            .query("LINEITEM", fx.query.clone())
            .expect("query")
            .rows,
        expected,
        "overlay answers must match the bulk load"
    );
    let overlay_query_ns = median_ns(samples * 10, || {
        std::hint::black_box(overlay.query("LINEITEM", fx.query.clone()).expect("query"));
    });

    // Cold recovery replaying the full WAL (the overlay warehouse above
    // never flushed, so its directory holds epoch 0 plus every record).
    // Recovery of an unflushed WAL is idempotent, so it can be sampled.
    let recovery_dir = overlay.dir().to_path_buf();
    drop(overlay); // the simulated crash
    let recovery_ns = median_ns(samples, || {
        let (sw, report) =
            StreamingWarehouse::open_with_recovery(&recovery_dir, 0).expect("recover");
        assert_eq!(report.replayed, fx.rows.len(), "every acked row replays");
        std::hint::black_box(sw.buffered());
    });

    // One flush of the full load, then the sealed-segment query path.
    let (mut flushed, _) =
        StreamingWarehouse::open_with_recovery(&recovery_dir, 0).expect("recover");
    let started = Instant::now();
    flushed.flush().expect("flush");
    let flush_ns = started.elapsed().as_nanos() as u64;
    assert_eq!(
        flushed
            .query("LINEITEM", fx.query.clone())
            .expect("query")
            .rows,
        expected,
        "flushed answers must match the bulk load"
    );
    let flushed_query_ns = median_ns(samples * 10, || {
        std::hint::black_box(flushed.query("LINEITEM", fx.query.clone()).expect("query"));
    });

    IngestReport {
        rows: fx.rows.len(),
        streamed_insert_ns,
        bulk_insert_ns,
        overlay_query_ns,
        flushed_query_ns,
        flush_ns,
        recovery_ns,
    }
}

/// One group-commit batch size, measured for E12.
#[derive(Debug, Clone)]
pub struct GroupCommitPoint {
    /// Rows per commit group ([`CommitPolicy::batch_rows`]).
    pub batch_rows: usize,
    /// Per-row cost of a streamed acknowledged insert under that policy
    /// (the trailing open group is committed inside the timed region, so
    /// every row is durable when the clock stops).
    pub streamed_insert_ns: u64,
    /// Durability price against the no-WAL bulk baseline.
    pub wal_overhead_factor: f64,
}

/// Times streamed ingest under each group-commit batch size against the
/// bulk baseline — the E12 claim that one fsync per group amortizes the
/// durability price across the whole group.
///
/// Before timing, each batch size is run once through the full machinery —
/// threshold flushes cutting delta segments and the automatic compactor
/// merging them — and asserted byte-identical to the bulk answer, so the
/// numbers describe a configuration whose correctness was just proved.
pub fn group_commit_timings(samples: usize, batches: &[usize]) -> Vec<GroupCommitPoint> {
    let fx = IngestFixture::new("group-commit", 150);
    let n = fx.rows.len().max(1) as u64;
    let expected = fx.bulk_answer();
    let bulk_insert_ns = median_ns(samples, || {
        let mut w = fx.fresh_warehouse();
        for t in &fx.rows {
            w.insert("LINEITEM", t).expect("insert");
        }
        std::hint::black_box(&w);
    }) / n;

    batches
        .iter()
        .map(|&batch| {
            let policy = CommitPolicy {
                batch_rows: batch,
                max_delay: Duration::ZERO,
            };
            // Correctness first: stream with threshold flushes and the
            // compactor running, and demand the bulk answer.
            let check_dir = fx.sample_dir(&format!("batch-{batch}-check"));
            let mut sw =
                StreamingWarehouse::create(&check_dir, fx.fresh_warehouse(), 64).expect("create");
            sw.set_commit_policy(policy);
            sw.set_compaction_policy(CompactionPolicy { max_segments: 4 });
            for t in &fx.rows {
                sw.insert("LINEITEM", t).expect("insert");
                assert!(sw.take_flush_error().is_none(), "threshold flush failed");
            }
            sw.flush().expect("final flush");
            assert_eq!(
                sw.query("LINEITEM", fx.query.clone()).expect("query").rows,
                expected,
                "batch {batch}: group commit + compaction must not change answers"
            );
            drop(sw);

            // Then the timed path: pure ingest, one fsync per group.
            let dir = fx.sample_dir(&format!("batch-{batch}"));
            let streamed_insert_ns = median_ns(samples, || {
                let mut sw =
                    StreamingWarehouse::create(&dir, fx.fresh_warehouse(), 0).expect("create");
                sw.set_commit_policy(policy);
                for t in &fx.rows {
                    sw.insert("LINEITEM", t).expect("insert");
                }
                sw.commit().expect("trailing group");
                std::hint::black_box(&sw);
            }) / n;
            GroupCommitPoint {
                batch_rows: batch,
                streamed_insert_ns,
                wal_overhead_factor: streamed_insert_ns as f64 / bulk_insert_ns.max(1) as f64,
            }
        })
        .collect()
}
