//! A small, dependency-free wall-clock benchmark harness.
//!
//! Exposes the subset of the `criterion` API the `benches/` files use
//! (`Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, the `criterion_group!`/`criterion_main!` macros), so the
//! experiment files read like standard Rust benchmarks while building with
//! the vendored-free toolchain. Timings are medians over fixed sample
//! batches — coarse, but stable enough to compare plan shapes and record
//! speedup ratios in `EXPERIMENTS.md`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver (shim for `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Measures a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.sample_size, f);
        self
    }
}

/// A named set of measurements sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each measurement takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measures `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_size, f);
        self
    }

    /// Measures `f` with an input parameter (shim for criterion's
    /// parameterized benchmarks).
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark identifier.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

/// Passed to the measured closure; its `iter` does the actual timing.
pub struct Bencher {
    sample_size: usize,
    /// Median nanoseconds per iteration, filled by `iter`.
    result_ns: Option<f64>,
}

impl Bencher {
    /// Times `f`: calibrates a batch size on a warmup call, then takes
    /// `sample_size` timed batches and keeps the median batch time.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warmup + calibration: size batches to ~2 ms so cheap closures
        // are timed over many iterations and expensive ones just once.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (2_000_000u128 / once.as_nanos().max(1)).clamp(1, 100_000) as u64;
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = Some(samples[samples.len() / 2]);
    }
}

fn run_one<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        sample_size,
        result_ns: None,
    };
    f(&mut b);
    match b.result_ns {
        Some(ns) => println!(
            "{label:<48} {:>14}/iter  ({sample_size} samples)",
            fmt_ns(ns)
        ),
        None => println!("{label:<48} (no measurement: closure never called iter)"),
    }
}

/// Formats nanoseconds with a readable unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Collects benchmark functions into a runnable group (criterion shim).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` running the given groups (criterion shim).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("harness_selftest");
        group.sample_size(3);
        group.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    #[test]
    fn formats_cover_the_ranges() {
        assert!(fmt_ns(5.0).ends_with("ns"));
        assert!(fmt_ns(5_000.0).ends_with("µs"));
        assert!(fmt_ns(5_000_000.0).ends_with("ms"));
        assert!(fmt_ns(5_000_000_000.0).ends_with("s"));
    }
}
