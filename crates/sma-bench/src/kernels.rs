//! Materialized-vs-zero-copy scan-kernel comparison.
//!
//! One shared fixture drives both `benches/scan_kernels.rs` (interactive
//! `cargo bench` output) and `paper_tables e10` (which also emits the
//! machine-readable `BENCH_scan_kernels.json`), so the two always measure
//! the same kernels on the same data.
//!
//! The *materialized* kernels are the pre-view implementations, rebuilt
//! here from public APIs: `scan_bucket` decodes every tuple into an owned
//! `Vec<Value>` (copying string payloads) before the predicate or any
//! aggregate sees it. The *zero-copy* kernels are the production paths:
//! predicates and aggregate inputs evaluate on [`RowView`]s straight out
//! of the pinned page frames, and nothing is materialized unless it
//! survives the filter.

use std::time::Instant;

use sma_core::{Grade, SmaSet};
use sma_exec::{
    collect, cutoff, filter_block, plan, query1_query, AggregateQuery, Filter, HashGAggr,
    PlannerConfig, SeqScan, SmaGAggr,
};
use sma_storage::{MemStore, Table, TableError};
use sma_tpcd::Clustering;
use sma_types::{ColumnarBucket, RowLayout, Tuple};

use crate::{bench_table, dial_ambivalence, q1_smas};

/// The shared measurement setup: a shipdate-sorted LINEITEM table dialed
/// so (nearly) every bucket is ambivalent for the Query 1 predicate — the
/// worst case for SMA plans and exactly where the per-tuple kernels pay.
pub struct ScanKernelFixture {
    /// The dialed table (4 pages per bucket, pool large enough to stay warm).
    pub table: Table,
    /// Fig. 4 SMA set rebuilt after dialing.
    pub smas: SmaSet,
    /// Query 1 at `delta = 90`.
    pub query: AggregateQuery,
    /// Row-codec offsets for the table's schema.
    pub layout: RowLayout,
    /// One bucket that grades ambivalent under the query predicate.
    pub ambivalent_bucket: u32,
    /// The same data re-sealed into the columnar (PAX) bucket layout —
    /// every bucket but the tail converts, so this is the mixed layout
    /// the converter actually produces.
    pub columnar: Table,
    /// Fig. 4 SMA set rebuilt over the columnar table (columnwise build).
    pub columnar_smas: SmaSet,
    /// The ambivalent bucket's decoded column arrays, so the filter
    /// kernel times the batch comparison loops themselves (the block
    /// decodes once per bucket per query, just as the row kernels run
    /// against a pre-warmed pool).
    pub ambivalent_block: ColumnarBucket,
}

/// Builds the fixture and warms the buffer pool, so the kernels measure
/// CPU work (decode vs. view), not device latency.
pub fn scan_kernel_fixture() -> ScanKernelFixture {
    let cut = cutoff(90);
    let mut table = bench_table(Clustering::SortedByShipdate, 4);
    dial_ambivalence(&mut table, cut, 1.0);
    let smas = q1_smas(&table);
    let query = query1_query(&table, cut).expect("LINEITEM-shaped table");
    let layout = RowLayout::new(table.schema());
    let ambivalent_bucket = (0..table.bucket_count())
        .find(|&b| query.pred.grade(b, &smas) == Grade::Ambivalent)
        .expect("dialed table has ambivalent buckets");
    for b in 0..table.bucket_count() {
        table.scan_bucket(b).expect("warms the pool");
    }
    let mut dest = MemStore::new();
    table.export_to_store(&mut dest).expect("export");
    let mut columnar = Table::new(
        format!("{}_columnar", table.name()),
        sma_tpcd::lineitem_schema(),
        Box::new(dest),
        1 << 16,
        table.bucket_pages(),
    );
    let converted = columnar.convert_buckets_from(0).expect("convert");
    assert!(
        converted.contains(&ambivalent_bucket),
        "the measured bucket must actually be columnar"
    );
    let columnar_smas = q1_smas(&columnar);
    let ambivalent_block = columnar
        .columnar_bucket(ambivalent_bucket)
        .expect("read block")
        .expect("bucket converted above");
    for b in 0..columnar.bucket_count() {
        columnar.scan_bucket(b).expect("warms the pool");
    }
    ScanKernelFixture {
        table,
        smas,
        query,
        layout,
        ambivalent_bucket,
        columnar,
        columnar_smas,
        ambivalent_block,
    }
}

impl ScanKernelFixture {
    /// Filter one ambivalent bucket the pre-view way: decode every tuple,
    /// then evaluate the predicate on the owned values.
    pub fn filter_bucket_materialized(&self) -> usize {
        let rows = self
            .table
            .scan_bucket(self.ambivalent_bucket)
            .expect("scan");
        rows.iter()
            .filter(|(_, t)| self.query.pred.eval_tuple(t))
            .count()
    }

    /// Filter the same bucket the production way: evaluate the predicate
    /// on zero-copy views, never materializing a tuple.
    pub fn filter_bucket_zero_copy(&self) -> usize {
        let mut n = 0usize;
        self.table
            .for_each_in_bucket::<TableError, _>(self.ambivalent_bucket, |_, image| {
                let row = self.layout.view(image)?;
                if self.query.pred.eval_view(&row).map_err(TableError::from)? {
                    n += 1;
                }
                Ok(())
            })
            .expect("scan");
        n
    }

    /// Query 1 through the pre-view operator chain: `SeqScan` decodes all
    /// tuples, `Filter` and `HashGAggr` work on the materialized rows.
    pub fn q1_materialized(&self) -> Vec<Tuple> {
        let mut op = HashGAggr::new(
            Box::new(Filter::new(
                Box::new(SeqScan::new(&self.table)),
                self.query.pred.clone(),
            )),
            self.query.group_by.clone(),
            self.query.specs.clone(),
        );
        collect(&mut op).expect("q1")
    }

    /// Query 1 through the production `SmaGAggr`: every dialed bucket is
    /// ambivalent, so this times the zero-copy aggregation inner loop
    /// (views + direct-indexed `RETURNFLAG × LINESTATUS` group table).
    pub fn q1_sma_ambivalent(&self) -> Vec<Tuple> {
        let mut op = SmaGAggr::new(
            &self.table,
            self.query.pred.clone(),
            self.query.group_by.clone(),
            self.query.specs.clone(),
            &self.smas,
        )
        .expect("plan");
        collect(&mut op).expect("q1")
    }

    /// Query 1 through the planner's SMA-less fallback: the fused
    /// view-based full scan.
    pub fn q1_full_scan_fused(&self) -> Vec<Tuple> {
        plan(
            &self.table,
            self.query.clone(),
            None,
            &PlannerConfig::default(),
        )
        .execute()
        .expect("q1")
    }

    /// Filter the same (now columnar) bucket with the batch kernel:
    /// typed comparison loops over the column arrays fill a selection
    /// vector per 1024-row batch, and only its length is read.
    pub fn filter_bucket_columnar(&self) -> usize {
        filter_block(&self.ambivalent_block, &self.query.pred)
            .rows()
            .len()
    }

    /// Query 1 through `SmaGAggr` over the columnar table: every
    /// ambivalent bucket decodes once and aggregates through the batch
    /// kernels (selection vector → columnwise fold).
    pub fn q1_sma_ambivalent_columnar(&self) -> Vec<Tuple> {
        let mut op = SmaGAggr::new(
            &self.columnar,
            self.query.pred.clone(),
            self.query.group_by.clone(),
            self.query.specs.clone(),
            &self.columnar_smas,
        )
        .expect("plan");
        collect(&mut op).expect("q1")
    }

    /// Query 1 through the fused full scan over the columnar table —
    /// bucket-at-a-time block decode, batch filter, columnwise fold.
    pub fn q1_full_scan_columnar(&self) -> Vec<Tuple> {
        plan(
            &self.columnar,
            self.query.clone(),
            None,
            &PlannerConfig::default(),
        )
        .execute()
        .expect("q1")
    }
}

/// One materialized-vs-zero-copy comparison, medians in nanoseconds.
#[derive(Debug, Clone)]
pub struct KernelTiming {
    /// What was measured.
    pub name: &'static str,
    /// Median wall-clock of the materializing kernel, ns.
    pub materialized_ns: u64,
    /// Median wall-clock of the zero-copy kernel, ns.
    pub zero_copy_ns: u64,
}

impl KernelTiming {
    /// Throughput ratio of the zero-copy kernel over the materialized one.
    pub fn speedup(&self) -> f64 {
        self.materialized_ns as f64 / self.zero_copy_ns.max(1) as f64
    }
}

fn median_ns(samples: usize, mut f: impl FnMut()) -> u64 {
    f(); // warmup
    let mut times: Vec<u64> = (0..samples.max(1))
        .map(|_| {
            let started = Instant::now();
            f();
            started.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Times every kernel pair over the shared fixture, asserting along the
/// way that each pair computes the same answer.
pub fn scan_kernel_timings(samples: usize) -> Vec<KernelTiming> {
    let fx = scan_kernel_fixture();
    assert_eq!(
        fx.filter_bucket_materialized(),
        fx.filter_bucket_zero_copy(),
        "kernels must agree before being compared"
    );
    assert_eq!(
        fx.filter_bucket_zero_copy(),
        fx.filter_bucket_columnar(),
        "row and columnar filter kernels must agree"
    );
    let expected = fx.q1_materialized();
    assert_eq!(expected, fx.q1_sma_ambivalent());
    assert_eq!(expected, fx.q1_full_scan_fused());
    assert_eq!(
        expected,
        fx.q1_sma_ambivalent_columnar(),
        "row and columnar aggregation must agree"
    );
    assert_eq!(
        expected,
        fx.q1_full_scan_columnar(),
        "row and columnar full scans must agree"
    );

    let mut out = Vec::new();
    let filter_zero_copy_ns = median_ns(samples * 10, || {
        std::hint::black_box(fx.filter_bucket_zero_copy());
    });
    out.push(KernelTiming {
        name: "ambivalent_bucket_filter",
        materialized_ns: median_ns(samples * 10, || {
            std::hint::black_box(fx.filter_bucket_materialized());
        }),
        zero_copy_ns: filter_zero_copy_ns,
    });
    // For the columnar entries the row zero-copy kernel is the baseline,
    // so `speedup()` reads as "columnar over the PR 4 production path".
    out.push(KernelTiming {
        name: "ambivalent_bucket_filter_columnar",
        materialized_ns: filter_zero_copy_ns,
        zero_copy_ns: median_ns(samples * 10, || {
            std::hint::black_box(fx.filter_bucket_columnar());
        }),
    });
    let q1_materialized_ns = median_ns(samples, || {
        std::hint::black_box(fx.q1_materialized());
    });
    let q1_sma_ns = median_ns(samples, || {
        std::hint::black_box(fx.q1_sma_ambivalent());
    });
    let q1_fused_ns = median_ns(samples, || {
        std::hint::black_box(fx.q1_full_scan_fused());
    });
    out.push(KernelTiming {
        name: "query1_ambivalent_aggregation",
        materialized_ns: q1_materialized_ns,
        zero_copy_ns: q1_sma_ns,
    });
    out.push(KernelTiming {
        name: "query1_full_scan",
        materialized_ns: q1_materialized_ns,
        zero_copy_ns: q1_fused_ns,
    });
    out.push(KernelTiming {
        name: "query1_ambivalent_aggregation_columnar",
        materialized_ns: q1_sma_ns,
        zero_copy_ns: median_ns(samples, || {
            std::hint::black_box(fx.q1_sma_ambivalent_columnar());
        }),
    });
    out.push(KernelTiming {
        name: "query1_full_scan_columnar",
        materialized_ns: q1_fused_ns,
        zero_copy_ns: median_ns(samples, || {
            std::hint::black_box(fx.q1_full_scan_columnar());
        }),
    });
    out
}
