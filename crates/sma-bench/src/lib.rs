//! Shared harness for the experiments that regenerate the paper's tables
//! and figures. See `DESIGN.md` §2 for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured results.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod harness;
pub mod ingest;
pub mod kernels;

use sma_core::SmaSet;
use sma_exec::{run_query1, Q1Execution, Query1Config};
use sma_storage::Table;
use sma_tpcd::{generate_lineitem_table, schema::lineitem as li, Clustering, GenConfig};
use sma_types::{Date, Value};

/// Scale factor the benchmarks run at, overridable with `SMA_SF`.
/// Default 0.002 (~12 k line items) keeps `cargo bench` minutes-fast;
/// results are linear in the number of buckets (§2.4), so shapes hold.
pub fn bench_scale_factor() -> f64 {
    std::env::var("SMA_SF")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.002)
}

/// The standard benchmark dataset: LINEITEM at [`bench_scale_factor`],
/// with the requested clustering and bucket size.
pub fn bench_table(clustering: Clustering, bucket_pages: u32) -> Table {
    let mut cfg = GenConfig::scale_factor(bench_scale_factor(), clustering);
    cfg.bucket_pages = bucket_pages;
    cfg.pool_pages = 1 << 16; // everything warm unless a bench goes cold
    generate_lineitem_table(&cfg)
}

/// Builds the Fig. 4 SMA set over `table`.
pub fn q1_smas(table: &Table) -> SmaSet {
    SmaSet::build_query1_set(table).expect("LINEITEM-shaped table")
}

/// Runs Query 1 with the given SMA set (or none) at `delta = 90`.
pub fn q1(table: &Table, smas: Option<&SmaSet>, cold: bool) -> Q1Execution {
    run_query1(
        table,
        smas,
        &Query1Config {
            cold,
            ..Query1Config::default()
        },
    )
    .expect("query 1 runs")
}

/// Forces approximately `fraction` of the buckets of a shipdate-sorted
/// LINEITEM table to become *ambivalent* for the Query 1 predicate, by
/// overwriting one tuple's ship date per chosen bucket with a value past
/// the cutoff (in place — dates are fixed-width, so the tuple stays put).
///
/// This is the Figure 5 dial: the x-axis "percentage of buckets that have
/// to be investigated". Returns the number of buckets perturbed. Rebuild
/// the SMAs afterwards.
pub fn dial_ambivalence(table: &mut Table, cutoff: Date, fraction: f64) -> usize {
    assert!((0.0..=1.0).contains(&fraction));
    let n = table.bucket_count();
    // Only buckets currently at-or-below the cutoff can be flipped.
    let beyond = Value::Date(cutoff.add_days(30));
    let target = (n as f64 * fraction).round() as u32;
    let mut flipped: u32 = 0;
    if target == 0 {
        return 0;
    }
    let step = (n / target).max(1);
    let mut b = 0;
    while b < n && flipped < target {
        let rows = table.scan_bucket(b).expect("bucket scans");
        // Flip only buckets that are entirely within the cutoff, so each
        // flip creates exactly one new ambivalent bucket.
        let all_within = rows
            .iter()
            .all(|(_, t)| t[li::SHIPDATE].as_date().expect("typed") <= cutoff);
        if all_within && !rows.is_empty() {
            let (tid, mut tuple) = rows[0].clone();
            tuple[li::SHIPDATE] = beyond.clone();
            table
                .update(tid, &tuple)
                .expect("fixed-width in-place update");
            flipped += 1;
        }
        b += step;
    }
    flipped as usize
}

/// Converts a `Q1Execution`'s rows into the typed [`sma_tpcd::Q1Row`]s.
pub fn to_q1_rows(run: &Q1Execution) -> Vec<sma_tpcd::Q1Row> {
    run.rows
        .iter()
        .map(|r| sma_tpcd::Q1Row {
            returnflag: r[0].as_char().expect("flag"),
            linestatus: r[1].as_char().expect("status"),
            sum_qty: r[2].as_decimal().expect("decimal"),
            sum_base_price: r[3].as_decimal().expect("decimal"),
            sum_disc_price: r[4].as_decimal().expect("decimal"),
            sum_charge: r[5].as_decimal().expect("decimal"),
            avg_qty: r[6].as_decimal().expect("decimal"),
            avg_price: r[7].as_decimal().expect("decimal"),
            avg_disc: r[8].as_decimal().expect("decimal"),
            count_order: r[9].as_int().expect("count"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sma_core::{BucketPred, Classification, CmpOp};
    use sma_exec::cutoff;

    #[test]
    fn dial_hits_the_requested_fraction() {
        let mut table = bench_table(Clustering::SortedByShipdate, 1);
        let cut = cutoff(90);
        for fraction in [0.0, 0.1, 0.25, 0.4] {
            let flipped = dial_ambivalence(&mut table, cut, fraction);
            let smas = q1_smas(&table);
            let pred = BucketPred::cmp(li::SHIPDATE, CmpOp::Le, Value::Date(cut));
            let c = Classification::classify(&pred, table.bucket_count(), &smas);
            let ambiv = c.ambivalent_fraction();
            assert!(
                ambiv + 0.05 >= fraction,
                "asked {fraction}, got {ambiv} ({flipped} flipped)"
            );
        }
    }

    #[test]
    fn dialed_table_still_answers_correctly() {
        let mut table = bench_table(Clustering::SortedByShipdate, 1);
        dial_ambivalence(&mut table, cutoff(90), 0.2);
        let smas = q1_smas(&table);
        let with = q1(&table, Some(&smas), false);
        let without = q1(&table, None, false);
        assert_eq!(with.rows, without.rows);
    }
}
