//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! paper_tables [e1|e2|e3|e4|e5|e6|a1|a2|a3|e8|e9|e10|e11|all]
//! ```
//!
//! * `e1` — SMA creation times & sizes (§2.4 table)
//! * `e2` — data-cube vs SMA storage (§2.4 bullets)
//! * `e3` — Query 1 with/without SMAs, cold & warm (§2.4 table)
//! * `e4` — Figure 5: runtime vs % ambivalent buckets, breakeven
//! * `e5` — Figure 2: diagonal data distribution
//! * `e6` — Figure 1 / §2.2 selection example
//! * `a1` — ablation: bucket size trade-off (§4)
//! * `a2` — ablation: hierarchical SMAs (§4)
//! * `a3` — ablation: join SMAs / semi-join reduction (§4)
//! * `e8` — thread scaling: bucket-parallel bulkload and `SmaGAggr`
//! * `e9` — degraded-path overhead: quarantined buckets & transient retries
//! * `e10` — zero-copy scan kernels vs their materializing predecessors
//!   (also writes `BENCH_scan_kernels.json` at the repo root)
//! * `e11` — durable streaming ingest: WAL overhead per acked insert and
//!   memtable-overlay query interference, plus the E12 group-commit batch
//!   sweep (writes `BENCH_ingest.json`)
//!
//! Scale with `SMA_SF` (default 0.002). Shapes, not absolute numbers, are
//! the reproduction target: the paper ran on 1997 SCSI disks at SF 1.

use std::time::Instant;

use sma_bench::{bench_scale_factor, bench_table, dial_ambivalence, q1, q1_smas};
use sma_core::{col, AggFn, BucketPred, CmpOp, HierarchicalMinMax, Sma, SmaDefinition, SmaSet};
use sma_cube::CubeModel;
use sma_exec::{collect, cutoff, plan, PlannerConfig, SemiJoin};
use sma_storage::{CostModel, Table, PAGE_SIZE};
use sma_tpcd::{generate, schema::lineitem as li, schema::orders as o, Clustering, GenConfig};
use sma_types::{Date, Value};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    println!(
        "== SMA paper tables (SF {} ~ {} line items) ==\n",
        bench_scale_factor(),
        (6_000_000.0 * bench_scale_factor()) as u64
    );
    let all = which == "all";
    if all || which == "e0" {
        e0_scaling();
    }
    if all || which == "e1" {
        e1_creation();
    }
    if all || which == "e2" {
        e2_cube_storage();
    }
    if all || which == "e3" {
        e3_query1();
    }
    if all || which == "e4" {
        e4_figure5();
    }
    if all || which == "e5" {
        e5_figure2();
    }
    if all || which == "e6" {
        e6_figure1();
    }
    if all || which == "a1" {
        a1_bucket_size();
    }
    if all || which == "a2" {
        a2_hierarchical();
    }
    if all || which == "a3" {
        a3_join_sma();
    }
    if all || which == "e8" {
        e8_thread_scaling();
    }
    if all || which == "e9" {
        e9_degradation();
    }
    if all || which == "e10" {
        e10_scan_kernels();
    }
    if all || which == "e11" {
        e11_ingest();
    }
}

/// E11 — durable streaming ingest (not in the paper): the per-insert
/// price of the WAL fsync against the no-durability bulk load, query
/// latency with the load live in the memtable overlay against sealed
/// segments with SMAs, plus the flush and cold-recovery transitions.
/// Every timed path is asserted byte-identical to a bulk load first;
/// medians land in `BENCH_ingest.json` at the repo root.
fn e11_ingest() {
    println!("--- E11: streaming ingest — WAL overhead & overlay interference ---");
    let r = sma_bench::ingest::ingest_timings(9);
    println!("{} line items per load", r.rows);
    println!("{:>32} {:>14}", "measurement", "median");
    let rows = [
        ("insert, streamed (WAL fsync)", r.streamed_insert_ns, "/row"),
        ("insert, bulk (no WAL)", r.bulk_insert_ns, "/row"),
        ("query, memtable overlay", r.overlay_query_ns, ""),
        ("query, flushed segments", r.flushed_query_ns, ""),
        ("flush (segments+manifest+WAL)", r.flush_ns, ""),
        ("recovery (full WAL replay)", r.recovery_ns, ""),
    ];
    for (name, ns, unit) in rows {
        println!(
            "{:>32} {:>12}{}",
            name,
            sma_bench::harness::fmt_ns(ns as f64),
            unit
        );
    }
    println!(
        "durability overhead: {:.2}x per insert; overlay penalty: {:.2}x per query",
        r.wal_overhead(),
        r.overlay_penalty()
    );

    println!("\n--- E12: group commit — the fsync amortized over the batch ---");
    let points = sma_bench::ingest::group_commit_timings(9, &[1, 8, 64]);
    println!(
        "{:>12} {:>18} {:>14}",
        "batch_rows", "insert (median)", "wal overhead"
    );
    let mut e12_entries = String::new();
    for p in &points {
        println!(
            "{:>12} {:>14}/row {:>13.2}x",
            p.batch_rows,
            sma_bench::harness::fmt_ns(p.streamed_insert_ns as f64),
            p.wal_overhead_factor
        );
        if !e12_entries.is_empty() {
            e12_entries.push_str(",\n");
        }
        e12_entries.push_str(&format!(
            "    {{\"batch_rows\": {}, \"streamed_insert_ns_per_row\": {}, \"wal_overhead_factor\": {:.3}}}",
            p.batch_rows, p.streamed_insert_ns, p.wal_overhead_factor
        ));
    }

    let json = format!(
        "{{\n  \"experiment\": \"ingest\",\n  \"rows\": {},\n  \
         \"streamed_insert_ns_per_row\": {},\n  \"bulk_insert_ns_per_row\": {},\n  \
         \"wal_overhead_factor\": {:.3},\n  \"overlay_query_ns\": {},\n  \
         \"flushed_query_ns\": {},\n  \"overlay_penalty_factor\": {:.3},\n  \
         \"flush_ns\": {},\n  \"recovery_replay_ns\": {},\n  \
         \"e12_group_commit\": [\n{}\n  ]\n}}\n",
        r.rows,
        r.streamed_insert_ns,
        r.bulk_insert_ns,
        r.wal_overhead(),
        r.overlay_query_ns,
        r.flushed_query_ns,
        r.overlay_penalty(),
        r.flush_ns,
        r.recovery_ns,
        e12_entries
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");
    match std::fs::write(path, json) {
        Ok(()) => println!("  wrote {path}\n"),
        Err(e) => println!("  could not write {path}: {e}\n"),
    }
}

/// E10 — scan-kernel comparison (not in the paper): the zero-copy view
/// kernels against their materializing predecessors, plus the columnar
/// batch kernels against the zero-copy row path, on a table dialed to
/// all-ambivalent for Query 1 — the case where per-tuple costs dominate.
/// Each pair is asserted to compute the identical answer before being
/// timed; medians are *appended* as a dated run to
/// `BENCH_scan_kernels.json` at the repo root, so the optimization
/// trajectory across PRs stays on record (see `PERF_HISTORY.md`).
fn e10_scan_kernels() {
    println!("--- E10: scan kernels — materialized vs zero-copy vs columnar ---");
    let timings = sma_bench::kernels::scan_kernel_timings(15);
    println!(
        "{:>38} {:>14} {:>14} {:>9}",
        "kernel", "baseline", "kernel", "speedup"
    );
    let mut entries = String::new();
    for t in &timings {
        println!(
            "{:>38} {:>12}ns {:>12}ns {:>8.2}x",
            t.name,
            t.materialized_ns,
            t.zero_copy_ns,
            t.speedup()
        );
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "        {{\"name\": \"{}\", \"materialized_ns\": {}, \"zero_copy_ns\": {}, \"speedup\": {:.3}}}",
            t.name,
            t.materialized_ns,
            t.zero_copy_ns,
            t.speedup()
        ));
    }
    let run = format!(
        "    {{\n      \"date\": \"{}\",\n      \"git\": \"{}\",\n      \"scale_factor\": {},\n      \"kernels\": [\n{}\n      ]\n    }}",
        command_line("date", &["+%F"]),
        command_line(
            "git",
            &[
                "-C",
                concat!(env!("CARGO_MANIFEST_DIR"), "/../.."),
                "describe",
                "--always",
                "--dirty",
            ],
        ),
        bench_scale_factor(),
        entries
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scan_kernels.json");
    match append_run(path, "scan_kernels", &run) {
        Ok(()) => println!("  appended run to {path}"),
        Err(e) => println!("  could not write {path}: {e}"),
    }
}

/// One line of a helper command's stdout, or `"unknown"` when the
/// command is unavailable or fails — bench runs must not depend on the
/// host having `git` or `date`.
fn command_line(cmd: &str, args: &[&str]) -> String {
    std::process::Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Appends `run` to the `runs` array of the benchmark file at `path`,
/// preserving every earlier run. A missing file (or one in a format
/// without a `runs` array) starts a fresh history with this run only.
fn append_run(path: &str, experiment: &str, run: &str) -> std::io::Result<()> {
    const TAIL: &str = "\n  ]\n}";
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let json = match existing.rfind(TAIL) {
        Some(cut) if existing.contains("\"runs\": [") => {
            format!("{},\n{}{}\n", &existing[..cut], run, TAIL)
        }
        _ => format!("{{\n  \"experiment\": \"{experiment}\",\n  \"runs\": [\n{run}{TAIL}\n"),
    };
    std::fs::write(path, json)
}

/// E9 — degraded-path overhead (not in the paper): Query 1 through
/// `SmaGAggr` with a growing fraction of buckets quarantined, so demoted
/// to base-table scans, and a transient-fault run where the buffer pool
/// rides the faults out by retrying. Answers are asserted identical to
/// the healthy run throughout — degradation may only cost time.
fn e9_degradation() {
    println!("--- E9: degraded-path overhead (quarantine demotion & retries) ---");
    let table = bench_table(Clustering::diagonal_default(), 1);
    let defs = SmaSet::query1_definitions(&table).expect("defs");
    let pred = BucketPred::cmp(li::SHIPDATE, CmpOp::Le, Value::Date(cutoff(90)));
    let group_by = vec![li::RETURNFLAG, li::LINESTATUS];
    let specs = vec![
        sma_exec::AggSpec::CountStar,
        sma_exec::AggSpec::Sum(col(li::QUANTITY)),
        sma_exec::AggSpec::Avg(col(li::QUANTITY)),
    ];
    let run = |smas: &SmaSet, t: &Table| {
        let mut op =
            sma_exec::SmaGAggr::new(t, pred.clone(), group_by.clone(), specs.clone(), smas)
                .expect("plan");
        let started = Instant::now();
        let rows = collect(&mut op).expect("run");
        (rows, op.counters(), started.elapsed().as_secs_f64())
    };
    let healthy = SmaSet::build(&table, defs.clone()).expect("build");
    let _ = run(&healthy, &table); // warm the pool so the baseline is steady
    let (expected, _, base_s) = run(&healthy, &table);
    println!(
        "{:>12} {:>9} {:>12} {:>10}",
        "quarantined", "demoted", "runtime", "vs healthy"
    );
    for pct in [0u64, 5, 25, 50, 100] {
        let mut smas = SmaSet::build(&table, defs.clone()).expect("build");
        for b in 0..table.bucket_count() {
            // Evenly spread pct% of buckets (floor-fraction stride).
            if (b as u64 * pct) / 100 != ((b as u64 + 1) * pct) / 100 {
                smas.quarantine_bucket(b);
            }
        }
        let (rows, counters, secs) = run(&smas, &table);
        assert_eq!(rows, expected, "degraded answers must stay exact");
        println!(
            "{:>11}% {:>9} {:>10.2}ms {:>9.2}x",
            pct,
            counters.degradation.demoted_buckets.len(),
            secs * 1e3,
            secs / base_s
        );
    }
    // Transient read faults on 40% of pages, bursts ≤ 3, absorbed by the
    // pool's retry budget against a cold store.
    let mut dest = sma_storage::MemStore::new();
    table.export_to_store(&mut dest).expect("export");
    let faulty = Table::new(
        table.name().to_string(),
        sma_tpcd::lineitem_schema(),
        Box::new(sma_storage::FaultPlan::new(
            dest,
            sma_storage::FaultConfig::seeded(9).with_transient(40, 3),
        )),
        1 << 16,
        table.bucket_pages(),
    );
    faulty.set_retry_policy(sma_storage::RetryPolicy {
        max_retries: 3,
        base_backoff_us: 0,
        ..sma_storage::RetryPolicy::default()
    });
    let (rows, counters, secs) = run(&healthy, &faulty);
    assert_eq!(rows, expected, "retried answers must stay exact");
    println!(
        "transient chaos: {} retries spent, {:.2}ms ({:.2}x healthy)\n",
        counters.degradation.retries_spent,
        secs * 1e3,
        secs / base_s
    );
}

/// E8 — thread scaling of the bucket-parallel paths (not in the paper;
/// the bucket loops of Figs. 6/7 and the bulkload are embarrassingly
/// parallel, so this table records how far that carries on this host).
fn e8_thread_scaling() {
    println!("--- E8: thread scaling (bucket-parallel bulkload & SmaGAggr) ---");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("host cores: {cores}");
    let table = bench_table(Clustering::diagonal_default(), 1);
    let defs = SmaSet::query1_definitions(&table).expect("defs");
    let smas = SmaSet::build(&table, defs.clone()).expect("build");
    let pred = BucketPred::cmp(li::SHIPDATE, CmpOp::Le, Value::Date(cutoff(90)));
    let group_by = vec![li::RETURNFLAG, li::LINESTATUS];
    let specs = vec![
        sma_exec::AggSpec::CountStar,
        sma_exec::AggSpec::Sum(col(li::QUANTITY)),
        sma_exec::AggSpec::Avg(col(li::QUANTITY)),
    ];
    println!(
        "{:>8} {:>14} {:>10} {:>14} {:>10}",
        "threads", "bulkload", "speedup", "sma_gaggr", "speedup"
    );
    let time = |f: &mut dyn FnMut()| {
        // Median of 5 runs keeps scheduler noise out of the ratios.
        let mut samples: Vec<f64> = (0..5)
            .map(|_| {
                let t = Instant::now();
                f();
                t.elapsed().as_secs_f64()
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        samples[samples.len() / 2]
    };
    let mut base: Option<(f64, f64)> = None;
    for threads in [1usize, 2, 4, 8] {
        let build_s = time(&mut || {
            sma_core::build_many_parallel(&table, defs.clone(), threads).expect("build");
        });
        let gaggr_s = time(&mut || {
            let mut op = sma_exec::SmaGAggr::new(
                &table,
                pred.clone(),
                group_by.clone(),
                specs.clone(),
                &smas,
            )
            .expect("plan")
            .with_parallelism(sma_exec::Parallelism::new(threads));
            collect(&mut op).expect("run");
        });
        let (b0, g0) = *base.get_or_insert((build_s, gaggr_s));
        println!(
            "{:>8} {:>12.2}ms {:>9.2}x {:>12.2}ms {:>9.2}x",
            threads,
            build_s * 1e3,
            b0 / build_s,
            gaggr_s * 1e3,
            g0 / gaggr_s
        );
    }
    println!();
}

/// E0 — §2.4's scaling argument: "SMA-file sizes are linear in the number
/// of buckets … creation and query processing times are also linear", so
/// one sufficiently large database suffices. We verify the linearity.
fn e0_scaling() {
    println!("--- E0: linear scaling in the number of buckets (§2.4) ---");
    println!(
        "{:>8} {:>9} {:>10} {:>12} {:>14} {:>14}",
        "sf mult", "buckets", "sma pages", "build", "q1 sma warm", "q1 full warm"
    );
    let base_sf = bench_scale_factor();
    let mut prev: Option<(f64, f64)> = None;
    let mut ratios = Vec::new();
    for mult in [1u32, 2, 4] {
        let mut cfg =
            sma_tpcd::GenConfig::scale_factor(base_sf * mult as f64, Clustering::SortedByShipdate);
        cfg.pool_pages = 1 << 16;
        let table = sma_tpcd::generate_lineitem_table(&cfg);
        let started = Instant::now();
        let smas = SmaSet::build_query1_set(&table).expect("build");
        let build = started.elapsed();
        let with = q1(&table, Some(&smas), false);
        let without = q1(&table, None, false);
        println!(
            "{:>7}x {:>9} {:>10} {:>12.2?} {:>14.2?} {:>14.2?}",
            mult,
            table.bucket_count(),
            smas.total_pages(),
            build,
            with.elapsed,
            without.elapsed,
        );
        let buckets = table.bucket_count() as f64;
        if let Some((pb, pt)) = prev {
            ratios.push((buckets / pb, build.as_secs_f64() / pt));
        }
        prev = Some((buckets, build.as_secs_f64()));
    }
    for (b_ratio, t_ratio) in &ratios {
        println!(
            "  buckets x{:.2} -> build time x{:.2} (linear would be x{:.2})",
            b_ratio, t_ratio, b_ratio
        );
    }
    println!();
}

/// E1 — §2.4 creation-time & size table for the eight Query 1 SMAs.
fn e1_creation() {
    println!("--- E1: SMA creation time and size (paper §2.4 table) ---");
    println!("paper @SF1: count 117s/736p, max 116s/184p, min 103s/184p, qty 104s/1468p,");
    println!("            dis 100s/1468p, ext 101s/1468p, extdis 95s/1468p, extdistax 99s/1468p");
    println!("            total 8444 pages = 33.776 MB ≈ 4% of LINEITEM\n");
    let table = bench_table(Clustering::SortedByShipdate, 1);
    let defs = SmaSet::query1_definitions(&table).expect("definitions");
    println!(
        "{:<12} {:>12} {:>8} {:>8} {:>10}",
        "sma", "creation", "files", "pages", "bytes"
    );
    let mut total_pages = 0;
    for def in &defs {
        let started = Instant::now();
        let sma = Sma::build(&table, def.clone()).expect("build");
        let took = started.elapsed();
        total_pages += sma.total_pages();
        println!(
            "{:<12} {:>12.2?} {:>8} {:>8} {:>10}",
            def.name,
            took,
            sma.file_count(),
            sma.total_pages(),
            sma.total_bytes()
        );
    }
    let data_pages = table.page_count() as usize;
    println!(
        "total: {} pages = {:.3} MB vs LINEITEM {} pages ({:.2}% overhead)",
        total_pages,
        (total_pages * PAGE_SIZE) as f64 / (1024.0 * 1024.0),
        data_pages,
        100.0 * total_pages as f64 / data_pages as f64
    );
    // The B+ tree comparison point.
    let rows = table.scan().expect("scan");
    let mut pairs: Vec<(i32, u64)> = rows
        .iter()
        .map(|(tid, t)| {
            (
                t[li::SHIPDATE].as_date().expect("typed").days(),
                (tid.page as u64) << 16 | tid.slot as u64,
            )
        })
        .collect();
    pairs.sort_by_key(|&(k, _)| k);
    let started = Instant::now();
    let tree = sma_cube::BPlusTree::bulk_load(sma_cube::page_sized_order(4, 8), pairs);
    println!(
        "B+ tree on L_SHIPDATE (paper: 230 MB, built far beyond 15 min): \
         {} pages, bulk-loaded in {:.2?}\n",
        tree.node_count(),
        started.elapsed()
    );
}

/// E2 — §2.4 data-cube storage comparison.
fn e2_cube_storage() {
    println!("--- E2: data cube vs SMA storage (paper §2.4) ---");
    println!("{:<34} {:>16} {:>16}", "configuration", "paper", "model");
    let rows = [(1u32, "479.25 KB"), (2, "1196.25 MB"), (3, "2985.95 GB")];
    for (dims, paper) in rows {
        let m = CubeModel::query1(dims);
        let ours = match dims {
            1 => format!("{:.2} KB", m.size_kb()),
            2 => format!("{:.2} MB", m.size_mb()),
            _ => format!("{:.2} GB", m.size_gb()),
        };
        println!(
            "{:<34} {:>16} {:>16}",
            format!("cube, {dims} date dim(s) x 4 flags"),
            paper,
            ours
        );
    }
    let table = bench_table(Clustering::SortedByShipdate, 1);
    let smas = q1_smas(&table);
    // Paper: SMAs for Query 1 = 33.776 MB; +2 more dates = 51.12 MB.
    let q1_mb = (smas.total_pages() * PAGE_SIZE) as f64 / (1024.0 * 1024.0);
    // Adding min/max SMAs for the two other dates costs 4 more date files.
    let extra = {
        let defs = vec![
            SmaDefinition::new("min_commit", AggFn::Min, col(li::COMMITDATE)),
            SmaDefinition::new("max_commit", AggFn::Max, col(li::COMMITDATE)),
            SmaDefinition::new("min_receipt", AggFn::Min, col(li::RECEIPTDATE)),
            SmaDefinition::new("max_receipt", AggFn::Max, col(li::RECEIPTDATE)),
        ];
        let set = SmaSet::build(&table, defs).expect("build");
        (set.total_pages() * PAGE_SIZE) as f64 / (1024.0 * 1024.0)
    };
    println!(
        "{:<34} {:>16} {:>13.3} MB",
        "all Q1 SMAs (paper 33.776 MB @SF1)", "33.776 MB", q1_mb
    );
    println!(
        "{:<34} {:>16} {:>13.3} MB",
        "+ SMAs for 2 more dates (paper 51.12)",
        "51.12 MB",
        q1_mb + extra
    );
    println!("(our SF is smaller; the *ratios* — MBs vs the cube's GBs — are the result)\n");
}

/// E3 — §2.4 Query 1 response times.
fn e3_query1() {
    println!("--- E3: Query 1 response time (paper §2.4) ---");
    println!("paper @SF1, sorted on shipdate:  without SMAs 128s (cold&warm);");
    println!("                                 with SMAs 4.9s cold / 1.9s warm\n");
    let table = bench_table(Clustering::SortedByShipdate, 1);
    let smas = q1_smas(&table);
    let cm = CostModel::default();
    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>14}",
        "run", "plan", "elapsed", "pages read", "modeled cold"
    );
    let mut rows = Vec::new();
    let without_cold = q1(&table, None, true);
    rows.push(("without SMAs (cold)", false, without_cold));
    let without_warm = q1(&table, None, false);
    rows.push(("without SMAs (warm)", false, without_warm));
    let with_cold = q1(&table, Some(&smas), true);
    rows.push(("with SMAs (cold)", true, with_cold));
    let with_warm = q1(&table, Some(&smas), false);
    rows.push(("with SMAs (warm)", true, with_warm));
    for (name, uses_smas, run) in &rows {
        // SMA plans additionally stream the SMA-files themselves (charged
        // sequentially; they are cached and free when warm on AODB too,
        // but we price the cold case).
        let sma_pages_ms = if *uses_smas {
            smas.total_pages() as f64 * cm.seq_read_ms
        } else {
            0.0
        };
        println!(
            "{:<22} {:>10} {:>12.2?} {:>12} {:>11.1} ms",
            name,
            format!("{:?}", run.plan_kind),
            run.elapsed,
            run.io.logical_reads,
            cm.cost_ms(&run.io) + sma_pages_ms,
        );
    }
    let speedup = rows[1].2.elapsed.as_secs_f64() / rows[3].2.elapsed.as_secs_f64().max(1e-9);
    println!(
        "warm speedup: {speedup:.0}x (paper: ~67x warm, ~26x cold — two orders of magnitude)\n"
    );
}

/// E4 — Figure 5: runtime vs percentage of ambivalent buckets.
fn e4_figure5() {
    println!("--- E4: Figure 5 — runtime vs % of buckets to be investigated ---");
    println!("paper: SMA runtime grows linearly, crossing the full-scan line at ~25%;");
    println!("       a uselessly-applied SMA plan costs < 2% extra\n");
    let cut = cutoff(90);
    let cm = CostModel::default();
    println!(
        "{:>8} {:>14} {:>14} {:>16} {:>16}",
        "ambiv%", "sma warm", "full warm", "sma cold model", "full cold model"
    );
    // With SMA_CSV set, the series is also written for plotting.
    let mut csv = String::from(
        "ambivalent_fraction,sma_warm_s,full_warm_s,sma_cold_model_ms,full_cold_model_ms\n",
    );
    let mut crossover: Option<f64> = None;
    let mut prev: Option<(f64, f64, f64)> = None;
    for pct in [0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40] {
        let mut table = bench_table(Clustering::SortedByShipdate, 1);
        dial_ambivalence(&mut table, cut, pct);
        let smas = q1_smas(&table);
        // Force both plans regardless of what the optimizer would pick.
        let query = sma_exec::query1_query(&table, cut).expect("query");
        let p = plan(&table, query, Some(&smas), &PlannerConfig::default());
        let est = p.estimate.expect("smas present");
        // Warm wall-clock of each forced plan.
        let sma_warm = time_forced(&table, Some(&smas), true);
        let full_warm = time_forced(&table, None, false);
        println!(
            "{:>7.0}% {:>14.2?} {:>14.2?} {:>13.1} ms {:>13.1} ms",
            est.ambivalent_fraction * 100.0,
            sma_warm,
            full_warm,
            est.sma_gaggr_cost_ms.unwrap_or(f64::NAN),
            est.full_scan_cost_ms,
        );
        csv.push_str(&format!(
            "{},{},{},{},{}\n",
            est.ambivalent_fraction,
            sma_warm.as_secs_f64(),
            full_warm.as_secs_f64(),
            est.sma_gaggr_cost_ms.unwrap_or(f64::NAN),
            est.full_scan_cost_ms
        ));
        let (s, f) = (
            est.sma_gaggr_cost_ms.unwrap_or(f64::MAX),
            est.full_scan_cost_ms,
        );
        if crossover.is_none() {
            if let Some((ppct, ps, pf)) = prev {
                if ps <= pf && s > f {
                    // Linear interpolation of the crossing point.
                    let t = (pf - ps) / ((s - f) - (ps - pf));
                    crossover = Some(ppct + t * (est.ambivalent_fraction - ppct));
                }
            }
            prev = Some((est.ambivalent_fraction, s, f));
        }
        let _ = cm;
    }
    match crossover {
        Some(x) => println!(
            "modeled breakeven at ~{:.0}% ambivalent buckets (paper: ~25%)\n",
            x * 100.0
        ),
        None => println!("no crossover within the sweep (disk model favors skipping)\n"),
    }
    if let Ok(dir) = std::env::var("SMA_CSV") {
        let path = std::path::Path::new(&dir).join("figure5.csv");
        if std::fs::write(&path, csv).is_ok() {
            println!("(series written to {})\n", path.display());
        }
    }
}

fn time_forced(table: &Table, smas: Option<&SmaSet>, force_sma: bool) -> std::time::Duration {
    use sma_exec::{PlanKind, Q1Execution};
    // Run via the planner but coerce the kind through a private rebuild:
    // simplest is to run both and pick by kind; we re-plan with settings
    // that force the desired side.
    let cfg = if force_sma {
        // Cost model that makes bucket skipping irresistible.
        sma_exec::Query1Config {
            planner: PlannerConfig {
                cost_model: CostModel {
                    seq_read_ms: 1.0,
                    rand_read_ms: 1.0,
                    write_ms: 0.0,
                    failed_read_ms: 0.0,
                },
                hard_breakeven: None,
            },
            ..Default::default()
        }
    } else {
        sma_exec::Query1Config::default()
    };
    let run: Q1Execution = sma_exec::run_query1(table, smas, &cfg).expect("q1");
    if force_sma {
        debug_assert_eq!(run.plan_kind, PlanKind::SmaGAggr);
    }
    run.elapsed
}

/// E5 — Figure 2: the diagonal data distribution.
fn e5_figure2() {
    println!("--- E5: Figure 2 — diagonal data distribution ---");
    println!("paper: order dates cluster around the diagonal of introduction time\n");
    let cfg = GenConfig {
        orders: 2_000,
        clustering: Clustering::diagonal_default(),
        seed: 42,
        bucket_pages: 1,
        pool_pages: 1 << 14,
    };
    let (_, items) = generate(&cfg);
    // Position in the file = introduction order; plot shipdate percentile
    // per file decile as a text sketch of Fig. 2.
    let n = items.len();
    println!(
        "{:>10} {:>14} {:>14} {:>14}",
        "file decile", "min ship", "median ship", "max ship"
    );
    for d in 0..10 {
        let slice = &items[d * n / 10..(d + 1) * n / 10];
        let mut dates: Vec<Date> = slice.iter().map(|it| it.shipdate).collect();
        dates.sort();
        println!(
            "{:>10} {:>14} {:>14} {:>14}",
            d,
            dates[0],
            dates[dates.len() / 2],
            dates[dates.len() - 1]
        );
    }
    // Quantify the clustering: per-bucket shipdate spread.
    let table = sma_tpcd::load_lineitem(&items, Box::new(sma_storage::MemStore::new()), 1, 1 << 14);
    let min = Sma::build(
        &table,
        SmaDefinition::new("min", AggFn::Min, col(li::SHIPDATE)),
    )
    .expect("build");
    let max = Sma::build(
        &table,
        SmaDefinition::new("max", AggFn::Max, col(li::SHIPDATE)),
    )
    .expect("build");
    let spreads: Vec<i32> = (0..table.bucket_count())
        .filter_map(|b| {
            let lo = min.bucket_value_across_groups(b).as_date()?;
            let hi = max.bucket_value_across_groups(b).as_date()?;
            Some(hi.days_between(lo))
        })
        .collect();
    let avg = spreads.iter().sum::<i32>() as f64 / spreads.len() as f64;
    println!(
        "\nper-bucket shipdate spread: avg {avg:.1} days over a {}-day domain — the\n\
         clustering SMAs exploit (uniform data would spread ~the whole domain)\n",
        Date::parse("1998-12-31")
            .unwrap()
            .days_between(Date::parse("1992-01-01").unwrap())
    );
}

/// E6 — Figure 1 / §2.2: the three-bucket selection example.
fn e6_figure1() {
    println!("--- E6: Figure 1 / §2.2 selection example ---");
    use std::sync::Arc;
    let schema = Arc::new(sma_types::Schema::new(vec![
        sma_types::Column::new("L_SHIPDATE", sma_types::DataType::Date),
        sma_types::Column::new("PAD", sma_types::DataType::Str),
    ]));
    let mut t = Table::in_memory("LINEITEM", schema, 1);
    let dates = [
        "1997-03-11",
        "1997-04-22",
        "1997-02-02",
        "1997-04-01",
        "1997-05-07",
        "1997-04-28",
        "1997-05-02",
        "1997-05-20",
        "1997-06-03",
    ];
    let pad = "x".repeat(1200);
    for d in dates {
        t.append(&vec![
            Value::Date(Date::parse(d).expect("valid")),
            Value::Str(pad.clone()),
        ])
        .expect("append");
    }
    let smas = SmaSet::build(
        &t,
        vec![
            SmaDefinition::new("min", AggFn::Min, col(0)),
            SmaDefinition::new("max", AggFn::Max, col(0)),
            SmaDefinition::count("count"),
        ],
    )
    .expect("build");
    let pred = BucketPred::cmp(
        0,
        CmpOp::Lt,
        Value::Date(Date::parse("1997-04-30").unwrap()),
    );
    for b in 0..t.bucket_count() {
        println!("  bucket {}: {:?}", b + 1, pred.grade(b, &smas));
    }
    t.reset_io_stats();
    let mut op =
        sma_exec::SmaGAggr::new(&t, pred, vec![], vec![sma_exec::AggSpec::CountStar], &smas)
            .expect("op");
    let rows = collect(&mut op).expect("collect");
    println!(
        "  count(*) where L_SHIPDATE < 97-04-30 = {} reading {} of {} pages\n",
        rows[0][0],
        t.io_stats().logical_reads,
        t.page_count()
    );
}

/// A1 — §4 bucket-size trade-off ablation.
fn a1_bucket_size() {
    println!("--- A1: bucket size trade-off (§4) ---");
    println!("paper: small buckets -> large SMA-files; large buckets -> many ambivalent\n");
    let cut = cutoff(90);
    println!(
        "{:>12} {:>10} {:>10} {:>9} {:>12} {:>12}",
        "bucket pages", "buckets", "sma pages", "ambiv%", "sma warm", "modeled"
    );
    for bucket_pages in [1u32, 2, 4, 8, 16, 32] {
        let table = bench_table(Clustering::diagonal_default(), bucket_pages);
        let smas = q1_smas(&table);
        let query = sma_exec::query1_query(&table, cut).expect("query");
        let p = plan(&table, query, Some(&smas), &PlannerConfig::default());
        let est = p.estimate.expect("smas");
        let run = q1(&table, Some(&smas), false);
        println!(
            "{:>12} {:>10} {:>10} {:>8.1}% {:>12.2?} {:>9.1} ms",
            bucket_pages,
            table.bucket_count(),
            smas.total_pages(),
            est.ambivalent_fraction * 100.0,
            run.elapsed,
            est.sma_gaggr_cost_ms.unwrap_or(f64::NAN),
        );
    }
    println!();
}

/// A2 — §4 hierarchical SMA ablation.
fn a2_hierarchical() {
    println!("--- A2: hierarchical SMAs (§4) ---");
    println!("paper: if a 2nd-level bucket (dis)qualifies, the 1st-level file is skipped\n");
    let table = bench_table(Clustering::SortedByShipdate, 1);
    let min = Sma::build(
        &table,
        SmaDefinition::new("min", AggFn::Min, col(li::SHIPDATE)),
    )
    .expect("build");
    let max = Sma::build(
        &table,
        SmaDefinition::new("max", AggFn::Max, col(li::SHIPDATE)),
    )
    .expect("build");
    println!(
        "{:>8} {:>10} {:>14} {:>14} {:>9}",
        "fanout", "l2 size", "l1 inspected", "l1 skipped", "saving"
    );
    for fanout in [8u32, 32, 128] {
        let h = HierarchicalMinMax::from_smas(&min, &max, fanout).unwrap();
        let pred = BucketPred::cmp(li::SHIPDATE, CmpOp::Le, Value::Date(cutoff(90)));
        let p = h.prune(&pred);
        println!(
            "{:>8} {:>10} {:>14} {:>14} {:>8.1}%",
            fanout,
            h.l2_len(),
            p.l1_inspected,
            p.l1_skipped,
            100.0 * p.l1_skipped as f64 / (p.l1_inspected + p.l1_skipped).max(1) as f64,
        );
    }
    println!();
}

/// A3 — §4 join-SMA / semi-join ablation.
fn a3_join_sma() {
    println!("--- A3: join SMAs — semi-join input reduction (§4) ---");
    let cfg = GenConfig::scale_factor(bench_scale_factor(), Clustering::SortedByShipdate);
    let (orders, _) = generate(&cfg);
    let lineitem = bench_table(Clustering::SortedByShipdate, 1);
    let early: Vec<_> = orders
        .iter()
        .filter(|ord| ord.orderdate <= sma_tpcd::start_date().add_days(90))
        .cloned()
        .collect();
    let orders_table = sma_tpcd::load_orders(&early, 1, 1 << 14);
    let smas = SmaSet::build(
        &lineitem,
        vec![
            SmaDefinition::new("min", AggFn::Min, col(li::SHIPDATE)),
            SmaDefinition::new("max", AggFn::Max, col(li::SHIPDATE)),
        ],
    )
    .expect("build");
    println!(
        "LINEITEM ⋉ ORDERS on L_SHIPDATE <= O_ORDERDATE, |O-early| = {}",
        early.len()
    );
    for (name, set) in [("naive", None), ("sma-reduced", Some(&smas))] {
        lineitem.reset_io_stats();
        let started = Instant::now();
        let mut j = SemiJoin::new(
            &lineitem,
            li::SHIPDATE,
            CmpOp::Le,
            &orders_table,
            o::ORDERDATE,
            set,
        );
        let rows = collect(&mut j).expect("join");
        let c = j.counters();
        println!(
            "  {:<12} |result|={:<7} elapsed={:<10.2?} R-pages={:<6} skipped {}/{} buckets",
            name,
            rows.len(),
            started.elapsed(),
            lineitem.io_stats().logical_reads,
            c.disqualified,
            c.total(),
        );
    }
    println!();
}
