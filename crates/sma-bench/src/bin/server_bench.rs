//! Server throughput/latency bench + overload-degradation experiment.
//!
//! ```text
//! server_bench
//! ```
//!
//! Two experiments over one warehouse served by the in-process TCP
//! server, writing `BENCH_server.json` at the repo root:
//!
//! * **Latency matrix** — closed-loop clients at 1/8/64 connections,
//!   each issuing the same SMA-prunable point aggregate; reports QPS
//!   and p50/p99 per level.
//! * **Overload** — the server restarted over the same directory with a
//!   page budget that a full-table scan must exceed. Four clients loop
//!   the heavy scan (each attempt refused with a structured budget
//!   error) while one client measures point-aggregate latency; the
//!   point p99 must stay bounded because budget enforcement cuts the
//!   scans off at the cap instead of letting them monopolize the
//!   read lock.
//!
//! Shapes, not absolute numbers, are the target: the interesting
//! outputs are the p99-vs-baseline ratio under overload and the count
//! of heavy scans refused by the budget.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use sma_server::proto::Status;
use sma_server::{Client, Server, ServerConfig, ServerHandle};
use smadb::ingest::{CommitPolicy, StreamingWarehouse};
use smadb::storage::test_util::scratch_path;
use smadb::storage::Table;
use smadb::types::{Column, DataType, Schema, Value};
use smadb::Warehouse;

const ROWS: i64 = 12_000;
const PAD: usize = 80;

const POINT_QUERY: &str = "select count(*), min(V), max(V) from L where K >= 6000 and K <= 6200";
// V is pseudo-random per row, so every bucket's [min, max] straddles
// the threshold: no bucket can be answered from its SMA alone and the
// scan must touch every page — which is what the budget then refuses.
const HEAVY_QUERY: &str = "select sum(V), count(*) from L where V <= 5000";

fn load_warehouse(dir: &std::path::Path) -> StreamingWarehouse {
    let schema = std::sync::Arc::new(Schema::new(vec![
        Column::new("K", DataType::Int),
        Column::new("V", DataType::Int),
        Column::new("PAD", DataType::Str),
    ]));
    let mut sw = StreamingWarehouse::create(dir, Warehouse::new(), 0).unwrap();
    sw.set_commit_policy(CommitPolicy {
        batch_rows: 4096,
        max_delay: Duration::from_millis(5),
    });
    // Four pages per bucket: enough buckets that the K-sma prunes the
    // point query down to a handful of pages while the V predicate
    // (pseudo-random, so min/max never excludes a bucket) forces the
    // heavy query through every page.
    sw.register(Table::in_memory("L", schema, 4)).unwrap();
    for stmt in [
        "define sma l_cnt select count(*) from L",
        "define sma l_kmin select min(K) from L",
        "define sma l_kmax select max(K) from L",
        "define sma l_vmin select min(V) from L",
        "define sma l_vmax select max(V) from L",
        "define sma l_vsum select sum(V) from L",
    ] {
        sw.define_sma(stmt).unwrap();
    }
    for i in 0..ROWS {
        let tuple = vec![
            Value::Int(i),
            Value::Int((i * 7919) % 10_000),
            Value::Str("p".repeat(PAD)),
        ];
        sw.insert("L", &tuple).unwrap();
    }
    sw.commit().unwrap();
    sw.flush().unwrap();
    sw
}

fn client(handle: &ServerHandle) -> Client {
    let mut c = Client::connect(handle.addr()).unwrap();
    c.set_timeout(Some(Duration::from_secs(60))).unwrap();
    c
}

/// Runs `per_client` point queries on each of `clients` connections and
/// returns (elapsed, all latencies in ns).
fn closed_loop(handle: &ServerHandle, clients: usize, per_client: usize) -> (Duration, Vec<u64>) {
    let t0 = Instant::now();
    let mut lats: Vec<u64> = Vec::with_capacity(clients * per_client);
    std::thread::scope(|s| {
        let mut joins = Vec::new();
        for _ in 0..clients {
            joins.push(s.spawn(|| {
                let mut c = client(handle);
                let mut mine = Vec::with_capacity(per_client);
                for _ in 0..per_client {
                    let t = Instant::now();
                    let r = c.request(POINT_QUERY).unwrap();
                    mine.push(t.elapsed().as_nanos() as u64);
                    assert!(
                        matches!(r.status, Status::Ok | Status::Degraded),
                        "point query refused: {:?} {}",
                        r.status,
                        r.info
                    );
                }
                mine
            }));
        }
        for j in joins {
            lats.extend(j.join().unwrap());
        }
    });
    (t0.elapsed(), lats)
}

fn percentile(sorted_ns: &[u64], q: f64) -> u64 {
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx]
}

struct Level {
    clients: usize,
    requests: usize,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
}

fn measure_level(handle: &ServerHandle, clients: usize, per_client: usize) -> Level {
    let (elapsed, mut lats) = closed_loop(handle, clients, per_client);
    lats.sort_unstable();
    Level {
        clients,
        requests: lats.len(),
        qps: lats.len() as f64 / elapsed.as_secs_f64(),
        p50_us: percentile(&lats, 0.50) as f64 / 1_000.0,
        p99_us: percentile(&lats, 0.99) as f64 / 1_000.0,
    }
}

fn main() {
    let dir = scratch_path("server-bench");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    println!("== server bench: {ROWS} rows, point query `{POINT_QUERY}` ==\n");
    let sw = load_warehouse(&dir);

    // --- Latency matrix: unbudgeted server, generous admission. ---
    let handle = Server::spawn(
        ServerConfig {
            max_sessions: 128,
            max_inflight: 128,
            ..ServerConfig::default()
        },
        sw,
    )
    .unwrap();

    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>12}",
        "clients", "requests", "qps", "p50", "p99"
    );
    let mut matrix = Vec::new();
    for &(clients, per_client) in &[(1usize, 512usize), (8, 128), (64, 30)] {
        let l = measure_level(&handle, clients, per_client);
        println!(
            "{:>8} {:>10} {:>12.0} {:>10.0} µs {:>10.0} µs",
            l.clients, l.requests, l.qps, l.p50_us, l.p99_us
        );
        matrix.push(l);
    }
    handle.shutdown().unwrap();

    // --- Overload: budget-capped server over the same directory. ---
    // The heavy scan touches every page (~ROWS * row_bytes / 4 KiB); a
    // 64-page budget refuses it early. The point query prunes to a few
    // pages via the K sma and sails under the cap.
    let page_budget = 64u64;
    let (sw, report) = StreamingWarehouse::open_with_recovery(&dir, 0).unwrap();
    assert_eq!(report.replayed, 0, "graceful shutdown left WAL work");
    let handle = Server::spawn(
        ServerConfig {
            max_sessions: 32,
            max_inflight: 32,
            deadline: Some(Duration::from_secs(10)),
            page_budget: Some(page_budget),
            ..ServerConfig::default()
        },
        sw,
    )
    .unwrap();

    println!("\n== overload: page budget {page_budget}, 4 heavy-scan clients ==");
    let (_, mut base) = closed_loop(&handle, 1, 400);
    base.sort_unstable();
    let baseline_p99_us = percentile(&base, 0.99) as f64 / 1_000.0;

    let stop = AtomicBool::new(false);
    let heavy_refused = AtomicU64::new(0);
    let heavy_served = AtomicU64::new(0);
    let mut contended: Vec<u64> = Vec::new();
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                let mut c = client(&handle);
                while !stop.load(Ordering::Relaxed) {
                    let r = c.request(HEAVY_QUERY).unwrap();
                    match r.status {
                        Status::Error if r.info.contains("page budget") => {
                            heavy_refused.fetch_add(1, Ordering::Relaxed);
                        }
                        Status::Ok | Status::Degraded => {
                            heavy_served.fetch_add(1, Ordering::Relaxed);
                        }
                        Status::Busy => {}
                        other => panic!("heavy scan: {other:?} {}", r.info),
                    }
                }
            });
        }
        let (_, lats) = closed_loop(&handle, 1, 400);
        contended = lats;
        stop.store(true, Ordering::Relaxed);
    });
    contended.sort_unstable();
    let contended_p99_us = percentile(&contended, 0.99) as f64 / 1_000.0;
    let refused = heavy_refused.load(Ordering::Relaxed);
    let served = heavy_served.load(Ordering::Relaxed);
    let ratio = contended_p99_us / baseline_p99_us.max(0.001);

    println!("point p99 baseline:  {baseline_p99_us:>8.0} µs");
    println!("point p99 contended: {contended_p99_us:>8.0} µs  ({ratio:.2}x)");
    println!("heavy scans refused by budget: {refused} (served: {served})");
    assert!(
        refused > 0,
        "the page budget never cut a heavy scan off — cap too high?"
    );

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    // --- JSON artifact of record. ---
    let mut rows_json = String::new();
    for l in &matrix {
        if !rows_json.is_empty() {
            rows_json.push_str(",\n");
        }
        rows_json.push_str(&format!(
            "    {{\"clients\": {}, \"requests\": {}, \"qps\": {:.0}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}}}",
            l.clients, l.requests, l.qps, l.p50_us, l.p99_us
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"server\",\n  \"rows\": {ROWS},\n  \
         \"point_query\": \"{POINT_QUERY}\",\n  \
         \"latency_matrix\": [\n{rows_json}\n  ],\n  \
         \"overload\": {{\n    \"page_budget\": {page_budget},\n    \
         \"baseline_point_p99_us\": {baseline_p99_us:.1},\n    \
         \"contended_point_p99_us\": {contended_p99_us:.1},\n    \
         \"p99_ratio\": {ratio:.2},\n    \
         \"heavy_scans_refused\": {refused},\n    \
         \"heavy_scans_served\": {served}\n  }}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    match std::fs::write(path, json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
}
