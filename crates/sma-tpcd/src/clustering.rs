//! Clustering models: the physical order in which tuples enter the warehouse.
//!
//! §2.2 of the paper argues that real warehouses exhibit *implicit
//! clustering by time of creation*: tuples are appended roughly in date
//! order, with a normally-distributed lag between an event's date and its
//! introduction into the warehouse ("diagonal data distribution", Fig. 2).
//! TPC-D itself uses an unrealistic uniform distribution. We implement all
//! regimes so experiments can dial the clustering quality.

use sma_types::StdRng;

/// How generated tuples are physically ordered before loading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Clustering {
    /// Perfectly sorted on `L_SHIPDATE` — the paper's "optimal case".
    SortedByShipdate,
    /// Diagonal distribution (Fig. 2): each tuple enters the warehouse
    /// `max(0, N(mean, std_dev))` days after its ship date, and the file is
    /// ordered by that introduction date. Small `std_dev` ≈ sorted; large
    /// `std_dev` smears buckets and raises the ambivalent fraction.
    Diagonal {
        /// Mean entry lag in days.
        mean_lag_days: f64,
        /// Standard deviation of the entry lag in days.
        std_dev_days: f64,
    },
    /// dbgen's native order (by order key; ship dates uniform within the
    /// window) — effectively unclustered on dates, as the paper notes.
    Uniform,
    /// Explicit random permutation — the adversarial worst case.
    Shuffled,
}

impl Clustering {
    /// A realistic diagonal default: two-week mean lag, ±4 days.
    pub fn diagonal_default() -> Clustering {
        Clustering::Diagonal {
            mean_lag_days: 14.0,
            std_dev_days: 4.0,
        }
    }
}

/// Samples a standard normal variate via Box–Muller (the approved crate
/// list has no `rand_distr`, and two lines suffice).
pub fn sample_normal(rng: &mut StdRng, mean: f64, std_dev: f64) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + std_dev * z
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng, 14.0, 4.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 14.0).abs() < 0.2, "mean {mean}");
        assert!((var.sqrt() - 4.0).abs() < 0.2, "std {}", var.sqrt());
    }

    #[test]
    fn diagonal_default_is_diagonal() {
        match Clustering::diagonal_default() {
            Clustering::Diagonal {
                mean_lag_days,
                std_dev_days,
            } => {
                assert!(mean_lag_days > 0.0 && std_dev_days > 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
