//! dbgen-style TPC-D data generation.
//!
//! Follows the TPC-D specification's value domains: order dates uniform in
//! `[1992-01-01, 1998-12-31 - 151 days]`, 1–7 line items per order,
//! `L_SHIPDATE = O_ORDERDATE + U[1,121]`, `L_COMMITDATE = O_ORDERDATE +
//! U[30,90]`, `L_RECEIPTDATE = L_SHIPDATE + U[1,30]`, quantities `U[1,50]`,
//! discounts `U[0.00,0.10]`, taxes `U[0.00,0.08]`, and the return-flag /
//! line-status rules relative to the benchmark's `CURRENTDATE` 1995-06-17.
//! Seeded, so every experiment is reproducible bit-for-bit.

use sma_types::StdRng;

use sma_storage::{MemStore, PageStore, Table};
use sma_types::{Date, Decimal, Tuple, Value};

use crate::clustering::{sample_normal, Clustering};
use crate::schema::lineitem_schema;

/// TPC-D's fixed "current date" used by the flag rules.
pub fn current_date() -> Date {
    // sma-lint: allow(P2-expect) -- compile-time constant date; cannot fail
    Date::from_ymd(1995, 6, 17).expect("valid constant")
}

/// First order date dbgen generates.
pub fn start_date() -> Date {
    // sma-lint: allow(P2-expect) -- compile-time constant date; cannot fail
    Date::from_ymd(1992, 1, 1).expect("valid constant")
}

/// Last calendar date in the TPC-D window.
pub fn end_date() -> Date {
    // sma-lint: allow(P2-expect) -- compile-time constant date; cannot fail
    Date::from_ymd(1998, 12, 31).expect("valid constant")
}

/// One generated LINEITEM row, strongly typed.
#[derive(Debug, Clone, PartialEq)]
pub struct LineItem {
    /// L_ORDERKEY
    pub orderkey: i64,
    /// L_PARTKEY
    pub partkey: i64,
    /// L_SUPPKEY
    pub suppkey: i64,
    /// L_LINENUMBER
    pub linenumber: i64,
    /// L_QUANTITY
    pub quantity: Decimal,
    /// L_EXTENDEDPRICE
    pub extendedprice: Decimal,
    /// L_DISCOUNT
    pub discount: Decimal,
    /// L_TAX
    pub tax: Decimal,
    /// L_RETURNFLAG: b'R', b'A' or b'N'
    pub returnflag: u8,
    /// L_LINESTATUS: b'O' or b'F'
    pub linestatus: u8,
    /// L_SHIPDATE
    pub shipdate: Date,
    /// L_COMMITDATE
    pub commitdate: Date,
    /// L_RECEIPTDATE
    pub receiptdate: Date,
    /// L_SHIPINSTRUCT
    pub shipinstruct: &'static str,
    /// L_SHIPMODE
    pub shipmode: &'static str,
    /// L_COMMENT
    pub comment: String,
}

impl LineItem {
    /// Converts to a storage tuple in LINEITEM schema order.
    pub fn to_tuple(&self) -> Tuple {
        vec![
            Value::Int(self.orderkey),
            Value::Int(self.partkey),
            Value::Int(self.suppkey),
            Value::Int(self.linenumber),
            Value::Decimal(self.quantity),
            Value::Decimal(self.extendedprice),
            Value::Decimal(self.discount),
            Value::Decimal(self.tax),
            Value::Char(self.returnflag),
            Value::Char(self.linestatus),
            Value::Date(self.shipdate),
            Value::Date(self.commitdate),
            Value::Date(self.receiptdate),
            Value::Str(self.shipinstruct.to_string()),
            Value::Str(self.shipmode.to_string()),
            Value::Str(self.comment.clone()),
        ]
    }
}

/// One generated ORDERS row (used by the join-SMA experiments).
#[derive(Debug, Clone, PartialEq)]
pub struct Order {
    /// O_ORDERKEY
    pub orderkey: i64,
    /// O_CUSTKEY
    pub custkey: i64,
    /// O_ORDERSTATUS
    pub orderstatus: u8,
    /// O_TOTALPRICE
    pub totalprice: Decimal,
    /// O_ORDERDATE
    pub orderdate: Date,
    /// O_ORDERPRIORITY
    pub orderpriority: &'static str,
    /// O_CLERK
    pub clerk: String,
    /// O_SHIPPRIORITY
    pub shippriority: i64,
    /// O_COMMENT
    pub comment: String,
}

impl Order {
    /// Converts to a storage tuple in ORDERS schema order.
    pub fn to_tuple(&self) -> Tuple {
        vec![
            Value::Int(self.orderkey),
            Value::Int(self.custkey),
            Value::Char(self.orderstatus),
            Value::Decimal(self.totalprice),
            Value::Date(self.orderdate),
            Value::Str(self.orderpriority.to_string()),
            Value::Str(self.clerk.clone()),
            Value::Int(self.shippriority),
            Value::Str(self.comment.to_string()),
        ]
    }
}

const SHIPINSTRUCT: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];

const SHIPMODE: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

const PRIORITY: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

const COMMENT_WORDS: [&str; 16] = [
    "carefully",
    "quickly",
    "furiously",
    "slyly",
    "blithely",
    "deposits",
    "accounts",
    "requests",
    "packages",
    "foxes",
    "pearls",
    "instructions",
    "theodolites",
    "pinto",
    "beans",
    "ironic",
];

/// Configuration for a generation run.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of orders to generate (≈ `orders * 4` line items).
    pub orders: usize,
    /// Physical ordering regime.
    pub clustering: Clustering,
    /// RNG seed — every artifact of a run is a pure function of the config.
    pub seed: u64,
    /// Pages per bucket in the loaded table.
    pub bucket_pages: u32,
    /// Buffer-pool capacity in pages for the loaded table.
    pub pool_pages: usize,
}

impl GenConfig {
    /// SF-proportional config: TPC-D has 1.5 M orders (6 M line items) at
    /// scale factor 1.
    pub fn scale_factor(sf: f64, clustering: Clustering) -> GenConfig {
        GenConfig {
            orders: (1_500_000.0 * sf) as usize,
            clustering,
            seed: 42,
            bucket_pages: 1,
            pool_pages: 2048, // the paper's 8 MB buffer at 4 KiB pages
        }
    }

    /// A tiny config for doc examples and unit tests (~2 k line items).
    pub fn tiny(clustering: Clustering) -> GenConfig {
        GenConfig {
            orders: 500,
            clustering,
            seed: 42,
            bucket_pages: 1,
            pool_pages: 2048,
        }
    }
}

fn random_decimal(rng: &mut StdRng, lo_cents: i64, hi_cents: i64) -> Decimal {
    Decimal::from_cents(rng.random_range(lo_cents..=hi_cents))
}

fn random_comment(rng: &mut StdRng, words: usize) -> String {
    let mut out = String::new();
    for i in 0..words {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(COMMENT_WORDS[rng.random_range(0..COMMENT_WORDS.len())]);
    }
    out
}

/// dbgen's retail price formula, simplified: deterministic in the part key.
fn part_price(partkey: i64) -> Decimal {
    let cents = 90_000 + (partkey % 20_000) * 10 + (partkey / 10) % 1_000;
    Decimal::from_cents(cents)
}

/// Generates the line items (and their parent orders) for `config`,
/// already arranged in the physical order dictated by the clustering model.
pub fn generate(config: &GenConfig) -> (Vec<Order>, Vec<LineItem>) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let order_window = end_date().days_between(start_date()) - 151;
    // TPC-D keeps a 10:1 order-to-customer ratio (1.5 M : 150 k at SF 1).
    let customer_count = (config.orders as i64 / 10).max(1);
    let mut orders = Vec::with_capacity(config.orders);
    let mut items: Vec<LineItem> = Vec::with_capacity(config.orders * 4);
    for i in 0..config.orders {
        let orderkey = (i as i64) * 4 + 1; // dbgen leaves key gaps; so do we
        let orderdate = start_date().add_days(rng.random_range(0..=order_window));
        let lines = rng.random_range(1..=7);
        let mut total = Decimal::ZERO;
        for ln in 1..=lines {
            let partkey = rng.random_range(1..=200_000i64);
            let quantity = Decimal::from_int(rng.random_range(1..=50));
            let extendedprice = part_price(partkey).mul_round(quantity);
            let discount = random_decimal(&mut rng, 0, 10);
            let tax = random_decimal(&mut rng, 0, 8);
            let shipdate = orderdate.add_days(rng.random_range(1..=121));
            let commitdate = orderdate.add_days(rng.random_range(30..=90));
            let receiptdate = shipdate.add_days(rng.random_range(1..=30));
            let returnflag = if receiptdate <= current_date() {
                if rng.random_range(0..2) == 0 {
                    b'R'
                } else {
                    b'A'
                }
            } else {
                b'N'
            };
            let linestatus = if shipdate > current_date() {
                b'O'
            } else {
                b'F'
            };
            total += extendedprice;
            items.push(LineItem {
                orderkey,
                partkey,
                suppkey: (partkey % 10_000) + 1,
                linenumber: ln,
                quantity,
                extendedprice,
                discount,
                tax,
                returnflag,
                linestatus,
                shipdate,
                commitdate,
                receiptdate,
                shipinstruct: SHIPINSTRUCT[rng.random_range(0..SHIPINSTRUCT.len())],
                shipmode: SHIPMODE[rng.random_range(0..SHIPMODE.len())],
                comment: {
                    let words = rng.random_range(2..=5);
                    random_comment(&mut rng, words)
                },
            });
        }
        orders.push(Order {
            orderkey,
            custkey: rng.random_range(1..=customer_count),
            orderstatus: if orderdate.add_days(121) <= current_date() {
                b'F'
            } else {
                b'O'
            },
            totalprice: total,
            orderdate,
            orderpriority: PRIORITY[rng.random_range(0..PRIORITY.len())],
            clerk: format!("Clerk#{:09}", rng.random_range(1..=1_000i64)),
            shippriority: 0,
            comment: {
                let words = rng.random_range(3..=8);
                random_comment(&mut rng, words)
            },
        });
    }
    apply_clustering(&mut items, config.clustering, &mut rng);
    (orders, items)
}

/// Rearranges `items` into the physical order of the clustering model.
fn apply_clustering(items: &mut [LineItem], clustering: Clustering, rng: &mut StdRng) {
    match clustering {
        Clustering::SortedByShipdate => {
            items.sort_by_key(|li| li.shipdate);
        }
        Clustering::Diagonal {
            mean_lag_days,
            std_dev_days,
        } => {
            // Introduction date = ship date + non-negative normal lag; sort
            // by it. Ties broken by ship date, as a warehouse batch would.
            let mut keyed: Vec<(i64, usize)> = items
                .iter()
                .enumerate()
                .map(|(i, li)| {
                    let lag = sample_normal(rng, mean_lag_days, std_dev_days).max(0.0);
                    (li.shipdate.days() as i64 + lag.round() as i64, i)
                })
                .collect();
            keyed.sort();
            let reordered: Vec<LineItem> = keyed.iter().map(|&(_, i)| items[i].clone()).collect();
            items.clone_from_slice(&reordered);
        }
        Clustering::Uniform => {
            // dbgen's native order: by order key, line number. Dates are
            // uniform within the window, so this is unclustered on dates.
            items.sort_by_key(|li| (li.orderkey, li.linenumber));
        }
        Clustering::Shuffled => {
            rng.shuffle(items);
        }
    }
}

/// Loads pre-arranged line items into a bucketed table over `store`.
pub fn load_lineitem(
    items: &[LineItem],
    store: Box<dyn PageStore>,
    bucket_pages: u32,
    pool_pages: usize,
) -> Table {
    let mut table = Table::new(
        "LINEITEM",
        lineitem_schema(),
        store,
        pool_pages,
        bucket_pages,
    );
    for li in items {
        table
            .append(&li.to_tuple())
            .expect("generated tuple always fits"); // sma-lint: allow(P2-expect) -- loader over self-generated schema-valid tuples; a failure is a misconfigured harness
    }
    table
}

/// Generates and loads LINEITEM into an in-memory table.
pub fn generate_lineitem_table(config: &GenConfig) -> Table {
    let (_, items) = generate(config);
    load_lineitem(
        &items,
        Box::new(MemStore::new()),
        config.bucket_pages,
        config.pool_pages,
    )
}

/// Loads pre-arranged orders into a bucketed table (join-SMA experiments).
pub fn load_orders(orders: &[Order], bucket_pages: u32, pool_pages: usize) -> Table {
    let mut table = Table::new(
        "ORDERS",
        crate::schema::orders_schema(),
        Box::new(MemStore::new()),
        pool_pages,
        bucket_pages,
    );
    for o in orders {
        table
            .append(&o.to_tuple())
            .expect("generated tuple always fits"); // sma-lint: allow(P2-expect) -- loader over self-generated schema-valid tuples; a failure is a misconfigured harness
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::lineitem as li;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::tiny(Clustering::Uniform);
        let (o1, i1) = generate(&cfg);
        let (o2, i2) = generate(&cfg);
        assert_eq!(o1, o2);
        assert_eq!(i1, i2);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = GenConfig::tiny(Clustering::Uniform);
        let other = GenConfig {
            seed: 43,
            ..cfg.clone()
        };
        assert_ne!(generate(&cfg).1, generate(&other).1);
    }

    #[test]
    fn value_domains_match_spec() {
        let (orders, items) = generate(&GenConfig::tiny(Clustering::Uniform));
        assert!(!items.is_empty());
        let avg_lines = items.len() as f64 / orders.len() as f64;
        assert!(avg_lines > 3.0 && avg_lines < 5.0, "1..=7 lines per order");
        for it in &items {
            assert!(it.shipdate > it.orderdate_lower_bound());
            assert!(it.shipdate >= start_date());
            assert!(it.receiptdate > it.shipdate);
            assert!(it.receiptdate <= it.shipdate.add_days(30));
            let q = it.quantity.cents();
            assert!((100..=5000).contains(&q), "quantity {q}");
            assert!((0..=10).contains(&it.discount.cents()));
            assert!((0..=8).contains(&it.tax.cents()));
            assert!(matches!(it.returnflag, b'R' | b'A' | b'N'));
            assert!(matches!(it.linestatus, b'O' | b'F'));
            // Flag rules relative to CURRENTDATE.
            if it.returnflag == b'N' {
                assert!(it.receiptdate > current_date());
            } else {
                assert!(it.receiptdate <= current_date());
            }
            assert_eq!(it.linestatus == b'O', it.shipdate > current_date());
            assert!(it.extendedprice > Decimal::ZERO);
        }
    }

    impl LineItem {
        /// Ship dates are at least one day after the earliest order date.
        fn orderdate_lower_bound(&self) -> Date {
            start_date()
        }
    }

    #[test]
    fn sorted_clustering_sorts() {
        let (_, items) = generate(&GenConfig::tiny(Clustering::SortedByShipdate));
        assert!(items.windows(2).all(|w| w[0].shipdate <= w[1].shipdate));
    }

    #[test]
    fn diagonal_is_roughly_sorted() {
        let (_, items) = generate(&GenConfig::tiny(Clustering::diagonal_default()));
        // Not exactly sorted…
        assert!(items.windows(2).any(|w| w[0].shipdate > w[1].shipdate));
        // …but close: neighbouring out-of-order pairs are rare and small.
        let inversions = items
            .windows(2)
            .filter(|w| w[0].shipdate > w[1].shipdate)
            .count();
        assert!(
            (inversions as f64) < 0.5 * items.len() as f64,
            "diagonal order should be far from random ({inversions} inversions / {})",
            items.len()
        );
        let max_jump = items
            .windows(2)
            .map(|w| w[0].shipdate.days_between(w[1].shipdate))
            .max()
            .unwrap();
        assert!(
            max_jump < 60,
            "local disorder only, saw jump of {max_jump} days"
        );
    }

    #[test]
    fn shuffled_differs_from_uniform() {
        let cfg = GenConfig::tiny(Clustering::Uniform);
        let (_, uniform) = generate(&cfg);
        let (_, shuffled) = generate(&GenConfig {
            clustering: Clustering::Shuffled,
            ..cfg
        });
        assert_ne!(uniform, shuffled);
    }

    #[test]
    fn loads_into_table_in_order() {
        let cfg = GenConfig::tiny(Clustering::SortedByShipdate);
        let table = generate_lineitem_table(&cfg);
        let rows = table.scan().unwrap();
        let (_, items) = generate(&cfg);
        assert_eq!(rows.len(), items.len());
        assert!(
            table.page_count() > 10,
            "tiny config still spans many pages"
        );
        // Physical scan order equals generation order.
        for (row, item) in rows.iter().zip(&items) {
            assert_eq!(row.1[li::SHIPDATE], Value::Date(item.shipdate));
            assert_eq!(row.1[li::ORDERKEY], Value::Int(item.orderkey));
        }
    }

    #[test]
    fn orders_load() {
        let cfg = GenConfig::tiny(Clustering::Uniform);
        let (orders, _) = generate(&cfg);
        let table = load_orders(&orders, 1, 256);
        assert_eq!(table.live_tuples() as usize, orders.len());
    }
}
