//! Reference implementation of TPC-D Query 4 (order priority checking).
//!
//! ```sql
//! SELECT O_ORDERPRIORITY, COUNT(*) AS ORDER_COUNT
//! FROM ORDERS
//! WHERE O_ORDERDATE >= DATE '[date]'
//!   AND O_ORDERDATE < DATE '[date]' + INTERVAL '3' MONTH
//!   AND EXISTS (
//!     SELECT * FROM LINEITEM
//!     WHERE L_ORDERKEY = O_ORDERKEY AND L_COMMITDATE < L_RECEIPTDATE)
//! GROUP BY O_ORDERPRIORITY
//! ORDER BY O_ORDERPRIORITY
//! ```
//!
//! Query 4 combines three SMA opportunities at once: a date-range
//! predicate on ORDERS (gradable by min/max SMAs), an existential
//! (semi-join) subquery on the order key (§4's join SMAs), and an
//! attribute-vs-attribute predicate `L_COMMITDATE < L_RECEIPTDATE`
//! (the `A < B` rule of §3.1).

use std::collections::{BTreeMap, HashSet};

use sma_types::Date;

use crate::generator::{LineItem, Order};

/// Query 4 substitution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Q4Params {
    /// First order date included (TPC-D: first of a month in 1993–1997).
    pub date: Date,
}

impl Default for Q4Params {
    fn default() -> Q4Params {
        // The TPC-D validation parameter.
        Q4Params {
            // sma-lint: allow(P2-expect) -- compile-time constant date; cannot fail
            date: Date::from_ymd(1993, 7, 1).expect("valid constant"),
        }
    }
}

impl Q4Params {
    /// Exclusive upper order-date bound: `date + 3 months`.
    pub fn date_hi(&self) -> Date {
        let (y, m, d) = self.date.ymd();
        let (y, m) = if m > 9 { (y + 1, m - 9) } else { (y, m + 3) };
        Date::from_ymd(y, m, d).unwrap_or_else(|_| self.date.add_days(91))
    }
}

/// One output group of Query 4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Q4Row {
    /// O_ORDERPRIORITY
    pub orderpriority: String,
    /// COUNT(*)
    pub order_count: i64,
}

/// Evaluates Query 4 over typed rows (the oracle).
pub fn q4_reference(orders: &[Order], items: &[LineItem], p: &Q4Params) -> Vec<Q4Row> {
    // Order keys with at least one late line item.
    let late: HashSet<i64> = items
        .iter()
        .filter(|it| it.commitdate < it.receiptdate)
        .map(|it| it.orderkey)
        .collect();
    let mut groups: BTreeMap<String, i64> = BTreeMap::new();
    for o in orders {
        if o.orderdate >= p.date && o.orderdate < p.date_hi() && late.contains(&o.orderkey) {
            *groups.entry(o.orderpriority.to_string()).or_default() += 1;
        }
    }
    groups
        .into_iter()
        .map(|(orderpriority, order_count)| Q4Row {
            orderpriority,
            order_count,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::Clustering;
    use crate::generator::{generate, GenConfig};

    #[test]
    fn default_params_match_spec() {
        let p = Q4Params::default();
        assert_eq!(p.date.to_string(), "1993-07-01");
        assert_eq!(p.date_hi().to_string(), "1993-10-01");
    }

    #[test]
    fn three_month_wraparound() {
        let p = Q4Params {
            date: Date::from_ymd(1995, 11, 1).unwrap(),
        };
        assert_eq!(p.date_hi().to_string(), "1996-02-01");
        let p = Q4Params {
            date: Date::from_ymd(1995, 10, 1).unwrap(),
        };
        assert_eq!(p.date_hi().to_string(), "1996-01-01");
    }

    #[test]
    fn reference_finds_priorities() {
        let (orders, items) = generate(&GenConfig::tiny(Clustering::Uniform));
        let rows = q4_reference(&orders, &items, &Q4Params::default());
        assert!(!rows.is_empty(), "the window has late orders");
        assert!(rows.len() <= 5, "five priorities exist");
        // Sorted by priority.
        let names: Vec<&str> = rows.iter().map(|r| r.orderpriority.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        // Every counted order is in the window (spot-check totals).
        let total: i64 = rows.iter().map(|r| r.order_count).sum();
        let window_orders = orders
            .iter()
            .filter(|o| {
                o.orderdate >= Q4Params::default().date
                    && o.orderdate < Q4Params::default().date_hi()
            })
            .count() as i64;
        assert!(total <= window_orders);
        assert!(total > 0);
    }

    #[test]
    fn empty_window_yields_nothing() {
        let (orders, items) = generate(&GenConfig::tiny(Clustering::Uniform));
        let p = Q4Params {
            date: Date::from_ymd(2005, 1, 1).unwrap(),
        };
        assert!(q4_reference(&orders, &items, &p).is_empty());
    }
}
