//! TPC-D data generation for the SMA reproduction.
//!
//! The paper evaluates SMAs on the TPC-D benchmark (the predecessor of
//! TPC-H). This crate provides:
//!
//! * [`schema`] — the LINEITEM and ORDERS schemas,
//! * [`generator`] — a dbgen-style seeded generator,
//! * [`clustering`] — physical-order regimes, including the paper's
//!   *diagonal data distribution* (Fig. 2),
//! * [`query1`] — a reference implementation of Query 1 used as the
//!   correctness oracle for SMA-accelerated plans.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod clustering;
pub mod customer;
pub mod generator;
pub mod query1;
pub mod query3;
pub mod query4;
pub mod query6;
pub mod schema;

pub use clustering::Clustering;
pub use customer::{customer_schema, generate_customers, load_customers, Customer, MKTSEGMENTS};
pub use generator::{
    current_date, end_date, generate, generate_lineitem_table, load_lineitem, load_orders,
    start_date, GenConfig, LineItem, Order,
};
pub use query1::{
    format_q1, q1_cutoff, q1_reference_items, q1_reference_table, q1_selectivity, Q1Row,
};
pub use query3::{q3_reference, Q3Params, Q3Row};
pub use query4::{q4_reference, Q4Params, Q4Row};
pub use query6::{q6_reference_items, q6_reference_table, Q6Params};
pub use schema::{lineitem_schema, orders_schema};
