//! The CUSTOMER relation: schema and generator.
//!
//! Needed by Query 3 (shipping priority), which restricts on
//! `C_MKTSEGMENT` and joins through `O_CUSTKEY`. Value domains follow the
//! TPC-D spec: five market segments, 150 000 customers at SF 1.

use std::sync::Arc;

use sma_types::StdRng;

use sma_storage::Table;
use sma_types::{Column, DataType, Decimal, Schema, SchemaRef, Tuple, Value};

/// Column indexes of the CUSTOMER relation, in schema order.
pub mod columns {
    /// C_CUSTKEY
    pub const CUSTKEY: usize = 0;
    /// C_NAME
    pub const NAME: usize = 1;
    /// C_NATIONKEY
    pub const NATIONKEY: usize = 2;
    /// C_ACCTBAL
    pub const ACCTBAL: usize = 3;
    /// C_MKTSEGMENT
    pub const MKTSEGMENT: usize = 4;
    /// C_COMMENT
    pub const COMMENT: usize = 5;
}

/// The five TPC-D market segments.
pub const MKTSEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];

/// The CUSTOMER schema (the columns the benchmark queries touch).
pub fn customer_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Column::new("C_CUSTKEY", DataType::Int),
        Column::new("C_NAME", DataType::Str),
        Column::new("C_NATIONKEY", DataType::Int),
        Column::new("C_ACCTBAL", DataType::Decimal),
        Column::new("C_MKTSEGMENT", DataType::Str),
        Column::new("C_COMMENT", DataType::Str),
    ]))
}

/// One generated CUSTOMER row.
#[derive(Debug, Clone, PartialEq)]
pub struct Customer {
    /// C_CUSTKEY
    pub custkey: i64,
    /// C_NATIONKEY
    pub nationkey: i64,
    /// C_ACCTBAL
    pub acctbal: Decimal,
    /// C_MKTSEGMENT
    pub mktsegment: &'static str,
}

impl Customer {
    /// Converts to a storage tuple in CUSTOMER schema order.
    pub fn to_tuple(&self) -> Tuple {
        vec![
            Value::Int(self.custkey),
            Value::Str(format!("Customer#{:09}", self.custkey)),
            Value::Int(self.nationkey),
            Value::Decimal(self.acctbal),
            Value::Str(self.mktsegment.to_string()),
            Value::Str("generated".to_string()),
        ]
    }
}

/// Generates `n` customers with keys `1..=n`, seeded.
pub fn generate_customers(n: usize, seed: u64) -> Vec<Customer> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC057);
    (1..=n as i64)
        .map(|custkey| Customer {
            custkey,
            nationkey: rng.random_range(0..25),
            acctbal: Decimal::from_cents(rng.random_range(-99_999..=999_999)),
            mktsegment: MKTSEGMENTS[rng.random_range(0..MKTSEGMENTS.len())],
        })
        .collect()
}

/// Loads customers into an in-memory bucketed table.
pub fn load_customers(customers: &[Customer], bucket_pages: u32, pool_pages: usize) -> Table {
    let mut table = Table::new(
        "CUSTOMER",
        customer_schema(),
        Box::new(sma_storage::MemStore::new()),
        pool_pages,
        bucket_pages,
    );
    for c in customers {
        // sma-lint: allow(P2-expect) -- loader over self-generated schema-valid tuples; failure means a misconfigured harness
        table.append(&c.to_tuple()).expect("generated tuple fits");
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_in_domain() {
        let a = generate_customers(500, 42);
        let b = generate_customers(500, 42);
        assert_eq!(a, b);
        assert_ne!(a, generate_customers(500, 43));
        for (i, c) in a.iter().enumerate() {
            assert_eq!(c.custkey, i as i64 + 1);
            assert!((0..25).contains(&c.nationkey));
            assert!(MKTSEGMENTS.contains(&c.mktsegment));
            assert!(c.acctbal.cents() >= -99_999 && c.acctbal.cents() <= 999_999);
        }
        // All five segments appear in a 500-customer sample.
        for seg in MKTSEGMENTS {
            assert!(a.iter().any(|c| c.mktsegment == seg), "{seg} missing");
        }
    }

    #[test]
    fn loads_into_table() {
        let customers = generate_customers(200, 7);
        let t = load_customers(&customers, 1, 1 << 12);
        assert_eq!(t.live_tuples(), 200);
        let rows = t.scan().unwrap();
        assert_eq!(rows[0].1[columns::CUSTKEY], Value::Int(1));
        assert_eq!(
            rows[0].1[columns::MKTSEGMENT],
            Value::Str(customers[0].mktsegment.to_string())
        );
    }

    #[test]
    fn schema_lines_up() {
        let s = customer_schema();
        assert_eq!(s.index_of("C_CUSTKEY"), Some(columns::CUSTKEY));
        assert_eq!(s.index_of("C_MKTSEGMENT"), Some(columns::MKTSEGMENT));
    }
}
