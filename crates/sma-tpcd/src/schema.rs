//! TPC-D relation schemas (LINEITEM, ORDERS) and column index constants.

use std::sync::Arc;

use sma_types::{Column, DataType, Schema, SchemaRef};

/// Column indexes of the LINEITEM relation, in schema order.
pub mod lineitem {
    /// L_ORDERKEY
    pub const ORDERKEY: usize = 0;
    /// L_PARTKEY
    pub const PARTKEY: usize = 1;
    /// L_SUPPKEY
    pub const SUPPKEY: usize = 2;
    /// L_LINENUMBER
    pub const LINENUMBER: usize = 3;
    /// L_QUANTITY
    pub const QUANTITY: usize = 4;
    /// L_EXTENDEDPRICE
    pub const EXTENDEDPRICE: usize = 5;
    /// L_DISCOUNT
    pub const DISCOUNT: usize = 6;
    /// L_TAX
    pub const TAX: usize = 7;
    /// L_RETURNFLAG
    pub const RETURNFLAG: usize = 8;
    /// L_LINESTATUS
    pub const LINESTATUS: usize = 9;
    /// L_SHIPDATE
    pub const SHIPDATE: usize = 10;
    /// L_COMMITDATE
    pub const COMMITDATE: usize = 11;
    /// L_RECEIPTDATE
    pub const RECEIPTDATE: usize = 12;
    /// L_SHIPINSTRUCT
    pub const SHIPINSTRUCT: usize = 13;
    /// L_SHIPMODE
    pub const SHIPMODE: usize = 14;
    /// L_COMMENT
    pub const COMMENT: usize = 15;
}

/// Column indexes of the ORDERS relation, in schema order.
pub mod orders {
    /// O_ORDERKEY
    pub const ORDERKEY: usize = 0;
    /// O_CUSTKEY
    pub const CUSTKEY: usize = 1;
    /// O_ORDERSTATUS
    pub const ORDERSTATUS: usize = 2;
    /// O_TOTALPRICE
    pub const TOTALPRICE: usize = 3;
    /// O_ORDERDATE
    pub const ORDERDATE: usize = 4;
    /// O_ORDERPRIORITY
    pub const ORDERPRIORITY: usize = 5;
    /// O_CLERK
    pub const CLERK: usize = 6;
    /// O_SHIPPRIORITY
    pub const SHIPPRIORITY: usize = 7;
    /// O_COMMENT
    pub const COMMENT: usize = 8;
}

/// The LINEITEM schema with all 16 TPC-D columns.
pub fn lineitem_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Column::new("L_ORDERKEY", DataType::Int),
        Column::new("L_PARTKEY", DataType::Int),
        Column::new("L_SUPPKEY", DataType::Int),
        Column::new("L_LINENUMBER", DataType::Int),
        Column::new("L_QUANTITY", DataType::Decimal),
        Column::new("L_EXTENDEDPRICE", DataType::Decimal),
        Column::new("L_DISCOUNT", DataType::Decimal),
        Column::new("L_TAX", DataType::Decimal),
        Column::new("L_RETURNFLAG", DataType::Char),
        Column::new("L_LINESTATUS", DataType::Char),
        Column::new("L_SHIPDATE", DataType::Date),
        Column::new("L_COMMITDATE", DataType::Date),
        Column::new("L_RECEIPTDATE", DataType::Date),
        Column::new("L_SHIPINSTRUCT", DataType::Str),
        Column::new("L_SHIPMODE", DataType::Str),
        Column::new("L_COMMENT", DataType::Str),
    ]))
}

/// The ORDERS schema with all 9 TPC-D columns.
pub fn orders_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Column::new("O_ORDERKEY", DataType::Int),
        Column::new("O_CUSTKEY", DataType::Int),
        Column::new("O_ORDERSTATUS", DataType::Char),
        Column::new("O_TOTALPRICE", DataType::Decimal),
        Column::new("O_ORDERDATE", DataType::Date),
        Column::new("O_ORDERPRIORITY", DataType::Str),
        Column::new("O_CLERK", DataType::Str),
        Column::new("O_SHIPPRIORITY", DataType::Int),
        Column::new("O_COMMENT", DataType::Str),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineitem_columns_line_up() {
        let s = lineitem_schema();
        assert_eq!(s.len(), 16);
        assert_eq!(s.index_of("L_SHIPDATE"), Some(lineitem::SHIPDATE));
        assert_eq!(s.index_of("L_RETURNFLAG"), Some(lineitem::RETURNFLAG));
        assert_eq!(s.index_of("L_LINESTATUS"), Some(lineitem::LINESTATUS));
        assert_eq!(s.index_of("L_EXTENDEDPRICE"), Some(lineitem::EXTENDEDPRICE));
        assert_eq!(s.index_of("L_COMMENT"), Some(lineitem::COMMENT));
        assert_eq!(s.column(lineitem::SHIPDATE).ty, DataType::Date);
        assert_eq!(s.column(lineitem::QUANTITY).ty, DataType::Decimal);
    }

    #[test]
    fn orders_columns_line_up() {
        let s = orders_schema();
        assert_eq!(s.len(), 9);
        assert_eq!(s.index_of("O_ORDERDATE"), Some(orders::ORDERDATE));
        assert_eq!(s.column(orders::ORDERDATE).ty, DataType::Date);
    }
}
