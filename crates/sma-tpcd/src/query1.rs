//! Reference (oracle) implementation of TPC-D Query 1.
//!
//! This is the straightforward full-scan evaluation used throughout the
//! test suite to validate SMA-accelerated plans: every optimized answer
//! must equal this one exactly.

use std::collections::BTreeMap;

use sma_storage::{Table, TableError};
use sma_types::{Date, Decimal, SchemaError};

/// Reports a LINEITEM column whose stored value does not carry the type
/// the oracle scan expects.
fn typed<T>(v: Option<T>, what: &str) -> Result<T, TableError> {
    v.ok_or_else(|| {
        TableError::Schema(SchemaError(format!("column {what} has an unexpected type")))
    })
}

use crate::generator::LineItem;
use crate::schema::lineitem as li;

/// One output group of Query 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Q1Row {
    /// L_RETURNFLAG
    pub returnflag: u8,
    /// L_LINESTATUS
    pub linestatus: u8,
    /// SUM(L_QUANTITY)
    pub sum_qty: Decimal,
    /// SUM(L_EXTENDEDPRICE)
    pub sum_base_price: Decimal,
    /// SUM(L_EXTENDEDPRICE * (1 - L_DISCOUNT))
    pub sum_disc_price: Decimal,
    /// SUM(L_EXTENDEDPRICE * (1 - L_DISCOUNT) * (1 + L_TAX))
    pub sum_charge: Decimal,
    /// AVG(L_QUANTITY)
    pub avg_qty: Decimal,
    /// AVG(L_EXTENDEDPRICE)
    pub avg_price: Decimal,
    /// AVG(L_DISCOUNT)
    pub avg_disc: Decimal,
    /// COUNT(*)
    pub count_order: i64,
}

#[derive(Default, Clone)]
struct Acc {
    sum_qty: Decimal,
    sum_base: Decimal,
    sum_disc_price: Decimal,
    sum_charge: Decimal,
    sum_disc: Decimal,
    count: i64,
}

impl Acc {
    fn add(&mut self, qty: Decimal, ext: Decimal, disc: Decimal, tax: Decimal) {
        let disc_price = ext.mul_round(Decimal::ONE - disc);
        let charge = disc_price.mul_round(Decimal::ONE + tax);
        self.sum_qty += qty;
        self.sum_base += ext;
        self.sum_disc_price += disc_price;
        self.sum_charge += charge;
        self.sum_disc += disc;
        self.count += 1;
    }

    fn finish(self, (returnflag, linestatus): (u8, u8)) -> Q1Row {
        Q1Row {
            returnflag,
            linestatus,
            sum_qty: self.sum_qty,
            sum_base_price: self.sum_base,
            sum_disc_price: self.sum_disc_price,
            sum_charge: self.sum_charge,
            avg_qty: self.sum_qty.div_count(self.count),
            avg_price: self.sum_base.div_count(self.count),
            avg_disc: self.sum_disc.div_count(self.count),
            count_order: self.count,
        }
    }
}

/// The Query 1 cutoff for a given `delta`:
/// `DATE '1998-12-01' - INTERVAL delta DAY`. TPC-D draws delta from
/// `[60, 120]`; the canonical validation value is 90.
pub fn q1_cutoff(delta: i32) -> Date {
    Date::from_ymd(1998, 12, 1)
        .expect("valid constant") // sma-lint: allow(P2-expect) -- compile-time constant date; cannot fail
        .add_days(-delta)
}

/// Evaluates Query 1 over typed line items (generator-level oracle).
pub fn q1_reference_items(items: &[LineItem], cutoff: Date) -> Vec<Q1Row> {
    let mut groups: BTreeMap<(u8, u8), Acc> = BTreeMap::new();
    for it in items {
        if it.shipdate <= cutoff {
            groups
                .entry((it.returnflag, it.linestatus))
                .or_default()
                .add(it.quantity, it.extendedprice, it.discount, it.tax);
        }
    }
    groups.into_iter().map(|(k, acc)| acc.finish(k)).collect()
}

/// Evaluates Query 1 by a full sequential scan of a LINEITEM table
/// (storage-level oracle).
pub fn q1_reference_table(table: &Table, cutoff: Date) -> Result<Vec<Q1Row>, TableError> {
    let mut groups: BTreeMap<(u8, u8), Acc> = BTreeMap::new();
    let mut page_rows = Vec::new();
    for page in 0..table.page_count() {
        page_rows.clear();
        table.scan_page_into(page, &mut page_rows)?;
        for (_, t) in &page_rows {
            let shipdate = typed(t[li::SHIPDATE].as_date(), "L_SHIPDATE")?;
            if shipdate <= cutoff {
                let key = (
                    typed(t[li::RETURNFLAG].as_char(), "L_RETURNFLAG")?,
                    typed(t[li::LINESTATUS].as_char(), "L_LINESTATUS")?,
                );
                groups.entry(key).or_default().add(
                    typed(t[li::QUANTITY].as_decimal(), "L_QUANTITY")?,
                    typed(t[li::EXTENDEDPRICE].as_decimal(), "L_EXTENDEDPRICE")?,
                    typed(t[li::DISCOUNT].as_decimal(), "L_DISCOUNT")?,
                    typed(t[li::TAX].as_decimal(), "L_TAX")?,
                );
            }
        }
    }
    Ok(groups.into_iter().map(|(k, acc)| acc.finish(k)).collect())
}

/// Selectivity of the Query 1 predicate over `items` — the paper quotes
/// 95–97 % for the benchmark's delta range.
pub fn q1_selectivity(items: &[LineItem], cutoff: Date) -> f64 {
    if items.is_empty() {
        return 0.0;
    }
    items.iter().filter(|it| it.shipdate <= cutoff).count() as f64 / items.len() as f64
}

/// Pretty-prints rows like the benchmark's answer set (for examples).
pub fn format_q1(rows: &[Q1Row]) -> String {
    let mut out = String::from(
        "FLAG STATUS    SUM_QTY    SUM_BASE_PRICE    SUM_DISC_PRICE        SUM_CHARGE  AVG_QTY  AVG_PRICE  AVG_DISC  COUNT\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{}    {}      {:>9} {:>17} {:>17} {:>17} {:>8} {:>10} {:>9} {:>6}\n",
            r.returnflag as char,
            r.linestatus as char,
            r.sum_qty,
            r.sum_base_price,
            r.sum_disc_price,
            r.sum_charge,
            r.avg_qty,
            r.avg_price,
            r.avg_disc,
            r.count_order
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::Clustering;
    use crate::generator::{generate, generate_lineitem_table, GenConfig};

    #[test]
    fn cutoff_matches_spec() {
        assert_eq!(q1_cutoff(90).to_string(), "1998-09-02");
        assert_eq!(q1_cutoff(0).to_string(), "1998-12-01");
    }

    #[test]
    fn selectivity_is_high_as_in_paper() {
        let (_, items) = generate(&GenConfig::tiny(Clustering::Uniform));
        let sel = q1_selectivity(&items, q1_cutoff(90));
        // Paper: "95%-97% of all tuples qualify". Our generator's order
        // window mirrors dbgen's, so the selectivity lands in that band.
        assert!(sel > 0.93 && sel < 0.99, "selectivity {sel}");
    }

    #[test]
    fn item_and_table_oracles_agree() {
        let cfg = GenConfig::tiny(Clustering::diagonal_default());
        let (_, items) = generate(&cfg);
        let table = generate_lineitem_table(&cfg);
        let a = q1_reference_items(&items, q1_cutoff(90));
        let b = q1_reference_table(&table, q1_cutoff(90)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 4, "Query 1 yields four groups (§2.3)");
    }

    #[test]
    fn groups_are_sorted_by_flag_then_status() {
        let cfg = GenConfig::tiny(Clustering::Uniform);
        let (_, items) = generate(&cfg);
        let rows = q1_reference_items(&items, q1_cutoff(90));
        let keys: Vec<(u8, u8)> = rows.iter().map(|r| (r.returnflag, r.linestatus)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn averages_consistent_with_sums() {
        let cfg = GenConfig::tiny(Clustering::Uniform);
        let (_, items) = generate(&cfg);
        for r in q1_reference_items(&items, q1_cutoff(90)) {
            assert_eq!(r.avg_qty, r.sum_qty.div_count(r.count_order));
            assert_eq!(r.avg_price, r.sum_base_price.div_count(r.count_order));
            assert!(r.count_order > 0);
        }
    }

    #[test]
    fn empty_input_yields_no_groups() {
        assert!(q1_reference_items(&[], q1_cutoff(90)).is_empty());
    }

    #[test]
    fn cutoff_before_window_filters_everything() {
        let (_, items) = generate(&GenConfig::tiny(Clustering::Uniform));
        let rows = q1_reference_items(&items, Date::from_ymd(1991, 1, 1).unwrap());
        assert!(rows.is_empty());
    }

    #[test]
    fn format_contains_all_groups() {
        let (_, items) = generate(&GenConfig::tiny(Clustering::Uniform));
        let rows = q1_reference_items(&items, q1_cutoff(90));
        let s = format_q1(&rows);
        assert_eq!(s.lines().count(), rows.len() + 1);
    }
}
