//! Reference implementation of TPC-D Query 6 (forecasting revenue change).
//!
//! ```sql
//! SELECT SUM(L_EXTENDEDPRICE * L_DISCOUNT) AS REVENUE
//! FROM LINEITEM
//! WHERE L_SHIPDATE >= DATE '[date]'
//!   AND L_SHIPDATE <  DATE '[date]' + INTERVAL '1' YEAR
//!   AND L_DISCOUNT BETWEEN [discount] - 0.01 AND [discount] + 0.01
//!   AND L_QUANTITY < [quantity]
//! ```
//!
//! Where Query 1 shows SMAs accelerating a *low*-selectivity aggregate,
//! Query 6 shows the conjunctive case of §3.1: three attributes restricted
//! at once, each able to contribute disqualification evidence. On
//! time-clustered data, the one-year ship-date window disqualifies ~6/7 of
//! the buckets outright.

use sma_storage::{Table, TableError};
use sma_types::{Date, Decimal, SchemaError};

use crate::generator::LineItem;
use crate::schema::lineitem as li;

/// Query 6 substitution parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Q6Params {
    /// First ship date included (TPC-D: Jan 1 of 1993–1997).
    pub date: Date,
    /// Central discount (TPC-D: 0.02–0.09); the band is ±0.01.
    pub discount: Decimal,
    /// Exclusive quantity bound (TPC-D: 24 or 25).
    pub quantity: i64,
}

impl Default for Q6Params {
    fn default() -> Q6Params {
        // The TPC-D validation parameters.
        Q6Params {
            // sma-lint: allow(P2-expect) -- compile-time constant date; cannot fail
            date: Date::from_ymd(1994, 1, 1).expect("valid constant"),
            // sma-lint: allow(P2-expect) -- compile-time constant rate; cannot fail
            discount: Decimal::parse("0.06").expect("valid constant"),
            quantity: 24,
        }
    }
}

impl Q6Params {
    /// Exclusive upper ship-date bound: `date + 1 year`.
    pub fn date_hi(&self) -> Date {
        let (y, m, d) = self.date.ymd();
        Date::from_ymd(y + 1, m, d).unwrap_or_else(|_| self.date.add_days(365))
    }

    /// Inclusive lower discount bound.
    pub fn discount_lo(&self) -> Decimal {
        self.discount - Decimal::from_cents(1)
    }

    /// Inclusive upper discount bound.
    pub fn discount_hi(&self) -> Decimal {
        self.discount + Decimal::from_cents(1)
    }

    /// Whether a line item satisfies the Query 6 predicate.
    pub fn matches(&self, it: &LineItem) -> bool {
        it.shipdate >= self.date
            && it.shipdate < self.date_hi()
            && it.discount >= self.discount_lo()
            && it.discount <= self.discount_hi()
            && it.quantity < Decimal::from_int(self.quantity)
    }
}

/// Evaluates Query 6 over typed line items (generator-level oracle).
pub fn q6_reference_items(items: &[LineItem], p: &Q6Params) -> Decimal {
    items
        .iter()
        .filter(|it| p.matches(it))
        .map(|it| it.extendedprice.mul_round(it.discount))
        .sum()
}

/// Evaluates Query 6 by a full sequential scan of a LINEITEM table.
pub fn q6_reference_table(table: &Table, p: &Q6Params) -> Result<Decimal, TableError> {
    let mut revenue = Decimal::ZERO;
    let mut rows = Vec::new();
    let qty_bound = Decimal::from_int(p.quantity);
    for page in 0..table.page_count() {
        rows.clear();
        table.scan_page_into(page, &mut rows)?;
        for (_, t) in &rows {
            let typed = |v: Option<Decimal>, what: &str| -> Result<Decimal, TableError> {
                v.ok_or_else(|| {
                    TableError::Schema(SchemaError(format!("column {what} has an unexpected type")))
                })
            };
            let ship = t[li::SHIPDATE].as_date().ok_or_else(|| {
                TableError::Schema(SchemaError(
                    "column L_SHIPDATE has an unexpected type".into(),
                ))
            })?;
            let disc = typed(t[li::DISCOUNT].as_decimal(), "L_DISCOUNT")?;
            let qty = typed(t[li::QUANTITY].as_decimal(), "L_QUANTITY")?;
            if ship >= p.date
                && ship < p.date_hi()
                && disc >= p.discount_lo()
                && disc <= p.discount_hi()
                && qty < qty_bound
            {
                let ext = typed(t[li::EXTENDEDPRICE].as_decimal(), "L_EXTENDEDPRICE")?;
                revenue += ext.mul_round(disc);
            }
        }
    }
    Ok(revenue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::Clustering;
    use crate::generator::{generate, generate_lineitem_table, GenConfig};

    #[test]
    fn default_params_match_spec() {
        let p = Q6Params::default();
        assert_eq!(p.date.to_string(), "1994-01-01");
        assert_eq!(p.date_hi().to_string(), "1995-01-01");
        assert_eq!(p.discount_lo().to_string(), "0.05");
        assert_eq!(p.discount_hi().to_string(), "0.07");
    }

    #[test]
    fn item_and_table_oracles_agree() {
        let cfg = GenConfig::tiny(Clustering::diagonal_default());
        let (_, items) = generate(&cfg);
        let table = generate_lineitem_table(&cfg);
        let p = Q6Params::default();
        assert_eq!(
            q6_reference_items(&items, &p),
            q6_reference_table(&table, &p).unwrap()
        );
    }

    #[test]
    fn selectivity_is_low() {
        // Q6 keeps roughly 1/7 (year) × ~0.27 (3 of 11 discount values)
        // × ~0.47 (qty < 24 of 1..=50) ≈ 2 % of tuples.
        let (_, items) = generate(&GenConfig::tiny(Clustering::Uniform));
        let p = Q6Params::default();
        let kept = items.iter().filter(|it| p.matches(it)).count();
        let frac = kept as f64 / items.len() as f64;
        assert!(frac > 0.002 && frac < 0.08, "selectivity {frac}");
    }

    #[test]
    fn revenue_is_positive_and_param_sensitive() {
        let (_, items) = generate(&GenConfig::tiny(Clustering::Uniform));
        let base = q6_reference_items(&items, &Q6Params::default());
        assert!(base > Decimal::ZERO);
        let wider = q6_reference_items(
            &items,
            &Q6Params {
                quantity: 50,
                ..Q6Params::default()
            },
        );
        assert!(wider > base, "looser quantity bound keeps more revenue");
        let none = q6_reference_items(
            &items,
            &Q6Params {
                date: Date::from_ymd(2005, 1, 1).unwrap(),
                ..Q6Params::default()
            },
        );
        assert_eq!(none, Decimal::ZERO);
    }

    #[test]
    fn leap_day_date_hi() {
        let p = Q6Params {
            date: Date::from_ymd(1996, 2, 29).unwrap(),
            ..Q6Params::default()
        };
        // 1997 has no Feb 29; fall back to +365 days.
        assert_eq!(p.date_hi().to_string(), "1997-02-28");
    }
}
