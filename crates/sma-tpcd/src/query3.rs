//! Reference implementation of TPC-D Query 3 (shipping priority).
//!
//! ```sql
//! SELECT L_ORDERKEY, SUM(L_EXTENDEDPRICE*(1-L_DISCOUNT)) AS REVENUE,
//!        O_ORDERDATE, O_SHIPPRIORITY
//! FROM CUSTOMER, ORDERS, LINEITEM
//! WHERE C_MKTSEGMENT = '[segment]'
//!   AND C_CUSTKEY = O_CUSTKEY
//!   AND L_ORDERKEY = O_ORDERKEY
//!   AND O_ORDERDATE < DATE '[date]'
//!   AND L_SHIPDATE  > DATE '[date]'
//! GROUP BY L_ORDERKEY, O_ORDERDATE, O_SHIPPRIORITY
//! ORDER BY REVENUE DESC, O_ORDERDATE
//! ```
//!
//! (TPC-D returns the top 10 rows.) The two date predicates on different
//! relations are both SMA-gradable; the joins are key equijoins.

use std::collections::HashMap;

use sma_types::{Date, Decimal};

use crate::customer::Customer;
use crate::generator::{LineItem, Order};

/// Query 3 substitution parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Q3Params {
    /// The market segment (TPC-D: one of the five).
    pub segment: String,
    /// The pivot date (TPC-D: a day in March 1995).
    pub date: Date,
}

impl Default for Q3Params {
    fn default() -> Q3Params {
        // The TPC-D validation parameters.
        Q3Params {
            segment: "BUILDING".to_string(),
            // sma-lint: allow(P2-expect) -- compile-time constant date; cannot fail
            date: Date::from_ymd(1995, 3, 15).expect("valid constant"),
        }
    }
}

/// One output row of Query 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Q3Row {
    /// L_ORDERKEY
    pub orderkey: i64,
    /// SUM(L_EXTENDEDPRICE * (1 - L_DISCOUNT))
    pub revenue: Decimal,
    /// O_ORDERDATE
    pub orderdate: Date,
    /// O_SHIPPRIORITY
    pub shippriority: i64,
}

/// Evaluates Query 3 over typed rows (the oracle), returning the top
/// `limit` rows by revenue desc, order date asc.
pub fn q3_reference(
    customers: &[Customer],
    orders: &[Order],
    items: &[LineItem],
    p: &Q3Params,
    limit: usize,
) -> Vec<Q3Row> {
    let seg_customers: std::collections::HashSet<i64> = customers
        .iter()
        .filter(|c| c.mktsegment == p.segment)
        .map(|c| c.custkey)
        .collect();
    let open_orders: HashMap<i64, (&Order, Date)> = orders
        .iter()
        .filter(|o| o.orderdate < p.date && seg_customers.contains(&o.custkey))
        .map(|o| (o.orderkey, (o, o.orderdate)))
        .collect();
    let mut revenue: HashMap<i64, Decimal> = HashMap::new();
    for it in items {
        if it.shipdate > p.date && open_orders.contains_key(&it.orderkey) {
            let rev = it.extendedprice.mul_round(Decimal::ONE - it.discount);
            *revenue.entry(it.orderkey).or_insert(Decimal::ZERO) += rev;
        }
    }
    let mut rows: Vec<Q3Row> = revenue
        .into_iter()
        .map(|(orderkey, rev)| {
            let (o, orderdate) = open_orders[&orderkey];
            Q3Row {
                orderkey,
                revenue: rev,
                orderdate,
                shippriority: o.shippriority,
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.revenue
            .cmp(&a.revenue)
            .then(a.orderdate.cmp(&b.orderdate))
            .then(a.orderkey.cmp(&b.orderkey))
    });
    rows.truncate(limit);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::Clustering;
    use crate::customer::generate_customers;
    use crate::generator::{generate, GenConfig};

    fn data() -> (Vec<Customer>, Vec<Order>, Vec<LineItem>) {
        let cfg = GenConfig {
            orders: 1500,
            ..GenConfig::tiny(Clustering::Uniform)
        };
        let (orders, items) = generate(&cfg);
        // dbgen's 10:1 order-to-customer ratio.
        let customers = generate_customers(cfg.orders / 10, cfg.seed);
        (customers, orders, items)
    }

    #[test]
    fn finds_top_orders_sorted_by_revenue() {
        let (c, o, l) = data();
        let rows = q3_reference(&c, &o, &l, &Q3Params::default(), 10);
        assert!(!rows.is_empty(), "validation parameters match something");
        assert!(rows.len() <= 10);
        for w in rows.windows(2) {
            assert!(
                w[0].revenue > w[1].revenue
                    || (w[0].revenue == w[1].revenue && w[0].orderdate <= w[1].orderdate),
                "sorted by revenue desc, date asc"
            );
        }
        for r in &rows {
            assert!(r.orderdate < Q3Params::default().date);
            assert!(r.revenue > Decimal::ZERO);
        }
    }

    #[test]
    fn segment_restricts() {
        let (c, o, l) = data();
        let all: usize = crate::customer::MKTSEGMENTS
            .iter()
            .map(|seg| {
                q3_reference(
                    &c,
                    &o,
                    &l,
                    &Q3Params {
                        segment: seg.to_string(),
                        ..Q3Params::default()
                    },
                    usize::MAX,
                )
                .len()
            })
            .sum();
        let building = q3_reference(&c, &o, &l, &Q3Params::default(), usize::MAX).len();
        assert!(building < all, "one segment is a strict subset of all five");
        let none = q3_reference(
            &c,
            &o,
            &l,
            &Q3Params {
                segment: "NOPE".into(),
                ..Q3Params::default()
            },
            usize::MAX,
        );
        assert!(none.is_empty());
    }

    #[test]
    fn date_outside_window_yields_nothing() {
        let (c, o, l) = data();
        let early = Q3Params {
            date: Date::from_ymd(1990, 1, 1).unwrap(),
            ..Q3Params::default()
        };
        assert!(q3_reference(&c, &o, &l, &early, 10).is_empty());
    }
}
