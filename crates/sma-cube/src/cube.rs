//! A working materialized data cube for Query 1 (one date dimension).
//!
//! "Query processing against a data cube boils down to a very efficient
//! lookup" (§1) — this module makes the comparison concrete: a dense cube
//! over `(L_SHIPDATE, L_RETURNFLAG, L_LINESTATUS)` with per-day aggregate
//! entries and prefix sums, so any `L_SHIPDATE <= cutoff` Query 1 instance
//! answers in O(groups). The flip side the paper emphasizes — rigidity
//! (a predicate on any *other* attribute defeats it) and the exponential
//! growth with more date dimensions ([`crate::model`]) — is what SMAs fix.

use std::collections::BTreeMap;

use sma_storage::{Table, TableError};
use sma_types::{Date, Decimal, Schema, SchemaError};

/// Resolves a required LINEITEM column, as a schema error rather than a
/// panic, so cube construction over an arbitrary table stays total.
fn col(schema: &Schema, name: &str) -> Result<usize, TableError> {
    schema.index_of(name).ok_or_else(|| {
        TableError::Schema(SchemaError(format!(
            "cube needs a LINEITEM-shaped table; column {name} is missing"
        )))
    })
}

/// Error for a value whose runtime type contradicts the schema column —
/// unreachable for tuples decoded against the same schema, but reported
/// rather than panicking.
fn mistyped(name: &str) -> TableError {
    TableError::Schema(SchemaError(format!("column {name} has an unexpected type")))
}

/// One cube cell: the six Query 1 base aggregates (averages derive from
/// sums ÷ count at lookup time, as in §3.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CubeCell {
    /// SUM(L_QUANTITY), in cents.
    pub sum_qty: i64,
    /// SUM(L_EXTENDEDPRICE), in cents.
    pub sum_base: i64,
    /// SUM(L_EXTENDEDPRICE*(1-L_DISCOUNT)), in cents.
    pub sum_disc_price: i64,
    /// SUM(…*(1+L_TAX)), in cents.
    pub sum_charge: i64,
    /// SUM(L_DISCOUNT), in cents.
    pub sum_disc: i64,
    /// COUNT(*).
    pub count: i64,
}

impl CubeCell {
    fn add(&mut self, other: &CubeCell) {
        self.sum_qty += other.sum_qty;
        self.sum_base += other.sum_base;
        self.sum_disc_price += other.sum_disc_price;
        self.sum_charge += other.sum_charge;
        self.sum_disc += other.sum_disc;
        self.count += other.count;
    }
}

/// Dense one-date-dimension data cube for Query 1, with prefix sums.
pub struct Query1Cube {
    /// First day of the date domain.
    base_day: i32,
    /// `prefix[g][d]` = aggregates of group `g` over days `base..base+d`.
    prefix: BTreeMap<(u8, u8), Vec<CubeCell>>,
    /// Days in the domain.
    days: usize,
}

impl Query1Cube {
    /// Builds the cube from a LINEITEM-shaped table over the date domain
    /// `[from, to]` (TPC-D: 1992-01-01 … 1998-12-31, 2556+ days).
    pub fn build(table: &Table, from: Date, to: Date) -> Result<Query1Cube, TableError> {
        let schema = table.schema();
        let ship = col(schema, "L_SHIPDATE")?;
        let flag = col(schema, "L_RETURNFLAG")?;
        let stat = col(schema, "L_LINESTATUS")?;
        let qty = col(schema, "L_QUANTITY")?;
        let ext = col(schema, "L_EXTENDEDPRICE")?;
        let dis = col(schema, "L_DISCOUNT")?;
        let tax = col(schema, "L_TAX")?;
        let base_day = from.days();
        let days = (to.days() - base_day + 1).max(0) as usize;
        let mut per_day: BTreeMap<(u8, u8), Vec<CubeCell>> = BTreeMap::new();
        let mut rows = Vec::new();
        for page in 0..table.page_count() {
            rows.clear();
            table.scan_page_into(page, &mut rows)?;
            for (_, t) in &rows {
                let d = t[ship].as_date().ok_or_else(|| mistyped("L_SHIPDATE"))?;
                let idx = (d.days() - base_day).clamp(0, days as i32 - 1) as usize;
                let key = (
                    t[flag].as_char().ok_or_else(|| mistyped("L_RETURNFLAG"))?,
                    t[stat].as_char().ok_or_else(|| mistyped("L_LINESTATUS"))?,
                );
                let e = t[ext]
                    .as_decimal()
                    .ok_or_else(|| mistyped("L_EXTENDEDPRICE"))?;
                let disc = t[dis].as_decimal().ok_or_else(|| mistyped("L_DISCOUNT"))?;
                let tx = t[tax].as_decimal().ok_or_else(|| mistyped("L_TAX"))?;
                let disc_price = e.mul_round(Decimal::ONE - disc);
                let charge = disc_price.mul_round(Decimal::ONE + tx);
                let cell = per_day
                    .entry(key)
                    .or_insert_with(|| vec![CubeCell::default(); days]);
                let c = &mut cell[idx];
                c.sum_qty += t[qty]
                    .as_decimal()
                    .ok_or_else(|| mistyped("L_QUANTITY"))?
                    .cents();
                c.sum_base += e.cents();
                c.sum_disc_price += disc_price.cents();
                c.sum_charge += charge.cents();
                c.sum_disc += disc.cents();
                c.count += 1;
            }
        }
        // Prefix sums per group.
        let mut prefix = per_day;
        for cells in prefix.values_mut() {
            for i in 1..cells.len() {
                let prev = cells[i - 1];
                cells[i].add(&prev);
            }
        }
        Ok(Query1Cube {
            base_day,
            prefix,
            days,
        })
    }

    /// Answers Query 1 for `shipdate <= cutoff` by a per-group lookup.
    /// Output: `(flag, status, CubeCell)` sorted by the flags — averages
    /// derive from the cell. Returns nothing when the cutoff precedes the
    /// domain.
    pub fn answer(&self, cutoff: Date) -> Vec<(u8, u8, CubeCell)> {
        let idx = cutoff.days() - self.base_day;
        if idx < 0 {
            return Vec::new();
        }
        let idx = (idx as usize).min(self.days.saturating_sub(1));
        self.prefix
            .iter()
            .filter_map(|(&(f, s), cells)| {
                let cell = cells[idx];
                (cell.count > 0).then_some((f, s, cell))
            })
            .collect()
    }

    /// Size in bytes of the dense cube (cells × 6 aggregates × 8 bytes) —
    /// the honest price of the lookup speed.
    pub fn size_bytes(&self) -> usize {
        self.prefix.len() * self.days * 6 * 8
    }

    /// Groups materialized.
    pub fn group_count(&self) -> usize {
        self.prefix.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sma_tpcd::{
        generate_lineitem_table, q1_cutoff, q1_reference_table, start_date, Clustering, GenConfig,
    };

    /// Regression: building over a table that is not LINEITEM-shaped used
    /// to panic on a missing-column `expect`; it must report a schema error.
    #[test]
    fn wrong_schema_is_an_error_not_a_panic() {
        use sma_types::{Column, DataType, Schema, Value};
        use std::sync::Arc;
        let schema = Arc::new(Schema::new(vec![Column::new("X", DataType::Int)]));
        let mut t = Table::in_memory("not_lineitem", schema, 1);
        t.append(&vec![Value::Int(1)]).unwrap();
        let err = Query1Cube::build(&t, start_date(), start_date()).map(|_| ());
        assert!(
            matches!(err, Err(sma_storage::TableError::Schema(_))),
            "{err:?}"
        );
    }

    fn cube(table: &Table) -> Query1Cube {
        Query1Cube::build(table, start_date(), Date::from_ymd(1998, 12, 31).unwrap()).unwrap()
    }

    #[test]
    fn cube_lookup_matches_oracle() {
        let table = generate_lineitem_table(&GenConfig::tiny(Clustering::Uniform));
        let c = cube(&table);
        for delta in [60, 90, 120] {
            let cutoff = q1_cutoff(delta);
            let oracle = q1_reference_table(&table, cutoff).unwrap();
            let fast = c.answer(cutoff);
            assert_eq!(fast.len(), oracle.len(), "delta {delta}");
            for (row, o) in fast.iter().zip(&oracle) {
                assert_eq!(row.0, o.returnflag);
                assert_eq!(row.1, o.linestatus);
                assert_eq!(row.2.count, o.count_order);
                assert_eq!(row.2.sum_qty, o.sum_qty.cents());
                assert_eq!(row.2.sum_base, o.sum_base_price.cents());
                assert_eq!(row.2.sum_disc_price, o.sum_disc_price.cents());
                assert_eq!(row.2.sum_charge, o.sum_charge.cents());
            }
        }
    }

    #[test]
    fn cutoff_outside_domain() {
        let table = generate_lineitem_table(&GenConfig::tiny(Clustering::Uniform));
        let c = cube(&table);
        assert!(c.answer(Date::from_ymd(1990, 1, 1).unwrap()).is_empty());
        // Beyond the domain: everything (clamped to the last day).
        let all = c.answer(Date::from_ymd(2005, 1, 1).unwrap());
        let oracle = q1_reference_table(&table, Date::from_ymd(2005, 1, 1).unwrap()).unwrap();
        assert_eq!(all.len(), oracle.len());
    }

    #[test]
    fn size_is_dense_in_the_domain() {
        let table = generate_lineitem_table(&GenConfig::tiny(Clustering::Uniform));
        let c = cube(&table);
        // 4 groups × 2557 days × 48 B — the model's 1-dim figure scaled to
        // the groups actually present.
        assert_eq!(c.group_count(), 4);
        assert_eq!(c.size_bytes(), 4 * 2557 * 48);
    }
}
