//! A from-scratch B+ tree — the traditional-index comparator of §2.4.
//!
//! The paper measures a B+ tree on `L_SHIPDATE`: ~230 MB at SF 1 (vs.
//! 33.8 MB for all eight Query 1 SMAs), creation "far beyond" the
//! 15 minutes all SMAs need — and it is useless for Query 1, whose 95 %+
//! selectivity turns index access into random I/O over nearly every page.
//!
//! Secondary-index semantics: duplicate keys allowed (a TPC-D ship date
//! recurs thousands of times), values are opaque (typically row ids).

use std::fmt::Debug;

/// Arena-allocated B+ tree with linked leaves.
pub struct BPlusTree<K: Ord + Clone, V: Clone> {
    nodes: Vec<Node<K, V>>,
    root: usize,
    /// Maximum keys per node; nodes split when they exceed it.
    order: usize,
    len: usize,
}

enum Node<K, V> {
    Leaf {
        keys: Vec<K>,
        vals: Vec<V>,
        next: Option<usize>,
    },
    Internal {
        /// `keys[i]` separates `children[i]` (< key) from `children[i+1]` (≥ key).
        keys: Vec<K>,
        children: Vec<usize>,
    },
}

impl<K: Ord + Clone + Debug, V: Clone> BPlusTree<K, V> {
    /// Creates an empty tree with at most `order` keys per node.
    pub fn new(order: usize) -> BPlusTree<K, V> {
        assert!(order >= 3, "order must be at least 3");
        BPlusTree {
            nodes: vec![Node::Leaf {
                keys: Vec::new(),
                vals: Vec::new(),
                next: None,
            }],
            root: 0,
            order,
            len: 0,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of nodes — the tree's page count when one node fills a page.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Tree height (1 for a lone leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut n = self.root;
        while let Node::Internal { children, .. } = &self.nodes[n] {
            n = children[0];
            h += 1;
        }
        h
    }

    /// Inserts `key → val`; duplicates are kept.
    pub fn insert(&mut self, key: K, val: V) {
        if let Some((sep, right)) = self.insert_into(self.root, key, val) {
            let new_root = Node::Internal {
                keys: vec![sep],
                children: vec![self.root, right],
            };
            self.nodes.push(new_root);
            self.root = self.nodes.len() - 1;
        }
        self.len += 1;
    }

    fn insert_into(&mut self, node: usize, key: K, val: V) -> Option<(K, usize)> {
        match &mut self.nodes[node] {
            Node::Leaf { keys, vals, .. } => {
                let pos = keys.partition_point(|k| k <= &key);
                keys.insert(pos, key);
                vals.insert(pos, val);
                if keys.len() > self.order {
                    return Some(self.split_leaf(node));
                }
                None
            }
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| k <= &key);
                let child = children[idx];
                if let Some((sep, right)) = self.insert_into(child, key, val) {
                    let Node::Internal { keys, children } = &mut self.nodes[node] else {
                        unreachable!("node kind is stable");
                    };
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                    if keys.len() > self.order {
                        return Some(self.split_internal(node));
                    }
                }
                None
            }
        }
    }

    fn split_leaf(&mut self, node: usize) -> (K, usize) {
        let new_idx = self.nodes.len();
        let Node::Leaf { keys, vals, next } = &mut self.nodes[node] else {
            unreachable!("split_leaf on a leaf");
        };
        let mid = keys.len() / 2;
        let right_keys = keys.split_off(mid);
        let right_vals = vals.split_off(mid);
        let sep = right_keys[0].clone();
        let right = Node::Leaf {
            keys: right_keys,
            vals: right_vals,
            next: *next,
        };
        *next = Some(new_idx);
        self.nodes.push(right);
        (sep, new_idx)
    }

    fn split_internal(&mut self, node: usize) -> (K, usize) {
        let new_idx = self.nodes.len();
        let Node::Internal { keys, children } = &mut self.nodes[node] else {
            unreachable!("split_internal on an internal node");
        };
        let mid = keys.len() / 2;
        let sep = keys[mid].clone();
        let right_keys = keys.split_off(mid + 1);
        keys.pop(); // the separator moves up
        let right_children = children.split_off(mid + 1);
        self.nodes.push(Node::Internal {
            keys: right_keys,
            children: right_children,
        });
        (sep, new_idx)
    }

    /// First value stored under `key`, if any.
    pub fn get(&self, key: &K) -> Option<&V> {
        // Equal keys may span leaves; start at the first candidate leaf.
        let mut n = self.first_leaf_for(key);
        loop {
            let Node::Leaf { keys, vals, next } = &self.nodes[n] else {
                unreachable!("leaf chain holds leaves");
            };
            let pos = keys.partition_point(|k| k < key);
            if pos < keys.len() && &keys[pos] == key {
                return Some(&vals[pos]);
            }
            if pos < keys.len() {
                return None;
            }
            match next {
                Some(link) => n = *link,
                None => return None,
            }
        }
    }

    /// Leftmost leaf that could contain `key` (descend by `<`, not `<=`).
    fn first_leaf_for(&self, key: &K) -> usize {
        let mut n = self.root;
        loop {
            match &self.nodes[n] {
                Node::Leaf { .. } => return n,
                Node::Internal { keys, children } => {
                    n = children[keys.partition_point(|k| k < key)];
                }
            }
        }
    }

    /// All `(key, value)` pairs with `lo <= key <= hi`, in key order.
    pub fn range(&self, lo: &K, hi: &K) -> Vec<(K, V)> {
        let mut out = Vec::new();
        if lo > hi || self.len == 0 {
            return out;
        }
        let mut n = self.first_leaf_for(lo);
        loop {
            let Node::Leaf { keys, vals, next } = &self.nodes[n] else {
                unreachable!("leaf chain holds leaves");
            };
            for (k, v) in keys.iter().zip(vals) {
                if k < lo {
                    continue;
                }
                if k > hi {
                    return out;
                }
                out.push((k.clone(), v.clone()));
            }
            match next {
                Some(nx) => n = *nx,
                None => return out,
            }
        }
    }

    /// Bulk-loads from key-sorted pairs (panics if unsorted) — the fair
    /// comparison against SMA bulkloading.
    pub fn bulk_load(order: usize, pairs: Vec<(K, V)>) -> BPlusTree<K, V> {
        assert!(order >= 3, "order must be at least 3");
        assert!(
            pairs.windows(2).all(|w| w[0].0 <= w[1].0),
            "bulk_load requires key-sorted input"
        );
        let mut tree = BPlusTree::new(order);
        if pairs.is_empty() {
            return tree;
        }
        tree.len = pairs.len();
        tree.nodes.clear();
        // Fill leaves to ~2/3 so subsequent inserts don't cascade splits.
        let per_leaf = (order * 2 / 3).max(2).min(order);
        let mut level: Vec<(K, usize)> = Vec::new(); // (lowest key, node)
        let mut iter = pairs.into_iter().peekable();
        let mut prev_leaf: Option<usize> = None;
        while iter.peek().is_some() {
            let mut keys = Vec::with_capacity(per_leaf);
            let mut vals = Vec::with_capacity(per_leaf);
            for _ in 0..per_leaf {
                match iter.next() {
                    Some((k, v)) => {
                        keys.push(k);
                        vals.push(v);
                    }
                    None => break,
                }
            }
            let idx = tree.nodes.len();
            level.push((keys[0].clone(), idx));
            tree.nodes.push(Node::Leaf {
                keys,
                vals,
                next: None,
            });
            if let Some(p) = prev_leaf {
                let Node::Leaf { next, .. } = &mut tree.nodes[p] else {
                    unreachable!("previous node is a leaf");
                };
                *next = Some(idx);
            }
            prev_leaf = Some(idx);
        }
        // Build internal levels bottom-up. Chunk sizes are adjusted so no
        // node ends up with a single child (which would also give its
        // subtree a shorter path and break uniform leaf depth).
        let per_node = per_leaf + 1;
        while level.len() > 1 {
            let mut upper: Vec<(K, usize)> = Vec::new();
            let n = level.len();
            let mut i = 0;
            while i < n {
                let mut take = per_node.min(n - i);
                if n - i - take == 1 {
                    take -= 1; // leave two for the final chunk
                }
                let chunk = &level[i..i + take];
                debug_assert!(chunk.len() >= 2);
                let keys: Vec<K> = chunk[1..].iter().map(|(k, _)| k.clone()).collect();
                let children: Vec<usize> = chunk.iter().map(|&(_, c)| c).collect();
                let idx = tree.nodes.len();
                tree.nodes.push(Node::Internal { keys, children });
                upper.push((chunk[0].0.clone(), idx));
                i += take;
            }
            level = upper;
        }
        tree.root = level[0].1;
        tree
    }

    /// Checks the structural invariants (tests call this after mutations):
    /// sorted keys everywhere, children in range, uniform leaf depth, and
    /// the leaf chain enumerating exactly `len` entries in order.
    pub fn check_invariants(&self) {
        let mut leaf_depths = Vec::new();
        self.check_node(self.root, None, None, 1, &mut leaf_depths);
        assert!(
            leaf_depths.windows(2).all(|w| w[0] == w[1]),
            "leaves at unequal depths: {leaf_depths:?}"
        );
        // Walk the chain from the leftmost leaf.
        let mut n = self.root;
        while let Node::Internal { children, .. } = &self.nodes[n] {
            n = children[0];
        }
        let mut seen = 0;
        let mut last: Option<K> = None;
        loop {
            let Node::Leaf { keys, next, .. } = &self.nodes[n] else {
                unreachable!("chain holds leaves");
            };
            for k in keys {
                if let Some(l) = &last {
                    assert!(l <= k, "leaf chain out of order");
                }
                last = Some(k.clone());
                seen += 1;
            }
            match next {
                Some(nx) => n = *nx,
                None => break,
            }
        }
        assert_eq!(seen, self.len, "leaf chain length mismatch");
    }

    fn check_node(
        &self,
        n: usize,
        lo: Option<&K>,
        hi: Option<&K>,
        depth: usize,
        leaf_depths: &mut Vec<usize>,
    ) {
        match &self.nodes[n] {
            Node::Leaf { keys, vals, .. } => {
                assert_eq!(keys.len(), vals.len());
                assert!(keys.windows(2).all(|w| w[0] <= w[1]), "unsorted leaf");
                for k in keys {
                    if let Some(lo) = lo {
                        assert!(k >= lo, "leaf key below separator");
                    }
                    if let Some(hi) = hi {
                        assert!(k <= hi, "leaf key above separator");
                    }
                }
                leaf_depths.push(depth);
            }
            Node::Internal { keys, children } => {
                assert_eq!(children.len(), keys.len() + 1, "fanout mismatch");
                assert!(keys.windows(2).all(|w| w[0] <= w[1]), "unsorted internal");
                for (i, &c) in children.iter().enumerate() {
                    let child_lo = if i == 0 { lo } else { Some(&keys[i - 1]) };
                    let child_hi = if i == keys.len() { hi } else { Some(&keys[i]) };
                    self.check_node(c, child_lo, child_hi, depth + 1, leaf_depths);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sma_types::StdRng;

    #[test]
    fn insert_and_get() {
        let mut t = BPlusTree::new(4);
        for k in [5, 1, 9, 3, 7, 2, 8, 4, 6, 0] {
            t.insert(k, k * 10);
        }
        t.check_invariants();
        for k in 0..10 {
            assert_eq!(t.get(&k), Some(&(k * 10)));
        }
        assert_eq!(t.get(&42), None);
        assert_eq!(t.len(), 10);
        assert!(t.height() > 1, "order 4 with 10 keys must have split");
    }

    #[test]
    fn duplicates_are_kept() {
        let mut t = BPlusTree::new(4);
        for i in 0..20 {
            t.insert(7, i);
        }
        t.insert(3, 100);
        t.insert(9, 200);
        t.check_invariants();
        assert_eq!(t.len(), 22);
        let sevens = t.range(&7, &7);
        assert_eq!(sevens.len(), 20);
        assert!(t.get(&7).is_some());
    }

    #[test]
    fn range_scan() {
        let mut t = BPlusTree::new(4);
        for k in 0..100 {
            t.insert(k, k);
        }
        let r = t.range(&10, &20);
        assert_eq!(r.len(), 11);
        assert_eq!(r[0], (10, 10));
        assert_eq!(r[10], (20, 20));
        assert!(t.range(&50, &40).is_empty());
        assert_eq!(t.range(&-5, &1000).len(), 100);
    }

    #[test]
    fn empty_tree() {
        let t: BPlusTree<i64, ()> = BPlusTree::new(4);
        assert!(t.is_empty());
        assert_eq!(t.get(&1), None);
        assert!(t.range(&0, &10).is_empty());
        t.check_invariants();
    }

    #[test]
    fn bulk_load_matches_inserts() {
        let pairs: Vec<(i64, i64)> = (0..500).map(|k| (k, k * 2)).collect();
        let loaded = BPlusTree::bulk_load(16, pairs.clone());
        loaded.check_invariants();
        let mut inserted = BPlusTree::new(16);
        for (k, v) in pairs {
            inserted.insert(k, v);
        }
        inserted.check_invariants();
        assert_eq!(loaded.len(), inserted.len());
        for k in 0..500i64 {
            assert_eq!(loaded.get(&k), inserted.get(&k));
        }
        // Bulk loading packs tighter than random inserts.
        assert!(loaded.node_count() <= inserted.node_count());
    }

    #[test]
    fn bulk_load_then_insert() {
        let pairs: Vec<(i64, i64)> = (0..100).map(|k| (k * 2, k)).collect();
        let mut t = BPlusTree::bulk_load(8, pairs);
        for k in 0..100 {
            t.insert(k * 2 + 1, -k);
        }
        t.check_invariants();
        assert_eq!(t.len(), 200);
        assert_eq!(t.range(&0, &399).len(), 200);
    }

    #[test]
    #[should_panic(expected = "key-sorted")]
    fn bulk_load_rejects_unsorted() {
        BPlusTree::bulk_load(8, vec![(2, ()), (1, ())]);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_order_rejected() {
        let _: BPlusTree<i64, ()> = BPlusTree::new(2);
    }

    #[test]
    fn model_check() {
        let mut rng = StdRng::seed_from_u64(0xB7EE1);
        for _ in 0..64 {
            let order = rng.random_range(3usize..32);
            let n = rng.random_range(0usize..400);
            let keys: Vec<i64> = (0..n).map(|_| rng.random_range(0i64..200)).collect();
            let mut tree = BPlusTree::new(order);
            let mut model: Vec<(i64, usize)> = Vec::new();
            for (i, k) in keys.iter().enumerate() {
                tree.insert(*k, i);
                model.push((*k, i));
            }
            tree.check_invariants();
            model.sort_by_key(|&(k, _)| k);
            // Every key found; ranges match the model.
            for &(k, _) in &model {
                assert!(tree.get(&k).is_some());
            }
            let (lo, hi) = (40i64, 120i64);
            let expected: Vec<i64> = model
                .iter()
                .filter(|&&(k, _)| k >= lo && k <= hi)
                .map(|&(k, _)| k)
                .collect();
            let got: Vec<i64> = tree.range(&lo, &hi).into_iter().map(|(k, _)| k).collect();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn bulk_load_model() {
        let mut rng = StdRng::seed_from_u64(0xB7EE2);
        for _ in 0..64 {
            let order = rng.random_range(3usize..24);
            let n = rng.random_range(1usize..300);
            let mut keys: Vec<i64> = (0..n).map(|_| rng.random_range(0i64..1000)).collect();
            keys.sort();
            let pairs: Vec<(i64, i64)> = keys.iter().map(|&k| (k, k)).collect();
            let tree = BPlusTree::bulk_load(order, pairs);
            tree.check_invariants();
            assert_eq!(tree.len(), keys.len());
            let got: Vec<i64> = tree.range(&0, &1000).into_iter().map(|(k, _)| k).collect();
            assert_eq!(got, keys);
        }
    }
}
