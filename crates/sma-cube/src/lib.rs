//! Comparators from the paper's evaluation (§2.4).
//!
//! * [`model`] — the data-cube storage formula (479.25 KB → 2985.95 GB),
//! * [`cube`] — a *working* one-date-dimension Query 1 cube with prefix
//!   sums: the lookup speed the cube buys, at the rigidity the paper
//!   criticizes,
//! * [`btree`] — a from-scratch B+ tree (insert, bulkload, range) standing
//!   in for the traditional index that is "of no use for Query 1",
//! * [`bitmap`] — a value-list bitmap index, the other related-work index
//!   family (\[15\]), for the per-tuple vs per-bucket comparison.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bitmap;
pub mod btree;
pub mod cube;
pub mod model;

pub use bitmap::BitmapIndex;
pub use btree::BPlusTree;
pub use cube::{CubeCell, Query1Cube};
pub use model::CubeModel;

/// The node order that fills one 4 KiB page given fixed key/value widths —
/// used to express a B+ tree's footprint in pages for the §2.4 comparison.
pub fn page_sized_order(key_bytes: usize, val_bytes: usize) -> usize {
    // Per entry: key + value; per node: ~16 bytes header.
    ((sma_storage::PAGE_SIZE - 16) / (key_bytes + val_bytes)).max(3)
}

#[cfg(test)]
mod tests {
    #[test]
    fn page_sized_order_for_date_index() {
        // 4-byte date key + 8-byte rid: ~340 entries per 4 KiB node.
        let order = super::page_sized_order(4, 8);
        assert!((300..=360).contains(&order), "{order}");
    }
}
