//! The data-cube storage model of §2.4.
//!
//! The paper compares SMA space against a materialized data cube whose
//! grouping must include every *selection* attribute: for Query 1 that is
//! the two flags (4 combinations) plus one to three date dimensions of
//! 2556 days each, at 6 aggregates × 8 bytes = 48 bytes per entry:
//!
//! * 1 date dim:  2556¹ × 4 × 48 B = 479.25 KB
//! * 2 date dims: 2556² × 4 × 48 B = 1196.25 MB
//! * 3 date dims: 2556³ × 4 × 48 B = 2985.95 GB

/// Parameters of a dense materialized data cube.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CubeModel {
    /// Cardinality of each dimension.
    pub dimension_cardinalities: Vec<u64>,
    /// Number of materialized aggregates per entry.
    pub aggregates: u64,
    /// Bytes per aggregate value (the paper uses 8).
    pub bytes_per_aggregate: u64,
}

impl CubeModel {
    /// The paper's Query 1 cube with `date_dims` date dimensions
    /// (1 ≤ `date_dims` ≤ 3): flags contribute a factor of 4, each date a
    /// factor of 2556.
    pub fn query1(date_dims: u32) -> CubeModel {
        assert!((1..=3).contains(&date_dims));
        let mut dims = vec![4u64]; // L_RETURNFLAG × L_LINESTATUS combinations
        dims.extend(std::iter::repeat_n(2556, date_dims as usize));
        CubeModel {
            dimension_cardinalities: dims,
            aggregates: 6,
            bytes_per_aggregate: 8,
        }
    }

    /// Number of cube entries (product of the dimension cardinalities).
    pub fn entries(&self) -> u64 {
        self.dimension_cardinalities.iter().product()
    }

    /// Total size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.entries() * self.aggregates * self.bytes_per_aggregate
    }

    /// Size in binary KB / MB / GB as the paper reports them.
    pub fn size_kb(&self) -> f64 {
        self.size_bytes() as f64 / 1024.0
    }

    /// Size in binary MB.
    pub fn size_mb(&self) -> f64 {
        self.size_kb() / 1024.0
    }

    /// Size in binary GB.
    pub fn size_gb(&self) -> f64 {
        self.size_mb() / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_reproduce_exactly() {
        // §2.4's three bullet points.
        assert!((CubeModel::query1(1).size_kb() - 479.25).abs() < 0.01);
        assert!((CubeModel::query1(2).size_mb() - 1196.25).abs() < 0.26);
        assert!((CubeModel::query1(3).size_gb() - 2985.95).abs() < 0.65);
    }

    #[test]
    fn entries_multiply() {
        let m = CubeModel::query1(1);
        assert_eq!(m.entries(), 4 * 2556);
        assert_eq!(m.size_bytes(), 4 * 2556 * 48);
        let m3 = CubeModel::query1(3);
        assert_eq!(m3.entries(), 4 * 2556 * 2556 * 2556);
    }

    #[test]
    #[should_panic]
    fn zero_date_dims_rejected() {
        CubeModel::query1(0);
    }
}
