//! Bitmap indexes — the other index family the paper's introduction
//! surveys (\[15\], O'Neil & Quass) before arguing for SMAs.
//!
//! A bitmap index keeps, per distinct value of a low-cardinality column,
//! one bit per tuple. It answers equality and membership predicates with
//! bit operations — ideal for `L_RETURNFLAG`-style flags — but costs one
//! bit per tuple per value and, like any per-tuple index over a
//! low-selectivity predicate, still leads to reading nearly every data
//! page. The comparison tests show where each structure wins.

use std::collections::BTreeMap;

use sma_storage::{Table, TableError, PAGE_SIZE};
use sma_types::Value;

/// A value-list bitmap index over one column.
#[derive(Debug, Clone)]
pub struct BitmapIndex {
    column: usize,
    n_tuples: usize,
    /// One bitmap per distinct value, each `ceil(n_tuples/64)` words.
    bitmaps: BTreeMap<Value, Vec<u64>>,
}

impl BitmapIndex {
    /// Builds the index over `column` with one sequential scan.
    pub fn build(table: &Table, column: usize) -> Result<BitmapIndex, TableError> {
        let mut bitmaps: BTreeMap<Value, Vec<u64>> = BTreeMap::new();
        let mut rows = Vec::new();
        let mut pos = 0usize;
        for page in 0..table.page_count() {
            rows.clear();
            table.scan_page_into(page, &mut rows)?;
            for (_, t) in &rows {
                let v = t[column].clone();
                if !v.is_null() {
                    let bm = bitmaps.entry(v).or_default();
                    let word = pos / 64;
                    if bm.len() <= word {
                        bm.resize(word + 1, 0);
                    }
                    bm[word] |= 1 << (pos % 64);
                }
                pos += 1;
            }
        }
        let words = pos.div_ceil(64);
        for bm in bitmaps.values_mut() {
            bm.resize(words, 0);
        }
        Ok(BitmapIndex {
            column,
            n_tuples: pos,
            bitmaps,
        })
    }

    /// The indexed column.
    pub fn column(&self) -> usize {
        self.column
    }

    /// Tuples covered.
    pub fn len(&self) -> usize {
        self.n_tuples
    }

    /// True iff no tuples are covered.
    pub fn is_empty(&self) -> bool {
        self.n_tuples == 0
    }

    /// Distinct indexed values.
    pub fn cardinality(&self) -> usize {
        self.bitmaps.len()
    }

    /// Physical size in bytes: one bit per tuple per distinct value.
    pub fn size_bytes(&self) -> usize {
        self.bitmaps.len() * self.n_tuples.div_ceil(8)
    }

    /// Physical size in 4 KiB pages.
    pub fn size_pages(&self) -> usize {
        self.size_bytes().div_ceil(PAGE_SIZE)
    }

    /// The bitmap for `= value`, or all-zeros when the value never occurs.
    pub fn eq(&self, value: &Value) -> Vec<u64> {
        self.bitmaps
            .get(value)
            .cloned()
            .unwrap_or_else(|| vec![0; self.n_tuples.div_ceil(64)])
    }

    /// The bitmap for `IN (values…)` — a union of per-value bitmaps.
    pub fn is_in(&self, values: &[Value]) -> Vec<u64> {
        let mut out = vec![0u64; self.n_tuples.div_ceil(64)];
        for v in values {
            for (o, w) in out.iter_mut().zip(self.eq(v)) {
                *o |= w;
            }
        }
        out
    }

    /// Number of set bits in a result bitmap.
    pub fn count(bitmap: &[u64]) -> usize {
        bitmap.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Intersection of two result bitmaps (`AND` of predicates).
    pub fn and(a: &[u64], b: &[u64]) -> Vec<u64> {
        a.iter().zip(b).map(|(x, y)| x & y).collect()
    }

    /// Union of two result bitmaps (`OR` of predicates).
    pub fn or(a: &[u64], b: &[u64]) -> Vec<u64> {
        a.iter().zip(b).map(|(x, y)| x | y).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sma_types::{Column, DataType, Schema};
    use std::sync::Arc;

    fn flags_table(flags: &[u8]) -> Table {
        let schema = Arc::new(Schema::new(vec![
            Column::new("F", DataType::Char),
            Column::new("PAD", DataType::Str),
        ]));
        let mut t = Table::in_memory("t", schema, 1);
        let pad = "p".repeat(900);
        for &f in flags {
            t.append(&vec![Value::Char(f), Value::Str(pad.clone())])
                .unwrap();
        }
        t
    }

    #[test]
    fn eq_and_in_and_counts() {
        let t = flags_table(b"ARANRA");
        let idx = BitmapIndex::build(&t, 0).unwrap();
        assert_eq!(idx.len(), 6);
        assert_eq!(idx.cardinality(), 3);
        assert_eq!(BitmapIndex::count(&idx.eq(&Value::Char(b'A'))), 3);
        assert_eq!(BitmapIndex::count(&idx.eq(&Value::Char(b'Z'))), 0);
        let rn = idx.is_in(&[Value::Char(b'R'), Value::Char(b'N')]);
        assert_eq!(BitmapIndex::count(&rn), 3);
        // Boolean algebra on result bitmaps.
        let a = idx.eq(&Value::Char(b'A'));
        assert_eq!(BitmapIndex::count(&BitmapIndex::and(&a, &rn)), 0);
        assert_eq!(BitmapIndex::count(&BitmapIndex::or(&a, &rn)), 6);
    }

    #[test]
    fn bit_positions_match_physical_order() {
        let t = flags_table(b"ARA");
        let idx = BitmapIndex::build(&t, 0).unwrap();
        let a = idx.eq(&Value::Char(b'A'));
        assert_eq!(a[0] & 0b111, 0b101, "tuples 0 and 2 are 'A'");
    }

    #[test]
    fn nulls_are_in_no_bitmap() {
        let schema = Arc::new(Schema::new(vec![Column::new("F", DataType::Char)]));
        let mut t = Table::in_memory("t", schema, 1);
        t.append(&vec![Value::Char(b'A')]).unwrap();
        t.append(&vec![Value::Null]).unwrap();
        let idx = BitmapIndex::build(&t, 0).unwrap();
        assert_eq!(idx.len(), 2);
        let union = idx.is_in(&[Value::Char(b'A')]);
        assert_eq!(BitmapIndex::count(&union), 1);
    }

    #[test]
    fn size_grows_per_tuple_unlike_smas() {
        let many = flags_table(&vec![b'A'; 600]);
        let idx = BitmapIndex::build(&many, 0).unwrap();
        assert_eq!(idx.size_bytes(), 75, "600 bits for one value");
        // One bit per tuple per value: doubles with a second value.
        let mixed: Vec<u8> = (0..600)
            .map(|i| if i % 2 == 0 { b'A' } else { b'R' })
            .collect();
        let t2 = flags_table(&mixed);
        let idx2 = BitmapIndex::build(&t2, 0).unwrap();
        assert_eq!(idx2.size_bytes(), 150);
    }

    #[test]
    fn empty_table() {
        let t = flags_table(&[]);
        let idx = BitmapIndex::build(&t, 0).unwrap();
        assert!(idx.is_empty());
        assert_eq!(idx.cardinality(), 0);
        assert!(idx.eq(&Value::Char(b'A')).is_empty());
    }
}
