//! Append-only write-ahead log over any [`PageStore`].
//!
//! The WAL makes streamed inserts durable before they are acknowledged:
//! a record is appended and fsynced *before* the memtable absorbs the
//! tuple, so an acknowledged insert survives any crash, and an
//! unacknowledged one leaves at worst a torn tail that replay discards.
//!
//! # Layout
//!
//! Page 0 is the header, rewritten only by [`Wal::create`] and
//! [`Wal::truncate`]:
//!
//! ```text
//! "SWAL" | epoch u64 | crc32(bytes 0..12) u32 | zero padding
//! ```
//!
//! Records start at page 1 and form a byte stream chunked into pages
//! (no slot directories, no per-page footers — integrity is per-record).
//! Each record is framed as:
//!
//! ```text
//! payload_len u32 | crc32(payload) u32 | payload
//! ```
//!
//! where the payload is an [`sma_types::WalRecord`] image carrying the
//! log epoch and a monotonically increasing sequence number.
//!
//! # Replay and truncation
//!
//! [`Wal::open`] replays frames in order and stops at the first frame
//! that is zeroed (clean end), structurally invalid or checksum-mismatched
//! (torn tail — the bytes a crash cut mid-append), from a different epoch
//! (stale bytes left over from before a truncation; the record area is
//! never zeroed), or out of sequence order. Everything before the stop is
//! returned; everything after is logically truncated, and a torn tail is
//! also physically zeroed so the cut is explicit on disk.
//!
//! [`Wal::truncate`] rewrites only the header with a new epoch. Old
//! record bytes stay in place but can never replay again: their epoch no
//! longer matches. Truncation is only legal *after* the warehouse
//! manifest naming a watermark ≥ every logged sequence number has
//! committed, so even a torn header write loses nothing — a WAL whose
//! header fails its checksum is by protocol an empty one, and [`Wal::open`]
//! reinitializes it (reporting the reset) rather than failing recovery.

use sma_types::walrec::{decode_wal_record, encode_wal_record, WalRecord};
use sma_types::{bytes, Tuple};

use crate::checksum::crc32;
use crate::store::{PageStore, StoreError};
use crate::PAGE_SIZE;

const MAGIC: &[u8; 4] = b"SWAL";

/// Header bytes covered by the header checksum: magic + epoch.
const HEADER_BODY: usize = 12;

/// Bytes before a frame's payload: length + checksum.
const FRAME_HEADER: u64 = 8;

/// Upper bound on one record's payload — far beyond any real tuple
/// (tuples fit a 4 KiB page), small enough that a garbage length field
/// can never drive replay into a multi-gigabyte read.
pub const MAX_WAL_PAYLOAD: u32 = 1 << 24;

/// An open write-ahead log.
pub struct Wal<S: PageStore> {
    store: S,
    epoch: u64,
    /// Byte offset one past the last valid frame, relative to the start
    /// of the record area (page 1, offset 0).
    tail: u64,
}

/// What [`Wal::open`] found while replaying.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalReplay {
    /// Records replayed, in append order.
    pub records: Vec<WalRecord>,
    /// A frame was cut mid-write (length ran past the store, checksum
    /// mismatched, or the payload failed to decode); the tail was
    /// truncated there. The torn record was never acknowledged.
    pub torn_tail: bool,
    /// The header was missing or failed its checksum, and the log was
    /// reinitialized empty at the caller's fallback epoch. Per the
    /// truncation protocol this only happens when the log was logically
    /// empty, so nothing acknowledged is lost.
    pub header_reset: bool,
}

impl<S: PageStore> Wal<S> {
    /// Initializes a fresh log on `store` at `epoch`, overwriting any
    /// header already present. Syncs before returning.
    pub fn create(mut store: S, epoch: u64) -> Result<Wal<S>, StoreError> {
        write_header(&mut store, epoch)?;
        store.sync()?;
        Ok(Wal {
            store,
            epoch,
            tail: 0,
        })
    }

    /// Opens an existing log, replaying every record of the current
    /// epoch. A missing or checksum-failed header reinitializes the log
    /// at `fallback_epoch` (see [`WalReplay::header_reset`]). Hard I/O
    /// errors propagate; torn frames do not — they end the replay.
    pub fn open(mut store: S, fallback_epoch: u64) -> Result<(Wal<S>, WalReplay), StoreError> {
        let epoch = match read_header(&store)? {
            Some(e) => e,
            None => {
                write_header(&mut store, fallback_epoch)?;
                store.sync()?;
                let wal = Wal {
                    store,
                    epoch: fallback_epoch,
                    tail: 0,
                };
                return Ok((
                    wal,
                    WalReplay {
                        header_reset: true,
                        ..WalReplay::default()
                    },
                ));
            }
        };
        let mut wal = Wal {
            store,
            epoch,
            tail: 0,
        };
        let mut replay = WalReplay::default();
        let mut off = 0u64;
        let mut last_seq: Option<u64> = None;
        loop {
            let mut head = [0u8; 8];
            match wal.read_bytes(off, &mut head) {
                Ok(()) => {}
                // Ran off the allocated pages: clean end of the log.
                Err(StoreError::OutOfRange { .. }) => break,
                // Anything else is a real device fault, not the shape of
                // the log — swallowing it would silently truncate every
                // acknowledged record behind the bad page.
                Err(e) => return Err(e),
            }
            let len = bytes::get_u32_le(&head, 0).unwrap_or(0);
            let want_crc = bytes::get_u32_le(&head, 4).unwrap_or(0);
            if len == 0 {
                break; // zeroed frame header: clean end
            }
            if len > MAX_WAL_PAYLOAD {
                replay.torn_tail = true;
                break;
            }
            let mut payload = vec![0u8; len as usize];
            match wal.read_bytes(off + FRAME_HEADER, &mut payload) {
                Ok(()) => {}
                // The length field promised more bytes than the store
                // holds: the frame was cut mid-append.
                Err(StoreError::OutOfRange { .. }) => {
                    replay.torn_tail = true;
                    break;
                }
                // A hard I/O error mid-frame proves nothing about the
                // frame; propagating it keeps the acknowledged record
                // intact instead of zeroing its header below.
                Err(e) => return Err(e),
            }
            if crc32(&payload) != want_crc {
                replay.torn_tail = true;
                break;
            }
            let rec = match decode_wal_record(&payload) {
                Ok(r) => r,
                // sma-lint: allow(A3-error-swallowing) -- an undecodable record after a valid CRC is a torn tail by design: replay stops and reports it
                Err(_) => {
                    replay.torn_tail = true;
                    break;
                }
            };
            if rec.epoch != epoch {
                break; // stale bytes from before a truncation: clean end
            }
            if last_seq.is_some_and(|s| rec.seq <= s) {
                break; // out of order: stale or damaged, stop trusting
            }
            last_seq = Some(rec.seq);
            off += FRAME_HEADER + len as u64;
            replay.records.push(rec);
        }
        wal.tail = off;
        if replay.torn_tail {
            // Make the cut explicit: zero the torn frame's header so the
            // garbage past it can never be probed again.
            wal.write_bytes(off, &[0u8; 8])?;
            wal.store.sync()?;
        }
        Ok((wal, replay))
    }

    /// The epoch in the header — every appended record is tagged with it.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Bytes of valid frames currently in the record area.
    pub fn tail_bytes(&self) -> u64 {
        self.tail
    }

    /// The underlying store (tests inspect or clone it to simulate
    /// crashes at arbitrary persisted prefixes).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Consumes the log, returning the store.
    pub fn into_store(self) -> S {
        self.store
    }

    /// Appends one record. The record's epoch must match the log's. The
    /// append is **not** durable until [`Wal::sync`] returns `Ok` — only
    /// then may the insert be acknowledged.
    pub fn append(&mut self, rec: &WalRecord) -> Result<(), StoreError> {
        if rec.epoch != self.epoch {
            return Err(StoreError::Corrupt {
                page: 0,
                detail: format!(
                    "wal record epoch {} does not match log epoch {}",
                    rec.epoch, self.epoch
                ),
            });
        }
        let payload = encode_wal_record(rec);
        let len = u32::try_from(payload.len()).unwrap_or(u32::MAX);
        if len > MAX_WAL_PAYLOAD {
            return Err(StoreError::Corrupt {
                page: 0,
                detail: format!(
                    "wal record of {} bytes exceeds the frame cap",
                    payload.len()
                ),
            });
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER as usize + payload.len());
        bytes::put_u32_le(&mut frame, len);
        bytes::put_u32_le(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        self.write_bytes(self.tail, &frame)?;
        self.tail += frame.len() as u64;
        Ok(())
    }

    /// Makes every append so far durable.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.store.sync()
    }

    /// Logically empties the log under `new_epoch` by rewriting the
    /// header. Old record bytes remain but fail the epoch check on
    /// replay. Call only after the manifest whose watermark covers every
    /// logged record has committed.
    pub fn truncate(&mut self, new_epoch: u64) -> Result<(), StoreError> {
        write_header(&mut self.store, new_epoch)?;
        self.store.sync()?;
        self.epoch = new_epoch;
        self.tail = 0;
        Ok(())
    }

    /// Reads `buf.len()` bytes at record-area offset `off`. Fails with
    /// `OutOfRange` past the allocated pages (replay treats that as the
    /// end of the log).
    fn read_bytes(&self, off: u64, buf: &mut [u8]) -> Result<(), StoreError> {
        let mut page_img = [0u8; PAGE_SIZE];
        let mut done = 0usize;
        while done < buf.len() {
            let abs = off + done as u64;
            let page = 1 + bytes::lo32(abs / PAGE_SIZE as u64);
            let in_page = (abs % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(buf.len() - done);
            self.store.read_page(page, &mut page_img)?;
            buf[done..done + n].copy_from_slice(&page_img[in_page..in_page + n]);
            done += n;
        }
        Ok(())
    }

    /// Writes `buf` at record-area offset `off`, allocating pages as
    /// needed and read-modify-writing partial pages.
    fn write_bytes(&mut self, off: u64, buf: &[u8]) -> Result<(), StoreError> {
        let mut page_img = [0u8; PAGE_SIZE];
        let mut done = 0usize;
        while done < buf.len() {
            let abs = off + done as u64;
            let page = 1 + bytes::lo32(abs / PAGE_SIZE as u64);
            let in_page = (abs % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(buf.len() - done);
            while self.store.page_count() <= page {
                self.store.allocate()?;
            }
            if in_page == 0 && n == PAGE_SIZE {
                page_img.copy_from_slice(&buf[done..done + n]);
            } else {
                self.store.read_page(page, &mut page_img)?;
                page_img[in_page..in_page + n].copy_from_slice(&buf[done..done + n]);
            }
            self.store.write_page(page, &page_img)?;
            done += n;
        }
        Ok(())
    }
}

/// Builds a [`WalRecord`] for one insert: the tuple is encoded with the
/// relation's row codec (schema mismatches surface before anything is
/// logged).
pub fn make_wal_record(
    epoch: u64,
    seq: u64,
    relation: &str,
    schema: &sma_types::Schema,
    tuple: &Tuple,
) -> Result<WalRecord, sma_types::CodecError> {
    if let Err(e) = schema.validate(tuple) {
        return Err(sma_types::CodecError(format!(
            "tuple does not fit relation {relation}: {e}"
        )));
    }
    let mut row = Vec::new();
    sma_types::row::encode(schema, tuple, &mut row)?;
    Ok(WalRecord {
        epoch,
        seq,
        relation: relation.to_string(),
        row,
    })
}

fn write_header(store: &mut dyn PageStore, epoch: u64) -> Result<(), StoreError> {
    let mut body = Vec::with_capacity(HEADER_BODY + 4);
    body.extend_from_slice(MAGIC);
    bytes::put_u64_le(&mut body, epoch);
    let sum = crc32(&body);
    bytes::put_u32_le(&mut body, sum);
    let mut page = [0u8; PAGE_SIZE];
    page[..body.len()].copy_from_slice(&body);
    if store.page_count() == 0 {
        store.allocate()?;
    }
    store.write_page(0, &page)
}

/// Reads and verifies the header page. `Ok(None)` means missing or
/// corrupt (the caller reinitializes); hard I/O errors propagate.
fn read_header(store: &dyn PageStore) -> Result<Option<u64>, StoreError> {
    if store.page_count() == 0 {
        return Ok(None);
    }
    let mut page = [0u8; PAGE_SIZE];
    store.read_page(0, &mut page)?;
    if &page[..4] != MAGIC {
        return Ok(None);
    }
    let want = match bytes::get_u32_le(&page, HEADER_BODY) {
        Some(w) => w,
        None => return Ok(None),
    };
    if crc32(&page[..HEADER_BODY]) != want {
        return Ok(None);
    }
    Ok(bytes::get_u64_le(&page, 4))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{MemStore, PageNo};

    fn rec(epoch: u64, seq: u64) -> WalRecord {
        WalRecord {
            epoch,
            seq,
            relation: "T".into(),
            row: vec![seq as u8; 100],
        }
    }

    #[test]
    fn append_sync_replay_roundtrip() {
        let mut wal = Wal::create(MemStore::new(), 1).unwrap();
        for seq in 1..=50u64 {
            wal.append(&rec(1, seq)).unwrap();
            wal.sync().unwrap();
        }
        let (wal2, replay) = Wal::open(wal.into_store(), 99).unwrap();
        assert!(!replay.torn_tail && !replay.header_reset);
        assert_eq!(replay.records.len(), 50);
        assert_eq!(replay.records[49], rec(1, 50));
        assert_eq!(wal2.epoch(), 1);
    }

    #[test]
    fn truncate_empties_and_stale_frames_never_replay() {
        let mut wal = Wal::create(MemStore::new(), 1).unwrap();
        for seq in 1..=20u64 {
            wal.append(&rec(1, seq)).unwrap();
        }
        wal.sync().unwrap();
        wal.truncate(2).unwrap();
        assert_eq!(wal.tail_bytes(), 0);
        // A couple of new-epoch records overwrite the start of the old
        // ones; replay must yield exactly the new records.
        wal.append(&rec(2, 21)).unwrap();
        wal.append(&rec(2, 22)).unwrap();
        wal.sync().unwrap();
        let (_, replay) = Wal::open(wal.into_store(), 99).unwrap();
        assert_eq!(
            replay.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![21, 22]
        );
    }

    #[test]
    fn empty_log_replays_empty() {
        let wal = Wal::create(MemStore::new(), 7).unwrap();
        let (wal2, replay) = Wal::open(wal.into_store(), 99).unwrap();
        assert_eq!(replay, WalReplay::default());
        assert_eq!(wal2.epoch(), 7);
    }

    #[test]
    fn missing_header_resets_to_fallback_epoch() {
        let (wal, replay) = Wal::open(MemStore::new(), 5).unwrap();
        assert!(replay.header_reset);
        assert!(replay.records.is_empty());
        assert_eq!(wal.epoch(), 5);
    }

    #[test]
    fn corrupt_header_resets() {
        let wal = Wal::create(MemStore::new(), 3).unwrap();
        let mut store = wal.into_store();
        crate::test_util::flip_bit(&mut store, 0, 40).unwrap();
        let (wal2, replay) = Wal::open(store, 8).unwrap();
        assert!(replay.header_reset);
        assert_eq!(wal2.epoch(), 8);
    }

    #[test]
    fn epoch_mismatched_append_is_rejected() {
        let mut wal = Wal::create(MemStore::new(), 1).unwrap();
        assert!(wal.append(&rec(2, 1)).is_err());
    }

    #[test]
    fn torn_frame_ends_replay_and_is_zeroed() {
        let mut wal = Wal::create(MemStore::new(), 1).unwrap();
        for seq in 1..=3u64 {
            wal.append(&rec(1, seq)).unwrap();
        }
        wal.sync().unwrap();
        let keep = wal.tail_bytes();
        wal.append(&rec(1, 4)).unwrap(); // will be torn below
        let mut store = wal.into_store();
        // Corrupt one payload byte of the fourth frame.
        let abs = PAGE_SIZE as u64 + keep + FRAME_HEADER + 3;
        let page = (abs / PAGE_SIZE as u64) as PageNo;
        let bit = ((abs % PAGE_SIZE as u64) * 8) as u32;
        crate::test_util::flip_bit(&mut store, page, bit).unwrap();
        let (wal2, replay) = Wal::open(store, 99).unwrap();
        assert!(replay.torn_tail);
        assert_eq!(replay.records.len(), 3);
        assert_eq!(wal2.tail_bytes(), keep);
        // Reopening after the zeroing sees a clean end, not a torn one.
        let (_, replay2) = Wal::open(wal2.into_store(), 99).unwrap();
        assert!(!replay2.torn_tail);
        assert_eq!(replay2.records.len(), 3);
    }

    #[test]
    fn hard_read_error_mid_log_propagates_instead_of_truncating() {
        use crate::test_util::{FlakyStore, READ_FAILURE};
        use std::sync::atomic::Ordering;
        // Budget 2: header page + first frame header read fine, then the
        // device dies mid-payload. Budget 3: the device dies on the second
        // frame's header read. Both are hard faults over perfectly valid
        // acknowledged frames — treating them as end-of-log (or worse,
        // zeroing the "torn" frame) would silently destroy the log's tail.
        for budget in [2u64, 3] {
            let mut wal = Wal::create(FlakyStore::new(u64::MAX), 1).unwrap();
            for seq in 1..=40u64 {
                wal.append(&rec(1, seq)).unwrap();
            }
            wal.sync().unwrap();
            let store = wal.into_store();
            store.budget_handle().store(budget, Ordering::Relaxed);
            match Wal::open(store, 1) {
                Ok(_) => panic!("budget {budget}: the device fault was swallowed"),
                Err(e) => assert!(e.to_string().contains(READ_FAILURE), "budget {budget}: {e}"),
            }
        }
    }

    #[test]
    fn make_record_rejects_schema_mismatch() {
        use sma_types::{Column, DataType, Schema, Value};
        let schema = Schema::new(vec![Column::new("A", DataType::Int)]);
        assert!(make_wal_record(1, 1, "T", &schema, &vec![Value::Char(b'x')]).is_err());
        let rec = make_wal_record(1, 1, "T", &schema, &vec![Value::Int(5)]).unwrap();
        assert_eq!(rec.relation, "T");
        assert!(!rec.row.is_empty());
    }
}
