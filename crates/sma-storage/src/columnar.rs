//! Page chunking for columnar buckets.
//!
//! A converted bucket stores one [`sma_types::ColumnarBucket`] blob spread
//! across *all* pages of the bucket's existing page range, so the bucket
//! keeps its physical extent (SMA files stay positionally aligned, I/O
//! accounting charges the same page counts) while the payload becomes
//! column-major. Every chunk page keeps the standard CRC32 + counter
//! footer — the buffer pool stamps and verifies chunk pages exactly like
//! slotted pages.
//!
//! Chunk page layout (within the `PAYLOAD_END`-byte checksummed region):
//!
//! ```text
//! [0]     0xFF   marker — parses as an impossible slotted header
//! [1]     0xC0   marker
//! [2..4]  chunk_len  u16 LE, bytes of blob payload on this page
//! [4..8]  blob_total u32 LE, total blob length (repeated on every chunk)
//! [8..]   payload (chunk_len bytes), zero padding after
//! ```
//!
//! The marker bytes decode as a slotted page with `0xC0FF` = 49407 slots,
//! whose slot directory alone would overrun the page — so any legacy code
//! path that feeds a chunk page to `SlottedPage::from_bytes` or
//! `page::for_each_image` fails loudly instead of misreading tuples.
//! The last page of a table is never converted (appends land there), so
//! the row-store write paths never see a chunk page.

use crate::page::{PAGE_SIZE, PAYLOAD_END};
use crate::store::PageNo;
use sma_types::bytes::{get_u16_le, get_u32_le, lo16, lo32, write_u16_le, write_u32_le};
use std::fmt;

/// First marker byte of a chunk page.
pub const COLUMNAR_MARKER0: u8 = 0xFF;
/// Second marker byte of a chunk page.
pub const COLUMNAR_MARKER1: u8 = 0xC0;

const CHUNK_HEADER: usize = 8;

/// Blob bytes one chunk page can carry.
pub const CHUNK_CAPACITY: usize = PAYLOAD_END - CHUNK_HEADER;

/// Error from assembling or splitting a columnar bucket's chunk pages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnarError(pub String);

impl fmt::Display for ColumnarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "columnar pages: {}", self.0)
    }
}

impl std::error::Error for ColumnarError {}

/// Whether `buf` starts with the columnar chunk marker. Only meaningful
/// for buffers that already passed the pool's CRC check.
pub fn is_columnar_page(buf: &[u8]) -> bool {
    matches!(
        (buf.first(), buf.get(1)),
        (Some(&COLUMNAR_MARKER0), Some(&COLUMNAR_MARKER1))
    )
}

/// Splits `blob` into exactly `n_pages` chunk pages. Every page of the
/// bucket becomes a chunk (trailing ones possibly empty) so readers and
/// recovery can classify the whole range from its page images. Fails if
/// the blob does not fit.
pub fn chunk_pages(blob: &[u8], n_pages: usize) -> Result<Vec<[u8; PAGE_SIZE]>, ColumnarError> {
    let capacity = n_pages.saturating_mul(CHUNK_CAPACITY);
    if blob.len() > capacity {
        return Err(ColumnarError(format!(
            "blob of {} bytes exceeds {} pages x {} bytes",
            blob.len(),
            n_pages,
            CHUNK_CAPACITY
        )));
    }
    let total = u32::try_from(blob.len())
        .map_err(|_| ColumnarError("blob exceeds u32 bytes".to_string()))?;
    let mut pages = Vec::with_capacity(n_pages);
    let mut chunks = blob.chunks(CHUNK_CAPACITY);
    for _ in 0..n_pages {
        let chunk = chunks.next().unwrap_or(&[]);
        let mut page = [0u8; PAGE_SIZE];
        if let Some(b) = page.first_mut() {
            *b = COLUMNAR_MARKER0;
        }
        if let Some(b) = page.get_mut(1) {
            *b = COLUMNAR_MARKER1;
        }
        write_u16_le(&mut page, 2, lo16(lo32(chunk.len() as u64)));
        write_u32_le(&mut page, 4, total);
        if let Some(dst) = page.get_mut(CHUNK_HEADER..CHUNK_HEADER + chunk.len()) {
            dst.copy_from_slice(chunk);
        }
        pages.push(page);
    }
    Ok(pages)
}

/// Reads one chunk page: returns the declared blob total and this page's
/// payload slice.
pub fn read_chunk(buf: &[u8]) -> Result<(u32, &[u8]), ColumnarError> {
    if !is_columnar_page(buf) {
        return Err(ColumnarError("missing chunk marker".to_string()));
    }
    let chunk_len = get_u16_le(buf, 2).ok_or_else(|| ColumnarError("short header".to_string()))?;
    let total = get_u32_le(buf, 4).ok_or_else(|| ColumnarError("short header".to_string()))?;
    if chunk_len as usize > CHUNK_CAPACITY {
        return Err(ColumnarError(format!(
            "chunk length {chunk_len} exceeds page capacity"
        )));
    }
    let payload = buf
        .get(CHUNK_HEADER..CHUNK_HEADER + chunk_len as usize)
        .ok_or_else(|| ColumnarError("chunk payload past payload end".to_string()))?;
    Ok((total, payload))
}

/// Reassembles a blob from the chunk pages of one bucket, in page order.
/// `read` supplies each page image; errors from it pass through.
pub fn assemble_blob<E, F>(pages: impl Iterator<Item = PageNo>, mut read: F) -> Result<Vec<u8>, E>
where
    E: From<ColumnarError>,
    F: FnMut(PageNo, &mut dyn FnMut(&[u8]) -> Result<(), E>) -> Result<(), E>,
{
    let mut blob = Vec::new();
    let mut declared: Option<u32> = None;
    for no in pages {
        read(no, &mut |buf| {
            let (total, payload) = read_chunk(buf).map_err(E::from)?;
            match declared {
                None => declared = Some(total),
                Some(t) if t != total => {
                    return Err(E::from(ColumnarError(format!(
                        "page {no}: blob total {total} disagrees with {t}"
                    ))))
                }
                Some(_) => {}
            }
            blob.extend_from_slice(payload);
            Ok(())
        })?;
    }
    let declared = declared.unwrap_or(0) as usize;
    if blob.len() != declared {
        return Err(E::from(ColumnarError(format!(
            "assembled {} bytes, chunks declared {declared}",
            blob.len()
        ))));
    }
    Ok(blob)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::SlottedPage;

    #[test]
    fn chunk_roundtrip_multi_page() {
        let blob: Vec<u8> = (0..10_000u32).map(|i| lo16(i) as u8).collect();
        let pages = chunk_pages(&blob, 4).unwrap();
        assert_eq!(pages.len(), 4);
        for page in &pages {
            assert!(is_columnar_page(page));
        }
        let images: Vec<[u8; PAGE_SIZE]> = pages.clone();
        let back: Vec<u8> =
            assemble_blob::<ColumnarError, _>(0..4u32, |no, visit| visit(&images[no as usize]))
                .unwrap();
        assert_eq!(back, blob);
    }

    #[test]
    fn empty_trailing_chunks_are_written() {
        let blob = vec![42u8; 10];
        let pages = chunk_pages(&blob, 3).unwrap();
        assert_eq!(pages.len(), 3);
        let (total, payload) = read_chunk(&pages[1]).unwrap();
        assert_eq!(total, 10);
        assert!(payload.is_empty());
    }

    #[test]
    fn oversized_blob_is_rejected() {
        let blob = vec![0u8; CHUNK_CAPACITY * 2 + 1];
        assert!(chunk_pages(&blob, 2).is_err());
        assert!(chunk_pages(&blob, 3).is_ok());
    }

    #[test]
    fn chunk_pages_fail_slotted_parse() {
        let pages = chunk_pages(&[1, 2, 3], 1).unwrap();
        assert!(
            SlottedPage::from_bytes(&pages[0]).is_err(),
            "marker must be an impossible slotted header"
        );
    }

    #[test]
    fn mismatched_totals_are_detected() {
        let a = chunk_pages(&[1u8; 100], 1).unwrap();
        let b = chunk_pages(&[2u8; 200], 1).unwrap();
        let images = [a[0], b[0]];
        let out: Result<Vec<u8>, ColumnarError> =
            assemble_blob(0..2u32, |no, visit| visit(&images[no as usize]));
        assert!(out.is_err());
    }

    #[test]
    fn truncated_assembly_is_detected() {
        let pages = chunk_pages(&vec![7u8; CHUNK_CAPACITY + 5], 2).unwrap();
        let out: Result<Vec<u8>, ColumnarError> =
            assemble_blob(0..1u32, |no, visit| visit(&pages[no as usize]));
        assert!(out.is_err(), "missing second chunk must not pass");
    }
}
