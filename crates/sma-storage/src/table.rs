//! Tables: a schema plus a heap of slotted pages, grouped into buckets.
//!
//! A *bucket* is a fixed number of consecutive pages (§2.1: "examples of
//! buckets are single pages or consecutive sequences of pages"). Buckets
//! are the SMA granularity: SMA entry *i* summarizes bucket *i*, and the
//! correspondence is purely positional — which is why tables are
//! append-oriented and updates stay within their page.

use std::collections::BTreeSet;
use std::fmt;
use std::ops::Range;

use sma_types::row::{decode, encode};
use sma_types::{ColumnarBucket, SchemaRef, Tuple};

use crate::columnar::{assemble_blob, chunk_pages, is_columnar_page, ColumnarError};
use crate::page::{SlotId, SlottedPage, MAX_TUPLE_BYTES};
use crate::pool::{BufferPool, IoStats};
use crate::store::{MemStore, PageNo, PageStore, StoreError};

/// Physical address of a tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TupleId {
    /// Page holding the tuple.
    pub page: PageNo,
    /// Slot within the page.
    pub slot: SlotId,
}

/// Index of a bucket within a table.
pub type BucketNo = u32;

/// Errors from table operations.
#[derive(Debug)]
pub enum TableError {
    /// Underlying store failed.
    Store(StoreError),
    /// Tuple violates the table schema.
    Schema(sma_types::SchemaError),
    /// Tuple image failed to decode (corruption).
    Codec(sma_types::CodecError),
    /// Page image failed validation (corruption).
    Page(crate::page::PageError),
    /// Tuple too large for an empty page.
    TupleTooLarge {
        /// Encoded size of the offending tuple.
        bytes: usize,
    },
    /// In-place update could not keep the tuple on its page.
    UpdateWouldMove(TupleId),
    /// No live tuple at this id.
    NotFound(TupleId),
    /// Columnar chunk pages failed structural validation (corruption).
    Columnar(ColumnarError),
    /// Columnar block failed to decode (corruption).
    ColBlock(sma_types::ColBlockError),
    /// The tuple lives in a converted (immutable) columnar bucket.
    ColumnarImmutable(TupleId),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::Store(e) => write!(f, "{e}"),
            TableError::Schema(e) => write!(f, "{e}"),
            TableError::Codec(e) => write!(f, "{e}"),
            TableError::Page(e) => write!(f, "{e}"),
            TableError::TupleTooLarge { bytes } => {
                write!(f, "tuple of {bytes} bytes exceeds page capacity")
            }
            TableError::UpdateWouldMove(tid) => {
                write!(f, "update of {tid:?} does not fit on its page")
            }
            TableError::NotFound(tid) => write!(f, "no live tuple at {tid:?}"),
            TableError::Columnar(e) => write!(f, "{e}"),
            TableError::ColBlock(e) => write!(f, "{e}"),
            TableError::ColumnarImmutable(tid) => {
                write!(f, "{tid:?} lives in an immutable columnar bucket")
            }
        }
    }
}

impl std::error::Error for TableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TableError::Store(e) => Some(e),
            TableError::Schema(e) => Some(e),
            TableError::Codec(e) => Some(e),
            TableError::Page(e) => Some(e),
            TableError::Columnar(e) => Some(e),
            TableError::ColBlock(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ColumnarError> for TableError {
    fn from(e: ColumnarError) -> TableError {
        TableError::Columnar(e)
    }
}

impl From<sma_types::ColBlockError> for TableError {
    fn from(e: sma_types::ColBlockError) -> TableError {
        TableError::ColBlock(e)
    }
}

impl From<StoreError> for TableError {
    fn from(e: StoreError) -> TableError {
        TableError::Store(e)
    }
}

impl From<sma_types::SchemaError> for TableError {
    fn from(e: sma_types::SchemaError) -> TableError {
        TableError::Schema(e)
    }
}

impl From<sma_types::CodecError> for TableError {
    fn from(e: sma_types::CodecError) -> TableError {
        TableError::Codec(e)
    }
}

impl From<crate::page::PageError> for TableError {
    fn from(e: crate::page::PageError) -> TableError {
        TableError::Page(e)
    }
}

/// A heap table with positional buckets.
pub struct Table {
    name: String,
    schema: SchemaRef,
    pool: BufferPool,
    bucket_pages: u32,
    live_tuples: u64,
    /// Lowest page mutated since the last [`Table::seal`] — the start of
    /// the range an incremental flush must export. `None` means sealed:
    /// every page is covered by the committed segment set.
    min_dirty: Option<PageNo>,
    /// Buckets converted to the columnar (PAX) layout. Their page range
    /// holds one chunked [`ColumnarBucket`] blob instead of slotted pages;
    /// they are immutable and never include the table's last page (appends
    /// land there). Rebuilt from page markers by [`Table::verify_pages`].
    columnar: BTreeSet<BucketNo>,
}

impl fmt::Debug for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Table")
            .field("name", &self.name)
            .field("pages", &self.page_count())
            .field("buckets", &self.bucket_count())
            .field("bucket_pages", &self.bucket_pages)
            .field("live_tuples", &self.live_tuples)
            .finish()
    }
}

impl Table {
    /// Creates a table over an arbitrary page store.
    ///
    /// `bucket_pages` is the SMA granularity (§4 discusses the trade-off);
    /// `pool_capacity` is the buffer size in pages.
    pub fn new(
        name: impl Into<String>,
        schema: SchemaRef,
        store: Box<dyn PageStore>,
        pool_capacity: usize,
        bucket_pages: u32,
    ) -> Table {
        assert!(bucket_pages > 0, "bucket must span at least one page");
        Table {
            name: name.into(),
            schema,
            pool: BufferPool::new(store, pool_capacity),
            bucket_pages,
            live_tuples: 0,
            min_dirty: None,
            columnar: BTreeSet::new(),
        }
    }

    /// Creates an in-memory table with a generous pool (tests, examples).
    pub fn in_memory(name: impl Into<String>, schema: SchemaRef, bucket_pages: u32) -> Table {
        Table::new(
            name,
            schema,
            Box::new(MemStore::new()),
            1 << 16,
            bucket_pages,
        )
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Pages allocated.
    pub fn page_count(&self) -> PageNo {
        self.pool.page_count()
    }

    /// Pages per bucket.
    pub fn bucket_pages(&self) -> u32 {
        self.bucket_pages
    }

    /// Number of (possibly partial) buckets.
    pub fn bucket_count(&self) -> BucketNo {
        self.page_count().div_ceil(self.bucket_pages)
    }

    /// Live tuples in the table.
    pub fn live_tuples(&self) -> u64 {
        self.live_tuples
    }

    /// The page range covered by bucket `b`.
    pub fn bucket_range(&self, b: BucketNo) -> Range<PageNo> {
        let start = b * self.bucket_pages;
        let end = ((b + 1) * self.bucket_pages).min(self.page_count());
        start..end
    }

    /// The bucket containing page `page`.
    pub fn bucket_of_page(&self, page: PageNo) -> BucketNo {
        page / self.bucket_pages
    }

    /// Appends a tuple, returning its id. Appends always go to the last
    /// page, preserving the physical order the SMA files mirror.
    pub fn append(&mut self, tuple: &Tuple) -> Result<TupleId, TableError> {
        self.schema.validate(tuple)?;
        let mut image = Vec::new();
        encode(&self.schema, tuple, &mut image)?;
        if image.len() > MAX_TUPLE_BYTES {
            return Err(TableError::TupleTooLarge { bytes: image.len() });
        }
        let pages = self.page_count();
        if pages > 0 {
            let last = pages - 1;
            let slot = self.pool.with_page_mut(last, |buf| {
                let mut page = SlottedPage::from_bytes(buf)?;
                let slot = page.insert(&image);
                if slot.is_some() {
                    buf.copy_from_slice(&page.as_bytes()[..]);
                }
                Ok::<_, TableError>(slot)
            })??;
            if let Some(slot) = slot {
                self.live_tuples += 1;
                self.note_dirty(last);
                return Ok(TupleId { page: last, slot });
            }
        }
        let no = self.pool.allocate()?;
        self.note_dirty(no);
        let slot = self.pool.with_page_mut(no, |buf| {
            let mut page = SlottedPage::new();
            let slot = page.insert(&image);
            if slot.is_some() {
                buf.copy_from_slice(&page.as_bytes()[..]);
            }
            slot
        })?;
        // `insert` on an empty page only refuses images that are empty or
        // larger than MAX_TUPLE_BYTES (checked above) — but report rather
        // than assume.
        let slot = slot.ok_or(TableError::TupleTooLarge { bytes: image.len() })?;
        self.live_tuples += 1;
        Ok(TupleId { page: no, slot })
    }

    /// Reads the tuple at `tid`, or `None` if deleted/absent.
    ///
    /// In a columnar bucket, tuple ids are synthetic: the bucket's first
    /// page plus the row's index within the block (the ids its scans
    /// emit). Other pages of the bucket hold no addressable tuples.
    pub fn get(&self, tid: TupleId) -> Result<Option<Tuple>, TableError> {
        if tid.page >= self.page_count() {
            return Ok(None);
        }
        let b = self.bucket_of_page(tid.page);
        if self.columnar.contains(&b) {
            if tid.page != self.bucket_range(b).start {
                return Ok(None);
            }
            let block = self.read_columnar(b)?;
            return Ok(block.row(usize::from(tid.slot)));
        }
        let image = self.pool.with_page(tid.page, |buf| {
            let page = SlottedPage::from_bytes(buf)?;
            Ok::<_, TableError>(page.get(tid.slot).map(<[u8]>::to_vec))
        })??;
        match image {
            Some(img) => Ok(Some(decode(&self.schema, &img)?)),
            None => Ok(None),
        }
    }

    /// Deletes the tuple at `tid`.
    pub fn delete(&mut self, tid: TupleId) -> Result<(), TableError> {
        if tid.page >= self.page_count() {
            return Err(TableError::NotFound(tid));
        }
        if self.columnar.contains(&self.bucket_of_page(tid.page)) {
            return Err(TableError::ColumnarImmutable(tid));
        }
        let removed = self.pool.with_page_mut(tid.page, |buf| {
            let mut page = SlottedPage::from_bytes(buf)?;
            let removed = page.delete(tid.slot);
            if removed {
                buf.copy_from_slice(&page.as_bytes()[..]);
            }
            Ok::<_, TableError>(removed)
        })??;
        if !removed {
            return Err(TableError::NotFound(tid));
        }
        self.live_tuples -= 1;
        self.note_dirty(tid.page);
        Ok(())
    }

    /// Updates the tuple at `tid` in place. The tuple must stay on its page
    /// (the paper's "at most one additional page access" maintenance
    /// guarantee); otherwise [`TableError::UpdateWouldMove`] is returned and
    /// the table is unchanged.
    pub fn update(&mut self, tid: TupleId, tuple: &Tuple) -> Result<TupleId, TableError> {
        self.schema.validate(tuple)?;
        if tid.page >= self.page_count() {
            return Err(TableError::NotFound(tid));
        }
        if self.columnar.contains(&self.bucket_of_page(tid.page)) {
            return Err(TableError::ColumnarImmutable(tid));
        }
        let mut image = Vec::new();
        encode(&self.schema, tuple, &mut image)?;
        let result = self.pool.with_page_mut(tid.page, |buf| {
            let mut page = SlottedPage::from_bytes(buf)?;
            if page.get(tid.slot).is_none() {
                return Err(TableError::NotFound(tid));
            }
            match page.update(tid.slot, &image) {
                Some(slot) => {
                    buf.copy_from_slice(&page.as_bytes()[..]);
                    Ok(TupleId {
                        page: tid.page,
                        slot,
                    })
                }
                None => Err(TableError::UpdateWouldMove(tid)),
            }
        })?;
        if result.is_ok() {
            self.note_dirty(tid.page);
        }
        result
    }

    fn note_dirty(&mut self, page: PageNo) {
        self.min_dirty = Some(match self.min_dirty {
            Some(p) => p.min(page),
            None => page,
        });
    }

    /// The first page not covered by the last [`Table::seal`] — the start
    /// of the range an incremental flush must export. Equals
    /// [`Table::page_count`] when nothing changed since sealing.
    pub fn unsealed_from(&self) -> PageNo {
        self.min_dirty.unwrap_or_else(|| self.page_count())
    }

    /// Marks every current page as covered by the committed segment set.
    /// Called by the flush path *after* its manifest commit succeeds —
    /// sealing earlier would let a failed flush silently drop the pages a
    /// retry still needs to export.
    pub fn seal(&mut self) {
        self.min_dirty = None;
    }

    /// Visits every live tuple image on `page_no` in slot order, borrowed
    /// straight from the pinned page frame — zero per-tuple image copies.
    ///
    /// The closure runs under the page's buffer-pool shard lock, so it
    /// must not touch this table's pool again (per-tuple decode/predicate
    /// work is fine; that is what it is for). The error type is generic so
    /// executor layers can thread their own error out of the closure.
    pub fn for_each_on_page<E, F>(&self, page_no: PageNo, mut f: F) -> Result<(), E>
    where
        E: From<TableError>,
        F: FnMut(TupleId, &[u8]) -> Result<(), E>,
    {
        let b = self.bucket_of_page(page_no);
        if self.columnar.contains(&b) {
            // Columnar fallback: visiting the bucket's *first* page decodes
            // the whole block (reading every page of the range — the same
            // page fetches, in the same order, as the row layout) and
            // yields each row re-encoded into a scratch image. The other
            // pages of the bucket visit nothing and read nothing, so a
            // page-by-page sweep over the range costs exactly what the
            // slotted sweep cost.
            if page_no != self.bucket_range(b).start {
                return Ok(());
            }
            let block = self.read_columnar(b).map_err(E::from)?;
            let mut image = Vec::new();
            for i in 0..block.n_rows() {
                let row = block.row(i).ok_or_else(|| {
                    E::from(TableError::Columnar(ColumnarError(format!(
                        "row {i} out of range in bucket {b}"
                    ))))
                })?;
                image.clear();
                encode(&self.schema, &row, &mut image)
                    .map_err(|e| E::from(TableError::Codec(e)))?;
                let slot = SlotId::try_from(i).map_err(|_| {
                    E::from(TableError::Columnar(ColumnarError(format!(
                        "bucket {b} exceeds the slot-id row limit"
                    ))))
                })?;
                f(
                    TupleId {
                        page: page_no,
                        slot,
                    },
                    &image,
                )?;
            }
            return Ok(());
        }
        let visited = self
            .pool
            .with_page(page_no, |buf| {
                crate::page::for_each_image::<VisitError<E>, _>(buf, |slot, img| {
                    f(
                        TupleId {
                            page: page_no,
                            slot,
                        },
                        img,
                    )
                    .map_err(VisitError::Caller)
                })
            })
            .map_err(|e| E::from(TableError::Store(e)))?;
        visited.map_err(|e| match e {
            VisitError::Page(p) => E::from(TableError::Page(p)),
            VisitError::Caller(c) => c,
        })
    }

    /// Visits every live tuple image in bucket `b`, page by page in
    /// physical order — the lending-scan counterpart of
    /// [`Table::scan_bucket`]. I/O accounting is identical to the
    /// materialized scan: each page is fetched exactly once, in the same
    /// order.
    pub fn for_each_in_bucket<E, F>(&self, b: BucketNo, mut f: F) -> Result<(), E>
    where
        E: From<TableError>,
        F: FnMut(TupleId, &[u8]) -> Result<(), E>,
    {
        for page_no in self.bucket_range(b) {
            self.for_each_on_page(page_no, &mut f)?;
        }
        Ok(())
    }

    /// Decodes all live tuples in bucket `b`, in physical order. Thin
    /// materializing wrapper over [`Table::for_each_in_bucket`].
    pub fn scan_bucket(&self, b: BucketNo) -> Result<Vec<(TupleId, Tuple)>, TableError> {
        let mut out = Vec::new();
        for page_no in self.bucket_range(b) {
            self.scan_page_into(page_no, &mut out)?;
        }
        Ok(out)
    }

    /// Decodes all live tuples on page `page_no`, appending to `out`.
    pub fn scan_page_into(
        &self,
        page_no: PageNo,
        out: &mut Vec<(TupleId, Tuple)>,
    ) -> Result<(), TableError> {
        self.for_each_on_page::<TableError, _>(page_no, |tid, img| {
            out.push((tid, decode(&self.schema, img)?));
            Ok(())
        })
    }

    /// Full sequential scan: every live tuple in physical order.
    pub fn scan(&self) -> Result<Vec<(TupleId, Tuple)>, TableError> {
        let mut out = Vec::new();
        for page_no in 0..self.page_count() {
            self.scan_page_into(page_no, &mut out)?;
        }
        Ok(out)
    }

    /// Whether bucket `b` holds the columnar layout.
    pub fn is_columnar_bucket(&self, b: BucketNo) -> bool {
        self.columnar.contains(&b)
    }

    /// The converted buckets, in order.
    pub fn columnar_buckets(&self) -> Vec<BucketNo> {
        self.columnar.iter().copied().collect()
    }

    /// Decodes bucket `b`'s columnar block, or `None` if the bucket still
    /// holds rows. Reads every page of the bucket's range through the
    /// pool — the same page fetches a slotted scan of the bucket costs.
    pub fn columnar_bucket(&self, b: BucketNo) -> Result<Option<ColumnarBucket>, TableError> {
        if !self.columnar.contains(&b) {
            return Ok(None);
        }
        self.read_columnar(b).map(Some)
    }

    fn read_columnar(&self, b: BucketNo) -> Result<ColumnarBucket, TableError> {
        let range = self.bucket_range(b);
        let blob = assemble_blob::<TableError, _>(range, |no, visit| {
            self.pool
                .with_page(no, |buf| visit(buf))
                .map_err(TableError::Store)?
        })?;
        ColumnarBucket::decode(&self.schema, &blob).map_err(TableError::ColBlock)
    }

    /// Converts bucket `b` to the columnar layout in place, returning
    /// whether a conversion happened. Skipped (returning `false`) when the
    /// bucket is already columnar, includes the table's last page (appends
    /// land there), has more rows than slot ids can address, or its block
    /// does not fit the bucket's page extent — the rows simply stay
    /// row-major, which is always correct.
    pub fn convert_bucket_to_columnar(&mut self, b: BucketNo) -> Result<bool, TableError> {
        if self.columnar.contains(&b) {
            return Ok(false);
        }
        let range = self.bucket_range(b);
        if range.is_empty() || range.end >= self.page_count() {
            return Ok(false);
        }
        let rows = self.scan_bucket(b)?;
        if rows.len() > usize::from(SlotId::MAX) {
            return Ok(false);
        }
        let tuples: Vec<Tuple> = rows.into_iter().map(|(_, t)| t).collect();
        let block =
            ColumnarBucket::from_rows(&self.schema, &tuples).map_err(TableError::ColBlock)?;
        let blob = block.encode();
        // Fit is the one expected skip: the columnar encoding can be
        // larger than the slotted one. Any other chunking failure is a
        // real error and must surface, not silently leave the bucket
        // row-major.
        if blob.len() > range.len().saturating_mul(crate::columnar::CHUNK_CAPACITY) {
            return Ok(false);
        }
        let images = chunk_pages(&blob, range.len())?;
        for (no, image) in range.clone().zip(images.iter()) {
            self.pool
                .with_page_mut(no, |buf| buf.copy_from_slice(&image[..]))?;
        }
        self.columnar.insert(b);
        self.note_dirty(range.start);
        Ok(true)
    }

    /// Converts every eligible bucket whose page range starts at or after
    /// `from` (pass the flush boundary to convert only the pages the next
    /// delta exports, or `0` to convert everything, as compaction does).
    /// Returns the buckets converted by this call.
    pub fn convert_buckets_from(&mut self, from: PageNo) -> Result<Vec<BucketNo>, TableError> {
        let mut converted = Vec::new();
        for b in 0..self.bucket_count() {
            if self.bucket_range(b).start < from {
                continue;
            }
            if self.convert_bucket_to_columnar(b)? {
                converted.push(b);
            }
        }
        Ok(converted)
    }

    /// Buffer-pool traffic counters.
    pub fn io_stats(&self) -> IoStats {
        self.pool.stats()
    }

    /// Zeroes the traffic counters.
    pub fn reset_io_stats(&self) {
        self.pool.reset_stats()
    }

    /// Replaces the buffer pool's transient-fault retry policy.
    pub fn set_retry_policy(&self, policy: crate::pool::RetryPolicy) {
        self.pool.set_retry_policy(policy)
    }

    /// The buffer pool's current transient-fault retry policy.
    pub fn retry_policy(&self) -> crate::pool::RetryPolicy {
        self.pool.retry_policy()
    }

    /// Flushes dirty pages and empties the cache: the next scan is cold.
    pub fn make_cold(&self) -> Result<(), TableError> {
        self.pool.clear_cache()?;
        Ok(())
    }

    /// Flushes dirty pages to the store.
    pub fn flush(&self) -> Result<(), TableError> {
        self.pool.flush_all()?;
        Ok(())
    }

    /// Copies every page image into `dest` (which must start empty).
    ///
    /// The source store is never written: dirty pool frames are read in
    /// place and each exported image is re-stamped with its checksum
    /// footer before it leaves. Exporting used to flush the pool first,
    /// which silently mutated the table's *own* backing file — for a
    /// table reopened from a committed generation that rewrote committed
    /// state before the next commit point, breaking crash atomicity.
    pub fn export_to_store(&self, dest: &mut dyn PageStore) -> Result<(), TableError> {
        self.export_page_range(dest, 0)
    }

    /// Copies pages `from..page_count` into `dest`, renumbered from zero
    /// (page `from + i` of this table becomes page `i` of `dest`) — the
    /// delta-segment export for incremental flushes. `dest` must start
    /// empty; the source store is never written (see
    /// [`Table::export_to_store`]).
    pub fn export_page_range(
        &self,
        dest: &mut dyn PageStore,
        from: PageNo,
    ) -> Result<(), TableError> {
        for no in from..self.page_count() {
            let mut image = self.pool.with_page(no, |buf| *buf)?;
            crate::page::stamp_page(&mut image);
            let local = no - from;
            while dest.page_count() <= local {
                dest.allocate()?;
            }
            dest.write_page(local, &image[..])?;
        }
        dest.sync()?;
        Ok(())
    }

    /// Reads every page through the pool, verifying checksum footers and
    /// slotted-page or columnar-chunk structure. Corrupt pages are
    /// collected (not fatal); other store errors propagate. Also recounts
    /// `live_tuples` from the readable pages and rediscovers columnar
    /// buckets from their self-describing chunk markers — the restart path
    /// uses this to restore both the counter and the layout set.
    ///
    /// A bucket counts as columnar only when *every* page of its range
    /// carries the chunk marker and the assembled block decodes; a bucket
    /// mixing chunk and slotted pages (a torn conversion) or failing to
    /// decode is wholly corrupt — there is no row set it can be trusted
    /// to hold.
    pub fn verify_pages(&mut self) -> Result<PageVerification, TableError> {
        self.columnar.clear();
        enum Kind {
            Row(u64),
            Col,
            Corrupt,
        }
        let mut report = PageVerification {
            scanned: 0,
            corrupt: Vec::new(),
        };
        let mut kinds: Vec<Kind> = Vec::new();
        for no in 0..self.page_count() {
            report.scanned += 1;
            let parsed = self.pool.with_page(no, |buf| {
                if is_columnar_page(buf) {
                    Ok(Kind::Col)
                } else {
                    SlottedPage::from_bytes(buf).map(|p| Kind::Row(p.live_count() as u64))
                }
            });
            kinds.push(match parsed {
                Ok(Ok(k)) => k,
                Ok(Err(_)) => Kind::Corrupt,
                Err(StoreError::Corrupt { .. }) => Kind::Corrupt,
                Err(e) => return Err(e.into()),
            });
        }
        let mut live = 0u64;
        for b in 0..self.bucket_count() {
            let range = self.bucket_range(b);
            let slice = kinds
                .get(range.start as usize..range.end as usize)
                .unwrap_or(&[]);
            let n_col = slice.iter().filter(|k| matches!(k, Kind::Col)).count();
            if n_col == 0 {
                for (off, kind) in slice.iter().enumerate() {
                    match kind {
                        Kind::Row(n) => live += n,
                        Kind::Corrupt => report.corrupt.push(range.start + off as PageNo),
                        Kind::Col => {}
                    }
                }
                continue;
            }
            if n_col == slice.len() {
                match self.read_columnar(b) {
                    Ok(block) => {
                        self.columnar.insert(b);
                        live += block.n_rows() as u64;
                        continue;
                    }
                    Err(
                        TableError::Store(StoreError::Corrupt { .. })
                        | TableError::Columnar(_)
                        | TableError::ColBlock(_),
                    ) => {}
                    Err(e) => return Err(e),
                }
            }
            report.corrupt.extend(range);
        }
        self.live_tuples = live;
        Ok(report)
    }
}

/// Internal error split for the lending visitors: page validation
/// failures raised by the walker vs. errors returned by the caller's
/// closure, re-merged into the caller's error type after the page lock
/// is released.
enum VisitError<E> {
    Page(crate::page::PageError),
    Caller(E),
}

impl<E> From<crate::page::PageError> for VisitError<E> {
    fn from(e: crate::page::PageError) -> VisitError<E> {
        VisitError::Page(e)
    }
}

/// Outcome of [`Table::verify_pages`].
#[derive(Debug, Clone, Default)]
pub struct PageVerification {
    /// Pages examined.
    pub scanned: u32,
    /// Pages whose checksum or structure failed verification.
    pub corrupt: Vec<PageNo>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sma_types::{Column, DataType, Schema, Value};
    use std::sync::Arc;

    fn schema() -> SchemaRef {
        Arc::new(Schema::new(vec![
            Column::new("K", DataType::Int),
            Column::new("S", DataType::Str),
        ]))
    }

    fn tuple(k: i64, s: &str) -> Tuple {
        vec![Value::Int(k), Value::Str(s.into())]
    }

    #[test]
    fn append_get_roundtrip() {
        let mut t = Table::in_memory("t", schema(), 1);
        let id = t.append(&tuple(7, "seven")).unwrap();
        assert_eq!(t.get(id).unwrap(), Some(tuple(7, "seven")));
        assert_eq!(t.live_tuples(), 1);
    }

    #[test]
    fn append_spills_to_new_pages_in_order() {
        let mut t = Table::in_memory("t", schema(), 1);
        let long = "x".repeat(1000);
        let mut ids = Vec::new();
        for k in 0..20 {
            ids.push(t.append(&tuple(k, &long)).unwrap());
        }
        assert!(t.page_count() > 1);
        // Physical order == append order.
        let scanned = t.scan().unwrap();
        let keys: Vec<i64> = scanned
            .iter()
            .map(|(_, tu)| tu[0].as_int().unwrap())
            .collect();
        assert_eq!(keys, (0..20).collect::<Vec<_>>());
        // Page numbers are non-decreasing.
        assert!(ids.windows(2).all(|w| w[0].page <= w[1].page));
    }

    #[test]
    fn bucket_ranges() {
        let mut t = Table::in_memory("t", schema(), 2);
        let long = "x".repeat(1500);
        for k in 0..15 {
            t.append(&tuple(k, &long)).unwrap();
        }
        let pages = t.page_count();
        assert!(pages >= 5, "need several pages, got {pages}");
        assert_eq!(t.bucket_count(), pages.div_ceil(2));
        assert_eq!(t.bucket_range(0), 0..2);
        assert_eq!(t.bucket_of_page(0), 0);
        assert_eq!(t.bucket_of_page(3), 1);
        // Last bucket may be partial.
        let last = t.bucket_count() - 1;
        assert_eq!(t.bucket_range(last).end, pages);
        // Every tuple appears in exactly one bucket scan.
        let mut total = 0;
        for b in 0..t.bucket_count() {
            total += t.scan_bucket(b).unwrap().len();
        }
        assert_eq!(total, 15);
    }

    #[test]
    fn delete_and_update() {
        let mut t = Table::in_memory("t", schema(), 1);
        let a = t.append(&tuple(1, "a")).unwrap();
        let b = t.append(&tuple(2, "b")).unwrap();
        t.delete(a).unwrap();
        assert_eq!(t.get(a).unwrap(), None);
        assert_eq!(t.live_tuples(), 1);
        assert!(matches!(t.delete(a), Err(TableError::NotFound(_))));

        let b2 = t.update(b, &tuple(2, "B")).unwrap();
        assert_eq!(b2, b, "same-length update keeps its slot");
        assert_eq!(t.get(b).unwrap(), Some(tuple(2, "B")));

        let b3 = t.update(b, &tuple(2, "Bee!")).unwrap();
        assert_eq!(b3.page, b.page, "update stays on its page");
        assert_eq!(t.get(b3).unwrap(), Some(tuple(2, "Bee!")));
    }

    #[test]
    fn update_that_cannot_stay_on_page_fails_cleanly() {
        let mut t = Table::in_memory("t", schema(), 1);
        let filler = "x".repeat(1300);
        let a = t.append(&tuple(0, &filler)).unwrap();
        t.append(&tuple(1, &filler)).unwrap();
        t.append(&tuple(2, &filler)).unwrap();
        // Growing tuple `a` beyond the page's free space must fail without
        // moving it to another bucket.
        let err = t.update(a, &tuple(0, &"y".repeat(2000))).unwrap_err();
        assert!(matches!(err, TableError::UpdateWouldMove(_)));
        assert_eq!(t.get(a).unwrap(), Some(tuple(0, &filler)));
    }

    #[test]
    fn rejects_wrong_schema() {
        let mut t = Table::in_memory("t", schema(), 1);
        assert!(t.append(&vec![Value::Int(1)]).is_err());
        assert!(t
            .append(&vec![Value::Str("no".into()), Value::Str("x".into())])
            .is_err());
    }

    #[test]
    fn rejects_oversized_tuple() {
        let mut t = Table::in_memory("t", schema(), 1);
        let err = t.append(&tuple(1, &"z".repeat(5000))).unwrap_err();
        assert!(matches!(err, TableError::TupleTooLarge { .. }));
    }

    #[test]
    fn lending_visitor_matches_materialized_scan_and_io() {
        let mut t = Table::in_memory("t", schema(), 2);
        let long = "x".repeat(700);
        for k in 0..40 {
            t.append(&tuple(k, &long)).unwrap();
        }
        let deleted = t.scan().unwrap()[5].0;
        t.delete(deleted).unwrap();
        for b in 0..t.bucket_count() {
            t.reset_io_stats();
            let owned = t.scan_bucket(b).unwrap();
            let owned_io = t.io_stats();
            t.reset_io_stats();
            let mut visited = Vec::new();
            t.for_each_in_bucket::<TableError, _>(b, |tid, img| {
                visited.push((tid, sma_types::row::decode(t.schema(), img)?));
                Ok(())
            })
            .unwrap();
            assert_eq!(visited, owned, "bucket {b}");
            assert_eq!(t.io_stats(), owned_io, "bucket {b}: identical I/O trace");
        }
    }

    #[test]
    fn visitor_propagates_closure_errors() {
        let mut t = Table::in_memory("t", schema(), 1);
        for k in 0..3 {
            t.append(&tuple(k, "x")).unwrap();
        }
        let mut seen = 0;
        let err = t
            .for_each_in_bucket::<TableError, _>(0, |tid, _| {
                seen += 1;
                Err(TableError::NotFound(tid))
            })
            .unwrap_err();
        assert!(matches!(err, TableError::NotFound(_)));
        assert_eq!(seen, 1);
    }

    #[test]
    fn oversized_string_surfaces_as_codec_error() {
        let mut t = Table::in_memory("t", schema(), 1);
        let too_long = "x".repeat(u16::MAX as usize + 1);
        let err = t.append(&tuple(1, &too_long)).unwrap_err();
        assert!(matches!(err, TableError::Codec(_)), "got {err:?}");
        assert_eq!(t.live_tuples(), 0, "failed append leaves the table clean");
        let id = t.append(&tuple(1, "ok")).unwrap();
        let err = t.update(id, &tuple(1, &too_long)).unwrap_err();
        assert!(matches!(err, TableError::Codec(_)), "got {err:?}");
        assert_eq!(t.get(id).unwrap(), Some(tuple(1, "ok")));
    }

    #[test]
    fn cold_scan_counts_physical_reads() {
        let mut t = Table::in_memory("t", schema(), 1);
        let long = "x".repeat(800);
        for k in 0..50 {
            t.append(&tuple(k, &long)).unwrap();
        }
        let pages = t.page_count() as u64;
        t.make_cold().unwrap();
        t.reset_io_stats();
        t.scan().unwrap();
        let s = t.io_stats();
        assert_eq!(s.physical_reads, pages);
        assert_eq!(s.sequential_reads, pages - 1, "scan is sequential");
        t.reset_io_stats();
        t.scan().unwrap();
        assert_eq!(t.io_stats().physical_reads, 0, "warm scan hits the pool");
    }

    #[test]
    fn export_and_verify_roundtrip() {
        use crate::store::FileStore;
        use crate::test_util::scratch_path;
        let mut t = Table::in_memory("t", schema(), 1);
        let long = "x".repeat(900);
        for k in 0..30 {
            t.append(&tuple(k, &long)).unwrap();
        }
        let path = scratch_path("table_export");
        {
            let mut dest = FileStore::create(&path).unwrap();
            t.export_to_store(&mut dest).unwrap();
            assert_eq!(dest.page_count(), t.page_count());
        }
        let store = FileStore::open(&path).unwrap();
        let mut back = Table::new("t", schema(), Box::new(store), 64, 1);
        let v = back.verify_pages().unwrap();
        assert_eq!(v.scanned, t.page_count());
        assert!(v.corrupt.is_empty(), "clean export: {:?}", v.corrupt);
        assert_eq!(back.live_tuples(), 30, "verify restores the live count");
        assert_eq!(back.scan().unwrap().len(), 30);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn verify_pages_flags_bit_flips() {
        use crate::store::FileStore;
        use crate::test_util::{flip_bit_in_file, scratch_path};
        let mut t = Table::in_memory("t", schema(), 1);
        let long = "x".repeat(900);
        for k in 0..30 {
            t.append(&tuple(k, &long)).unwrap();
        }
        let path = scratch_path("table_verify_flip");
        {
            let mut dest = FileStore::create(&path).unwrap();
            t.export_to_store(&mut dest).unwrap();
        }
        // Flip one bit in the middle of page 2.
        flip_bit_in_file(&path, 2 * crate::page::PAGE_SIZE as u64 + 1000, 3).unwrap();
        let store = FileStore::open(&path).unwrap();
        let mut back = Table::new("t", schema(), Box::new(store), 64, 1);
        let v = back.verify_pages().unwrap();
        assert_eq!(v.corrupt, vec![2], "exactly the flipped page is corrupt");
        // Reads of the damaged page error; they never return wrong rows.
        let err = back.scan().unwrap_err();
        assert!(matches!(
            err,
            TableError::Store(StoreError::Corrupt { page: 2, .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_backed_table_survives_flush() {
        use crate::store::FileStore;
        use crate::test_util::scratch_path;
        let path = scratch_path("table_file");
        {
            let store = FileStore::create(&path).unwrap();
            let mut t = Table::new("t", schema(), Box::new(store), 4, 1);
            for k in 0..10 {
                t.append(&tuple(k, "payload")).unwrap();
            }
            t.flush().unwrap();
        }
        {
            let store = FileStore::open(&path).unwrap();
            let t = Table::new("t", schema(), Box::new(store), 4, 1);
            let rows = t.scan().unwrap();
            assert_eq!(rows.len(), 10);
            assert_eq!(rows[9].1[0], Value::Int(9));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn seal_and_range_export_reassemble_through_segments() {
        use crate::segment::SegmentedStore;
        let mut t = Table::in_memory("t", schema(), 1);
        let long = "x".repeat(900);
        for k in 0..12 {
            t.append(&tuple(k, &long)).unwrap();
        }
        assert_eq!(t.unsealed_from(), 0, "never sealed: everything is dirty");
        // Export the full base, seal, then append more rows.
        let mut base = MemStore::new();
        t.export_to_store(&mut base).unwrap();
        let sealed_pages = t.page_count();
        t.seal();
        assert_eq!(
            t.unsealed_from(),
            sealed_pages,
            "sealed table has no dirty range"
        );
        for k in 12..20 {
            t.append(&tuple(k, &long)).unwrap();
        }
        let from = t.unsealed_from();
        assert!(from < t.page_count());
        assert!(
            from + 1 >= sealed_pages,
            "delta starts at the sealed boundary page, not earlier"
        );
        let mut delta = MemStore::new();
        t.export_page_range(&mut delta, from).unwrap();
        assert_eq!(delta.page_count(), t.page_count() - from);
        // Reassemble: base shadowed by the delta reproduces the table.
        let delta_pages = t.page_count() - from;
        let store = SegmentedStore::new(vec![
            (Box::new(base) as Box<dyn PageStore>, 0, sealed_pages),
            (Box::new(delta), from, delta_pages),
        ])
        .unwrap();
        let back = Table::new("t", schema(), Box::new(store), 64, 1);
        let keys: Vec<i64> = back
            .scan()
            .unwrap()
            .iter()
            .map(|(_, tu)| tu[0].as_int().unwrap())
            .collect();
        assert_eq!(keys, (0..20).collect::<Vec<_>>());
    }

    fn filled_table(bucket_pages: u32, rows: i64) -> Table {
        let mut t = Table::in_memory("t", schema(), bucket_pages);
        let long = "x".repeat(700);
        for k in 0..rows {
            t.append(&tuple(k, &long)).unwrap();
        }
        t
    }

    #[test]
    fn columnar_conversion_preserves_scans_and_io() {
        let mut t = filled_table(2, 40);
        let row_scan = t.scan().unwrap();
        let row_rows: Vec<Tuple> = row_scan.iter().map(|(_, tu)| tu.clone()).collect();
        t.make_cold().unwrap();
        t.reset_io_stats();
        t.scan().unwrap();
        let row_io = t.io_stats();

        let converted = t.convert_buckets_from(0).unwrap();
        assert!(!converted.is_empty());
        let last_bucket = t.bucket_count() - 1;
        assert!(
            !t.is_columnar_bucket(last_bucket),
            "the bucket holding the last page must stay row-major"
        );
        for &b in &converted {
            assert!(t.is_columnar_bucket(b));
        }

        let col_scan = t.scan().unwrap();
        let col_rows: Vec<Tuple> = col_scan.iter().map(|(_, tu)| tu.clone()).collect();
        assert_eq!(col_rows, row_rows, "same rows in the same order");
        // Synthetic tuple ids round-trip through get().
        for (tid, tu) in &col_scan {
            assert_eq!(t.get(*tid).unwrap().as_ref(), Some(tu));
        }
        // Cold-scan I/O is identical to the row layout.
        t.flush().unwrap();
        t.make_cold().unwrap();
        t.reset_io_stats();
        t.scan().unwrap();
        let col_io = t.io_stats();
        assert_eq!(col_io.physical_reads, row_io.physical_reads);
        assert_eq!(col_io.logical_reads, row_io.logical_reads);
        assert_eq!(col_io.sequential_reads, row_io.sequential_reads);
        // Per-bucket scans agree too.
        for b in 0..t.bucket_count() {
            let rows: Vec<Tuple> = t
                .scan_bucket(b)
                .unwrap()
                .into_iter()
                .map(|(_, tu)| tu)
                .collect();
            let expect: Vec<Tuple> = row_scan
                .iter()
                .filter(|(tid, _)| t.bucket_of_page(tid.page) == b)
                .map(|(_, tu)| tu.clone())
                .collect();
            assert_eq!(rows, expect, "bucket {b}");
        }
        assert_eq!(t.live_tuples(), 40);
    }

    #[test]
    fn oversized_columnar_block_skips_conversion_without_error() {
        // Eight Str columns sized so slotted pages pack with zero waste
        // (4 x 1021-byte rows fill a page exactly) while each column's
        // heap tops 64 KiB, forcing u32 columnar offsets: 4 bytes per
        // value against the slotted 2-byte length slot. The block cannot
        // fit the bucket's page extent, so conversion must decline
        // (Ok(false)) and leave the bucket row-major and scannable.
        let cols: Vec<Column> = (0..8)
            .map(|i| Column::new(format!("S{i}"), DataType::Str))
            .collect();
        let schema = Arc::new(Schema::new(cols));
        let mut t = Table::in_memory("t", schema, 140);
        let row: Tuple = (0..8).map(|_| Value::Str("v".repeat(125))).collect();
        while t.page_count() <= 140 {
            t.append(&row).unwrap();
        }
        let before = t.scan_bucket(0).unwrap();
        assert_eq!(before.len(), 560, "4 rows per page, 140 pages");
        assert!(!t.convert_bucket_to_columnar(0).unwrap(), "must decline");
        assert!(!t.is_columnar_bucket(0));
        assert_eq!(t.scan_bucket(0).unwrap(), before);
    }

    #[test]
    fn columnar_buckets_reject_mutation_and_deletes_survive_conversion() {
        let mut t = filled_table(2, 40);
        let victim = t.scan().unwrap()[3].0;
        t.delete(victim).unwrap();
        t.convert_buckets_from(0).unwrap();
        assert_eq!(t.live_tuples(), 39, "deleted row is gone from the block");
        assert_eq!(t.scan().unwrap().len(), 39);
        let in_col = t
            .scan()
            .unwrap()
            .into_iter()
            .find(|(tid, _)| t.is_columnar_bucket(t.bucket_of_page(tid.page)))
            .unwrap()
            .0;
        assert!(matches!(
            t.delete(in_col),
            Err(TableError::ColumnarImmutable(_))
        ));
        assert!(matches!(
            t.update(in_col, &tuple(0, "nope")),
            Err(TableError::ColumnarImmutable(_))
        ));
        // Appends still work: they land on the (row-major) last page.
        t.append(&tuple(99, "after")).unwrap();
        assert_eq!(t.live_tuples(), 40);
    }

    #[test]
    fn verify_pages_rediscovers_columnar_buckets() {
        use crate::store::FileStore;
        use crate::test_util::scratch_path;
        let mut t = filled_table(2, 40);
        t.convert_buckets_from(0).unwrap();
        let converted = t.columnar_buckets();
        assert!(!converted.is_empty());
        let rows_before: Vec<Tuple> = t.scan().unwrap().into_iter().map(|(_, tu)| tu).collect();
        let path = scratch_path("table_columnar_verify");
        {
            let mut dest = FileStore::create(&path).unwrap();
            t.export_to_store(&mut dest).unwrap();
        }
        let store = FileStore::open(&path).unwrap();
        let mut back = Table::new("t", schema(), Box::new(store), 64, 2);
        let v = back.verify_pages().unwrap();
        assert!(v.corrupt.is_empty(), "clean export: {:?}", v.corrupt);
        assert_eq!(back.columnar_buckets(), converted, "layout rediscovered");
        assert_eq!(back.live_tuples(), 40);
        let rows_after: Vec<Tuple> = back.scan().unwrap().into_iter().map(|(_, tu)| tu).collect();
        assert_eq!(rows_after, rows_before);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn verify_pages_marks_torn_columnar_bucket_wholly_corrupt() {
        use crate::store::FileStore;
        use crate::test_util::{flip_bit_in_file, scratch_path};
        let mut t = filled_table(2, 40);
        t.convert_buckets_from(0).unwrap();
        let b = t.columnar_buckets()[0];
        let range = t.bucket_range(b);
        let path = scratch_path("table_columnar_torn");
        {
            let mut dest = FileStore::create(&path).unwrap();
            t.export_to_store(&mut dest).unwrap();
        }
        // Corrupt one chunk page of the converted bucket.
        flip_bit_in_file(
            &path,
            u64::from(range.start) * crate::page::PAGE_SIZE as u64 + 100,
            5,
        )
        .unwrap();
        let store = FileStore::open(&path).unwrap();
        let mut back = Table::new("t", schema(), Box::new(store), 64, 2);
        let v = back.verify_pages().unwrap();
        let expect: Vec<PageNo> = range.collect();
        assert_eq!(
            v.corrupt, expect,
            "every page of the torn bucket is reported"
        );
        assert!(!back.is_columnar_bucket(b));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn export_never_writes_the_source_store() {
        let mut t = Table::in_memory("t", schema(), 1);
        let long = "x".repeat(900);
        for k in 0..12 {
            t.append(&tuple(k, &long)).unwrap();
        }
        t.reset_io_stats();
        let mut dest = MemStore::new();
        t.export_to_store(&mut dest).unwrap();
        assert_eq!(
            t.io_stats().physical_writes,
            0,
            "export must copy pages without flushing them into the source"
        );
    }
}
