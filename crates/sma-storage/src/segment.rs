//! Layered page store for incrementally-flushed tables.
//!
//! A streaming flush appends a *delta segment* — a file holding only the
//! pages written since the previous flush — instead of rewriting the
//! whole table (see `smadb::ingest`). [`SegmentedStore`] reassembles the
//! table from the committed segment set: each segment is a read-only page
//! file covering a contiguous page range `[start, start + pages)`, later
//! segments shadowing earlier ones where ranges overlap (the one shared
//! boundary page a delta re-exports because appends top it up).
//!
//! All writes land in an in-memory copy-on-write overlay, never in the
//! segment files: a committed generation is immutable by protocol, and a
//! mutated base file would corrupt the previous commit point *before* the
//! next manifest rename. Durability for overlay pages comes from the WAL
//! until the next flush exports them into a fresh delta segment, so
//! [`SegmentedStore`]'s `sync` is deliberately a no-op.

use std::collections::BTreeMap;

use crate::page::PAGE_SIZE;
use crate::store::{PageNo, PageStore, StoreError};

/// One read-only base segment: a page store whose page `i` holds the
/// table's page `start + i`.
struct Segment {
    store: Box<dyn PageStore>,
    start: PageNo,
    pages: PageNo,
}

/// A table page store assembled from immutable base segments plus a
/// copy-on-write overlay for every page written after open.
pub struct SegmentedStore {
    /// Base segments in commit order — later entries shadow earlier ones
    /// on overlapping page ranges.
    segments: Vec<Segment>,
    /// Pages written since open; shadows every base segment.
    overlay: BTreeMap<PageNo, Box<[u8; PAGE_SIZE]>>,
    /// Logical page count (max segment end, grown by `allocate`).
    pages: PageNo,
}

impl SegmentedStore {
    /// Assembles a store from `(store, start, pages)` base segments, in
    /// commit order. Fails if a segment's backing store does not hold
    /// exactly the page count the (checksummed) manifest recorded for it
    /// — a truncated or swapped segment file must not open quietly.
    pub fn new(
        segments: Vec<(Box<dyn PageStore>, PageNo, PageNo)>,
    ) -> Result<SegmentedStore, StoreError> {
        let mut out = Vec::with_capacity(segments.len());
        let mut pages: PageNo = 0;
        for (store, start, declared) in segments {
            let actual = store.page_count();
            if actual != declared {
                return Err(StoreError::Corrupt {
                    page: start,
                    detail: format!(
                        "segment at page {start} holds {actual} pages, manifest says {declared}"
                    ),
                });
            }
            pages = pages.max(start + declared);
            out.push(Segment {
                store,
                start,
                pages: declared,
            });
        }
        Ok(SegmentedStore {
            segments: out,
            overlay: BTreeMap::new(),
            pages,
        })
    }

    /// Number of base segments (not counting the overlay).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Pages currently resident in the copy-on-write overlay.
    pub fn overlay_pages(&self) -> usize {
        self.overlay.len()
    }
}

impl PageStore for SegmentedStore {
    fn page_count(&self) -> PageNo {
        self.pages
    }

    fn read_page(&self, no: PageNo, buf: &mut [u8]) -> Result<(), StoreError> {
        if no >= self.pages {
            return Err(StoreError::OutOfRange {
                page: no,
                count: self.pages,
            });
        }
        if let Some(img) = self.overlay.get(&no) {
            buf.copy_from_slice(&img[..]);
            return Ok(());
        }
        // Later segments shadow earlier ones, so resolve newest-first.
        for seg in self.segments.iter().rev() {
            if no >= seg.start && no < seg.start + seg.pages {
                return seg.store.read_page(no - seg.start, buf);
            }
        }
        Err(StoreError::Corrupt {
            page: no,
            detail: "page not covered by any committed segment".into(),
        })
    }

    fn write_page(&mut self, no: PageNo, buf: &[u8]) -> Result<(), StoreError> {
        if no >= self.pages {
            return Err(StoreError::OutOfRange {
                page: no,
                count: self.pages,
            });
        }
        let mut img = Box::new([0u8; PAGE_SIZE]);
        img.copy_from_slice(buf);
        self.overlay.insert(no, img);
        Ok(())
    }

    fn allocate(&mut self) -> Result<PageNo, StoreError> {
        let no = self.pages;
        self.overlay.insert(no, Box::new([0u8; PAGE_SIZE]));
        self.pages += 1;
        Ok(no)
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        // Overlay pages are WAL-protected until the next flush exports
        // them into a delta segment; the base segments are immutable.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn page_of(byte: u8) -> [u8; PAGE_SIZE] {
        [byte; PAGE_SIZE]
    }

    fn seg(fill: &[u8]) -> Box<dyn PageStore> {
        let mut s = MemStore::new();
        for &b in fill {
            let no = s.allocate().unwrap();
            s.write_page(no, &page_of(b)).unwrap();
        }
        Box::new(s)
    }

    #[test]
    fn later_segments_shadow_earlier_on_overlap() {
        // Base covers pages 0..3 as [1,2,3]; a delta re-exports pages
        // 2..4 as [9,4]: the boundary page 2 must read from the delta.
        let store =
            SegmentedStore::new(vec![(seg(&[1, 2, 3]), 0, 3), (seg(&[9, 4]), 2, 2)]).unwrap();
        assert_eq!(store.page_count(), 4);
        assert_eq!(store.segment_count(), 2);
        let mut buf = [0u8; PAGE_SIZE];
        for (no, want) in [(0u32, 1u8), (1, 2), (2, 9), (3, 4)] {
            store.read_page(no, &mut buf).unwrap();
            assert_eq!(buf[0], want, "page {no}");
        }
    }

    #[test]
    fn writes_go_to_the_overlay_not_the_segments() {
        let base = seg(&[1, 2]);
        let mut store = SegmentedStore::new(vec![(base, 0, 2)]).unwrap();
        store.write_page(1, &page_of(7)).unwrap();
        let no = store.allocate().unwrap();
        assert_eq!(no, 2);
        store.write_page(2, &page_of(8)).unwrap();
        assert_eq!(store.overlay_pages(), 2);
        let mut buf = [0u8; PAGE_SIZE];
        store.read_page(0, &mut buf).unwrap();
        assert_eq!(buf[0], 1, "unwritten page still served by the base");
        store.read_page(1, &mut buf).unwrap();
        assert_eq!(buf[0], 7, "overlay shadows the base");
        store.read_page(2, &mut buf).unwrap();
        assert_eq!(buf[0], 8);
        store.sync().unwrap();
    }

    #[test]
    fn page_count_mismatch_is_corruption() {
        let err = match SegmentedStore::new(vec![(seg(&[1, 2]), 0, 3)]) {
            Err(e) => e,
            Ok(_) => panic!("page-count mismatch must not open"),
        };
        assert!(matches!(err, StoreError::Corrupt { page: 0, .. }), "{err}");
    }

    #[test]
    fn out_of_range_and_uncovered_pages_fail_loudly() {
        // A hole: segment starts at page 1, nothing covers page 0.
        let store = SegmentedStore::new(vec![(seg(&[5]), 1, 1)]).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        assert!(matches!(
            store.read_page(0, &mut buf),
            Err(StoreError::Corrupt { page: 0, .. })
        ));
        assert!(matches!(
            store.read_page(9, &mut buf),
            Err(StoreError::OutOfRange { page: 9, .. })
        ));
    }

    #[test]
    fn allocate_extends_past_the_base_segments() {
        let mut store = SegmentedStore::new(vec![(seg(&[1]), 0, 1)]).unwrap();
        assert_eq!(store.allocate().unwrap(), 1);
        let mut buf = [0xFFu8; PAGE_SIZE];
        store.read_page(1, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0), "fresh page reads zeroed");
    }
}
