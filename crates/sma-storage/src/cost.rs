//! Deterministic I/O cost model.
//!
//! The paper's cold numbers come from two 1997-era SCSI disks. CI machines
//! cannot reproduce cold-cache disk behaviour reliably (the OS page cache
//! cannot be dropped), so benchmarks additionally *price* the observed
//! buffer-pool traffic with this model: sequential page reads are cheap,
//! random page reads pay a seek.
//!
//! The defaults are **calibrated to the paper's own §2.4 measurements**:
//! 128 s for the full sequential scan of LINEITEM (733 MB ≈ 183 k pages)
//! gives 0.7 ms per sequential 4 KiB page, and Fig. 5's breakeven at 25 %
//! of buckets read individually implies an effective random bucket read of
//! `0.7 / 0.25 = 2.8` ms on the Barracuda disks. With these two numbers
//! the model reproduces the paper's full-scan time, its SMA cold time
//! (8444 SMA pages × 0.7 ms ≈ 5.9 s vs. the measured 4.9 s) and its
//! crossover point.

use crate::pool::IoStats;

/// Prices buffer-pool traffic in simulated milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of a sequential physical page read, in ms.
    pub seq_read_ms: f64,
    /// Cost of a random physical page read (seek + transfer), in ms.
    pub rand_read_ms: f64,
    /// Cost of a physical page write, in ms.
    pub write_ms: f64,
    /// Cost of a *failed* read attempt — a transient fault the pool
    /// retried, or the final attempt of a read it gave up on. The device
    /// still spent a round-trip even though no page arrived, so pricing
    /// only successful I/O would under-report cold runs under faults.
    /// Priced like a random read: a failed attempt forfeits the arm
    /// position, so the eventual success pays a seek anyway.
    pub failed_read_ms: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            seq_read_ms: 0.7,
            rand_read_ms: 2.8,
            write_ms: 1.0,
            failed_read_ms: 2.8,
        }
    }
}

impl CostModel {
    /// A model where every read costs the same — useful to isolate the
    /// *number* of pages touched from their pattern.
    pub fn uniform(page_ms: f64) -> CostModel {
        CostModel {
            seq_read_ms: page_ms,
            rand_read_ms: page_ms,
            write_ms: page_ms,
            failed_read_ms: page_ms,
        }
    }

    /// Simulated milliseconds for the physical traffic in `stats`.
    ///
    /// Failed attempts count too: `retried_reads` (faults absorbed by the
    /// retry policy) and `gaveup_reads` (reads abandoned after the budget)
    /// are device time exactly like successful transfers.
    pub fn cost_ms(&self, stats: &IoStats) -> f64 {
        stats.sequential_reads as f64 * self.seq_read_ms
            + stats.random_reads as f64 * self.rand_read_ms
            + stats.physical_writes as f64 * self.write_ms
            + (stats.retried_reads + stats.gaveup_reads) as f64 * self.failed_read_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prices_traffic() {
        let stats = IoStats {
            logical_reads: 100,
            physical_reads: 12,
            sequential_reads: 10,
            random_reads: 2,
            physical_writes: 3,
            retried_reads: 0,
            gaveup_reads: 0,
        };
        let m = CostModel {
            seq_read_ms: 1.0,
            rand_read_ms: 10.0,
            write_ms: 2.0,
            failed_read_ms: 5.0,
        };
        assert!((m.cost_ms(&stats) - (10.0 + 20.0 + 6.0)).abs() < 1e-9);
    }

    /// Regression for the fault-pricing gap: a cold run that spent retries
    /// (or gave a read up entirely) must model *costlier* than the same
    /// successful traffic — the device round-trips happened either way.
    #[test]
    fn failed_attempts_are_priced() {
        let m = CostModel::default();
        let clean = IoStats {
            physical_reads: 100,
            sequential_reads: 99,
            random_reads: 1,
            ..Default::default()
        };
        let faulted = IoStats {
            retried_reads: 7,
            gaveup_reads: 2,
            ..clean
        };
        let delta = m.cost_ms(&faulted) - m.cost_ms(&clean);
        assert!((delta - 9.0 * m.failed_read_ms).abs() < 1e-9);
        assert!(m.cost_ms(&faulted) > m.cost_ms(&clean));
    }

    #[test]
    fn uniform_ignores_pattern() {
        let seq = IoStats {
            sequential_reads: 10,
            physical_reads: 10,
            ..Default::default()
        };
        let rand = IoStats {
            random_reads: 10,
            physical_reads: 10,
            ..Default::default()
        };
        let m = CostModel::uniform(2.0);
        assert_eq!(m.cost_ms(&seq), m.cost_ms(&rand));
    }

    #[test]
    fn default_calibration_matches_the_paper() {
        let m = CostModel::default();
        // Full scan of SF-1 LINEITEM (183 333 pages) ≈ the paper's 128 s.
        let full_scan = IoStats {
            physical_reads: 183_333,
            sequential_reads: 183_332,
            random_reads: 1,
            ..Default::default()
        };
        let secs = m.cost_ms(&full_scan) / 1000.0;
        assert!((secs - 128.0).abs() < 2.0, "full scan modeled at {secs}s");
        // Fig. 5 breakeven: random/sequential ratio of 4 → crossover at 25 %.
        assert!((m.rand_read_ms / m.seq_read_ms - 4.0).abs() < 0.01);
    }
}

/// The one blessed wall-clock site outside `cost.rs` and the bench
/// harness.
///
/// Query executors report elapsed wall time as telemetry next to the
/// deterministic [`CostModel`] price. Routing every reading through this
/// type keeps `std::time::Instant` out of result-shaping code (enforced
/// by the `D1-wall-clock` lint rule) and gives benchmarks a single seam
/// to audit: wall time may *accompany* results, never *determine* them.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: std::time::Instant,
}

impl Stopwatch {
    /// Starts timing.
    pub fn start() -> Stopwatch {
        Stopwatch {
            started: std::time::Instant::now(),
        }
    }

    /// Wall-clock time since [`Stopwatch::start`].
    pub fn elapsed(&self) -> std::time::Duration {
        self.started.elapsed()
    }
}
