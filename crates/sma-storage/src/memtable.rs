//! In-memory table of acknowledged-but-unflushed inserts.
//!
//! The memtable is the volatile half of the streaming ingest path: a
//! tuple lands here only *after* its WAL record is durable, so losing
//! the memtable in a crash loses nothing — recovery rebuilds it by
//! replaying the WAL. Queries read it as an overlay on top of the
//! sealed, SMA-indexed tables; a flush drains it (in sequence order)
//! into the warehouse's append path and then truncates the WAL.
//!
//! Rows are kept per relation in a [`BTreeMap`] and in arrival order
//! within each relation, so drains are deterministic and a flushed
//! segment is byte-identical to a bulk load of the same tuples.

use std::collections::BTreeMap;

use sma_types::Tuple;

/// One buffered insert: the WAL sequence number that made it durable,
/// and the tuple itself.
pub type MemRow = (u64, Tuple);

/// Buffer of acknowledged inserts not yet flushed to sealed storage.
#[derive(Debug, Clone, Default)]
pub struct Memtable {
    rows: BTreeMap<String, Vec<MemRow>>,
    len: usize,
    max_seq: u64,
}

impl Memtable {
    /// An empty memtable.
    pub fn new() -> Memtable {
        Memtable::default()
    }

    /// Buffers one acknowledged insert. `seq` values must arrive in
    /// increasing order warehouse-wide (they do: both live appends and
    /// WAL replay deliver them that way).
    pub fn insert(&mut self, relation: &str, seq: u64, tuple: Tuple) {
        self.rows
            .entry(relation.to_string())
            .or_default()
            .push((seq, tuple));
        self.len += 1;
        self.max_seq = self.max_seq.max(seq);
    }

    /// Total buffered tuples across all relations.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Highest WAL sequence number buffered since creation (0 if none) —
    /// the watermark a flush publishes in the manifest.
    pub fn max_seq(&self) -> u64 {
        self.max_seq
    }

    /// Buffered rows of `relation`, in arrival (= sequence) order.
    pub fn rows_for(&self, relation: &str) -> &[MemRow] {
        self.rows.get(relation).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Relations with at least one buffered row, in name order.
    pub fn relations(&self) -> impl Iterator<Item = &str> {
        self.rows.keys().map(String::as_str)
    }

    /// Empties the memtable, returning every buffered row grouped by
    /// relation (names in order, rows in sequence order). `max_seq` is
    /// deliberately retained: it tracks the high-water mark of what was
    /// ever acknowledged, which outlives any one flush.
    pub fn drain(&mut self) -> BTreeMap<String, Vec<MemRow>> {
        self.len = 0;
        std::mem::take(&mut self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sma_types::Value;

    fn t(v: i64) -> Tuple {
        vec![Value::Int(v)]
    }

    #[test]
    fn insert_query_drain() {
        let mut m = Memtable::new();
        assert!(m.is_empty());
        m.insert("B", 1, t(10));
        m.insert("A", 2, t(20));
        m.insert("B", 3, t(30));
        assert_eq!(m.len(), 3);
        assert_eq!(m.max_seq(), 3);
        assert_eq!(m.rows_for("B"), &[(1, t(10)), (3, t(30))]);
        assert_eq!(m.rows_for("missing"), &[]);
        assert_eq!(m.relations().collect::<Vec<_>>(), vec!["A", "B"]);
        let drained = m.drain();
        assert!(m.is_empty());
        assert_eq!(m.max_seq(), 3, "watermark survives the drain");
        assert_eq!(drained.keys().collect::<Vec<_>>(), vec!["A", "B"]);
        assert_eq!(drained["B"].len(), 2);
        assert!(m.rows_for("B").is_empty());
    }
}
