//! Small helpers shared by tests across the workspace: scratch paths, a
//! failure-injecting page store, a crash-simulating store, and bit-flip
//! corruptors for checksum tests.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::page::PAGE_SIZE;
use crate::store::{MemStore, PageNo, PageStore, StoreError};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// Error message carried by injected read failures — assert on this to
/// prove the *read* path propagated the fault.
pub const READ_FAILURE: &str = "injected read failure";

/// Error message carried by injected write failures — distinct from
/// [`READ_FAILURE`] so tests can tell the two paths apart.
pub const WRITE_FAILURE: &str = "injected write failure";

/// A unique scratch-file path under the system temp directory.
///
/// Unique per process *and* per call, so parallel tests never collide.
/// Callers should remove the file themselves; leaking into tmp on panic is
/// acceptable for tests.
pub fn scratch_path(tag: &str) -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("smadb-{tag}-{}-{n}.pages", std::process::id()))
}

/// A page store that starts failing reads and/or writes after a budget of
/// successful operations — for testing error propagation through the
/// table, SMA-build and query layers (failure injection).
pub struct FlakyStore {
    inner: MemStore,
    reads_left: Arc<AtomicU64>,
    writes_left: Arc<AtomicU64>,
}

impl FlakyStore {
    /// A store whose first `read_budget` page reads succeed and whose
    /// subsequent reads fail with an I/O error. Writes never fail.
    pub fn new(read_budget: u64) -> FlakyStore {
        FlakyStore::with_budgets(read_budget, u64::MAX)
    }

    /// A store with independent read and write budgets: operation number
    /// `budget + 1` of each kind fails with a distinct I/O error
    /// ([`READ_FAILURE`] / [`WRITE_FAILURE`]).
    pub fn with_budgets(read_budget: u64, write_budget: u64) -> FlakyStore {
        FlakyStore {
            inner: MemStore::new(),
            reads_left: Arc::new(AtomicU64::new(read_budget)),
            writes_left: Arc::new(AtomicU64::new(write_budget)),
        }
    }

    /// Handle to top up or inspect the remaining read budget.
    pub fn budget_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.reads_left)
    }

    /// Handle to top up or inspect the remaining write budget.
    pub fn write_budget_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.writes_left)
    }
}

impl PageStore for FlakyStore {
    fn page_count(&self) -> PageNo {
        self.inner.page_count()
    }

    fn read_page(&self, no: PageNo, buf: &mut [u8]) -> Result<(), StoreError> {
        let left = self.reads_left.load(Ordering::Relaxed);
        if left == 0 {
            return Err(StoreError::Io(io::Error::other(READ_FAILURE)));
        }
        self.reads_left.store(left - 1, Ordering::Relaxed);
        self.inner.read_page(no, buf)
    }

    fn write_page(&mut self, no: PageNo, buf: &[u8]) -> Result<(), StoreError> {
        let left = self.writes_left.load(Ordering::Relaxed);
        if left == 0 {
            return Err(StoreError::Io(io::Error::other(WRITE_FAILURE)));
        }
        self.writes_left.store(left - 1, Ordering::Relaxed);
        self.inner.write_page(no, buf)
    }

    fn allocate(&mut self) -> Result<PageNo, StoreError> {
        self.inner.allocate()
    }
}

/// An in-memory store that can simulate a crash mid-write.
///
/// Writes land in a linear byte image, like a real file. `truncate_at`
/// models the kernel persisting only a prefix before power loss: bytes at
/// and beyond the offset are lost — trailing whole pages disappear, and
/// the page containing the offset is torn (its tail reads back as zeroes).
#[derive(Clone, Default)]
pub struct CrashStore {
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
}

impl CrashStore {
    /// An empty store.
    pub fn new() -> CrashStore {
        CrashStore::default()
    }

    /// Total bytes currently stored.
    pub fn len_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE as u64
    }

    /// Simulates a crash that persisted exactly `offset` bytes.
    pub fn truncate_at(&mut self, offset: u64) {
        let full = (offset / PAGE_SIZE as u64) as usize;
        let torn = (offset % PAGE_SIZE as u64) as usize;
        self.pages.truncate(if torn > 0 { full + 1 } else { full });
        if torn > 0 {
            if let Some(last) = self.pages.last_mut() {
                last[torn..].fill(0);
            }
        }
    }
}

impl PageStore for CrashStore {
    fn page_count(&self) -> PageNo {
        self.pages.len() as PageNo
    }

    fn read_page(&self, no: PageNo, buf: &mut [u8]) -> Result<(), StoreError> {
        let page = self.pages.get(no as usize).ok_or(StoreError::OutOfRange {
            page: no,
            count: self.page_count(),
        })?;
        buf.copy_from_slice(&page[..]);
        Ok(())
    }

    fn write_page(&mut self, no: PageNo, buf: &[u8]) -> Result<(), StoreError> {
        let count = self.page_count();
        let page = self
            .pages
            .get_mut(no as usize)
            .ok_or(StoreError::OutOfRange { page: no, count })?;
        page.copy_from_slice(buf);
        Ok(())
    }

    fn allocate(&mut self) -> Result<PageNo, StoreError> {
        self.pages.push(Box::new([0u8; PAGE_SIZE]));
        Ok(self.pages.len() as PageNo - 1)
    }
}

/// Flips one bit of page `no` in `store`, bypassing any checksum logic —
/// the corruption the footer CRC must catch.
pub fn flip_bit(store: &mut dyn PageStore, no: PageNo, bit: u32) -> Result<(), StoreError> {
    let mut buf = [0u8; PAGE_SIZE];
    store.read_page(no, &mut buf)?;
    buf[bit as usize / 8] ^= 1 << (bit % 8);
    store.write_page(no, &buf)
}

/// Flips bit `bit` of the byte at `offset` in the file at `path`.
pub fn flip_bit_in_file(path: &Path, offset: u64, bit: u8) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    let f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)?;
    let mut b = [0u8; 1];
    f.read_exact_at(&mut b, offset)?;
    f.write_all_at(&[b[0] ^ (1 << (bit % 8))], offset)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flaky_write_budget_fails_with_distinct_message() {
        let mut s = FlakyStore::with_budgets(u64::MAX, 1);
        let no = s.allocate().unwrap();
        let img = [0u8; PAGE_SIZE];
        s.write_page(no, &img).unwrap();
        let err = s.write_page(no, &img).unwrap_err();
        assert!(err.to_string().contains(WRITE_FAILURE), "{err}");
        assert!(!err.to_string().contains(READ_FAILURE));
        // Reads still work: the budgets are independent.
        let mut buf = [0u8; PAGE_SIZE];
        s.read_page(no, &mut buf).unwrap();
    }

    #[test]
    fn crash_store_truncation_semantics() {
        let mut s = CrashStore::new();
        for _ in 0..3 {
            s.allocate().unwrap();
        }
        let mut img = [0xABu8; PAGE_SIZE];
        for no in 0..3 {
            img[0] = no as u8;
            s.write_page(no, &img).unwrap();
        }
        // Crash with one full page and 100 bytes of the second persisted.
        s.truncate_at(PAGE_SIZE as u64 + 100);
        assert_eq!(s.page_count(), 2, "third page is gone");
        let mut buf = [0u8; PAGE_SIZE];
        s.read_page(0, &mut buf).unwrap();
        assert_eq!(buf[0], 0, "first page intact");
        assert_eq!(buf[PAGE_SIZE - 1], 0xAB);
        s.read_page(1, &mut buf).unwrap();
        assert_eq!(buf[99], 0xAB, "persisted prefix of the torn page");
        assert_eq!(buf[100], 0, "torn tail reads back as zeroes");
        assert!(s.read_page(2, &mut buf).is_err());
    }

    #[test]
    fn flip_bit_flips_exactly_one_bit() {
        let mut s = MemStore::new();
        s.allocate().unwrap();
        flip_bit(&mut s, 0, 8 * 17 + 2).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        s.read_page(0, &mut buf).unwrap();
        assert_eq!(buf[17], 0b100);
        flip_bit(&mut s, 0, 8 * 17 + 2).unwrap();
        s.read_page(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }
}
