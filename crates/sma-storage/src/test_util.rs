//! Small helpers shared by tests across the workspace: scratch paths, a
//! seeded fault-injecting page store ([`FaultPlan`]), the budget-driven
//! [`FlakyStore`] and crash-simulating [`CrashStore`] built on top of it,
//! and bit-flip corruptors for checksum tests.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sma_types::StdRng;

use crate::page::PAGE_SIZE;
use crate::store::{MemStore, PageNo, PageStore, StoreError};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// Error message carried by injected read failures — assert on this to
/// prove the *read* path propagated the fault.
pub const READ_FAILURE: &str = "injected read failure";

/// Error message carried by injected write failures — distinct from
/// [`READ_FAILURE`] so tests can tell the two paths apart.
pub const WRITE_FAILURE: &str = "injected write failure";

/// Error message carried by injected transient read faults.
pub const TRANSIENT_FAILURE: &str = "injected transient fault";

/// Error message carried by injected sync (fsync) failures — the fault the
/// WAL's acknowledgement protocol must refuse to ride over.
pub const SYNC_FAILURE: &str = "injected sync failure";

/// A unique scratch-file path under the system temp directory.
///
/// Unique per process *and* per call, so parallel tests never collide.
/// Callers should remove the file themselves; leaking into tmp on panic is
/// acceptable for tests.
pub fn scratch_path(tag: &str) -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("smadb-{tag}-{}-{n}.pages", std::process::id()))
}

/// What a [`FaultPlan`] injects, all derived deterministically from `seed`.
///
/// Every decision is a pure function of `(seed, page number, per-page
/// attempt counter)` — never of wall-clock time or global operation order —
/// so the same plan injects the same faults regardless of how concurrent
/// readers interleave. That is what lets the chaos harness assert
/// fault-free ≡ faulty results at any thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed all schedules derive from.
    pub seed: u64,
    /// Percentage (0–100) of pages whose first reads raise
    /// [`StoreError::Transient`].
    pub transient_pct: u8,
    /// Burst length for transient pages: drawn from `1..=max_burst` per
    /// page. The first `burst` read attempts of an affected page fail,
    /// later attempts succeed — so a retry budget ≥ `max_burst` always
    /// rides the fault out.
    pub max_burst: u32,
    /// Percentage (0–100) of pages permanently corrupted: every read
    /// returns the stored image with one deterministic bit flipped, which
    /// the pool's checksum verification turns into [`StoreError::Corrupt`].
    pub corrupt_pct: u8,
    /// Percentage (0–100) of writes that tear: only a prefix of the new
    /// image reaches the store, the tail keeps its previous contents.
    pub torn_write_pct: u8,
    /// Percentage (0–100) of `sync` calls that fail with a hard I/O
    /// error. The data may or may not be durable — the caller must treat
    /// the operation as unacknowledged either way.
    pub sync_fail_pct: u8,
}

impl FaultConfig {
    /// A plan that injects nothing — the wrapper becomes transparent.
    pub fn none() -> FaultConfig {
        FaultConfig {
            seed: 0,
            transient_pct: 0,
            max_burst: 0,
            corrupt_pct: 0,
            torn_write_pct: 0,
            sync_fail_pct: 0,
        }
    }

    /// A quiet seeded plan; enable fault classes with the `with_*` methods.
    pub fn seeded(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            ..FaultConfig::none()
        }
    }

    /// Enables transient read bursts on `pct`% of pages, `1..=max_burst`
    /// failures each.
    pub fn with_transient(mut self, pct: u8, max_burst: u32) -> FaultConfig {
        self.transient_pct = pct;
        self.max_burst = max_burst.max(1);
        self
    }

    /// Permanently corrupts `pct`% of pages.
    pub fn with_corruption(mut self, pct: u8) -> FaultConfig {
        self.corrupt_pct = pct;
        self
    }

    /// Tears `pct`% of writes.
    pub fn with_torn_writes(mut self, pct: u8) -> FaultConfig {
        self.torn_write_pct = pct;
        self
    }

    /// Fails `pct`% of `sync` calls.
    pub fn with_sync_faults(mut self, pct: u8) -> FaultConfig {
        self.sync_fail_pct = pct;
        self
    }
}

/// One deterministic draw: an independent 64-bit stream per `(seed, salt,
/// index)` triple.
fn draw(seed: u64, salt: u64, index: u64) -> u64 {
    StdRng::seed_from_u64(
        seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (index.wrapping_add(1)).wrapping_mul(0xD1B5_4A32_D192_ED03),
    )
    .next_u64()
}

/// A [`PageStore`] wrapper injecting faults on a seeded, reproducible
/// schedule — the chaos harness's device model.
///
/// Three fault classes (see [`FaultConfig`]): transient read errors that
/// clear after a bounded burst, permanent page corruption caught by the
/// pool's checksums, and torn writes. Independently, hard read/write
/// budgets (the legacy [`FlakyStore`] behaviour) cut the device off after N
/// operations with an *unclassified* I/O error, which the pool must **not**
/// retry.
pub struct FaultPlan<S: PageStore = MemStore> {
    inner: S,
    config: FaultConfig,
    /// Read attempts seen per page — drives the per-page burst schedule.
    reads_seen: Mutex<HashMap<PageNo, u64>>,
    /// Writes seen so far — drives the torn-write schedule.
    writes_seen: AtomicU64,
    /// Syncs seen so far — drives the sync-fault schedule.
    syncs_seen: AtomicU64,
    reads_left: Arc<AtomicU64>,
    writes_left: Arc<AtomicU64>,
}

impl<S: PageStore> FaultPlan<S> {
    /// Wraps `inner` under `config`; budgets start unlimited.
    pub fn new(inner: S, config: FaultConfig) -> FaultPlan<S> {
        FaultPlan {
            inner,
            config,
            reads_seen: Mutex::new(HashMap::new()),
            writes_seen: AtomicU64::new(0),
            syncs_seen: AtomicU64::new(0),
            reads_left: Arc::new(AtomicU64::new(u64::MAX)),
            writes_left: Arc::new(AtomicU64::new(u64::MAX)),
        }
    }

    /// The active fault schedule.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The wrapped store, mutably (e.g. to corrupt it behind the plan).
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Handle to top up or inspect the remaining hard read budget.
    pub fn read_budget_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.reads_left)
    }

    /// Handle to top up or inspect the remaining hard write budget.
    pub fn write_budget_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.writes_left)
    }

    /// Sets the hard read budget (operation `budget + 1` fails).
    pub fn set_read_budget(&self, budget: u64) {
        self.reads_left.store(budget, Ordering::Relaxed);
    }

    /// Sets the hard write budget.
    pub fn set_write_budget(&self, budget: u64) {
        self.writes_left.store(budget, Ordering::Relaxed);
    }

    /// How many transient failures the plan schedules for page `no`
    /// (`0` = the page reads cleanly). Deterministic; tests use it to
    /// predict whether retries will be spent.
    pub fn transient_burst(&self, no: PageNo) -> u64 {
        let c = &self.config;
        if c.transient_pct == 0 {
            return 0;
        }
        if draw(c.seed, 1, no as u64) % 100 >= c.transient_pct as u64 {
            return 0;
        }
        1 + draw(c.seed, 2, no as u64) % c.max_burst.max(1) as u64
    }

    /// Whether the plan permanently corrupts page `no`.
    pub fn is_corrupt_page(&self, no: PageNo) -> bool {
        let c = &self.config;
        c.corrupt_pct > 0 && draw(c.seed, 3, no as u64) % 100 < c.corrupt_pct as u64
    }

    /// Whether the `index`-th `sync` call (0-based) will fail.
    /// Deterministic; tests use it to predict which inserts get acked.
    pub fn sync_fails_at(&self, index: u64) -> bool {
        let c = &self.config;
        c.sync_fail_pct > 0 && draw(c.seed, 7, index) % 100 < c.sync_fail_pct as u64
    }

    /// How many `sync` calls the plan has seen.
    pub fn syncs_seen(&self) -> u64 {
        self.syncs_seen.load(Ordering::Relaxed)
    }

    /// Whether the plan schedules any fault at all for pages `0..pages`.
    pub fn any_fault_planned(&self, pages: PageNo) -> bool {
        (0..pages).any(|no| self.transient_burst(no) > 0 || self.is_corrupt_page(no))
    }

    /// Forgets all read-attempt history: every transient burst starts over.
    pub fn reset_history(&self) {
        self.reads_seen
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }

    fn spend(budget: &AtomicU64) -> bool {
        let left = budget.load(Ordering::Relaxed);
        if left == 0 {
            return false;
        }
        if left != u64::MAX {
            budget.store(left - 1, Ordering::Relaxed);
        }
        true
    }
}

impl<S: PageStore + Clone> Clone for FaultPlan<S> {
    fn clone(&self) -> FaultPlan<S> {
        FaultPlan {
            inner: self.inner.clone(),
            config: self.config,
            reads_seen: Mutex::new(
                self.reads_seen
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .clone(),
            ),
            writes_seen: AtomicU64::new(self.writes_seen.load(Ordering::Relaxed)),
            syncs_seen: AtomicU64::new(self.syncs_seen.load(Ordering::Relaxed)),
            reads_left: Arc::new(AtomicU64::new(self.reads_left.load(Ordering::Relaxed))),
            writes_left: Arc::new(AtomicU64::new(self.writes_left.load(Ordering::Relaxed))),
        }
    }
}

impl<S: PageStore> PageStore for FaultPlan<S> {
    fn page_count(&self) -> PageNo {
        self.inner.page_count()
    }

    fn read_page(&self, no: PageNo, buf: &mut [u8]) -> Result<(), StoreError> {
        if !Self::spend(&self.reads_left) {
            return Err(StoreError::Io(io::Error::other(READ_FAILURE)));
        }
        let burst = self.transient_burst(no);
        if burst > 0 {
            let attempt = {
                let mut seen = self.reads_seen.lock().unwrap_or_else(|e| e.into_inner());
                let c = seen.entry(no).or_insert(0);
                *c += 1;
                *c
            };
            if attempt <= burst {
                return Err(StoreError::Transient {
                    page: no,
                    detail: format!("{TRANSIENT_FAILURE} ({attempt}/{burst})"),
                });
            }
        }
        self.inner.read_page(no, buf)?;
        if self.is_corrupt_page(no) && buf.len() == PAGE_SIZE {
            let bit = draw(self.config.seed, 5, no as u64) % (8 * PAGE_SIZE as u64);
            buf[(bit / 8) as usize] ^= 1 << (bit % 8);
        }
        Ok(())
    }

    fn write_page(&mut self, no: PageNo, buf: &[u8]) -> Result<(), StoreError> {
        if !Self::spend(&self.writes_left) {
            return Err(StoreError::Io(io::Error::other(WRITE_FAILURE)));
        }
        let w = self.writes_seen.fetch_add(1, Ordering::Relaxed);
        let c = self.config;
        if c.torn_write_pct > 0
            && buf.len() == PAGE_SIZE
            && draw(c.seed, 4, w) % 100 < c.torn_write_pct as u64
        {
            // Persist only a prefix of the new image; the tail keeps the
            // old contents — exactly what a power cut mid-sector-stream
            // leaves behind. The checksum footer then fails on read.
            let cut = (draw(c.seed, 6, w) % PAGE_SIZE as u64) as usize;
            let mut torn = [0u8; PAGE_SIZE];
            self.inner.read_page(no, &mut torn)?;
            torn[..cut].copy_from_slice(&buf[..cut]);
            return self.inner.write_page(no, &torn);
        }
        self.inner.write_page(no, buf)
    }

    fn allocate(&mut self) -> Result<PageNo, StoreError> {
        self.inner.allocate()
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        let s = self.syncs_seen.fetch_add(1, Ordering::Relaxed);
        let c = self.config;
        if c.sync_fail_pct > 0 && draw(c.seed, 7, s) % 100 < c.sync_fail_pct as u64 {
            // Deliberately ambiguous, like a real failed fsync: the pages
            // were written to the inner store, but the caller got an error
            // and must not acknowledge anything that depended on this sync.
            return Err(StoreError::Io(io::Error::other(SYNC_FAILURE)));
        }
        self.inner.sync()
    }
}

/// A page store that starts failing reads and/or writes after a budget of
/// successful operations — for testing error propagation through the
/// table, SMA-build and query layers (failure injection).
///
/// Budget exhaustion raises an *unclassified* [`StoreError::Io`], never a
/// transient one: these tests prove faults propagate, so the buffer pool
/// must not quietly retry them. A thin veneer over a quiet [`FaultPlan`].
pub struct FlakyStore {
    plan: FaultPlan<MemStore>,
}

impl FlakyStore {
    /// A store whose first `read_budget` page reads succeed and whose
    /// subsequent reads fail with an I/O error. Writes never fail.
    pub fn new(read_budget: u64) -> FlakyStore {
        FlakyStore::with_budgets(read_budget, u64::MAX)
    }

    /// A store with independent read and write budgets: operation number
    /// `budget + 1` of each kind fails with a distinct I/O error
    /// ([`READ_FAILURE`] / [`WRITE_FAILURE`]).
    pub fn with_budgets(read_budget: u64, write_budget: u64) -> FlakyStore {
        let plan = FaultPlan::new(MemStore::new(), FaultConfig::none());
        plan.set_read_budget(read_budget);
        plan.set_write_budget(write_budget);
        FlakyStore { plan }
    }

    /// Handle to top up or inspect the remaining read budget.
    pub fn budget_handle(&self) -> Arc<AtomicU64> {
        self.plan.read_budget_handle()
    }

    /// Handle to top up or inspect the remaining write budget.
    pub fn write_budget_handle(&self) -> Arc<AtomicU64> {
        self.plan.write_budget_handle()
    }
}

impl PageStore for FlakyStore {
    fn page_count(&self) -> PageNo {
        self.plan.page_count()
    }

    fn read_page(&self, no: PageNo, buf: &mut [u8]) -> Result<(), StoreError> {
        self.plan.read_page(no, buf)
    }

    fn write_page(&mut self, no: PageNo, buf: &[u8]) -> Result<(), StoreError> {
        self.plan.write_page(no, buf)
    }

    fn allocate(&mut self) -> Result<PageNo, StoreError> {
        self.plan.allocate()
    }
}

/// An in-memory store that can simulate a crash mid-write.
///
/// Writes land in a linear byte image, like a real file. `truncate_at`
/// models the kernel persisting only a prefix before power loss: bytes at
/// and beyond the offset are lost — trailing whole pages disappear, and
/// the page containing the offset is torn (its tail reads back as zeroes).
/// A quiet [`FaultPlan`] over a [`MemStore`]: crash truncation is just the
/// degenerate torn write that hits every page past the cut at once.
#[derive(Clone)]
pub struct CrashStore {
    plan: FaultPlan<MemStore>,
}

impl Default for CrashStore {
    fn default() -> CrashStore {
        CrashStore::new()
    }
}

impl CrashStore {
    /// An empty store.
    pub fn new() -> CrashStore {
        CrashStore::with_config(FaultConfig::none())
    }

    /// An empty store with a seeded fault schedule layered under the
    /// crash semantics — e.g. sync faults against a WAL's ack protocol.
    pub fn with_config(config: FaultConfig) -> CrashStore {
        CrashStore {
            plan: FaultPlan::new(MemStore::new(), config),
        }
    }

    /// Whether the `index`-th `sync` call (0-based) will fail.
    pub fn sync_fails_at(&self, index: u64) -> bool {
        self.plan.sync_fails_at(index)
    }

    /// How many `sync` calls this store has seen.
    pub fn syncs_seen(&self) -> u64 {
        self.plan.syncs_seen()
    }

    /// Total bytes currently stored.
    pub fn len_bytes(&self) -> u64 {
        self.plan.inner().len_bytes()
    }

    /// Simulates a crash that persisted exactly `offset` bytes.
    pub fn truncate_at(&mut self, offset: u64) {
        self.plan.inner_mut().retain_prefix(offset);
    }
}

impl PageStore for CrashStore {
    fn page_count(&self) -> PageNo {
        self.plan.page_count()
    }

    fn read_page(&self, no: PageNo, buf: &mut [u8]) -> Result<(), StoreError> {
        self.plan.read_page(no, buf)
    }

    fn write_page(&mut self, no: PageNo, buf: &[u8]) -> Result<(), StoreError> {
        self.plan.write_page(no, buf)
    }

    fn allocate(&mut self) -> Result<PageNo, StoreError> {
        self.plan.allocate()
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        self.plan.sync()
    }
}

/// Flips one bit of page `no` in `store`, bypassing any checksum logic —
/// the corruption the footer CRC must catch.
pub fn flip_bit(store: &mut dyn PageStore, no: PageNo, bit: u32) -> Result<(), StoreError> {
    let mut buf = [0u8; PAGE_SIZE];
    store.read_page(no, &mut buf)?;
    buf[bit as usize / 8] ^= 1 << (bit % 8);
    store.write_page(no, &buf)
}

/// Flips bit `bit` of the byte at `offset` in the file at `path`.
pub fn flip_bit_in_file(path: &Path, offset: u64, bit: u8) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    let f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)?;
    let mut b = [0u8; 1];
    f.read_exact_at(&mut b, offset)?;
    f.write_all_at(&[b[0] ^ (1 << (bit % 8))], offset)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flaky_write_budget_fails_with_distinct_message() {
        let mut s = FlakyStore::with_budgets(u64::MAX, 1);
        let no = s.allocate().unwrap();
        let img = [0u8; PAGE_SIZE];
        s.write_page(no, &img).unwrap();
        let err = s.write_page(no, &img).unwrap_err();
        assert!(err.to_string().contains(WRITE_FAILURE), "{err}");
        assert!(!err.to_string().contains(READ_FAILURE));
        // Budget exhaustion is a hard fault, not a retryable one.
        assert!(!err.is_transient());
        // Reads still work: the budgets are independent.
        let mut buf = [0u8; PAGE_SIZE];
        s.read_page(no, &mut buf).unwrap();
    }

    #[test]
    fn crash_store_truncation_semantics() {
        let mut s = CrashStore::new();
        for _ in 0..3 {
            s.allocate().unwrap();
        }
        let mut img = [0xABu8; PAGE_SIZE];
        for no in 0..3 {
            img[0] = no as u8;
            s.write_page(no, &img).unwrap();
        }
        // Crash with one full page and 100 bytes of the second persisted.
        s.truncate_at(PAGE_SIZE as u64 + 100);
        assert_eq!(s.page_count(), 2, "third page is gone");
        let mut buf = [0u8; PAGE_SIZE];
        s.read_page(0, &mut buf).unwrap();
        assert_eq!(buf[0], 0, "first page intact");
        assert_eq!(buf[PAGE_SIZE - 1], 0xAB);
        s.read_page(1, &mut buf).unwrap();
        assert_eq!(buf[99], 0xAB, "persisted prefix of the torn page");
        assert_eq!(buf[100], 0, "torn tail reads back as zeroes");
        assert!(s.read_page(2, &mut buf).is_err());
    }

    #[test]
    fn flip_bit_flips_exactly_one_bit() {
        let mut s = MemStore::new();
        s.allocate().unwrap();
        flip_bit(&mut s, 0, 8 * 17 + 2).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        s.read_page(0, &mut buf).unwrap();
        assert_eq!(buf[17], 0b100);
        flip_bit(&mut s, 0, 8 * 17 + 2).unwrap();
        s.read_page(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn fault_plan_transient_bursts_clear_deterministically() {
        let cfg = FaultConfig::seeded(7).with_transient(100, 3);
        let mut plan = FaultPlan::new(MemStore::new(), cfg);
        for _ in 0..4 {
            plan.allocate().unwrap();
        }
        let mut buf = [0u8; PAGE_SIZE];
        for no in 0..4 {
            let burst = plan.transient_burst(no);
            assert!((1..=3).contains(&burst), "pct=100 faults every page");
            for attempt in 1..=burst {
                let err = plan.read_page(no, &mut buf).unwrap_err();
                assert!(err.is_transient(), "attempt {attempt}: {err}");
                assert!(err.to_string().contains(TRANSIENT_FAILURE));
            }
            // The burst is spent: every later read succeeds.
            plan.read_page(no, &mut buf).unwrap();
            plan.read_page(no, &mut buf).unwrap();
        }
        // Same seed, fresh plan: identical schedule.
        let again = FaultPlan::new(MemStore::new(), cfg);
        for no in 0..4 {
            assert_eq!(plan.transient_burst(no), again.transient_burst(no));
        }
        // After forgetting history the burst fires again.
        plan.reset_history();
        assert!(plan.read_page(0, &mut buf).unwrap_err().is_transient());
    }

    #[test]
    fn fault_plan_corruption_is_stable_per_page() {
        let cfg = FaultConfig::seeded(11).with_corruption(100);
        let mut plan = FaultPlan::new(MemStore::new(), cfg);
        plan.allocate().unwrap();
        let mut a = [0u8; PAGE_SIZE];
        let mut b = [0u8; PAGE_SIZE];
        plan.read_page(0, &mut a).unwrap();
        plan.read_page(0, &mut b).unwrap();
        assert_eq!(a, b, "the injected flip is the same every read");
        let flipped: u32 = a.iter().map(|x| x.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit differs from the zero page");
    }

    #[test]
    fn fault_plan_torn_writes_keep_old_tail() {
        let cfg = FaultConfig::seeded(3).with_torn_writes(100);
        let mut plan = FaultPlan::new(MemStore::new(), cfg);
        plan.allocate().unwrap();
        let old = [0x11u8; PAGE_SIZE];
        // First write is torn too, but over a zero page; write the baseline
        // through the inner store directly.
        plan.inner_mut().write_page(0, &old).unwrap();
        let new = [0x22u8; PAGE_SIZE];
        plan.write_page(0, &new).unwrap();
        let mut back = [0u8; PAGE_SIZE];
        plan.inner().read_page(0, &mut back).unwrap();
        let cut = back.iter().position(|&x| x == 0x11).unwrap_or(PAGE_SIZE);
        assert!(back[..cut].iter().all(|&x| x == 0x22), "prefix is new");
        assert!(back[cut..].iter().all(|&x| x == 0x11), "tail is old");
        assert!(cut < PAGE_SIZE, "pct=100 must tear");
    }

    #[test]
    fn fault_plan_sync_faults_follow_the_schedule() {
        let cfg = FaultConfig::seeded(13).with_sync_faults(40);
        let mut plan = FaultPlan::new(MemStore::new(), cfg);
        let mut failed = 0;
        for i in 0..50u64 {
            let predicted = plan.sync_fails_at(i);
            let got = plan.sync();
            assert_eq!(got.is_err(), predicted, "sync {i}");
            if let Err(e) = got {
                assert!(e.to_string().contains(SYNC_FAILURE), "{e}");
                assert!(!e.is_transient(), "sync faults must not be retried");
                failed += 1;
            }
        }
        assert_eq!(plan.syncs_seen(), 50);
        assert!(failed > 0, "pct=40 over 50 draws must fire at least once");
        assert!(failed < 50, "and must not fire every time");
        // A quiet plan never injects.
        let mut quiet = FaultPlan::new(MemStore::new(), FaultConfig::none());
        for _ in 0..10 {
            quiet.sync().unwrap();
        }
    }

    #[test]
    fn fault_plan_budgets_raise_hard_errors() {
        let mut plan = FaultPlan::new(MemStore::new(), FaultConfig::none());
        plan.allocate().unwrap();
        plan.set_read_budget(1);
        let mut buf = [0u8; PAGE_SIZE];
        plan.read_page(0, &mut buf).unwrap();
        let err = plan.read_page(0, &mut buf).unwrap_err();
        assert!(err.to_string().contains(READ_FAILURE), "{err}");
        assert!(!err.is_transient());
    }

    #[test]
    fn any_fault_planned_matches_the_per_page_schedules() {
        let quiet = FaultPlan::new(MemStore::new(), FaultConfig::seeded(5));
        assert!(!quiet.any_fault_planned(64));
        let noisy = FaultPlan::new(
            MemStore::new(),
            FaultConfig::seeded(5)
                .with_transient(10, 2)
                .with_corruption(5),
        );
        let by_scan =
            (0..64u32).any(|no| noisy.transient_burst(no) > 0 || noisy.is_corrupt_page(no));
        assert_eq!(noisy.any_fault_planned(64), by_scan);
    }
}
