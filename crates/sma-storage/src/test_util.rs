//! Small helpers shared by tests across the workspace: scratch paths and
//! a failure-injecting page store.

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::store::{MemStore, PageNo, PageStore, StoreError};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A unique scratch-file path under the system temp directory.
///
/// Unique per process *and* per call, so parallel tests never collide.
/// Callers should remove the file themselves; leaking into tmp on panic is
/// acceptable for tests.
pub fn scratch_path(tag: &str) -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "smadb-{tag}-{}-{n}.pages",
        std::process::id()
    ))
}

/// A page store that starts failing every read after a budget of
/// successful operations — for testing error propagation through the
/// table, SMA-build and query layers (failure injection).
pub struct FlakyStore {
    inner: MemStore,
    reads_left: Arc<AtomicU64>,
}

impl FlakyStore {
    /// A store whose first `read_budget` page reads succeed and whose
    /// subsequent reads fail with an I/O error.
    pub fn new(read_budget: u64) -> FlakyStore {
        FlakyStore {
            inner: MemStore::new(),
            reads_left: Arc::new(AtomicU64::new(read_budget)),
        }
    }

    /// Handle to top up or inspect the remaining read budget.
    pub fn budget_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.reads_left)
    }
}

impl PageStore for FlakyStore {
    fn page_count(&self) -> PageNo {
        self.inner.page_count()
    }

    fn read_page(&self, no: PageNo, buf: &mut [u8]) -> Result<(), StoreError> {
        let left = self.reads_left.load(Ordering::Relaxed);
        if left == 0 {
            return Err(StoreError::Io(io::Error::other("injected read failure")));
        }
        self.reads_left.store(left - 1, Ordering::Relaxed);
        self.inner.read_page(no, buf)
    }

    fn write_page(&mut self, no: PageNo, buf: &[u8]) -> Result<(), StoreError> {
        self.inner.write_page(no, buf)
    }

    fn allocate(&mut self) -> Result<PageNo, StoreError> {
        self.inner.allocate()
    }
}
