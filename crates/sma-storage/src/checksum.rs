//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! guarding page footers and SMA persistence streams.
//!
//! Implemented from scratch (table-driven, one table built at first use)
//! so the storage crate stays dependency-free. The algorithm matches
//! zlib's `crc32()`, so images written here can be cross-checked with any
//! standard tool.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            // i < 256, so the conversion is lossless; saturate defensively.
            let mut c = u32::try_from(i).unwrap_or(u32::MAX);
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

/// CRC32 of `data` (IEEE, zlib-compatible).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values from zlib's crc32().
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let mut data = vec![0u8; 4096];
        data[17] = 0xA5;
        let clean = crc32(&data);
        for bit in [0usize, 1, 8 * 17 + 3, 8 * 4095 + 7] {
            data[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&data), clean, "flip of bit {bit} must change the crc");
            data[bit / 8] ^= 1 << (bit % 8);
        }
        assert_eq!(crc32(&data), clean);
    }
}
