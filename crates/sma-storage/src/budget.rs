//! Per-query execution budgets: deadline, logical-page cap, cancellation.
//!
//! A [`QueryBudget`] is created per query by whoever admits it (the query
//! server, a test harness) and threaded by reference into the executor,
//! which *checks* it at bucket/page boundaries and *charges* it for every
//! data page it is about to read. All state is atomic, so the morsel
//! workers of a parallel operator share one budget without locks.
//!
//! Charges are deterministic, not sampled from the shared buffer pool's
//! counters: an operator charges exactly the logical page count it
//! requests (the same unit [`crate::IoStats::logical_reads`] tallies).
//! Under concurrency the pool's counters mix all in-flight queries
//! together, so metering from their deltas would bill one query for
//! another's I/O; deterministic charges keep every budget verdict
//! reproducible in a single-threaded replay.
//!
//! Exhaustion is reported as a structured [`BudgetExceeded`] — never a
//! panic, never a poisoned lock — so a budget-capped query degrades into
//! an ordinary error response.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use crate::cost::Stopwatch;

/// Why a query was cut off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetExceeded {
    /// The wall-clock deadline passed.
    Deadline {
        /// Time spent when the violation was detected, in microseconds.
        elapsed_us: u64,
        /// The configured deadline, in microseconds.
        limit_us: u64,
    },
    /// The logical-page cap was hit.
    Pages {
        /// Pages charged so far (including the charge that tripped).
        charged: u64,
        /// The configured cap.
        limit: u64,
    },
    /// The budget was cancelled from outside (e.g. server shutdown).
    Cancelled,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetExceeded::Deadline {
                elapsed_us,
                limit_us,
            } => write!(
                f,
                "deadline exceeded: {elapsed_us} us elapsed of a {limit_us} us budget"
            ),
            BudgetExceeded::Pages { charged, limit } => {
                write!(
                    f,
                    "page budget exceeded: {charged} pages charged of {limit}"
                )
            }
            BudgetExceeded::Cancelled => write!(f, "query cancelled"),
        }
    }
}

impl std::error::Error for BudgetExceeded {}

/// A cooperative per-query budget.
///
/// The clock starts when the budget is constructed (admission time), so
/// queueing and planning count against the deadline too. A default budget
/// is unbounded: `check`/`charge` never fail until someone `cancel`s it.
#[derive(Debug)]
pub struct QueryBudget {
    clock: Stopwatch,
    deadline: Option<Duration>,
    page_cap: Option<u64>,
    pages: AtomicU64,
    cancelled: AtomicBool,
}

impl Default for QueryBudget {
    fn default() -> QueryBudget {
        QueryBudget::unbounded()
    }
}

impl QueryBudget {
    /// A budget that never trips on its own (it can still be cancelled).
    pub fn unbounded() -> QueryBudget {
        QueryBudget {
            clock: Stopwatch::start(),
            deadline: None,
            page_cap: None,
            pages: AtomicU64::new(0),
            cancelled: AtomicBool::new(false),
        }
    }

    /// Adds a wall-clock deadline, measured from construction.
    pub fn with_deadline(mut self, deadline: Duration) -> QueryBudget {
        self.deadline = Some(deadline);
        self
    }

    /// Adds a logical-page cap: the query may charge at most `pages`
    /// data pages before it is cut off.
    pub fn with_page_cap(mut self, pages: u64) -> QueryBudget {
        self.page_cap = Some(pages);
        self
    }

    /// Marks the budget cancelled; every later `check`/`charge` fails
    /// with [`BudgetExceeded::Cancelled`]. Safe from any thread.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether [`QueryBudget::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Pages charged so far.
    pub fn pages_charged(&self) -> u64 {
        self.pages.load(Ordering::Relaxed)
    }

    /// Checkpoint: fails if the budget was cancelled or the deadline has
    /// passed. Cheap enough to call once per bucket.
    pub fn check(&self) -> Result<(), BudgetExceeded> {
        if self.is_cancelled() {
            return Err(BudgetExceeded::Cancelled);
        }
        if let Some(limit) = self.deadline {
            let elapsed = self.clock.elapsed();
            if elapsed >= limit {
                return Err(BudgetExceeded::Deadline {
                    elapsed_us: duration_us(elapsed),
                    limit_us: duration_us(limit),
                });
            }
        }
        Ok(())
    }

    /// Charges `pages` logical page reads, then runs every check. The
    /// charge sticks even when the result is an error, so an exhausted
    /// budget reports the full tally it was cut off at.
    pub fn charge(&self, pages: u64) -> Result<(), BudgetExceeded> {
        let charged = self.pages.fetch_add(pages, Ordering::Relaxed) + pages;
        if let Some(limit) = self.page_cap {
            if charged > limit {
                return Err(BudgetExceeded::Pages { charged, limit });
            }
        }
        self.check()
    }
}

/// Saturating microseconds of a `Duration` (for error payloads).
fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_trips() {
        let b = QueryBudget::unbounded();
        for _ in 0..1000 {
            b.charge(1_000_000).unwrap();
        }
        b.check().unwrap();
        assert_eq!(b.pages_charged(), 1_000_000_000);
    }

    #[test]
    fn page_cap_trips_with_the_full_tally() {
        let b = QueryBudget::unbounded().with_page_cap(10);
        b.charge(6).unwrap();
        b.charge(4).unwrap(); // exactly at the cap: still fine
        let err = b.charge(1).unwrap_err();
        assert_eq!(
            err,
            BudgetExceeded::Pages {
                charged: 11,
                limit: 10
            }
        );
        // The charge stuck; the budget stays tripped.
        assert_eq!(b.pages_charged(), 11);
        assert!(b.charge(0).is_err());
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let b = QueryBudget::unbounded().with_deadline(Duration::ZERO);
        let err = b.check().unwrap_err();
        assert!(matches!(err, BudgetExceeded::Deadline { .. }), "{err}");
        assert!(matches!(
            b.charge(1),
            Err(BudgetExceeded::Deadline { .. } | BudgetExceeded::Pages { .. })
        ));
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let b = QueryBudget::unbounded().with_deadline(Duration::from_secs(3600));
        b.check().unwrap();
        b.charge(5).unwrap();
    }

    #[test]
    fn cancel_wins_from_any_thread() {
        let b = QueryBudget::unbounded().with_page_cap(1_000);
        std::thread::scope(|s| {
            s.spawn(|| b.cancel());
        });
        assert_eq!(b.check().unwrap_err(), BudgetExceeded::Cancelled);
        assert_eq!(b.charge(1).unwrap_err(), BudgetExceeded::Cancelled);
    }

    #[test]
    fn concurrent_charges_are_exact() {
        let b = QueryBudget::unbounded();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        b.charge(1).unwrap();
                    }
                });
            }
        });
        assert_eq!(b.pages_charged(), 8_000);
    }

    #[test]
    fn errors_render_structured_messages() {
        let d = BudgetExceeded::Deadline {
            elapsed_us: 20,
            limit_us: 10,
        };
        assert!(d.to_string().contains("deadline exceeded"));
        let p = BudgetExceeded::Pages {
            charged: 11,
            limit: 10,
        };
        assert!(p.to_string().contains("page budget exceeded"));
        assert!(BudgetExceeded::Cancelled.to_string().contains("cancelled"));
    }
}
